//! Lifecycle guarantees of the persistent worker pool under real query
//! plans (unit-level contracts — panic/error propagation, cancel-on-drop,
//! in-flight bounds — live next to the pool in `bdcc-pool` and
//! `bdcc-exec::parallel::pool`):
//!
//! * **Nested fan-outs terminate**: a parallel probe round is a blocking
//!   fan-out issued *while the streaming scan feeding it has live
//!   producers on the same pool* — and an oversized sandwich group nests
//!   one deeper. At 4 workers and tiny morsels these shapes deadlock
//!   unless a blocked fan-out lends its calling thread to the pool; the
//!   join-heavy queries here prove they complete and stay byte-equivalent
//!   to serial execution.
//! * **No OS thread after warm-up**: across a multi-query, multi-scheme,
//!   multi-config run, the pool's monotone spawn counter must not move
//!   once the widest fan-out has been seen — the persistent-pool
//!   guarantee that replaced spawn-per-fan-out.

use std::sync::Arc;

use bdcc::prelude::*;
use bdcc_exec::parallel::pool::WorkerPool;
use bdcc_exec::ParallelConfig;

fn schemes() -> (f64, Vec<Arc<SchemeDb>>) {
    let sf = 0.002;
    let db = bdcc::tpch::generate(&GenConfig::new(sf));
    let plain = Arc::new(plain_scheme(&db));
    let pk = Arc::new(pk_scheme(&db).expect("pk scheme"));
    let bdcc = Arc::new(bdcc_scheme(&db, &DesignConfig::default()).expect("bdcc scheme"));
    (sf, vec![plain, pk, bdcc])
}

/// Pin 4 workers and tiny morsels regardless of the CI matrix env: the
/// point is the nested shape, which needs real fan-outs.
fn nested_cfg(morsel_rows: usize) -> ParallelConfig {
    ParallelConfig { threads: 4, morsel_rows, agg_radix: None }
}

#[test]
fn nested_fan_outs_inside_streaming_scans_complete_and_match_serial() {
    let (sf, sdbs) = schemes();
    // Join-heavy queries: streaming scans feed hash-join probe rounds
    // (inner, semi, anti, outer) and — on the BDCC scheme — sandwich
    // joins whose oversized groups fan out mid-probe. 48-row morsels make
    // every build partitioned and every probe round many-morsel.
    let heavy = [3usize, 10, 18, 21];
    let mut failures = Vec::new();
    for q in all_queries().into_iter().filter(|q| heavy.contains(&q.id)) {
        for sdb in &sdbs {
            let serial = (q.run)(&QueryCtx::new(QueryContext::new(Arc::clone(sdb)), sf));
            let parallel = (q.run)(&QueryCtx::new(
                QueryContext::with_parallel(Arc::clone(sdb), nested_cfg(48)),
                sf,
            ));
            match (serial, parallel) {
                (Ok(s), Ok(p)) => {
                    if canonical_rows(&s) != canonical_rows(&p) {
                        failures.push(format!("{} on {}", q.name, sdb.scheme.name()));
                    }
                }
                (Err(e), _) | (_, Err(e)) => {
                    failures.push(format!("{} on {}: {e}", q.name, sdb.scheme.name()))
                }
            }
        }
    }
    assert!(failures.is_empty(), "nested fan-out disagreement: {}", failures.join(", "));
}

#[test]
fn no_os_thread_is_created_after_warmup_across_queries() {
    let (sf, sdbs) = schemes();
    // Warm-up: one parallel query at the widest width this test uses.
    // (Scheme construction itself already fanned out on the same pool —
    // BDCC clustering runs there too.)
    let q3 = all_queries().into_iter().find(|q| q.id == 3).expect("q3");
    let warm_ctx =
        QueryCtx::new(QueryContext::with_parallel(Arc::clone(&sdbs[0]), nested_cfg(256)), sf);
    (q3.run)(&warm_ctx).expect("warm-up query");
    let warm = WorkerPool::shared().stats().threads_spawned_total;
    assert!(warm >= 4, "warm-up must have populated the pool (spawned {warm})");

    // Multi-query run: several queries × all schemes × several configs,
    // none wider than the warm-up. Every fan-out — scans, joins, sorts,
    // aggregations, both radix pins — must reuse the parked workers.
    let mix = [1usize, 3, 6, 10, 18];
    for (i, q) in all_queries().into_iter().filter(|q| mix.contains(&q.id)).enumerate() {
        for sdb in &sdbs {
            let cfg = ParallelConfig {
                threads: 2 + (i % 3), // 2..=4
                morsel_rows: if i % 2 == 0 { 256 } else { 64 },
                agg_radix: Some(i % 2 == 0),
            };
            let ctx = QueryCtx::new(QueryContext::with_parallel(Arc::clone(sdb), cfg), sf);
            (q.run)(&ctx).expect("query under warm pool");
        }
    }
    let after = WorkerPool::shared().stats().threads_spawned_total;
    assert_eq!(after, warm, "a warm pool must not create OS threads mid-run");
}

#[test]
fn cancel_and_drop_mid_stream_release_all_memory_without_new_threads() {
    use bdcc_exec::{join, plan_query, CancelToken, ExecError, PlanBuilder};

    let sf = 0.004;
    let db = bdcc::tpch::generate(&GenConfig::new(sf));
    let sdb = Arc::new(plain_scheme(&db));

    // A join over a streaming parallel scan: dropping or cancelling the
    // root mid-pull leaves morsel producers and probe fan-outs in flight
    // on the shared pool.
    let nested_plan = || {
        let pb = PlanBuilder::new();
        join(
            pb.scan("lineitem", &["l_orderkey", "l_extendedprice"], Vec::new()),
            pb.scan("orders", &["o_orderkey", "o_custkey"], Vec::new()),
            &[("l_orderkey", "o_orderkey")],
            None,
        )
    };

    // Warm-up at the widest width used below, then pin the baseline.
    let warm_ctx = QueryContext::with_parallel(Arc::clone(&sdb), nested_cfg(48));
    let mut op = plan_query(&warm_ctx, &nested_plan()).expect("plan");
    while op.next().expect("warm-up").is_some() {}
    drop(op);
    let spawned = WorkerPool::shared().stats().threads_spawned_total;

    // (a) Drop mid-stream: pull one batch, then drop the whole operator
    // tree while scan producers still hold in-flight morsels. The PR 5
    // cancel-on-drop machinery must drain them and the RAII memory
    // guards must release every tracked byte.
    let ctx = QueryContext::with_parallel(Arc::clone(&sdb), nested_cfg(48));
    let mut op = plan_query(&ctx, &nested_plan()).expect("plan");
    assert!(op.next().expect("first batch").is_some(), "join must yield rows");
    drop(op);
    assert_eq!(ctx.tracker.current(), 0, "drop mid-stream must release all tracked bytes");

    // (b) Cancel mid-stream: same shape, token tripped between batches;
    // the unwind is typed and equally leak-free.
    let token = CancelToken::new();
    let ctx =
        QueryContext::with_parallel(Arc::clone(&sdb), nested_cfg(48)).with_cancel(token.clone());
    let mut op = plan_query(&ctx, &nested_plan()).expect("plan");
    assert!(op.next().expect("first batch").is_some());
    token.cancel();
    let err = loop {
        match op.next() {
            Ok(Some(_)) => continue,
            Ok(None) => panic!("cancelled query must not complete normally"),
            Err(e) => break e,
        }
    };
    assert_eq!(err, ExecError::Cancelled);
    drop(op);
    assert_eq!(ctx.tracker.current(), 0, "cancel must release all tracked bytes");

    assert_eq!(
        WorkerPool::shared().stats().threads_spawned_total,
        spawned,
        "neither drop nor cancel may create OS threads"
    );
}
