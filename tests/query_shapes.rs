//! Structural validation of each TPC-H query's result on the BDCC scheme:
//! arity, orderings, domains and cardinality bounds that hold for any
//! generated instance at this scale. Complements `cross_scheme.rs` (which
//! proves the three schemes agree) by checking the answers are *sensible*,
//! not just consistent.

use std::sync::Arc;

use bdcc::prelude::*;
use bdcc_exec::{Batch, QueryContext};

fn run_all() -> Vec<(usize, Batch)> {
    let sf = 0.004;
    let db = bdcc::tpch::generate(&GenConfig::new(sf));
    let sdb = Arc::new(bdcc_scheme(&db, &DesignConfig::default()).unwrap());
    all_queries()
        .into_iter()
        .map(|q| {
            let ctx = QueryCtx::new(QueryContext::new(Arc::clone(&sdb)), sf);
            (q.id, (q.run)(&ctx).unwrap())
        })
        .collect()
}

fn get(results: &[(usize, Batch)], id: usize) -> &Batch {
    &results.iter().find(|(q, _)| *q == id).unwrap().1
}

#[test]
fn query_results_have_expected_shapes() {
    let results = run_all();

    // Q1: ≤ 6 (returnflag, linestatus) combinations, 10 columns, sorted.
    let q1 = get(&results, 1);
    assert!(q1.rows() >= 3 && q1.rows() <= 6);
    assert_eq!(q1.arity(), 10);
    let flags = q1.columns[0].as_str().unwrap();
    assert!(flags.windows(2).all(|w| w[0] <= w[1]));
    // avg_qty between 1 and 50 by construction.
    for &v in q1.columns[6].as_f64().unwrap() {
        assert!((1.0..=50.0).contains(&v));
    }

    // Q3: top-10 by revenue descending.
    let q3 = get(&results, 3);
    assert!(q3.rows() <= 10);
    let rev = q3.columns.last().unwrap().as_f64().unwrap();
    assert!(rev.windows(2).all(|w| w[0] >= w[1]));

    // Q4: at most the 5 priorities, counts positive.
    let q4 = get(&results, 4);
    assert!(q4.rows() <= 5 && q4.rows() >= 1);
    assert!(q4.columns[1].as_i64().unwrap().iter().all(|&c| c > 0));

    // Q5: ≤ 5 ASIA nations, revenue descending.
    let q5 = get(&results, 5);
    assert!(q5.rows() <= 5);
    let rev = q5.columns[1].as_f64().unwrap();
    assert!(rev.windows(2).all(|w| w[0] >= w[1]));

    // Q6: a single positive scalar.
    let q6 = get(&results, 6);
    assert_eq!((q6.rows(), q6.arity()), (1, 1));
    assert!(q6.columns[0].as_f64().unwrap()[0] > 0.0);

    // Q7: only FRANCE/GERMANY pairs in 1995/1996.
    let q7 = get(&results, 7);
    for r in 0..q7.rows() {
        let supp = q7.columns[0].as_str().unwrap()[r].clone();
        let cust = q7.columns[1].as_str().unwrap()[r].clone();
        assert_ne!(supp, cust);
        assert!(["FRANCE", "GERMANY"].contains(&supp.as_str()));
        let year = q7.columns[2].as_i64().unwrap()[r];
        assert!((1995..=1996).contains(&year));
    }

    // Q8: market share is a fraction per year.
    let q8 = get(&results, 8);
    for &share in q8.columns[1].as_f64().unwrap() {
        assert!((0.0..=1.0).contains(&share), "share {share}");
    }

    // Q10: top-20 customers, revenue desc.
    let q10 = get(&results, 10);
    assert!(q10.rows() <= 20);

    // Q12: exactly the two ship modes, high+low = total lines > 0.
    let q12 = get(&results, 12);
    assert!(q12.rows() <= 2);
    let modes = q12.columns[0].as_str().unwrap();
    assert!(modes.iter().all(|m| m == "MAIL" || m == "SHIP"));

    // Q13: distribution counts sum to the number of customers.
    let q13 = get(&results, 13);
    let total: i64 = q13.columns[1].as_i64().unwrap().iter().sum();
    assert_eq!(total, 600, "every customer appears once in the histogram");

    // Q14: promo share within 0..100.
    let q14 = get(&results, 14);
    let share = q14.columns[0].as_f64().unwrap()[0];
    assert!((0.0..=100.0).contains(&share));

    // Q15: the top supplier(s) all share the maximal revenue.
    let q15 = get(&results, 15);
    assert!(q15.rows() >= 1);
    let revs = q15.columns[4].as_f64().unwrap();
    assert!(revs.iter().all(|&r| (r - revs[0]).abs() < 1e-6));

    // Q16: supplier counts positive and ≤ total suppliers.
    let q16 = get(&results, 16);
    for &c in q16.columns[3].as_i64().unwrap() {
        assert!((1..=40).contains(&c));
    }

    // Q17: one scalar ≥ 0.
    let q17 = get(&results, 17);
    assert_eq!(q17.rows(), 1);

    // Q18: quantities above the threshold, ≤ 100 rows.
    let q18 = get(&results, 18);
    assert!(q18.rows() <= 100);
    for &q in q18.columns[5].as_f64().unwrap() {
        assert!(q > 250.0);
    }

    // Q21: numwait descending, supplier names well-formed.
    let q21 = get(&results, 21);
    let w = q21.columns[1].as_i64().unwrap();
    assert!(w.windows(2).all(|a| a[0] >= a[1]));
    for s in q21.columns[0].as_str().unwrap() {
        assert!(s.starts_with("Supplier#"));
    }

    // Q22: country codes from the fixed list, positive balances.
    let q22 = get(&results, 22);
    for r in 0..q22.rows() {
        let code = q22.columns[0].as_str().unwrap()[r].clone();
        assert!(["13", "31", "23", "29", "30", "18", "17"].contains(&code.as_str()));
        assert!(q22.columns[2].as_f64().unwrap()[r] > 0.0);
    }
}

#[test]
fn queries_are_deterministic_across_runs() {
    let a = run_all();
    let b = run_all();
    for ((ida, ba), (idb, bb)) in a.iter().zip(&b) {
        assert_eq!(ida, idb);
        assert_eq!(
            bdcc_exec::canonical_rows(ba),
            bdcc_exec::canonical_rows(bb),
            "Q{ida} must be deterministic"
        );
    }
}
