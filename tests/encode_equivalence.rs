//! Encoded-vs-raw equivalence: with block encodings on (`BDCC_ENCODE=1`,
//! the default) every TPC-H query must return results **byte-identical**
//! to the same query over unencoded storage, for each scheme, serial and
//! morsel-parallel — the compression-aware kernels and late
//! materialization may only change *how* blocks are evaluated, never what
//! a scan emits. On top of that, `EXPLAIN ANALYZE` must surface the
//! per-scan encoding annotations and the dict-miss skip counter.
//!
//! Everything lives in one test function because the encoding gate
//! (`set_encode_enabled`) is process-global and the harness runs tests in
//! one binary concurrently.
//!
//! The worker count honours `BDCC_THREADS` (default 4) and the morsel
//! size honours `BDCC_MORSEL_ROWS` (default 256), so CI can run the same
//! suite across a threads × morsel-size × `BDCC_ENCODE` matrix.

use std::sync::Arc;

use bdcc::prelude::*;
use bdcc_exec::{
    canonical_rows, explain_analyze, ColPredicate, Datum, ParallelConfig, PlanBuilder, ProfileNode,
    QueryContext,
};
use bdcc_storage::set_encode_enabled;

fn test_threads() -> usize {
    std::env::var("BDCC_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(4)
}

fn test_morsel_rows() -> usize {
    std::env::var("BDCC_MORSEL_ROWS").ok().and_then(|v| v.parse().ok()).unwrap_or(256)
}

/// Build the three schemes with the encode gate forced to `enabled`.
/// Generation is deterministic, so the raw and encoded databases hold the
/// same rows (asserted below) and any result difference is the kernels'.
fn schemes_with_gate(sf: f64, enabled: bool) -> Vec<Arc<SchemeDb>> {
    set_encode_enabled(Some(enabled));
    let db = bdcc::tpch::generate(&GenConfig::new(sf));
    let out = vec![
        Arc::new(plain_scheme(&db)),
        Arc::new(pk_scheme(&db).expect("pk scheme")),
        Arc::new(bdcc_scheme(&db, &DesignConfig::default()).expect("bdcc scheme")),
    ];
    set_encode_enabled(None);
    out
}

#[test]
fn encoded_scans_are_byte_identical_to_raw() {
    let sf = 0.002;
    let raw = schemes_with_gate(sf, false);
    let enc = schemes_with_gate(sf, true);

    // Same data, different physical representation.
    let raw_li = raw[0].db.stored_by_name("lineitem").expect("lineitem");
    let enc_li = enc[0].db.stored_by_name("lineitem").expect("lineitem");
    assert_eq!(
        raw_li.column_by_name("l_orderkey").unwrap(),
        enc_li.column_by_name("l_orderkey").unwrap(),
        "generation must be deterministic for the comparison to mean anything"
    );
    assert!(!raw_li.has_encodings(), "gate off must build no encodings");
    assert!(enc_li.has_encodings(), "lineitem must pick up block encodings");

    // The full query matrix: every query × every scheme, serial and
    // parallel, encoded vs raw — exact string equality, no tolerance.
    let par_cfg = ParallelConfig {
        threads: test_threads(),
        morsel_rows: test_morsel_rows(),
        agg_radix: ParallelConfig::agg_radix_from_env(),
    };
    let mut failures = Vec::new();
    for q in all_queries() {
        for (raw_sdb, enc_sdb) in raw.iter().zip(&enc) {
            for cfg in [None, Some(par_cfg.clone())] {
                let context = |sdb: &Arc<SchemeDb>| match &cfg {
                    None => QueryContext::new(Arc::clone(sdb)),
                    Some(c) => QueryContext::with_parallel(Arc::clone(sdb), c.clone()),
                };
                let mode = if cfg.is_some() { "parallel" } else { "serial" };
                let r = (q.run)(&QueryCtx::new(context(raw_sdb), sf));
                let e = (q.run)(&QueryCtx::new(context(enc_sdb), sf));
                match (r, e) {
                    (Ok(r), Ok(e)) => {
                        let (r, e) = (canonical_rows(&r), canonical_rows(&e));
                        if r != e {
                            failures.push(format!(
                                "{} on {} ({mode}): raw {} rows vs encoded {} rows; \
                                 first diff: {:?} vs {:?}",
                                q.name,
                                raw_sdb.scheme.name(),
                                r.len(),
                                e.len(),
                                r.iter().find(|row| !e.contains(row)),
                                e.iter().find(|row| !r.contains(row)),
                            ));
                        }
                    }
                    (Err(err), _) => failures.push(format!(
                        "{} raw failed on {} ({mode}): {err}",
                        q.name,
                        raw_sdb.scheme.name()
                    )),
                    (_, Err(err)) => failures.push(format!(
                        "{} encoded failed on {} ({mode}): {err}",
                        q.name,
                        enc_sdb.scheme.name()
                    )),
                }
            }
        }
    }
    assert!(failures.is_empty(), "encoded/raw disagreement:\n{}", failures.join("\n"));

    // EXPLAIN ANALYZE surfaces the encoding layer: per-column codec
    // annotations, encoded-vs-raw byte totals, and the dict-miss skip.
    // "CANOE" sits inside the MinMax range [AIR, TRUCK] of every shipmode
    // block, so only the dictionary can prove its absence.
    let plan = PlanBuilder::new().scan(
        "lineitem",
        &["l_orderkey", "l_shipmode"],
        vec![ColPredicate::eq("l_shipmode", Datum::Str("CANOE".into()))],
    );
    let ctx = QueryContext::new(Arc::clone(&enc[0]));
    let analyzed = explain_analyze(&ctx, &plan).expect("explain analyze");
    assert_eq!(analyzed.batch.rows(), 0, "CANOE is not a shipmode");
    let (mut saw_codec, mut saw_bytes, mut enc_skipped) = (false, false, 0u64);
    analyzed.profile.root.walk(&mut |node: &ProfileNode| {
        for (k, v) in &node.annotations {
            saw_codec |= k == "enc.l_shipmode" && v.contains("dict");
            saw_bytes |= k == "enc_bytes";
        }
        enc_skipped += node.enc_skipped;
    });
    assert!(saw_codec, "scan must annotate the shipmode codec mix");
    assert!(saw_bytes, "scan must annotate encoded byte totals");
    assert!(enc_skipped > 0, "every block must die of a dictionary miss");
    let rendered = analyzed.profile.render();
    assert!(rendered.contains("enc.l_shipmode"), "render must show the annotations:\n{rendered}");

    // The raw context must not pick up any of it.
    let ctx = QueryContext::new(Arc::clone(&raw[0]));
    let analyzed = explain_analyze(&ctx, &plan).expect("explain analyze");
    analyzed.profile.root.walk(&mut |node: &ProfileNode| {
        assert!(node.annotations.iter().all(|(k, _)| !k.starts_with("enc")));
        assert_eq!(node.enc_skipped, 0);
    });
}
