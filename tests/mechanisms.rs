//! Integration tests of the paper's three claimed mechanisms, end to end
//! on generated TPC-H data:
//!
//! 1. selection pushdown + propagation reduce bytes read,
//! 2. sandwich operators reduce peak query memory,
//! 3. the automatic design is robust: every query runs, and correlated
//!    (hierarchical) dimensions don't break the self-tuning.

use std::sync::Arc;

use bdcc::prelude::*;
use bdcc_exec::QueryContext;

fn setup() -> (f64, Arc<SchemeDb>, Arc<SchemeDb>) {
    let sf = 0.005;
    let db = bdcc::tpch::generate(&GenConfig::new(sf));
    let plain = Arc::new(plain_scheme(&db));
    let bdcc = Arc::new(bdcc_scheme(&db, &DesignConfig::default()).unwrap());
    (sf, plain, bdcc)
}

fn run(sdb: &Arc<SchemeDb>, sf: f64, id: usize) -> (u64, u64) {
    let q = all_queries().into_iter().find(|q| q.id == id).unwrap();
    let ctx = QueryCtx::new(QueryContext::new(Arc::clone(sdb)), sf);
    (q.run)(&ctx).unwrap();
    (ctx.qc.io.stats().bytes_read, ctx.qc.tracker.peak())
}

#[test]
fn pushdown_reduces_bytes_on_selective_star_joins() {
    let (sf, plain, bdcc) = setup();
    // Q5 (region + year) and Q7 (nation pair + ship years): selection
    // propagation prunes whole co-clusters of LINEITEM and ORDERS.
    for id in [5, 7] {
        let (pb, _) = run(&plain, sf, id);
        let (bb, _) = run(&bdcc, sf, id);
        assert!(
            (bb as f64) < 0.7 * pb as f64,
            "Q{id}: BDCC should read <70% of Plain's bytes ({bb} vs {pb})"
        );
    }
}

#[test]
fn q1_full_scan_sees_no_pushdown_win() {
    // The paper: "In Q01 there is no significant acceleration to be
    // achieved with indexing methods as it is a 95%-97% full scan".
    let (sf, plain, bdcc) = setup();
    let (pb, _) = run(&plain, sf, 1);
    let (bb, _) = run(&bdcc, sf, 1);
    let ratio = bb as f64 / pb as f64;
    assert!((0.85..=1.2).contains(&ratio), "Q1 bytes ratio {ratio} should be ~1");
}

#[test]
fn sandwich_operators_reduce_memory() {
    let (sf, plain, bdcc) = setup();
    // Q4 (semi join), Q12 (join to ORDERS), Q18 (big aggregation):
    // the paper's memory-reduction cases.
    for id in [4, 12, 18] {
        let (_, pm) = run(&plain, sf, id);
        let (_, bm) = run(&bdcc, sf, id);
        assert!(
            bm * 2 <= pm,
            "Q{id}: BDCC peak memory {bm} should be at most half of Plain's {pm}"
        );
    }
}

#[test]
fn correlated_shipdate_pruning_via_orderdate_clustering() {
    // Q6 selects on l_shipdate, which is not a dimension — the win comes
    // from MinMax blocks over the date-clustered layout (the paper's
    // Q6/Q12/Q20 observation).
    let (sf, plain, bdcc) = setup();
    let (pb, _) = run(&plain, sf, 6);
    let (bb, _) = run(&bdcc, sf, 6);
    assert!(
        (bb as f64) < pb as f64,
        "Q6: clustered layout should prune shipdate blocks ({bb} vs {pb})"
    );
}

#[test]
fn design_is_robust_across_the_full_query_set() {
    // "one BDCC schema without replication is sufficient": every query
    // must run on the automatic design without falling back to errors.
    let (sf, _, bdcc) = setup();
    for q in all_queries() {
        let ctx = QueryCtx::new(QueryContext::new(Arc::clone(&bdcc)), sf);
        (q.run)(&ctx).unwrap_or_else(|e| panic!("{} failed on BDCC: {e}", q.name));
    }
}

#[test]
fn hierarchical_dimension_does_not_break_self_tuning() {
    // D_NATION's compound key (regionkey, nationkey) is the paper's
    // hierarchical-dimension example; "puff pastry" must not hurt: the
    // count tables stay consistent and granularities positive for the
    // big tables.
    let sf = 0.005;
    let db = bdcc::tpch::generate(&GenConfig::new(sf));
    let sdb = bdcc_scheme(&db, &DesignConfig::default()).unwrap();
    let schema = sdb.bdcc.as_ref().unwrap();
    for (tid, bt) in &schema.tables {
        let name = db.catalog().table_name(*tid);
        let original = db.stored(*tid).unwrap().rows();
        assert_eq!(bt.count.total_rows(), original, "{name}: count table must cover all rows");
        assert_eq!(bt.logical_rows, original);
        if original > 10_000 {
            assert!(bt.granularity > 0, "{name}: large tables must actually cluster");
        }
    }
}

#[test]
fn equi_depth_binning_beats_equi_width_under_skew() {
    // The ablation DESIGN.md calls out: frequency-balanced binning keeps
    // group sizes even when the dimension values are skewed.
    use bdcc::core::{create_dimension, BinningConfig, DimId, KeyValue};
    use bdcc::storage::Datum;
    // Zipf-ish skew: value v appears ~ 1000/v times.
    let mut values = Vec::new();
    for v in 1i64..=100 {
        for _ in 0..(1000 / v) {
            values.push((KeyValue::single(Datum::Int(v)), 1u64));
        }
    }
    let mk = |strategy| {
        create_dimension(
            DimId(0),
            "D",
            bdcc::catalog::TableId(0),
            vec!["k".into()],
            values.clone(),
            &BinningConfig { max_bits: 3, strategy },
        )
        .unwrap()
    };
    let depth = mk(BinningStrategy::EquiDepth);
    let width = mk(BinningStrategy::EquiWidthByValue);
    let imbalance = |d: &bdcc::core::Dimension| {
        let max = d.bins.iter().map(|b| b.weight).max().unwrap() as f64;
        let avg = d.bins.iter().map(|b| b.weight).sum::<u64>() as f64 / d.bin_count() as f64;
        max / avg
    };
    assert!(
        imbalance(&depth) < imbalance(&width),
        "equi-depth {:.2} should be more balanced than equi-width {:.2}",
        imbalance(&depth),
        imbalance(&width)
    );
}
