//! Property tests of the flat allocation-free join index (`exec::hash`)
//! through the `HashJoin` operator: every join flavor must agree with a
//! naive nested-loop reference on random data, and the hash-partitioned
//! parallel build must be **byte-identical** to the serial one.

use proptest::prelude::*;

use bdcc::exec::batch::{Batch, ColMeta, OpSchema};
use bdcc::exec::ops::join::{HashJoin, JoinType};
use bdcc::exec::ops::{collect, Operator};
use bdcc::exec::{canonical_rows, Expr, MemoryTracker, ParallelConfig};
use bdcc::storage::{Column, DataType};

/// Chunked in-memory source of `(key, value)` rows.
struct Source {
    schema: OpSchema,
    batches: std::vec::IntoIter<Batch>,
}

impl Source {
    fn new(names: (&str, &str), rows: &[(i64, i64)], chunk: usize) -> Source {
        let schema =
            vec![ColMeta::new(names.0, DataType::Int), ColMeta::new(names.1, DataType::Int)];
        let batches: Vec<Batch> = rows
            .chunks(chunk.max(1))
            .map(|c| {
                Batch::new(vec![
                    Column::from_i64(c.iter().map(|r| r.0).collect()),
                    Column::from_i64(c.iter().map(|r| r.1).collect()),
                ])
            })
            .collect();
        Source { schema, batches: batches.into_iter() }
    }
}

impl Operator for Source {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }
    fn next(&mut self) -> Result<Option<Batch>, bdcc::exec::ExecError> {
        Ok(self.batches.next())
    }
}

fn run_join(
    left: &[(i64, i64)],
    right: &[(i64, i64)],
    jt: JoinType,
    residual: bool,
    parallel: Option<ParallelConfig>,
) -> Batch {
    let residual = residual.then(|| Expr::col("lv").le(Expr::col("rv")));
    let j = HashJoin::new(
        Box::new(Source::new(("lk", "lv"), left, 7)),
        Box::new(Source::new(("rk", "rv"), right, 5)),
        &[("lk", "rk")],
        jt,
        residual,
        MemoryTracker::new(),
    )
    .unwrap()
    .with_parallel(parallel);
    collect(Box::new(j)).unwrap()
}

/// Nested-loop reference: the same join semantics, computed row by row.
fn reference(left: &[(i64, i64)], right: &[(i64, i64)], jt: JoinType, residual: bool) -> Batch {
    let pair_passes = |l: &(i64, i64), r: &(i64, i64)| l.0 == r.0 && (!residual || l.1 <= r.1);
    let mut cols: Vec<Vec<i64>> = match jt {
        JoinType::Inner => vec![vec![]; 4],
        JoinType::LeftOuter => vec![vec![]; 5],
        JoinType::Semi | JoinType::Anti => vec![vec![]; 2],
    };
    for l in left {
        let matches: Vec<&(i64, i64)> = right.iter().filter(|r| pair_passes(l, r)).collect();
        match jt {
            JoinType::Inner => {
                for r in &matches {
                    cols[0].push(l.0);
                    cols[1].push(l.1);
                    cols[2].push(r.0);
                    cols[3].push(r.1);
                }
            }
            JoinType::LeftOuter => {
                if matches.is_empty() {
                    // Defaulted right columns + __matched = 0.
                    for (c, v) in [l.0, l.1, 0, 0, 0].into_iter().enumerate() {
                        cols[c].push(v);
                    }
                } else {
                    for r in &matches {
                        for (c, v) in [l.0, l.1, r.0, r.1, 1].into_iter().enumerate() {
                            cols[c].push(v);
                        }
                    }
                }
            }
            JoinType::Semi => {
                if !matches.is_empty() {
                    cols[0].push(l.0);
                    cols[1].push(l.1);
                }
            }
            JoinType::Anti => {
                if matches.is_empty() {
                    cols[0].push(l.0);
                    cols[1].push(l.1);
                }
            }
        }
    }
    Batch::new(cols.into_iter().map(Column::from_i64).collect())
}

const ALL_TYPES: [JoinType; 4] =
    [JoinType::Inner, JoinType::LeftOuter, JoinType::Semi, JoinType::Anti];

proptest! {
    /// Flat-table join == nested-loop reference, with and without a
    /// residual predicate, for every join flavor.
    #[test]
    fn flat_join_matches_nested_loop_reference(
        left in prop::collection::vec((0i64..12, -20i64..20), 1..50),
        right in prop::collection::vec((0i64..12, -20i64..20), 1..40),
        residual in any::<bool>(),
    ) {
        for jt in ALL_TYPES {
            let got = run_join(&left, &right, jt, residual, None);
            let want = reference(&left, &right, jt, residual);
            prop_assert_eq!(
                canonical_rows(&got),
                canonical_rows(&want),
                "{:?} residual={}", jt, residual
            );
        }
    }

    /// The hash-partitioned parallel build returns matches in the same
    /// order as the serial build — results are byte-identical, not just
    /// set-equal.
    #[test]
    fn partitioned_build_is_byte_identical(
        left in prop::collection::vec((0i64..8, -20i64..20), 1..60),
        right in prop::collection::vec((0i64..8, -20i64..20), 2..60),
        threads in 2usize..6,
    ) {
        // morsel_rows = 1 forces partitioning at any size.
        let cfg = ParallelConfig { threads, morsel_rows: 1, agg_radix: None };
        for jt in ALL_TYPES {
            let serial = run_join(&left, &right, jt, false, None);
            let parallel = run_join(&left, &right, jt, false, Some(cfg.clone()));
            prop_assert_eq!(&serial, &parallel, "{:?} threads={}", jt, threads);
        }
    }

    /// The morsel-parallel probe (rounds of left batches split into
    /// row-range probe morsels, match lists concatenated in morsel order)
    /// is **byte-identical** to the serial probe for every join flavor,
    /// with and without a residual predicate — residuals are evaluated
    /// per probe morsel, Semi/Anti without residual take the existence
    /// fast path, and none of it may change a single byte.
    #[test]
    fn parallel_probe_is_byte_identical(
        left in prop::collection::vec((0i64..10, -20i64..20), 1..120),
        right in prop::collection::vec((0i64..10, -20i64..20), 1..50),
        residual in any::<bool>(),
        threads in 2usize..6,
    ) {
        // Tiny morsels: every 7-row left batch splits into several probe
        // morsels and probe rounds span multiple batches.
        let cfg = ParallelConfig { threads, morsel_rows: 3, agg_radix: None };
        for jt in ALL_TYPES {
            let serial = run_join(&left, &right, jt, residual, None);
            let parallel = run_join(&left, &right, jt, residual, Some(cfg.clone()));
            prop_assert_eq!(
                &serial, &parallel,
                "{:?} residual={} threads={}", jt, residual, threads
            );
        }
    }

    /// Degenerate shapes: empty sides, all-equal keys (one fat chain).
    #[test]
    fn degenerate_key_distributions(
        n_left in 0usize..30,
        n_right in 0usize..30,
        key in -3i64..3,
    ) {
        let left: Vec<(i64, i64)> = (0..n_left as i64).map(|i| (key, i)).collect();
        let right: Vec<(i64, i64)> = (0..n_right as i64).map(|i| (key, -i)).collect();
        for jt in ALL_TYPES {
            let got = run_join(&left, &right, jt, false, None);
            let want = reference(&left, &right, jt, false);
            prop_assert_eq!(canonical_rows(&got), canonical_rows(&want), "{:?}", jt);
        }
    }
}
