//! Kernel-vs-interpreter equivalence for the selection-vector expression
//! engine (`bdcc_exec::kernel`).
//!
//! The compiled filter pipelines — fused typed conjunct kernels, adaptive
//! conjunct reordering, the interpreter fallback over gathered survivors —
//! may only change *how* a predicate is evaluated, never which rows pass:
//!
//! 1. A randomized oracle drives well-typed predicate trees (comparisons,
//!    BETWEEN, IN, LIKE, column-column, non-sargable arithmetic, And/Or/
//!    Not nesting) over batches with the nasty inputs (NaN, ±∞, -0.0,
//!    empty strings, empty and single-row batches) and asserts the
//!    compiled program's selection is **bit-identical** to
//!    `Expr::eval_bool`, including the filtered batch payloads.
//! 2. One compiled program streamed across enough batches to trip the
//!    adaptive reorder warmup must stay exact after permuting its order.
//! 3. The full TPC-H matrix — all 22 queries × 3 schemes × block
//!    encodings on/off × serial/parallel — must return byte-identical
//!    results with kernels on vs. off.
//! 4. `EXPLAIN ANALYZE` must annotate kernel-compiled filters with the
//!    leaf mix, per-conjunct selectivities and the chosen order, and stay
//!    silent with the kernel disabled.

use std::sync::Arc;

use bdcc::prelude::*;
use bdcc_exec::kernel::sel_from_bools;
use bdcc_exec::{
    canonical_rows, explain_analyze, filter, Batch, ColMeta, Datum, Expr, FilterProgram,
    LikePattern, ParallelConfig, PlanBuilder, ProfileNode, QueryContext,
};
use bdcc_storage::{set_encode_enabled, Column, DataType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn test_threads() -> usize {
    std::env::var("BDCC_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(4)
}

fn test_morsel_rows() -> usize {
    std::env::var("BDCC_MORSEL_ROWS").ok().and_then(|v| v.parse().ok()).unwrap_or(256)
}

fn oracle_schema() -> Vec<ColMeta> {
    vec![
        ColMeta::new("a", DataType::Int),
        ColMeta::new("f", DataType::Float),
        ColMeta::new("s", DataType::Str),
        ColMeta::new("d", DataType::Date),
        ColMeta::new("b", DataType::Int),
    ]
}

const STRINGS: [&str; 6] =
    ["", "PROMO anodized", "small BRASS", "MEDIUM POLISHED", "promo#2", "zinc"];

fn random_batch(rng: &mut StdRng, rows: usize) -> Batch {
    let f: Vec<f64> = (0..rows)
        .map(|_| match rng.random_range(0u32..16) {
            0 => f64::NAN,
            1 => -0.0,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            _ => rng.random_range(-400i64..400) as f64 / 8.0,
        })
        .collect();
    Batch::new(vec![
        Column::from_i64((0..rows).map(|_| rng.random_range(-20i64..20)).collect()),
        Column::from_f64(f),
        Column::from_strings(
            (0..rows).map(|_| STRINGS[rng.random_range(0..STRINGS.len())].to_string()).collect(),
        ),
        Column::from_dates((0..rows).map(|_| rng.random_range(8000i64..8200)).collect()),
        Column::from_i64((0..rows).map(|_| rng.random_range(-20i64..20)).collect()),
    ])
}

fn random_cmp(rng: &mut StdRng, a: Expr, b: Expr) -> Expr {
    match rng.random_range(0u32..6) {
        0 => a.eq(b),
        1 => a.ne(b),
        2 => a.lt(b),
        3 => a.le(b),
        4 => a.gt(b),
        _ => a.ge(b),
    }
}

fn random_leaf(rng: &mut StdRng) -> Expr {
    match rng.random_range(0u32..10) {
        0 => {
            let lit = Expr::lit(rng.random_range(-25i64..25));
            random_cmp(rng, Expr::col("a"), lit)
        }
        1 => {
            let lit = Expr::Lit(Datum::Date(rng.random_range(7990i64..8210)));
            random_cmp(rng, Expr::col("d"), lit)
        }
        2 => {
            let lit = Expr::lit(rng.random_range(-200i64..200) as f64 / 4.0);
            random_cmp(rng, Expr::col("f"), lit)
        }
        3 => {
            let lo = rng.random_range(-20i64..10);
            let hi = lo + rng.random_range(0i64..15);
            Expr::col("a").ge(Expr::lit(lo)).and(Expr::col("a").le(Expr::lit(hi)))
        }
        4 => Expr::col("a").in_list(
            (0..rng.random_range(1usize..6))
                .map(|_| Datum::Int(rng.random_range(-25i64..25)))
                .collect(),
        ),
        // Mixed-type IN list: the non-string literal is simply never a
        // member for a string column, not an error.
        5 => Expr::col("s").in_list(vec![
            Datum::Str(STRINGS[rng.random_range(0..STRINGS.len())].into()),
            Datum::Str("zinc".into()),
            Datum::Int(3),
        ]),
        6 => {
            let p = match rng.random_range(0u32..4) {
                0 => LikePattern::StartsWith("PROMO".into()),
                1 => LikePattern::EndsWith("ed".into()),
                2 => LikePattern::Contains("o".into()),
                _ => LikePattern::ContainsSeq("o".into(), "ed".into()),
            };
            if rng.random_bool(0.5) {
                Expr::col("s").like(p)
            } else {
                Expr::col("s").not_like(p)
            }
        }
        7 => random_cmp(rng, Expr::col("a"), Expr::col("b")),
        // Non-sargable arithmetic: compiles to the interpreter fallback
        // conjunct, evaluated over gathered survivors only.
        8 => {
            let shifted = Expr::col("a").add(Expr::lit(rng.random_range(-5i64..5)));
            let lit = Expr::lit(rng.random_range(-25i64..25));
            random_cmp(rng, shifted, lit)
        }
        _ => {
            let lit = Expr::lit(STRINGS[rng.random_range(0..STRINGS.len())]);
            random_cmp(rng, Expr::col("s"), lit)
        }
    }
}

fn random_pred(rng: &mut StdRng, depth: u32) -> Expr {
    if depth == 0 || rng.random_bool(0.4) {
        return random_leaf(rng);
    }
    match rng.random_range(0u32..4) {
        0 | 1 => random_pred(rng, depth - 1).and(random_pred(rng, depth - 1)),
        2 => random_pred(rng, depth - 1).or(random_pred(rng, depth - 1)),
        _ => random_pred(rng, depth - 1).not(),
    }
}

/// Randomized oracle: for every generated predicate and batch, the
/// compiled program must select exactly the rows `eval_bool` keeps, and
/// `SelVec::take` must reproduce `Batch::filter` bit-for-bit (compared
/// via `Debug` so NaN payloads count as equal to themselves).
#[test]
fn random_predicates_match_the_interpreter() {
    let schema = oracle_schema();
    let mut rng = StdRng::seed_from_u64(0xBDCC_0010);
    for case in 0..500 {
        let rows = match case % 7 {
            0 => 0,
            1 => 1,
            _ => rng.random_range(2usize..200),
        };
        let batch = random_batch(&mut rng, rows);
        let expr = random_pred(&mut rng, 3).bind(&schema).expect("well-typed");
        let program = FilterProgram::compile(&expr, &schema);
        let keep = expr.eval_bool(&batch).expect("well-typed eval");
        let sel = program.select(&batch).expect("kernel eval");
        assert_eq!(
            sel.to_rows(),
            sel_from_bools(&keep).to_rows(),
            "case {case}: selection mismatch for {expr:?}"
        );
        assert_eq!(
            format!("{:?}", sel.take(batch.clone())),
            format!("{:?}", batch.filter(&keep)),
            "case {case}: filtered payload mismatch for {expr:?}"
        );
    }
}

/// One long-lived program past its reorder warmup: the permuted conjunct
/// order must never change what is selected.
#[test]
fn adaptive_reorder_stays_exact_across_batches() {
    let schema = oracle_schema();
    // Expensive selective LIKE first in authored order: the reorderer has
    // something to gain by permuting, and statistics accumulate across
    // conjuncts with very different costs.
    let expr = Expr::col("s")
        .like(LikePattern::Contains("o".into()))
        .and(Expr::col("a").ge(Expr::lit(-5)))
        .and(Expr::col("f").lt(Expr::lit(20.0)))
        .bind(&schema)
        .expect("bound");
    let program = FilterProgram::compile(&expr, &schema);
    let mut rng = StdRng::seed_from_u64(0xBDCC_0011);
    // 40 × 128 rows ≫ the 1024-row warmup.
    for batch_no in 0..40 {
        let batch = random_batch(&mut rng, 128);
        let keep = expr.eval_bool(&batch).expect("eval");
        let sel = program.select(&batch).expect("kernel");
        assert_eq!(
            sel.to_rows(),
            sel_from_bools(&keep).to_rows(),
            "batch {batch_no} diverged after reordering"
        );
    }
}

/// Build the three schemes with the block-encoding gate forced.
fn schemes_with_encode(sf: f64, enabled: bool) -> Vec<Arc<SchemeDb>> {
    set_encode_enabled(Some(enabled));
    let db = bdcc::tpch::generate(&GenConfig::new(sf));
    let out = vec![
        Arc::new(plain_scheme(&db)),
        Arc::new(pk_scheme(&db).expect("pk scheme")),
        Arc::new(bdcc_scheme(&db, &DesignConfig::default()).expect("bdcc scheme")),
    ];
    set_encode_enabled(None);
    out
}

/// The full query matrix with kernels on vs. off, plus the EXPLAIN
/// ANALYZE annotation contract. The kernel choice is pinned per
/// `QueryContext` (no process-global toggling), so this coexists with
/// the other tests in this binary.
#[test]
fn query_matrix_is_byte_identical_with_kernels_on_and_off() {
    let sf = 0.002;
    let par_cfg = ParallelConfig {
        threads: test_threads(),
        morsel_rows: test_morsel_rows(),
        agg_radix: ParallelConfig::agg_radix_from_env(),
    };
    let mut failures = Vec::new();
    for encode in [true, false] {
        let schemes = schemes_with_encode(sf, encode);
        for q in all_queries() {
            for sdb in &schemes {
                for cfg in [None, Some(par_cfg.clone())] {
                    let run_with = |kernel: bool| {
                        let ctx = match &cfg {
                            None => QueryContext::new(Arc::clone(sdb)),
                            Some(c) => QueryContext::with_parallel(Arc::clone(sdb), c.clone()),
                        }
                        .with_kernel(kernel);
                        (q.run)(&QueryCtx::new(ctx, sf))
                    };
                    let mode = if cfg.is_some() { "parallel" } else { "serial" };
                    match (run_with(true), run_with(false)) {
                        (Ok(on), Ok(off)) => {
                            let (on, off) = (canonical_rows(&on), canonical_rows(&off));
                            if on != off {
                                failures.push(format!(
                                    "{} on {} (encode={encode}, {mode}): kernel {} rows vs \
                                     interpreter {} rows; first diff: {:?} vs {:?}",
                                    q.name,
                                    sdb.scheme.name(),
                                    on.len(),
                                    off.len(),
                                    on.iter().find(|row| !off.contains(row)),
                                    off.iter().find(|row| !on.contains(row)),
                                ));
                            }
                        }
                        (Err(err), _) => failures.push(format!(
                            "{} kernel-on failed on {} (encode={encode}, {mode}): {err}",
                            q.name,
                            sdb.scheme.name()
                        )),
                        (_, Err(err)) => failures.push(format!(
                            "{} kernel-off failed on {} (encode={encode}, {mode}): {err}",
                            q.name,
                            sdb.scheme.name()
                        )),
                    }
                }
            }
        }
    }
    assert!(failures.is_empty(), "kernel/interpreter disagreement:\n{}", failures.join("\n"));

    // EXPLAIN ANALYZE: a multi-conjunct filter must surface the kernel
    // annotations — leaf mix, per-conjunct selectivity, chosen order.
    let schemes = schemes_with_encode(sf, true);
    let plan = filter(
        PlanBuilder::new().scan(
            "lineitem",
            &["l_shipdate", "l_discount", "l_quantity", "l_extendedprice"],
            vec![],
        ),
        Expr::col("l_shipdate")
            .ge(Expr::lit(bdcc_storage::parse_date("1994-01-01").unwrap()))
            .and(
                Expr::col("l_shipdate")
                    .lt(Expr::lit(bdcc_storage::parse_date("1995-01-01").unwrap())),
            )
            .and(Expr::col("l_discount").ge(Expr::lit(0.05)))
            .and(Expr::col("l_discount").le(Expr::lit(0.07)))
            .and(Expr::col("l_quantity").lt(Expr::lit(24.0))),
    );
    let ctx = QueryContext::new(Arc::clone(&schemes[0])).with_kernel(true);
    let analyzed = explain_analyze(&ctx, &plan).expect("explain analyze");
    let (mut saw_kernel, mut saw_sel, mut saw_order) = (false, false, false);
    analyzed.profile.root.walk(&mut |node: &ProfileNode| {
        for (k, v) in &node.annotations {
            saw_kernel |= k == "kernel" && v.contains('k');
            saw_sel |= k == "kernel_sel";
            saw_order |= k == "kernel_order";
        }
    });
    assert!(saw_kernel, "filter must annotate its kernel/fallback leaf mix");
    assert!(saw_sel, "filter must annotate per-conjunct selectivities");
    assert!(saw_order, "multi-conjunct filter must annotate its chosen order");
    let rendered = analyzed.profile.render();
    assert!(rendered.contains("kernel"), "render must show kernel annotations:\n{rendered}");

    // With the kernel disabled, no kernel annotations may appear.
    let ctx = QueryContext::new(Arc::clone(&schemes[0])).with_kernel(false);
    let analyzed = explain_analyze(&ctx, &plan).expect("explain analyze");
    analyzed.profile.root.walk(&mut |node: &ProfileNode| {
        assert!(
            node.annotations.iter().all(|(k, _)| !k.starts_with("kernel")),
            "kernel-off run must not annotate kernels"
        );
    });
}
