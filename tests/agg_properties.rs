//! Property tests of the aggregation paths: random batches × random group
//! keys × every aggregate kind (Sum/Avg/Min/Max/Count/CountDistinct,
//! including the Neumaier-compensated float Sum/Avg), checked against a
//! naive HashMap reference, with three-way equivalence across execution
//! strategies:
//!
//! * **serial** (`HashAggregate`) must match the naive reference — values
//!   and first-seen group order;
//! * **radix-partitioned** (`ParallelAggregate` with `agg_radix` forced
//!   on) must be **bit-identical** to serial, floats included — each
//!   group's rows fold in serial stream order inside its one partition;
//! * **parallel-partial** (`agg_radix` forced off) must match serial
//!   exactly on group keys, group order and integer aggregates, and to
//!   ~1 ulp on compensated float sums (partials associate differently).
//!
//! Thread counts {1, 2, 4} and tiny morsels (`BDCC_MORSEL_ROWS`, default
//! 16, over 8-row storage blocks) force many-morsel fan-outs on
//! laptop-sized inputs.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use proptest::prelude::*;

use bdcc::exec::batch::Batch;
use bdcc::exec::ops::agg::HashAggregate;
use bdcc::exec::ops::scan::PlainScan;
use bdcc::exec::ops::{collect, BoxedOp};
use bdcc::exec::parallel::{FragmentBlueprint, ParallelAggregate, ScanBlueprint, ScanKind};
use bdcc::exec::{AggFunc, AggSpec, Expr, MemoryTracker, ParallelConfig};
use bdcc::storage::{Column, StoredTable};
use bdcc_storage::IoTracker;

/// Morsel size under test (`BDCC_MORSEL_ROWS`, default 16): small enough
/// that even a 30-row random input splits into several morsels.
fn test_morsel_rows() -> usize {
    std::env::var("BDCC_MORSEL_ROWS").ok().and_then(|v| v.parse().ok()).unwrap_or(16)
}

/// One random input row: integer group key, string-group selector, and an
/// integer measure (the float measure derives from it).
type Row = (i64, i64, i64);

/// The float measure of a row: an inexact decimal scale so float sums
/// actually exercise rounding (and the compensation), plus sign changes
/// for cancellation.
fn fval(v: i64) -> f64 {
    v as f64 * 0.1 - 0.55
}

fn build_table(rows: &[Row]) -> Arc<StoredTable> {
    let g: Vec<i64> = rows.iter().map(|r| r.0).collect();
    let s: Vec<String> = rows.iter().map(|r| format!("s{}", r.1)).collect();
    let v: Vec<i64> = rows.iter().map(|r| r.2).collect();
    let f: Vec<f64> = rows.iter().map(|r| fval(r.2)).collect();
    Arc::new(
        StoredTable::from_columns_with_block_rows(
            "t",
            vec![
                ("g".into(), Column::from_i64(g)),
                ("s".into(), Column::from_strings(s)),
                ("v".into(), Column::from_i64(v)),
                ("f".into(), Column::from_f64(f)),
            ],
            8, // tiny MinMax blocks → many morsels at tiny morsel sizes
        )
        .unwrap(),
    )
}

/// Every aggregate kind over the two measures.
fn all_aggs() -> Vec<AggSpec> {
    vec![
        AggSpec::new(AggFunc::Sum, Expr::col("v"), "sum_v"),
        AggSpec::new(AggFunc::Sum, Expr::col("f"), "sum_f"),
        AggSpec::new(AggFunc::Avg, Expr::col("f"), "avg_f"),
        AggSpec::new(AggFunc::Min, Expr::col("v"), "min_v"),
        AggSpec::new(AggFunc::Max, Expr::col("f"), "max_f"),
        AggSpec::new(AggFunc::Count, Expr::lit(1), "cnt"),
        AggSpec::new(AggFunc::CountDistinct, Expr::col("v"), "nd_v"),
    ]
}

const COLS: [&str; 4] = ["g", "s", "v", "f"];

fn serial(t: &Arc<StoredTable>, group_by: &[&str]) -> Batch {
    let scan: BoxedOp =
        Box::new(PlainScan::new(Arc::clone(t), IoTracker::new(), &COLS, vec![]).unwrap());
    collect(Box::new(HashAggregate::new(scan, group_by, all_aggs(), MemoryTracker::new()).unwrap()))
        .unwrap()
}

fn parallel(t: &Arc<StoredTable>, group_by: &[&str], threads: usize, radix: bool) -> Batch {
    let bp = ScanBlueprint {
        table: Arc::clone(t),
        columns: COLS.iter().map(|c| c.to_string()).collect(),
        predicates: vec![],
        kind: ScanKind::Plain,
        filter_kernel: bdcc_exec::kernel_enabled(),
    };
    let cfg = ParallelConfig { threads, morsel_rows: test_morsel_rows(), agg_radix: Some(radix) };
    collect(Box::new(
        ParallelAggregate::new(
            FragmentBlueprint { scan: bp, steps: vec![] },
            group_by,
            all_aggs(),
            IoTracker::new(),
            cfg,
            MemoryTracker::new(),
        )
        .unwrap(),
    ))
    .unwrap()
}

/// Naive reference state for one group.
#[derive(Default)]
struct RefState {
    sum_v: i64,
    sum_f: f64,
    n: u64,
    min_v: Option<i64>,
    max_f: Option<f64>,
    distinct: HashSet<i64>,
}

/// Naive reference: plain HashMap + first-seen order, scalar arithmetic.
fn reference<K: std::hash::Hash + Eq + Clone>(
    rows: &[Row],
    key_of: impl Fn(&Row) -> K,
) -> (Vec<K>, HashMap<K, RefState>) {
    let mut order = Vec::new();
    let mut states: HashMap<K, RefState> = HashMap::new();
    for r in rows {
        let k = key_of(r);
        let st = states.entry(k.clone()).or_insert_with(|| {
            order.push(k.clone());
            RefState::default()
        });
        st.sum_v += r.2;
        st.sum_f += fval(r.2);
        st.n += 1;
        st.min_v = Some(st.min_v.map_or(r.2, |m| m.min(r.2)));
        st.max_f = Some(st.max_f.map_or(fval(r.2), |m: f64| m.max(fval(r.2))));
        st.distinct.insert(r.2);
    }
    (order, states)
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// Assert `got` (group key columns first, then `all_aggs()` outputs)
/// matches the naive reference values in first-seen order.
fn assert_matches_reference<K: std::hash::Hash + Eq>(
    got: &Batch,
    key_cols: usize,
    order: &[K],
    states: &HashMap<K, RefState>,
    row_key: impl Fn(&Batch, usize) -> K,
) {
    assert_eq!(got.rows(), order.len(), "group count");
    let a = key_cols; // first aggregate column
    for (i, k) in order.iter().enumerate() {
        assert!(row_key(got, i) == *k, "group {i} out of first-seen order");
        let st = &states[k];
        assert_eq!(got.columns[a].as_i64().unwrap()[i], st.sum_v, "sum_v of group {i}");
        assert!(close(got.columns[a + 1].as_f64().unwrap()[i], st.sum_f), "sum_f of group {i}");
        assert!(
            close(got.columns[a + 2].as_f64().unwrap()[i], st.sum_f / st.n as f64),
            "avg_f of group {i}"
        );
        assert_eq!(got.columns[a + 3].as_i64().unwrap()[i], st.min_v.unwrap(), "min_v");
        assert_eq!(got.columns[a + 4].as_f64().unwrap()[i], st.max_f.unwrap(), "max_f");
        assert_eq!(got.columns[a + 5].as_i64().unwrap()[i], st.n as i64, "cnt");
        assert_eq!(got.columns[a + 6].as_i64().unwrap()[i], st.distinct.len() as i64, "nd_v");
    }
}

/// Partial-merge outputs may differ from serial by ~1 ulp on the
/// compensated float sum columns (different association); everything else
/// — group keys, group order, integer aggregates, min/max — must be
/// exactly equal.
fn assert_equivalent_modulo_float_ulp(serial: &Batch, partial: &Batch) {
    assert_eq!(serial.rows(), partial.rows());
    assert_eq!(serial.columns.len(), partial.columns.len());
    for (c, (s, p)) in serial.columns.iter().zip(&partial.columns).enumerate() {
        match (s.as_f64(), p.as_f64()) {
            (Ok(sv), Ok(pv)) => {
                for (i, (a, b)) in sv.iter().zip(pv).enumerate() {
                    assert!(close(*a, *b), "col {c} row {i}: {a} vs {b}");
                }
            }
            _ => assert_eq!(s, p, "col {c} must match exactly"),
        }
    }
}

proptest! {
    /// Integer group keys: serial == naive reference; radix is
    /// bit-identical to serial; parallel-partial matches modulo float
    /// association — across threads {1, 2, 4}.
    #[test]
    fn aggregation_strategies_agree_on_int_keys(
        rows in prop::collection::vec((0i64..15, 0i64..4, -50i64..50), 1..200),
    ) {
        let t = build_table(&rows);
        let s = serial(&t, &["g"]);
        let (order, states) = reference(&rows, |r| r.0);
        assert_matches_reference(&s, 1, &order, &states, |b, i| {
            b.columns[0].as_i64().unwrap()[i]
        });
        for threads in [1usize, 2, 4] {
            let radix = parallel(&t, &["g"], threads, true);
            prop_assert_eq!(&s, &radix, "radix must be bit-identical ({} threads)", threads);
            let partial = parallel(&t, &["g"], threads, false);
            assert_equivalent_modulo_float_ulp(&s, &partial);
        }
    }

    /// Composite (string, int) group keys route through the shared key
    /// codec; same three-way equivalence.
    #[test]
    fn aggregation_strategies_agree_on_composite_keys(
        rows in prop::collection::vec((0i64..6, 0i64..5, -50i64..50), 1..160),
        threads in 2usize..5,
    ) {
        let t = build_table(&rows);
        let s = serial(&t, &["s", "g"]);
        let (order, states) = reference(&rows, |r| (format!("s{}", r.1), r.0));
        assert_matches_reference(&s, 2, &order, &states, |b, i| {
            (
                b.columns[0].as_str().unwrap()[i].clone(),
                b.columns[1].as_i64().unwrap()[i],
            )
        });
        let radix = parallel(&t, &["s", "g"], threads, true);
        prop_assert_eq!(&s, &radix, "radix must be bit-identical ({} threads)", threads);
        let partial = parallel(&t, &["s", "g"], threads, false);
        assert_equivalent_modulo_float_ulp(&s, &partial);
    }

    /// Degenerate key distributions: a single group (everything collides
    /// into one partition) and all-distinct groups (per-row groups, the
    /// radix sweet spot) — plus the auto heuristic, which must agree with
    /// both forced paths whatever it picks.
    #[test]
    fn degenerate_group_distributions(
        n in 1usize..120,
        measure in -30i64..30,
        distinct in any::<bool>(),
        threads in 2usize..5,
    ) {
        let rows: Vec<Row> = (0..n as i64)
            .map(|i| (if distinct { i } else { 7 }, i % 3, measure + i % 11))
            .collect();
        let t = build_table(&rows);
        let s = serial(&t, &["g"]);
        let radix = parallel(&t, &["g"], threads, true);
        prop_assert_eq!(&s, &radix);
        let partial = parallel(&t, &["g"], threads, false);
        assert_equivalent_modulo_float_ulp(&s, &partial);
        // The heuristic path (auto): whatever it picks must still agree.
        let bp = ScanBlueprint {
            table: Arc::clone(&t),
            columns: COLS.iter().map(|c| c.to_string()).collect(),
            predicates: vec![],
            kind: ScanKind::Plain,
            filter_kernel: bdcc_exec::kernel_enabled(),
        };
        let cfg = ParallelConfig { threads, morsel_rows: test_morsel_rows(), agg_radix: None };
        let auto = collect(Box::new(
            ParallelAggregate::new(
                FragmentBlueprint { scan: bp, steps: vec![] },
                &["g"],
                all_aggs(),
                IoTracker::new(),
                cfg,
                MemoryTracker::new(),
            )
            .unwrap(),
        ))
        .unwrap();
        assert_equivalent_modulo_float_ulp(&s, &auto);
    }
}
