//! The load-bearing integration test: every TPC-H query must return the
//! *same result* under the Plain, PK and BDCC storage schemes. Plain is the
//! reference executor path (scan + hash join + hash aggregate); PK
//! exercises merge joins and streaming aggregation; BDCC exercises scatter
//! scans, bin-range pushdown/propagation and sandwich operators. Agreement
//! across all three validates the whole clustered machinery.

use std::sync::Arc;

use bdcc::prelude::*;
use bdcc_exec::QueryContext;

fn schemes() -> (f64, Vec<Arc<SchemeDb>>) {
    let sf = 0.003;
    let db = bdcc::tpch::generate(&GenConfig::new(sf));
    let plain = Arc::new(plain_scheme(&db));
    let pk = Arc::new(pk_scheme(&db).expect("pk scheme"));
    let bdcc = Arc::new(bdcc_scheme(&db, &DesignConfig::default()).expect("bdcc scheme"));
    (sf, vec![plain, pk, bdcc])
}

#[test]
fn all_queries_agree_across_schemes() {
    let (sf, sdbs) = schemes();
    let mut failures = Vec::new();
    for q in all_queries() {
        let mut results = Vec::new();
        for sdb in &sdbs {
            let ctx = QueryCtx::new(QueryContext::new(Arc::clone(sdb)), sf);
            match (q.run)(&ctx) {
                Ok(batch) => results.push((sdb.scheme.name(), canonical_rows(&batch))),
                Err(e) => {
                    failures.push(format!("{} failed on {}: {e}", q.name, sdb.scheme.name()));
                    results.clear();
                    break;
                }
            }
        }
        if results.len() == 3 {
            let (base_name, base) = &results[0];
            for (name, rows) in &results[1..] {
                if rows != base {
                    failures.push(format!(
                        "{}: {} returned {} rows vs {} {} rows; first diff: {:?} vs {:?}",
                        q.name,
                        name,
                        rows.len(),
                        base_name,
                        base.len(),
                        rows.iter().find(|r| !base.contains(r)),
                        base.iter().find(|r| !rows.contains(r)),
                    ));
                }
            }
            // Queries should not be trivially empty at this scale — an
            // all-empty result usually means a broken predicate. Q2/Q20 can
            // legitimately be empty at tiny scale factors.
            if base.is_empty() && ![2, 20].contains(&q.id) {
                failures.push(format!("{} returned no rows on any scheme", q.name));
            }
        }
    }
    assert!(failures.is_empty(), "cross-scheme mismatches:\n{}", failures.join("\n"));
}
