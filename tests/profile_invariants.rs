//! The observability layer's contract, tested across an execution-config
//! matrix: profiling must *observe, never participate*. For every
//! thread-count × morsel-size × aggregation-strategy configuration, a
//! profiled run returns byte-identical results to an unprofiled run of
//! the same context, and the collected [`QueryProfile`] obeys the
//! conservation laws the edge-wrapper design promises:
//!
//! * a parent's rows/batches **in** equal the sum of its children's
//!   rows/batches **out** (every batch crosses exactly one plan edge);
//! * a scan's morsel row count sums to its output rows (each pool morsel
//!   is booked exactly once);
//! * no operator's peak tracked memory exceeds the query peak (operator
//!   trackers are children of the query tracker);
//! * the root's output is the result batch;
//! * strategy decisions are recorded, and honour a pinned `agg_radix`.

use std::sync::Arc;

use bdcc::prelude::*;
use bdcc_exec::{
    aggregate, canonical_rows, explain_analyze, join, run_plan, sort, AggFunc, AggSpec, Expr,
    FkSide, Node, ParallelConfig, PlanBuilder, ProfileNode, QueryContext, QueryProfile, SortKey,
};

fn scheme_db() -> Arc<SchemeDb> {
    let db = bdcc::tpch::generate(&GenConfig::new(0.002));
    Arc::new(bdcc_scheme(&db, &DesignConfig::default()).expect("bdcc scheme"))
}

/// Join + aggregation + top-N: scan, hash/sandwich join, hash aggregate
/// and sort all appear in the profile tree.
fn join_agg_plan() -> Node {
    let b = PlanBuilder::new();
    let orders = b.scan("orders", &["o_orderkey", "o_orderpriority"], vec![]);
    let lineitem = b.scan("lineitem", &["l_orderkey", "l_quantity", "l_extendedprice"], vec![]);
    let lo =
        join(lineitem, orders, &[("l_orderkey", "o_orderkey")], Some(("FK_L_O", FkSide::Left)));
    let agg = aggregate(
        lo,
        &["o_orderpriority"],
        vec![
            AggSpec::new(AggFunc::Sum, Expr::col("l_extendedprice"), "revenue"),
            AggSpec::new(AggFunc::Count, Expr::lit(1), "n"),
        ],
    );
    sort(agg, vec![SortKey::desc("revenue")], Some(3))
}

/// Aggregation straight over a scan — the shape the planner collapses
/// into a [`ParallelAggregate`] fragment, where the `agg_radix` pin and
/// the strategy annotations apply.
fn scan_agg_plan() -> Node {
    let b = PlanBuilder::new();
    let lineitem = b.scan("lineitem", &["l_partkey", "l_quantity"], vec![]);
    aggregate(
        lineitem,
        &["l_partkey"],
        vec![
            AggSpec::new(AggFunc::Sum, Expr::col("l_quantity"), "sq"),
            AggSpec::new(AggFunc::Count, Expr::lit(1), "n"),
        ],
    )
}

/// Every execution configuration under test: serial, plus parallel cells
/// over morsel sizes and both pinned aggregation strategies (the pin is a
/// no-op at 1 worker, so serial runs once per morsel size).
fn configs() -> Vec<Option<ParallelConfig>> {
    let mut out = vec![None];
    for &morsel_rows in &[256usize, 48] {
        out.push(Some(ParallelConfig { threads: 1, morsel_rows, agg_radix: None }));
        for agg_radix in [Some(true), Some(false)] {
            out.push(Some(ParallelConfig { threads: 4, morsel_rows, agg_radix }));
        }
    }
    out
}

fn context(sdb: &Arc<SchemeDb>, cfg: &Option<ParallelConfig>) -> QueryContext {
    match cfg {
        None => QueryContext::new(Arc::clone(sdb)),
        Some(c) => QueryContext::with_parallel(Arc::clone(sdb), c.clone()),
    }
}

/// The conservation laws, checked over the whole tree.
fn check_tree(profile: &QueryProfile) {
    profile.root.walk(&mut |node: &ProfileNode| {
        if !node.children.is_empty() {
            let rows: u64 = node.children.iter().map(|c| c.rows_out).sum();
            let batches: u64 = node.children.iter().map(|c| c.batches_out).sum();
            assert_eq!(node.rows_in, rows, "{}: rows in ≠ Σ children rows out", node.label);
            assert_eq!(node.batches_in, batches, "{}: batches in ≠ Σ children out", node.label);
        }
        if node.label.starts_with("Scan") && node.morsels > 0 {
            assert_eq!(
                node.morsel_rows, node.rows_out,
                "{}: morsel rows must sum to scan output rows",
                node.label
            );
        }
        assert!(
            node.peak_memory <= profile.peak_memory,
            "{}: operator peak {} above query peak {}",
            node.label,
            node.peak_memory,
            profile.peak_memory
        );
    });
}

#[test]
fn profiled_runs_are_identical_and_profiles_conserve() {
    let sdb = scheme_db();
    for (name, plan) in [("join_agg", join_agg_plan()), ("scan_agg", scan_agg_plan())] {
        for cfg in configs() {
            let ctx = context(&sdb, &cfg);
            let plain = run_plan(&ctx, &plan).expect("unprofiled run");
            let analyzed = explain_analyze(&ctx, &plan).expect("explain analyze");
            // Byte-identical, not merely equivalent: the full debug
            // rendering includes every column value bit-for-bit.
            assert_eq!(
                format!("{plain:?}"),
                format!("{:?}", analyzed.batch),
                "{name} under {cfg:?}: profiling changed the result"
            );
            assert_eq!(canonical_rows(&plain), canonical_rows(&analyzed.batch));

            let profile = &analyzed.profile;
            assert_eq!(
                profile.root.rows_out as usize,
                analyzed.batch.rows(),
                "{name} under {cfg:?}: root rows out must be the result rows"
            );
            check_tree(profile);
        }
    }
}

#[test]
fn pinned_aggregation_strategy_is_recorded() {
    let sdb = scheme_db();
    let plan = scan_agg_plan();
    for (pin, expect) in [(Some(true), "radix"), (Some(false), "partial-merge")] {
        let cfg = ParallelConfig { threads: 4, morsel_rows: 256, agg_radix: pin };
        let ctx = QueryContext::with_parallel(Arc::clone(&sdb), cfg);
        let analyzed = explain_analyze(&ctx, &plan).expect("explain analyze");
        let mut seen = Vec::new();
        analyzed.profile.root.walk(&mut |node: &ProfileNode| {
            if node.label.starts_with("Aggregate(parallel)") {
                seen.push(node.annotations.clone());
            }
        });
        assert!(!seen.is_empty(), "parallel plan must contain a parallel aggregate");
        for ann in &seen {
            let get = |k: &str| {
                ann.iter().find(|(n, _)| n == k).map(|(_, v)| v.as_str()).unwrap_or_default()
            };
            assert_eq!(get("strategy"), expect, "pin {pin:?} must decide the strategy");
            assert_eq!(get("strategy_source"), "pinned");
        }
    }
}

/// Without `BDCC_PROFILE` or `with_profiling`, a context carries no
/// profiler — the disabled path allocates nothing and wraps nothing.
#[test]
fn profiling_is_off_by_default() {
    if std::env::var_os("BDCC_PROFILE").is_some() {
        return; // environment pinned it on; nothing to assert here
    }
    let sdb = scheme_db();
    assert!(QueryContext::new(Arc::clone(&sdb)).profiler.is_none());
    assert!(QueryContext::new(sdb).with_profiling().profiler.is_some());
}
