//! Robustness of the concurrent serving layer: admission control under
//! overload, per-query deadlines/budgets/cancellation, panic containment
//! and fault-injection survival — every failure typed, every byte
//! released, the process and the worker pool alive throughout.
//!
//! The injector here is installed per-server (operator checkpoints), not
//! process-global: these tests share their process with the rest of the
//! workspace test binary, and a global injector would fire inside
//! unrelated tests' pool jobs.

use std::sync::Arc;
use std::time::Duration;

use bdcc::prelude::*;
use bdcc_exec::parallel::pool::WorkerPool;
use bdcc_exec::{
    canonical_rows, run_plan, ExecError, ParallelConfig, PlanBuilder, QueryContext, QueryOptions,
    ServeError, Server, ServerConfig,
};
use bdcc_pool::{FaultInjector, FaultPlan};

fn bdcc_sdb(sf: f64) -> Arc<SchemeDb> {
    let db = bdcc::tpch::generate(&GenConfig::new(sf));
    Arc::new(bdcc_scheme(&db, &DesignConfig::default()).expect("bdcc scheme"))
}

fn parallel_cfg() -> Option<ParallelConfig> {
    Some(ParallelConfig { threads: 4, morsel_rows: 64, agg_radix: None })
}

fn query(id: usize) -> bdcc_tpch::Query {
    all_queries().into_iter().find(|q| q.id == id).expect("known query")
}

/// Serial canonical reference for one query.
fn reference(sdb: &Arc<SchemeDb>, sf: f64, id: usize) -> Vec<String> {
    let ctx = QueryCtx::new(QueryContext::new(Arc::clone(sdb)), sf);
    canonical_rows(&(query(id).run)(&ctx).expect("serial reference"))
}

#[test]
fn overload_is_typed_and_admitted_queries_all_finish() {
    let sf = 0.002;
    let sdb = bdcc_sdb(sf);
    let server = Arc::new(Server::new(
        Arc::clone(&sdb),
        ServerConfig {
            max_concurrent: 2,
            queue_depth: 2,
            parallel: parallel_cfg(),
            ..ServerConfig::default()
        },
    ));
    let expect = Arc::new(reference(&sdb, sf, 3));
    let clients: Vec<_> = (0..16)
        .map(|_| {
            let server = Arc::clone(&server);
            let expect = Arc::clone(&expect);
            std::thread::spawn(move || {
                let run = query(3).run;
                match server.submit(move |qc| run(&QueryCtx::new(qc.clone(), sf))) {
                    Ok(h) => {
                        let out = h.wait().expect("admitted query completes");
                        assert_eq!(canonical_rows(&out.batch), *expect);
                        true
                    }
                    Err(ServeError::Overloaded { queued, depth, .. }) => {
                        assert!(queued >= depth, "bounced only at capacity");
                        false
                    }
                    Err(other) => panic!("unexpected submit error: {other}"),
                }
            })
        })
        .collect();
    let admitted = clients.into_iter().map(|c| c.join().expect("client")).filter(|&a| a).count();
    let m = server.metrics();
    assert_eq!(m.admitted.get(), admitted as u64);
    assert_eq!(m.admitted.get() + m.rejected.get(), 16);
    assert_eq!(m.finished(), m.admitted.get());
    assert_eq!(server.memory().current(), 0);
}

#[test]
fn cancel_mid_run_releases_memory_and_spawns_no_threads() {
    let sf = 0.004;
    let sdb = bdcc_sdb(sf);
    let server = Server::new(
        Arc::clone(&sdb),
        ServerConfig { max_concurrent: 2, parallel: parallel_cfg(), ..ServerConfig::default() },
    );
    // Warm-up through the server so the pool is at width before the
    // spawn-counter baseline is taken.
    let warm = query(3).run;
    server.submit(move |qc| warm(&QueryCtx::new(qc.clone(), sf))).unwrap().wait().unwrap();
    let spawned_before = WorkerPool::shared().stats().threads_spawned_total;

    // The job reruns a join-heavy query until a governance checkpoint
    // trips — guaranteed to be *mid-execution* when cancel() lands.
    let started = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let s2 = Arc::clone(&started);
    let run = query(3).run;
    let handle = server
        .submit(move |qc| {
            let ctx = QueryCtx::new(qc.clone(), sf);
            loop {
                run(&ctx)?;
                s2.store(true, std::sync::atomic::Ordering::Release);
            }
        })
        .unwrap();
    while !started.load(std::sync::atomic::Ordering::Acquire) {
        std::thread::yield_now();
    }
    handle.cancel();
    // In-flight morsels unwind; the typed reason survives the fan-out.
    match handle.wait() {
        Err(ServeError::Exec(ExecError::Cancelled)) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    assert_eq!(server.metrics().cancelled.get(), 1);
    assert_eq!(server.memory().current(), 0, "cancel must release every tracked byte");
    assert_eq!(
        WorkerPool::shared().stats().threads_spawned_total,
        spawned_before,
        "cancellation must not cost OS threads"
    );
    // The pool and the session both serve the next query normally.
    let again = query(6).run;
    let out =
        server.submit(move |qc| again(&QueryCtx::new(qc.clone(), sf))).unwrap().wait().unwrap();
    assert_eq!(canonical_rows(&out.batch), reference(&sdb, sf, 6));
}

#[test]
fn budget_fails_only_the_greedy_query() {
    let sf = 0.002;
    let sdb = bdcc_sdb(sf);
    let server = Server::new(
        Arc::clone(&sdb),
        ServerConfig { max_concurrent: 2, parallel: parallel_cfg(), ..ServerConfig::default() },
    );
    // Q18 materializes a large build side — 1 byte of budget cannot hold.
    let greedy = query(18).run;
    let starved = server
        .submit_with(QueryOptions { deadline: None, budget: Some(1) }, move |qc| {
            greedy(&QueryCtx::new(qc.clone(), sf))
        })
        .unwrap();
    // A budget-free peer in the same server must be unaffected.
    let peer = query(6).run;
    let fine = server.submit(move |qc| peer(&QueryCtx::new(qc.clone(), sf))).unwrap();
    match starved.wait() {
        Err(ServeError::Exec(ExecError::BudgetExceeded { used, budget })) => {
            assert_eq!(budget, 1);
            assert!(used > 1);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    let out = fine.wait().expect("peer unaffected by sibling's budget");
    assert_eq!(canonical_rows(&out.batch), reference(&sdb, sf, 6));
    assert_eq!(server.metrics().budget_exceeded.get(), 1);
    assert_eq!(server.memory().current(), 0);
}

#[test]
fn expired_deadline_is_typed_even_when_queued() {
    let sf = 0.002;
    let sdb = bdcc_sdb(sf);
    let server = Server::new(
        Arc::clone(&sdb),
        ServerConfig {
            max_concurrent: 1,
            default_deadline: Some(Duration::ZERO),
            parallel: parallel_cfg(),
            ..ServerConfig::default()
        },
    );
    // The deadline is fixed at submit time and charges queue wait, so an
    // already-expired deadline fails at the first checkpoint.
    let h = server.submit_plan(PlanBuilder::new().scan("orders", &["o_orderkey"], Vec::new()));
    match h.unwrap().wait() {
        Err(ServeError::Exec(ExecError::DeadlineExceeded)) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // Overriding per query lifts the server default.
    let h = server
        .submit_with(
            QueryOptions { deadline: Some(Duration::from_secs(60)), budget: None },
            move |qc| run_plan(qc, &PlanBuilder::new().scan("orders", &["o_orderkey"], Vec::new())),
        )
        .unwrap();
    assert!(h.wait().is_ok());
}

#[test]
fn fault_injection_stress_survives_with_typed_failures() {
    let sf = 0.002;
    let sdb = bdcc_sdb(sf);
    // Aggressive mix: ~5% errors, ~1% panics, ~5% delays per checkpoint.
    let plan = FaultPlan::parse("delay=0.05,delay_us=100,err=0.05,panic=0.01,seed=7").unwrap();
    let injector = Arc::new(FaultInjector::new(plan));
    let server = Arc::new(Server::new(
        Arc::clone(&sdb),
        ServerConfig {
            max_concurrent: 4,
            queue_depth: 64,
            parallel: parallel_cfg(),
            injector: Some(Arc::clone(&injector)),
            ..ServerConfig::default()
        },
    ));
    // Suppress the default panic printer for expected injected panics on
    // session/worker threads only (hook is process-wide; scope it).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let t = std::thread::current();
        let name = t.name().unwrap_or("");
        if name.starts_with("bdcc-session") || name.starts_with("bdcc-worker") {
            return;
        }
        default_hook(info);
    }));

    let mix = [1usize, 3, 6, 12];
    let refs: Vec<(usize, Vec<String>)> =
        mix.iter().map(|&id| (id, reference(&sdb, sf, id))).collect();
    let refs = Arc::new(refs);
    let clients: Vec<_> = (0..8)
        .map(|c| {
            let server = Arc::clone(&server);
            let refs = Arc::clone(&refs);
            std::thread::spawn(move || {
                let (mut ok, mut faulted) = (0u32, 0u32);
                for i in 0..6 {
                    let (qid, expect) = &refs[(c + i) % refs.len()];
                    let run = query(*qid).run;
                    let handle = loop {
                        match server.submit(move |qc| run(&QueryCtx::new(qc.clone(), sf))) {
                            Ok(h) => break h,
                            Err(ServeError::Overloaded { .. }) => {
                                std::thread::sleep(Duration::from_millis(1))
                            }
                            Err(other) => panic!("unexpected submit error: {other}"),
                        }
                    };
                    match handle.wait() {
                        // Non-faulted queries stay byte-identical under fire.
                        Ok(out) => {
                            assert_eq!(&canonical_rows(&out.batch), expect, "q{qid}");
                            ok += 1;
                        }
                        // Faults must arrive typed, never as aborts or hangs.
                        Err(ServeError::Exec(_) | ServeError::Panicked(_)) => faulted += 1,
                        Err(other) => panic!("untyped failure: {other}"),
                    }
                }
                (ok, faulted)
            })
        })
        .collect();
    let (mut ok, mut faulted) = (0u32, 0u32);
    for c in clients {
        let (o, f) = c.join().expect("client must not die");
        ok += o;
        faulted += f;
    }
    let _ = std::panic::take_hook(); // restore default printing
    let (delays, errors, panics) = injector.counts();
    assert_eq!(ok + faulted, 48);
    assert!(
        errors + panics > 0,
        "stress must actually inject (delays {delays}, errors {errors}, panics {panics})"
    );
    let m = server.metrics();
    assert_eq!(m.finished(), m.admitted.get(), "every admitted query reached a terminal state");
    assert_eq!(server.memory().current(), 0, "all tracked bytes released under injection");
    // The server still works once the storm passes.
    let run = query(6).run;
    let out = server.submit(move |qc| run(&QueryCtx::new(qc.clone(), sf))).unwrap().wait();
    match out {
        Ok(out) => assert_eq!(canonical_rows(&out.batch), refs[2].1),
        // The per-server injector is still installed, so even this query
        // may fault — but only ever typed.
        Err(ServeError::Exec(_) | ServeError::Panicked(_)) => {}
        Err(other) => panic!("untyped failure after storm: {other}"),
    }
}
