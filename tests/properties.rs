//! Property-based tests of the BDCC invariants (Definitions 1–4 and
//! Algorithm 1), using proptest over randomized dimensions, masks and
//! tables.

use std::sync::Arc;

use proptest::prelude::*;

use bdcc::catalog::{Catalog, ColumnDef, Database, TableDef};
use bdcc::core::{
    assign_masks, cluster_table, create_dimension, gather_bits, scatter_bits, truncate_mask,
    BinningConfig, BinningStrategy, CountTable, DimId, Dimension, GranularityHistograms,
    InterleaveStrategy, KeyValue, SelfTuneConfig, UseBits, BDCC_COLUMN,
};
use bdcc::storage::{Column, DataType, Datum, TableBuilder};

fn kv(v: i64) -> KeyValue {
    KeyValue::single(Datum::Int(v))
}

fn make_dimension(values: &[i64], max_bits: u32, strategy: BinningStrategy) -> Dimension {
    create_dimension(
        DimId(0),
        "D",
        bdcc::catalog::TableId(0),
        vec!["k".into()],
        values.iter().map(|&v| (kv(v), 1)).collect(),
        &BinningConfig { max_bits, strategy },
    )
    .expect("non-empty input")
}

proptest! {
    /// Definition 1: the binning is order-respecting and surjective —
    /// every input value maps to a bin, and larger values never map to
    /// smaller bins.
    #[test]
    fn dimension_mapping_is_monotone_and_total(
        mut values in prop::collection::vec(-1000i64..1000, 1..200),
        max_bits in 1u32..8,
        equi_depth in any::<bool>(),
    ) {
        let strategy = if equi_depth {
            BinningStrategy::EquiDepth
        } else {
            BinningStrategy::EquiWidthByValue
        };
        let dim = make_dimension(&values, max_bits, strategy);
        prop_assert!(dim.bin_count() <= 1 << max_bits);
        prop_assert!(dim.bits() <= max_bits);
        values.sort_unstable();
        let mut prev = 0u64;
        for v in values {
            let b = dim.bin_of(&kv(v));
            prop_assert!(b >= prev, "bin numbering must be monotone");
            prop_assert!((b as usize) < dim.bin_count());
            prev = b;
        }
    }

    /// Definition 1(vii): reducing granularity merges bins but preserves
    /// the mapping up to the chopped bits.
    #[test]
    fn granularity_reduction_is_prefix_consistent(
        values in prop::collection::vec(0i64..500, 2..150),
        g in 0u32..4,
    ) {
        let dim = make_dimension(&values, 6, BinningStrategy::EquiDepth);
        let g = g.min(dim.bits());
        let reduced = dim.reduce_granularity(g).expect("g <= bits");
        let shift = dim.bits() - g;
        for &v in &values {
            let fine = dim.bin_of(&kv(v));
            let coarse = reduced.bin_of(&kv(v));
            prop_assert_eq!(coarse, fine >> shift);
        }
    }

    /// Scatter/gather over any mask round-trips the major bits of the bin
    /// number (Definition 4 and the scatter-scan inverse).
    #[test]
    fn scatter_gather_roundtrip(bin in 0u64..8192, mask in any::<u64>(), bin_bits in 1u32..14) {
        let bin = bin & ((1 << bin_bits) - 1);
        let v = scatter_bits(bin, bin_bits, mask);
        // Non-mask positions stay clear.
        prop_assert_eq!(v & !mask, 0);
        let taken = mask.count_ones().min(bin_bits);
        let expect = if taken == 0 { 0 } else { bin >> (bin_bits - taken) };
        // Gather returns exactly the major bits that were scattered (in
        // the high positions of the gathered value when the mask is wider
        // than the bin).
        let gathered = gather_bits(v, mask);
        let extra = mask.count_ones() - taken;
        prop_assert_eq!(gathered >> extra, expect);
    }

    /// Algorithm 1(i): any mix of uses yields disjoint masks covering all
    /// bits, each with exactly its dimension's granularity, under all
    /// three strategies.
    #[test]
    fn mask_assignment_invariants(
        dims in prop::collection::vec((1u32..8, prop::option::of(0usize..4)), 1..6),
        strat in 0usize..3,
    ) {
        let total: u32 = dims.iter().map(|(b, _)| b).sum();
        prop_assume!(total <= 64);
        let uses: Vec<UseBits> = dims
            .iter()
            .map(|&(dim_bits, fk_group)| UseBits { dim_bits, fk_group })
            .collect();
        let strategy = [
            InterleaveStrategy::RoundRobinPerUse,
            InterleaveStrategy::RoundRobinPerFk,
            InterleaveStrategy::MajorMinor,
        ][strat];
        let (masks, bits) = assign_masks(&uses, strategy);
        prop_assert_eq!(bits, total);
        let mut union = 0u64;
        for (i, &m) in masks.iter().enumerate() {
            prop_assert_eq!(union & m, 0);
            union |= m;
            prop_assert_eq!(m.count_ones(), uses[i].dim_bits);
        }
        prop_assert_eq!(union, if total == 64 { u64::MAX } else { (1 << total) - 1 });
        // Truncation keeps masks disjoint at any granularity.
        for g in 0..=total {
            let mut u = 0u64;
            for &m in &masks {
                let t = truncate_mask(m, total, g);
                prop_assert_eq!(u & t, 0);
                u |= t;
            }
        }
    }

    /// The count table partitions the table: counts sum to the
    /// cardinality, groups are key-ordered and non-overlapping.
    #[test]
    fn count_table_partitions_rows(
        mut keys in prop::collection::vec(0u64..256, 0..300),
        granularity in 0u32..9,
    ) {
        keys.sort_unstable();
        let ct = CountTable::from_sorted_keys(&keys, 8, granularity.min(8)).expect("valid");
        prop_assert_eq!(ct.total_rows(), keys.len());
        let mut covered = 0;
        for g in ct.iter() {
            prop_assert_eq!(g.start, covered, "groups must tile the table");
            covered += g.count;
        }
        for w in ct.groups.windows(2) {
            prop_assert!(w[0].key < w[1].key);
        }
    }

    /// The histogram cascade conserves rows at every granularity.
    #[test]
    fn histogram_cascade_conserves_rows(
        mut keys in prop::collection::vec(0u64..1024, 1..400),
    ) {
        keys.sort_unstable();
        let h = GranularityHistograms::from_sorted_keys(&keys, 10);
        for g in 0..=10u32 {
            // Sum over buckets of (count × representative size) can't be
            // checked exactly from a log histogram, but group counts must
            // be monotone non-increasing as granularity coarsens…
            if g > 0 {
                prop_assert!(h.groups_at(g) >= h.groups_at(g - 1));
            }
        }
        prop_assert_eq!(h.groups_at(0), 1);
    }

    /// Algorithm 1 end-to-end on a random two-dimension table: the stored
    /// table is sorted on `_bdcc_`, every logical row is visible through
    /// the count table exactly once, and every row's clustering key
    /// matches a manual recomputation.
    #[test]
    fn cluster_table_preserves_rows_and_sorts(
        rows in prop::collection::vec((0i64..16, 0i64..16), 1..300),
    ) {
        let mut cat = Catalog::new();
        let t = cat
            .create_table(TableDef {
                name: "f".into(),
                columns: vec![
                    ColumnDef { name: "a".into(), data_type: DataType::Int },
                    ColumnDef { name: "b".into(), data_type: DataType::Int },
                ],
                primary_key: vec![],
            })
            .expect("table");
        let mut db = Database::new(cat);
        let a: Vec<i64> = rows.iter().map(|r| r.0).collect();
        let b: Vec<i64> = rows.iter().map(|r| r.1).collect();
        db.attach(
            t,
            Arc::new(
                TableBuilder::new("f")
                    .column("a", Column::from_i64(a.clone()))
                    .column("b", Column::from_i64(b.clone()))
                    .build()
                    .expect("storage"),
            ),
        );
        let mk = |vals: &[i64], key: &str| {
            create_dimension(
                DimId(0),
                "D",
                t,
                vec![key.into()],
                vals.iter().map(|&v| (kv(v), 1)).collect(),
                &BinningConfig::default(),
            )
            .expect("dimension")
        };
        let mut d0 = mk(&a, "a");
        let mut d1 = mk(&b, "b");
        d0.id = DimId(0);
        d1.id = DimId(1);
        let dims = vec![d0, d1];
        let cfg = SelfTuneConfig { ar_bytes: 1, ..Default::default() };
        let bt = cluster_table(
            &db,
            t,
            &[(DimId(0), vec![]), (DimId(1), vec![])],
            &dims,
            &cfg,
        )
        .expect("cluster");
        // Every logical row exactly once through the count table.
        prop_assert_eq!(bt.count.total_rows(), rows.len());
        // The _bdcc_ value of each stored row matches recomputation.
        let stored = &bt.table;
        let keys = stored.column_by_name(BDCC_COLUMN).expect("bdcc col").as_i64().expect("ints").to_vec();
        let sa = stored.column_by_name("a").expect("a").as_i64().expect("ints").to_vec();
        let sb = stored.column_by_name("b").expect("b").as_i64().expect("ints").to_vec();
        for g in bt.count.iter() {
            for r in g.start..g.start + g.count {
                let expect = scatter_bits(dims[0].bin_of(&kv(sa[r])), dims[0].bits(), bt.uses[0].mask)
                    | scatter_bits(dims[1].bin_of(&kv(sb[r])), dims[1].bits(), bt.uses[1].mask);
                prop_assert_eq!(keys[r] as u64, expect);
                // Group membership: the truncated key matches.
                prop_assert_eq!(expect >> (bt.total_bits - bt.granularity), g.key);
            }
        }
        // Multiset of (a, b) pairs is preserved through the count table.
        let mut original = rows.clone();
        let mut seen: Vec<(i64, i64)> = bt
            .count
            .iter()
            .flat_map(|g| (g.start..g.start + g.count).map(|r| (sa[r], sb[r])))
            .collect();
        original.sort_unstable();
        seen.sort_unstable();
        prop_assert_eq!(original, seen);
    }

    /// Prefix predicates on composite keys always select a contiguous,
    /// correct bin range (the paper's region→nation trick).
    #[test]
    fn composite_prefix_ranges_are_sound(
        pairs in prop::collection::vec((0i64..6, 0i64..50), 1..120),
        probe in 0i64..6,
    ) {
        let values: Vec<(KeyValue, u64)> = pairs
            .iter()
            .map(|&(r, n)| (KeyValue(vec![Datum::Int(r), Datum::Int(n)]), 1))
            .collect();
        let dim = create_dimension(
            DimId(0),
            "D",
            bdcc::catalog::TableId(0),
            vec!["region".into(), "nation".into()],
            values,
            &BinningConfig { max_bits: 5, strategy: BinningStrategy::EquiDepth },
        )
        .expect("dimension");
        let prefix = KeyValue(vec![Datum::Int(probe)]);
        let range = dim.bin_range(Some(&prefix), Some(&prefix));
        // Soundness: every pair with region == probe falls inside.
        for &(r, n) in &pairs {
            if r == probe {
                let b = dim.bin_of(&KeyValue(vec![Datum::Int(r), Datum::Int(n)]));
                let (lo, hi) = range.expect("matching value ⇒ non-empty range");
                prop_assert!(b >= lo && b <= hi, "bin {} outside [{}, {}]", b, lo, hi);
            }
        }
    }
}
