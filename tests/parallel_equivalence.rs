//! The parallel-execution counterpart of `cross_scheme.rs`: every TPC-H
//! query must return **identical** results under morsel-driven parallel
//! execution and serial execution, for each of the three storage schemes.
//! The morsel size is forced far below the defaults so that every table
//! splits into many morsels and all the merge paths (ordered concat,
//! partial-aggregate fold, partitioned join build, per-run sort + stable
//! k-way merge) actually run: with threads > 1 the planner swaps every
//! `Sort` for a `ParallelSort` and every big-enough hash-join build for
//! the hash-partitioned parallel build.
//!
//! The worker count honours `BDCC_THREADS` (default 4) and the morsel
//! size honours `BDCC_MORSEL_ROWS` (default 256) so CI can run the same
//! suite across a threads × morsel-size matrix in release mode.

use std::sync::Arc;

use bdcc::prelude::*;
use bdcc_exec::ops::agg::HashAggregate;
use bdcc_exec::ops::bdcc_scan::GroupSpec;
use bdcc_exec::ops::collect;
use bdcc_exec::ops::scan::PlainScan;
use bdcc_exec::parallel::morsel::{split_blocks, split_groups, Morsel};
use bdcc_exec::parallel::{
    FragmentBlueprint, ParallelAggregate, ParallelScan, ScanBlueprint, ScanKind,
};
use bdcc_exec::{AggFunc, AggSpec, Expr, MemoryTracker, ParallelConfig, QueryContext};
use bdcc_storage::IoTracker;

/// Worker count under test: `BDCC_THREADS`, default 4 (1 exercises the
/// serial planning paths end to end).
fn test_threads() -> usize {
    std::env::var("BDCC_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(4)
}

/// Morsel size under test: `BDCC_MORSEL_ROWS`, default 256 — small enough
/// that even SF 0.002 tables split into dozens of morsels and every join
/// build side beyond it goes partitioned (CI also runs a tiny-morsel
/// configuration to stress probe-morsel splitting).
fn test_morsel_rows() -> usize {
    std::env::var("BDCC_MORSEL_ROWS").ok().and_then(|v| v.parse().ok()).unwrap_or(256)
}

fn schemes() -> (f64, Vec<Arc<SchemeDb>>) {
    let sf = 0.002;
    let db = bdcc::tpch::generate(&GenConfig::new(sf));
    let plain = Arc::new(plain_scheme(&db));
    let pk = Arc::new(pk_scheme(&db).expect("pk scheme"));
    let bdcc = Arc::new(bdcc_scheme(&db, &DesignConfig::default()).expect("bdcc scheme"));
    (sf, vec![plain, pk, bdcc])
}

/// Row-wise comparison of two canonical row sets that treats float fields
/// numerically: serial and parallel compensated sums are each within ~1 ulp
/// of the true value but associate differently, and a 1-ulp difference can
/// flip the last printed digit exactly on a decimal rounding boundary. A
/// tiny relative tolerance keeps the suite from ever failing on such a
/// boundary artifact while still catching any real divergence.
fn rows_equivalent(a: &[String], b: &[String]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).all(|(ra, rb)| {
        let (fa, fb): (Vec<&str>, Vec<&str>) = (ra.split('|').collect(), rb.split('|').collect());
        fa.len() == fb.len()
            && fa.iter().zip(&fb).all(|(x, y)| {
                if x == y {
                    return true;
                }
                match (x.parse::<f64>(), y.parse::<f64>()) {
                    (Ok(vx), Ok(vy)) => (vx - vy).abs() <= 1e-9 * vx.abs().max(vy.abs()).max(1.0),
                    _ => false,
                }
            })
    })
}

#[test]
fn all_queries_parallel_equals_serial_on_all_schemes() {
    let (sf, sdbs) = schemes();
    let par_cfg = ParallelConfig {
        threads: test_threads(),
        morsel_rows: test_morsel_rows(),
        agg_radix: ParallelConfig::agg_radix_from_env(),
    };
    let mut failures = Vec::new();
    for q in all_queries() {
        for sdb in &sdbs {
            let serial_ctx = QueryCtx::new(QueryContext::new(Arc::clone(sdb)), sf);
            let par_ctx =
                QueryCtx::new(QueryContext::with_parallel(Arc::clone(sdb), par_cfg.clone()), sf);
            let serial = (q.run)(&serial_ctx);
            let parallel = (q.run)(&par_ctx);
            match (serial, parallel) {
                (Ok(s), Ok(p)) => {
                    let (s, p) = (canonical_rows(&s), canonical_rows(&p));
                    if !rows_equivalent(&s, &p) {
                        failures.push(format!(
                            "{} on {}: serial {} rows vs parallel {} rows; first diff: {:?} vs {:?}",
                            q.name,
                            sdb.scheme.name(),
                            s.len(),
                            p.len(),
                            s.iter().find(|r| !p.contains(r)),
                            p.iter().find(|r| !s.contains(r)),
                        ));
                    }
                }
                (Err(e), _) => {
                    failures.push(format!("{} serial failed on {}: {e}", q.name, sdb.scheme.name()))
                }
                (_, Err(e)) => failures.push(format!(
                    "{} parallel failed on {}: {e}",
                    q.name,
                    sdb.scheme.name()
                )),
            }
        }
    }
    assert!(failures.is_empty(), "parallel/serial disagreement:\n{}", failures.join("\n"));
}

#[test]
fn tiny_morsels_force_partitioned_joins_and_many_sort_runs() {
    // 32-row morsels push essentially every hash-join build through the
    // partitioned path and split every sort into many runs; join- and
    // sort-heavy queries must still match serial execution exactly.
    let (sf, sdbs) = schemes();
    let par_cfg = ParallelConfig {
        threads: test_threads().max(2),
        morsel_rows: 32,
        agg_radix: ParallelConfig::agg_radix_from_env(),
    };
    let heavy = [2usize, 3, 10, 13, 18, 21];
    let mut failures = Vec::new();
    for q in all_queries().into_iter().filter(|q| heavy.contains(&q.id)) {
        for sdb in &sdbs {
            let serial = (q.run)(&QueryCtx::new(QueryContext::new(Arc::clone(sdb)), sf));
            let parallel = (q.run)(&QueryCtx::new(
                QueryContext::with_parallel(Arc::clone(sdb), par_cfg.clone()),
                sf,
            ));
            match (serial, parallel) {
                (Ok(s), Ok(p)) => {
                    let (s, p) = (canonical_rows(&s), canonical_rows(&p));
                    if !rows_equivalent(&s, &p) {
                        failures.push(format!("{} on {}", q.name, sdb.scheme.name()));
                    }
                }
                (Err(e), _) | (_, Err(e)) => {
                    failures.push(format!("{} on {}: {e}", q.name, sdb.scheme.name()))
                }
            }
        }
    }
    assert!(failures.is_empty(), "tiny-morsel disagreement: {}", failures.join(", "));
}

#[test]
fn probe_morsel_matrix_agrees_with_serial() {
    // The parallel-probe matrix: tiny probe morsels × worker counts
    // {1, BDCC_THREADS} × all three schemes, over the join-heavy queries
    // (probe rounds split into many row-range morsels; Semi/Anti take the
    // existence fast path; the sandwich join fans out oversized groups).
    let (sf, sdbs) = schemes();
    let heavy = [3usize, 4, 10, 18, 21, 22]; // inner, semi, anti, outer probes
    let mut failures = Vec::new();
    for threads in [1, test_threads().max(2)] {
        for morsel_rows in [16, 64] {
            let cfg = ParallelConfig {
                threads,
                morsel_rows,
                agg_radix: ParallelConfig::agg_radix_from_env(),
            };
            for q in all_queries().into_iter().filter(|q| heavy.contains(&q.id)) {
                for sdb in &sdbs {
                    let serial = (q.run)(&QueryCtx::new(QueryContext::new(Arc::clone(sdb)), sf));
                    let parallel = (q.run)(&QueryCtx::new(
                        QueryContext::with_parallel(Arc::clone(sdb), cfg.clone()),
                        sf,
                    ));
                    match (serial, parallel) {
                        (Ok(s), Ok(p)) => {
                            let (s, p) = (canonical_rows(&s), canonical_rows(&p));
                            if !rows_equivalent(&s, &p) {
                                failures.push(format!(
                                    "{} on {} ({threads}t, {morsel_rows}-row morsels)",
                                    q.name,
                                    sdb.scheme.name()
                                ));
                            }
                        }
                        (Err(e), _) | (_, Err(e)) => failures.push(format!(
                            "{} on {} ({threads}t, {morsel_rows}-row morsels): {e}",
                            q.name,
                            sdb.scheme.name()
                        )),
                    }
                }
            }
        }
    }
    assert!(failures.is_empty(), "probe-morsel disagreement: {}", failures.join(", "));
}

#[test]
fn streaming_scan_memory_stays_morsel_bounded() {
    // Scan the largest generated table (LINEITEM) through the streaming
    // ParallelScan: the bounded reorder buffer must keep peak *tracked*
    // memory at O(threads × morsel), not O(table) — the whole point of
    // replacing the eager materialization.
    let db = bdcc::tpch::generate(&GenConfig::new(0.005));
    let li = db.stored_by_name("lineitem").expect("lineitem stored");
    // Rebuild with small blocks so the table splits into many morsels
    // (morsels take whole MinMax blocks).
    let named: Vec<(String, Column)> = li
        .schema()
        .columns
        .iter()
        .enumerate()
        .map(|(i, m)| (m.name.clone(), li.column(i).unwrap().as_ref().clone()))
        .collect();
    let cols: Vec<String> = named.iter().map(|(n, _)| n.clone()).collect();
    let small = Arc::new(
        StoredTable::from_columns_with_block_rows("lineitem", named, 256).expect("rebuild"),
    );
    let blueprint = |t: &Arc<StoredTable>| ScanBlueprint {
        table: Arc::clone(t),
        columns: cols.clone(),
        predicates: vec![],
        kind: ScanKind::Plain,
        filter_kernel: bdcc_exec::kernel_enabled(),
    };
    let serial =
        collect(blueprint(&small).build(&IoTracker::new(), None).expect("serial scan")).unwrap();
    let table_bytes = serial.estimated_bytes();
    // Clamp the worker count: the in-flight cap grows with threads
    // (O(threads) morsels) while the table's morsel count is fixed, so an
    // unclamped BDCC_THREADS (say 16) would make the "far below the whole
    // table" half of the assertion meaningless, not wrong.
    let threads = test_threads().clamp(2, 4);
    let morsel_rows = 256;
    let cfg = ParallelConfig { threads, morsel_rows, agg_radix: None };
    let tracker = MemoryTracker::new();
    let streamed = collect(Box::new(
        ParallelScan::new(blueprint(&small), IoTracker::new(), cfg, tracker.clone()).unwrap(),
    ))
    .unwrap();
    assert_eq!(serial, streamed, "streaming scan must replay the serial stream");
    let morsels = small.rows().div_ceil(morsel_rows);
    assert!(morsels >= 32, "need many morsels for the bound to mean anything, got {morsels}");
    assert!(tracker.peak() > 0, "streaming scan must register in-flight morsels");
    // In-flight cap is O(threads) morsels; allow generous slack (guards
    // release as the consumer drains, estimates are approximate) while
    // still ruling out whole-table materialization.
    let per_morsel = table_bytes / morsels as u64;
    let bound = (4 * threads as u64 + 4) * per_morsel;
    assert!(
        tracker.peak() <= bound && tracker.peak() * 4 <= table_bytes,
        "peak {} exceeds morsel bound {} (table {}, {} morsels)",
        tracker.peak(),
        bound,
        table_bytes,
        morsels
    );
}

#[test]
fn radix_aggregation_beats_partials_on_high_cardinality_groups() {
    // The high-cardinality group-by matrix: per-key groups (one group per
    // ORDERS key / per PART key) over LINEITEM rebuilt with small blocks
    // and a *shuffled* row order, so group keys scatter across morsels —
    // the workload where every morsel's partial re-materializes most
    // groups it touches and the partial fold holds ~O(rows) states. The
    // radix path must (a) stay byte-identical to serial, and (b) show
    // strictly lower peak *tracked* memory than the partial-merge path
    // on the same workload (its phase-1 row materialization is cheaper
    // than per-morsel group-state duplication).
    let db = bdcc::tpch::generate(&GenConfig::new(0.005));
    let li = db.stored_by_name("lineitem").expect("lineitem stored");
    let rows = li.rows();
    // Deterministic shuffle: a multiplicative permutation (stride coprime
    // to the row count).
    let stride = (0..).map(|k| rows / 2 + 17 + k).find(|s| gcd(*s, rows) == 1).unwrap();
    let perm: Vec<usize> = (0..rows).map(|i| (i * stride) % rows).collect();
    let cols = ["l_orderkey", "l_partkey", "l_extendedprice", "l_quantity"];
    let named: Vec<(String, Column)> = cols
        .iter()
        .map(|c| (c.to_string(), li.column_by_name(c).expect("column").gather(&perm)))
        .collect();
    let small = Arc::new(
        StoredTable::from_columns_with_block_rows("lineitem", named, 256).expect("rebuild"),
    );
    let aggs = vec![
        AggSpec::new(AggFunc::Sum, Expr::col("l_extendedprice"), "rev"),
        AggSpec::new(AggFunc::Avg, Expr::col("l_quantity"), "aq"),
        AggSpec::new(AggFunc::Count, Expr::lit(1), "n"),
    ];
    let blueprint = || ScanBlueprint {
        table: Arc::clone(&small),
        columns: cols.iter().map(|c| c.to_string()).collect(),
        predicates: vec![],
        kind: ScanKind::Plain,
        filter_kernel: bdcc_exec::kernel_enabled(),
    };
    let run_parallel = |group: &str, threads: usize, radix: bool| {
        let tracker = MemoryTracker::new();
        let cfg = ParallelConfig { threads, morsel_rows: 256, agg_radix: Some(radix) };
        let out = collect(Box::new(
            ParallelAggregate::new(
                FragmentBlueprint { scan: blueprint(), steps: vec![] },
                &[group],
                aggs.clone(),
                IoTracker::new(),
                cfg,
                tracker.clone(),
            )
            .unwrap(),
        ))
        .unwrap();
        (out, tracker.peak())
    };
    for group in ["l_orderkey", "l_partkey"] {
        let scan =
            Box::new(PlainScan::new(Arc::clone(&small), IoTracker::new(), &cols, vec![]).unwrap());
        let serial = collect(Box::new(
            HashAggregate::new(scan, &[group], aggs.clone(), MemoryTracker::new()).unwrap(),
        ))
        .unwrap();
        assert!(serial.rows() > 500, "need a fine-grained group-by, got {}", serial.rows());
        for threads in [2, 4] {
            let (radix_out, radix_peak) = run_parallel(group, threads, true);
            assert_eq!(
                serial, radix_out,
                "radix must be byte-identical to serial ({group}, {threads} threads)"
            );
            let (partial_out, partial_peak) = run_parallel(group, threads, false);
            assert!(
                rows_equivalent(&canonical_rows(&serial), &canonical_rows(&partial_out)),
                "partial-merge must agree with serial ({group}, {threads} threads)"
            );
            assert!(
                radix_peak < partial_peak,
                "radix peak {radix_peak} must undercut partial-merge peak {partial_peak} \
                 ({group}, {threads} threads, {} groups)",
                serial.rows()
            );
        }
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[test]
fn single_thread_config_plans_serially_and_agrees() {
    // threads = 1 must take the serial paths (worth_splitting is false)
    // and still produce the same answers.
    let (sf, sdbs) = schemes();
    let cfg = ParallelConfig { threads: 1, morsel_rows: 256, agg_radix: None };
    let q6 = all_queries().into_iter().find(|q| q.id == 6).unwrap();
    for sdb in &sdbs {
        let serial = (q6.run)(&QueryCtx::new(QueryContext::new(Arc::clone(sdb)), sf)).unwrap();
        let one =
            (q6.run)(&QueryCtx::new(QueryContext::with_parallel(Arc::clone(sdb), cfg.clone()), sf))
                .unwrap();
        assert_eq!(canonical_rows(&serial), canonical_rows(&one));
    }
}

// --- morsel-splitting edge cases over the public API ----------------------

fn group(start: usize, count: usize) -> GroupSpec {
    GroupSpec { start, count, group_keys: vec![] }
}

#[test]
fn morsel_splitting_handles_uneven_groups() {
    // Wildly uneven group sizes: a huge group stays whole (groups are
    // indivisible), tiny ones coalesce, order and coverage are preserved.
    let sizes = [3usize, 1, 1, 5000, 2, 900, 1, 1, 1, 1];
    let mut start = 0;
    let groups: Vec<GroupSpec> = sizes
        .iter()
        .map(|&c| {
            let g = group(start, c);
            start += c;
            g
        })
        .collect();
    let morsels = split_groups(&groups, 1000);
    let mut covered = Vec::new();
    for m in &morsels {
        match m {
            Morsel::Groups(r) => covered.extend(r.clone()),
            _ => panic!("group split yielded a block morsel"),
        }
    }
    assert_eq!(covered, (0..groups.len()).collect::<Vec<_>>(), "must tile all groups in order");
    // The oversized group closes its morsel immediately; the tail of tiny
    // groups never reaches the budget and coalesces into the final morsel.
    assert_eq!(morsels, vec![Morsel::Groups(0..4), Morsel::Groups(4..10)]);
}

#[test]
fn morsel_splitting_one_row_and_empty() {
    // Empty table: no morsels, parallel scan degenerates gracefully.
    assert!(split_groups(&[], 1024).is_empty());
    assert!(split_blocks(0, 4096, 1024).is_empty());
    // One-row table: exactly one morsel covering it.
    assert_eq!(split_groups(&[group(0, 1)], 1024), vec![Morsel::Groups(0..1)]);
    assert_eq!(split_blocks(1, 4096, 1024), vec![Morsel::Blocks(0..1)]);
}
