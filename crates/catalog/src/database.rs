//! A catalog plus the physical tables it describes.

use std::collections::HashMap;
use std::sync::Arc;

use bdcc_storage::StoredTable;

use crate::catalog::{Catalog, CatalogError, TableId};

/// A database instance: schema metadata plus stored (physical) tables.
///
/// Different storage schemes (Plain, PK-ordered, BDCC) are different
/// `Database` values over the same catalog — each holds its own physical
/// re-organization of the data.
#[derive(Debug, Clone, Default)]
pub struct Database {
    catalog: Catalog,
    tables: HashMap<TableId, Arc<StoredTable>>,
}

impl Database {
    /// A database over `catalog` with no stored tables yet.
    pub fn new(catalog: Catalog) -> Database {
        Database { catalog, tables: HashMap::new() }
    }

    /// The schema metadata.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog (DDL phase only).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Attach physical storage for a table.
    pub fn attach(&mut self, id: TableId, table: Arc<StoredTable>) {
        self.tables.insert(id, table);
    }

    /// Physical storage by table id.
    pub fn stored(&self, id: TableId) -> Option<&Arc<StoredTable>> {
        self.tables.get(&id)
    }

    /// Physical storage by table name.
    pub fn stored_by_name(&self, name: &str) -> Result<&Arc<StoredTable>, CatalogError> {
        let id = self.catalog.table_id(name)?;
        self.tables
            .get(&id)
            .ok_or_else(|| CatalogError::UnknownTable(format!("{name} (no storage attached)")))
    }

    /// Ids of all tables with storage attached.
    pub fn attached(&self) -> impl Iterator<Item = TableId> + '_ {
        self.tables.keys().copied()
    }

    /// Total rows across all attached tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.rows()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColumnDef, TableDef};
    use bdcc_storage::{Column, DataType, TableBuilder};

    #[test]
    fn attach_and_lookup() {
        let mut cat = Catalog::new();
        let id = cat
            .create_table(TableDef {
                name: "t".into(),
                columns: vec![ColumnDef { name: "k".into(), data_type: DataType::Int }],
                primary_key: vec!["k".into()],
            })
            .unwrap();
        let mut db = Database::new(cat);
        assert!(db.stored_by_name("t").is_err());
        let stored =
            TableBuilder::new("t").column("k", Column::from_i64(vec![1, 2])).build().unwrap();
        db.attach(id, Arc::new(stored));
        assert_eq!(db.stored_by_name("t").unwrap().rows(), 2);
        assert_eq!(db.total_rows(), 2);
        assert_eq!(db.attached().count(), 1);
    }
}
