//! Tables, foreign keys and index hints — the DDL Algorithm 2 consumes.

use std::collections::HashMap;
use std::fmt;

use bdcc_storage::DataType;

/// Identifier of a table inside one [`Catalog`] (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub usize);

/// Identifier of a foreign key inside one [`Catalog`] (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FkId(pub usize);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}
impl fmt::Display for FkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FK{}", self.0)
    }
}

/// One column declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
}

/// One table declaration: columns plus an optional primary key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    /// Primary-key column names in order; the PK storage scheme sorts on
    /// them and the BDCC scheme uses them for FK resolution.
    pub primary_key: Vec<String>,
}

impl TableDef {
    /// Whether the table declares a column with this name.
    pub fn has_column(&self, name: &str) -> bool {
        self.columns.iter().any(|c| c.name == name)
    }
}

/// A declared foreign key `from_table(from_columns) → to_table(to_columns)`.
///
/// The paper names these `FK_T1_T2` (e.g. `FK_L_O` from LINEITEM to ORDERS);
/// `name` carries that identifier and dimension paths are chains of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    pub id: FkId,
    pub name: String,
    pub from_table: TableId,
    pub from_columns: Vec<String>,
    pub to_table: TableId,
    pub to_columns: Vec<String>,
}

/// A `CREATE INDEX name ON table(columns)` statement. Algorithm 2 treats
/// these purely as *hints*: an index whose column set equals a foreign key
/// imports the referenced table's dimension uses, any other index declares a
/// new dimension with the index columns as dimension key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexHint {
    pub name: String,
    pub table: TableId,
    pub columns: Vec<String>,
}

/// Errors raised while assembling a catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    DuplicateTable(String),
    UnknownTable(String),
    UnknownColumn { table: String, column: String },
    ArityMismatch { fk: String },
    CyclicSchema,
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::DuplicateTable(n) => write!(f, "duplicate table {n}"),
            CatalogError::UnknownTable(n) => write!(f, "unknown table {n}"),
            CatalogError::UnknownColumn { table, column } => {
                write!(f, "unknown column {table}.{column}")
            }
            CatalogError::ArityMismatch { fk } => {
                write!(f, "foreign key {fk} has mismatched column counts")
            }
            CatalogError::CyclicSchema => write!(f, "schema graph contains a foreign-key cycle"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// A validated collection of table, foreign-key and index declarations.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<TableDef>,
    fks: Vec<ForeignKey>,
    hints: Vec<IndexHint>,
    by_name: HashMap<String, TableId>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// `CREATE TABLE`: register a table definition.
    pub fn create_table(&mut self, def: TableDef) -> Result<TableId, CatalogError> {
        if self.by_name.contains_key(&def.name) {
            return Err(CatalogError::DuplicateTable(def.name));
        }
        let id = TableId(self.tables.len());
        self.by_name.insert(def.name.clone(), id);
        self.tables.push(def);
        Ok(id)
    }

    /// `ALTER TABLE ... FOREIGN KEY`: register a named foreign key.
    pub fn create_foreign_key(
        &mut self,
        name: &str,
        from_table: &str,
        from_columns: &[&str],
        to_table: &str,
        to_columns: &[&str],
    ) -> Result<FkId, CatalogError> {
        let from = self.table_id(from_table)?;
        let to = self.table_id(to_table)?;
        if from_columns.len() != to_columns.len() || from_columns.is_empty() {
            return Err(CatalogError::ArityMismatch { fk: name.to_string() });
        }
        for c in from_columns {
            self.check_column(from, c)?;
        }
        for c in to_columns {
            self.check_column(to, c)?;
        }
        let id = FkId(self.fks.len());
        self.fks.push(ForeignKey {
            id,
            name: name.to_string(),
            from_table: from,
            from_columns: from_columns.iter().map(|s| s.to_string()).collect(),
            to_table: to,
            to_columns: to_columns.iter().map(|s| s.to_string()).collect(),
        });
        Ok(id)
    }

    /// `CREATE INDEX`: register an index hint.
    pub fn create_index(
        &mut self,
        name: &str,
        table: &str,
        columns: &[&str],
    ) -> Result<(), CatalogError> {
        let t = self.table_id(table)?;
        for c in columns {
            self.check_column(t, c)?;
        }
        self.hints.push(IndexHint {
            name: name.to_string(),
            table: t,
            columns: columns.iter().map(|s| s.to_string()).collect(),
        });
        Ok(())
    }

    fn check_column(&self, table: TableId, column: &str) -> Result<(), CatalogError> {
        if !self.tables[table.0].has_column(column) {
            return Err(CatalogError::UnknownColumn {
                table: self.tables[table.0].name.clone(),
                column: column.to_string(),
            });
        }
        Ok(())
    }

    /// Resolve a table name.
    pub fn table_id(&self, name: &str) -> Result<TableId, CatalogError> {
        self.by_name.get(name).copied().ok_or_else(|| CatalogError::UnknownTable(name.to_string()))
    }

    /// Table definition by id.
    pub fn table(&self, id: TableId) -> &TableDef {
        &self.tables[id.0]
    }

    /// Table name by id.
    pub fn table_name(&self, id: TableId) -> &str {
        &self.tables[id.0].name
    }

    /// All tables with their ids.
    pub fn tables(&self) -> impl Iterator<Item = (TableId, &TableDef)> {
        self.tables.iter().enumerate().map(|(i, t)| (TableId(i), t))
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Foreign key by id.
    pub fn fk(&self, id: FkId) -> &ForeignKey {
        &self.fks[id.0]
    }

    /// All foreign keys.
    pub fn fks(&self) -> &[ForeignKey] {
        &self.fks
    }

    /// Foreign keys departing from `table`.
    pub fn fks_from(&self, table: TableId) -> impl Iterator<Item = &ForeignKey> {
        self.fks.iter().filter(move |fk| fk.from_table == table)
    }

    /// Find a foreign key from `table` whose source column set equals
    /// `columns` (order-insensitive) — the Algorithm 2 test "index equals a
    /// foreign key".
    pub fn fk_matching_columns(&self, table: TableId, columns: &[String]) -> Option<&ForeignKey> {
        self.fks.iter().find(|fk| {
            fk.from_table == table
                && fk.from_columns.len() == columns.len()
                && fk.from_columns.iter().all(|c| columns.contains(c))
        })
    }

    /// All index hints.
    pub fn hints(&self) -> &[IndexHint] {
        &self.hints
    }

    /// Index hints declared on `table`.
    pub fn hints_on(&self, table: TableId) -> impl Iterator<Item = &IndexHint> {
        self.hints.iter().filter(move |h| h.table == table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_table_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(TableDef {
            name: "nation".into(),
            columns: vec![
                ColumnDef { name: "n_nationkey".into(), data_type: DataType::Int },
                ColumnDef { name: "n_regionkey".into(), data_type: DataType::Int },
            ],
            primary_key: vec!["n_nationkey".into()],
        })
        .unwrap();
        c.create_table(TableDef {
            name: "supplier".into(),
            columns: vec![
                ColumnDef { name: "s_suppkey".into(), data_type: DataType::Int },
                ColumnDef { name: "s_nationkey".into(), data_type: DataType::Int },
            ],
            primary_key: vec!["s_suppkey".into()],
        })
        .unwrap();
        c.create_foreign_key("FK_S_N", "supplier", &["s_nationkey"], "nation", &["n_nationkey"])
            .unwrap();
        c
    }

    #[test]
    fn create_and_resolve() {
        let c = two_table_catalog();
        let n = c.table_id("nation").unwrap();
        assert_eq!(c.table_name(n), "nation");
        assert_eq!(c.fks().len(), 1);
        assert_eq!(c.fk(FkId(0)).name, "FK_S_N");
        assert!(c.table_id("missing").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = two_table_catalog();
        let r = c.create_table(TableDef {
            name: "nation".into(),
            columns: vec![ColumnDef { name: "x".into(), data_type: DataType::Int }],
            primary_key: vec![],
        });
        assert_eq!(r, Err(CatalogError::DuplicateTable("nation".into())));
    }

    #[test]
    fn fk_validates_columns_and_arity() {
        let mut c = two_table_catalog();
        assert!(c
            .create_foreign_key("bad", "supplier", &["nope"], "nation", &["n_nationkey"])
            .is_err());
        assert!(c.create_foreign_key("bad2", "supplier", &["s_nationkey"], "nation", &[]).is_err());
    }

    #[test]
    fn index_hints_register_and_filter() {
        let mut c = two_table_catalog();
        c.create_index("nation_idx", "nation", &["n_regionkey", "n_nationkey"]).unwrap();
        c.create_index("supp_fk", "supplier", &["s_nationkey"]).unwrap();
        let n = c.table_id("nation").unwrap();
        assert_eq!(c.hints_on(n).count(), 1);
        assert!(c.create_index("bad", "nation", &["zzz"]).is_err());
    }

    #[test]
    fn fk_matching_columns_is_order_insensitive() {
        let c = two_table_catalog();
        let s = c.table_id("supplier").unwrap();
        assert!(c.fk_matching_columns(s, &["s_nationkey".to_string()]).is_some());
        assert!(c.fk_matching_columns(s, &["s_suppkey".to_string()]).is_none());
    }

    #[test]
    fn fks_from_filters_by_source() {
        let c = two_table_catalog();
        let s = c.table_id("supplier").unwrap();
        let n = c.table_id("nation").unwrap();
        assert_eq!(c.fks_from(s).count(), 1);
        assert_eq!(c.fks_from(n).count(), 0);
    }
}
