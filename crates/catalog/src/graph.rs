//! The schema DAG over foreign keys.
//!
//! Algorithm 2(i) "traverses the schema DAG (projection) from the leaves":
//! dimension hosts such as NATION or PART have no outgoing foreign keys and
//! must be processed before the tables referencing them, so that dimension
//! uses can be imported inductively. [`SchemaGraph`] provides that order,
//! plus enumeration of foreign-key chains (dimension paths, Definition 2).

use std::collections::VecDeque;

use crate::catalog::{Catalog, CatalogError, FkId, TableId};

/// The directed graph whose edges are foreign keys (referencing table →
/// referenced table).
#[derive(Debug, Clone)]
pub struct SchemaGraph {
    /// Outgoing FK ids per table.
    out_edges: Vec<Vec<FkId>>,
    /// Incoming FK ids per table.
    in_edges: Vec<Vec<FkId>>,
    /// `(from_table, to_table)` per FK id, copied so the graph is
    /// self-contained.
    endpoints: Vec<(TableId, TableId)>,
}

impl SchemaGraph {
    /// Build the graph for a catalog.
    pub fn build(catalog: &Catalog) -> SchemaGraph {
        let n = catalog.table_count();
        let mut out_edges = vec![Vec::new(); n];
        let mut in_edges = vec![Vec::new(); n];
        let mut endpoints = Vec::with_capacity(catalog.fks().len());
        for fk in catalog.fks() {
            out_edges[fk.from_table.0].push(fk.id);
            in_edges[fk.to_table.0].push(fk.id);
            endpoints.push((fk.from_table, fk.to_table));
        }
        SchemaGraph { out_edges, in_edges, endpoints }
    }

    /// Foreign keys leaving `table`.
    pub fn outgoing(&self, table: TableId) -> &[FkId] {
        &self.out_edges[table.0]
    }

    /// Foreign keys arriving at `table`.
    pub fn incoming(&self, table: TableId) -> &[FkId] {
        &self.in_edges[table.0]
    }

    /// Source table of a foreign key.
    pub fn fk_from(&self, fk: FkId) -> TableId {
        self.endpoints[fk.0].0
    }

    /// Target table of a foreign key.
    pub fn fk_to(&self, fk: FkId) -> TableId {
        self.endpoints[fk.0].1
    }

    /// Tables with no outgoing foreign keys — the "leaves" of the projection
    /// DAG (typically dimension hosts).
    pub fn leaves(&self) -> Vec<TableId> {
        (0..self.out_edges.len()).filter(|&t| self.out_edges[t].is_empty()).map(TableId).collect()
    }

    /// Leaf-first topological order: every table appears after all tables it
    /// references. Errors with [`CatalogError::CyclicSchema`] if foreign
    /// keys form a cycle.
    pub fn leaf_first_order(&self) -> Result<Vec<TableId>, CatalogError> {
        let n = self.out_edges.len();
        let mut remaining_out: Vec<usize> = self.out_edges.iter().map(|e| e.len()).collect();
        let mut queue: VecDeque<usize> = (0..n).filter(|&t| remaining_out[t] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(t) = queue.pop_front() {
            order.push(TableId(t));
            for &fk in &self.in_edges[t] {
                let from = self.fk_from(fk);
                remaining_out[from.0] -= 1;
                if remaining_out[from.0] == 0 {
                    queue.push_back(from.0);
                }
            }
        }
        if order.len() != n {
            return Err(CatalogError::CyclicSchema);
        }
        Ok(order)
    }

    /// All foreign-key chains starting at `table` with at most `max_len`
    /// edges (cycles cut by the length bound). Each chain is a candidate
    /// dimension path (Definition 2). Chains are returned shortest-first.
    pub fn paths_from(&self, table: TableId, max_len: usize) -> Vec<Vec<FkId>> {
        let mut result = Vec::new();
        let mut frontier: VecDeque<(TableId, Vec<FkId>)> = VecDeque::new();
        frontier.push_back((table, Vec::new()));
        while let Some((t, path)) = frontier.pop_front() {
            if path.len() == max_len {
                continue;
            }
            for &fk in &self.out_edges[t.0] {
                let mut next_path = path.clone();
                next_path.push(fk);
                let next = self.fk_to(fk);
                result.push(next_path.clone());
                frontier.push_back((next, next_path));
            }
        }
        result
    }

    /// The table a path (chain of FKs starting at `start`) leads to.
    /// Returns `None` if the chain is not connected.
    pub fn path_target(&self, start: TableId, path: &[FkId]) -> Option<TableId> {
        let mut t = start;
        for &fk in path {
            if self.fk_from(fk) != t {
                return None;
            }
            t = self.fk_to(fk);
        }
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColumnDef, TableDef};
    use bdcc_storage::DataType;

    /// lineitem → orders → customer → nation, lineitem → part
    fn chain_catalog() -> Catalog {
        let mut c = Catalog::new();
        for (name, cols) in [
            ("nation", vec!["n_nationkey"]),
            ("part", vec!["p_partkey"]),
            ("customer", vec!["c_custkey", "c_nationkey"]),
            ("orders", vec!["o_orderkey", "o_custkey"]),
            ("lineitem", vec!["l_orderkey", "l_partkey"]),
        ] {
            c.create_table(TableDef {
                name: name.into(),
                columns: cols
                    .iter()
                    .map(|n| ColumnDef { name: n.to_string(), data_type: DataType::Int })
                    .collect(),
                primary_key: vec![cols[0].to_string()],
            })
            .unwrap();
        }
        c.create_foreign_key("FK_C_N", "customer", &["c_nationkey"], "nation", &["n_nationkey"])
            .unwrap();
        c.create_foreign_key("FK_O_C", "orders", &["o_custkey"], "customer", &["c_custkey"])
            .unwrap();
        c.create_foreign_key("FK_L_O", "lineitem", &["l_orderkey"], "orders", &["o_orderkey"])
            .unwrap();
        c.create_foreign_key("FK_L_P", "lineitem", &["l_partkey"], "part", &["p_partkey"]).unwrap();
        c
    }

    #[test]
    fn leaves_are_dimension_hosts() {
        let c = chain_catalog();
        let g = SchemaGraph::build(&c);
        let mut leaves: Vec<&str> = g.leaves().into_iter().map(|t| c.table_name(t)).collect();
        leaves.sort();
        assert_eq!(leaves, vec!["nation", "part"]);
    }

    #[test]
    fn leaf_first_order_respects_references() {
        let c = chain_catalog();
        let g = SchemaGraph::build(&c);
        let order = g.leaf_first_order().unwrap();
        let pos = |name: &str| order.iter().position(|&t| c.table_name(t) == name).unwrap();
        assert!(pos("nation") < pos("customer"));
        assert!(pos("customer") < pos("orders"));
        assert!(pos("orders") < pos("lineitem"));
        assert!(pos("part") < pos("lineitem"));
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn cycle_is_detected() {
        let mut c = Catalog::new();
        for name in ["a", "b"] {
            c.create_table(TableDef {
                name: name.into(),
                columns: vec![ColumnDef { name: "k".into(), data_type: DataType::Int }],
                primary_key: vec!["k".into()],
            })
            .unwrap();
        }
        c.create_foreign_key("f1", "a", &["k"], "b", &["k"]).unwrap();
        c.create_foreign_key("f2", "b", &["k"], "a", &["k"]).unwrap();
        let g = SchemaGraph::build(&c);
        assert_eq!(g.leaf_first_order(), Err(CatalogError::CyclicSchema));
    }

    #[test]
    fn paths_enumerate_fk_chains() {
        let c = chain_catalog();
        let g = SchemaGraph::build(&c);
        let li = c.table_id("lineitem").unwrap();
        let paths = g.paths_from(li, 3);
        // l→o, l→p, l→o→c, l→o→c→n
        assert_eq!(paths.len(), 4);
        let longest = paths.iter().max_by_key(|p| p.len()).unwrap();
        assert_eq!(g.path_target(li, longest).map(|t| c.table_name(t)), Some("nation"));
    }

    #[test]
    fn path_target_rejects_disconnected_chains() {
        let c = chain_catalog();
        let g = SchemaGraph::build(&c);
        let li = c.table_id("lineitem").unwrap();
        let fk_c_n = FkId(0);
        assert_eq!(g.path_target(li, &[fk_c_n]), None);
    }
}
