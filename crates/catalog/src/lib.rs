//! # bdcc-catalog — schema metadata for BDCC
//!
//! Algorithm 2 of the BDCC paper derives a co-clustered physical design
//! purely from *classic DDL*: table definitions, declared foreign keys, and
//! `CREATE INDEX` statements interpreted as clustering hints. This crate
//! models exactly that input:
//!
//! * [`TableDef`], [`ForeignKey`], [`IndexHint`] — the declarations,
//! * [`Catalog`] — a validated collection of them,
//! * [`SchemaGraph`](graph::SchemaGraph) — the projection DAG over foreign
//!   keys, with the leaf-first traversal order Algorithm 2 requires and
//!   path enumeration for dimension paths (Definition 2),
//! * [`Database`] — a catalog plus the actual stored tables.

pub mod catalog;
pub mod database;
pub mod graph;

pub use catalog::{
    Catalog, CatalogError, ColumnDef, FkId, ForeignKey, IndexHint, TableDef, TableId,
};
pub use database::Database;
pub use graph::SchemaGraph;
