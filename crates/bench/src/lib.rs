//! # bdcc-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation
//! (Section IV). Each experiment is a binary under `src/bin/` printing the
//! same rows/series the paper reports; `benches/` holds the Criterion
//! counterparts. The experiment index lives in `DESIGN.md`; the measured
//! outcomes are recorded in `EXPERIMENTS.md`.

use std::sync::Arc;
use std::time::Instant;

use bdcc_catalog::Database;
use bdcc_core::DesignConfig;
use bdcc_exec::{bdcc_scheme, pk_scheme, plain_scheme, QueryContext, Scheme, SchemeDb};
use bdcc_storage::{DeviceProfile, IoStats};
use bdcc_tpch::{all_queries, GenConfig, QueryCtx};

/// Scale factor for experiments: `BDCC_SF` env var, default 0.02
/// (≈ 120k lineitems; the paper used SF 100 on a server).
pub fn scale_factor() -> f64 {
    std::env::var("BDCC_SF").ok().and_then(|v| v.parse().ok()).unwrap_or(0.02)
}

/// Generate the TPC-H database once for an experiment.
pub fn generate_db(sf: f64) -> Database {
    let t = Instant::now();
    let db = bdcc_tpch::generate(&GenConfig::new(sf));
    eprintln!(
        "generated TPC-H SF {sf} ({} rows) in {:.2}s",
        db.total_rows(),
        t.elapsed().as_secs_f64()
    );
    db
}

/// Build all three storage schemes.
pub fn build_schemes(db: &Database, cfg: &DesignConfig) -> Vec<Arc<SchemeDb>> {
    let t = Instant::now();
    let plain = Arc::new(plain_scheme(db));
    let pk = Arc::new(pk_scheme(db).expect("pk scheme"));
    let bdcc = Arc::new(bdcc_scheme(db, cfg).expect("bdcc scheme"));
    eprintln!("built Plain/PK/BDCC schemes in {:.2}s", t.elapsed().as_secs_f64());
    vec![plain, pk, bdcc]
}

/// Measurement of one query under one scheme.
#[derive(Debug, Clone)]
pub struct QueryRun {
    pub query: usize,
    pub scheme: Scheme,
    pub seconds: f64,
    pub peak_memory: u64,
    pub io: IoStats,
    pub est_io_seconds: f64,
    pub rows: usize,
}

/// Run every query under one scheme, with per-query measurement. The whole
/// query function (including any decorrelated scalar phase) is measured,
/// like the paper's end-to-end timings.
pub fn run_all_queries(sdb: &Arc<SchemeDb>, sf: f64) -> Vec<QueryRun> {
    let mut out = Vec::new();
    for q in all_queries() {
        let ctx = QueryCtx::new(QueryContext::new(Arc::clone(sdb)), sf);
        ctx.qc.tracker.reset();
        ctx.qc.io.reset();
        let t = Instant::now();
        let batch =
            (q.run)(&ctx).unwrap_or_else(|e| panic!("{} on {}: {e}", q.name, sdb.scheme.name()));
        let seconds = t.elapsed().as_secs_f64();
        let io = ctx.qc.io.stats();
        out.push(QueryRun {
            query: q.id,
            scheme: sdb.scheme,
            seconds,
            peak_memory: ctx.qc.tracker.peak(),
            io,
            est_io_seconds: DeviceProfile::ssd_raid().estimate_seconds(&io),
            rows: batch.rows(),
        });
    }
    out
}

/// Render a fixed-width text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> =
            cells.iter().enumerate().map(|(i, c)| format!("{:>w$}", c, w = widths[i])).collect();
        println!("  {}", joined.join("  "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("  {}", "-".repeat(total));
    for row in rows {
        line(row);
    }
}

/// The seed's join build — one `Vec<i64>` key and one `Vec<u32>` list
/// entry per row, SipHash-hashed — kept as the measured baseline the flat
/// `JoinIndex` is compared against (`join_build` bench and `join_speedup`
/// bin share this definition so their baselines can't drift apart).
pub fn baseline_join_build(key_cols: &[&[i64]]) -> std::collections::HashMap<Vec<i64>, Vec<u32>> {
    let rows = key_cols.first().map(|c| c.len()).unwrap_or(0);
    let mut index: std::collections::HashMap<Vec<i64>, Vec<u32>> =
        std::collections::HashMap::with_capacity(rows);
    for row in 0..rows {
        let key: Vec<i64> = key_cols.iter().map(|c| c[row]).collect();
        index.entry(key).or_default().push(row as u32);
    }
    index
}

/// Self-probe of a flat join index: look up every build key and count the
/// matches (the shared probe-throughput workload of `join_build` and
/// `join_speedup`).
pub fn probe_all(idx: &bdcc_exec::JoinIndex, key_cols: &[&[i64]]) -> usize {
    let rows = key_cols.first().map(|c| c.len()).unwrap_or(0);
    let mut key = Vec::with_capacity(key_cols.len());
    let mut n = 0usize;
    for row in 0..rows {
        key.clear();
        key.extend(key_cols.iter().map(|c| c[row]));
        idx.for_each_match(&key, |_| n += 1);
    }
    n
}

/// The **pre-PR-3** Semi/Anti probe, kept as the measured baseline of the
/// `probe_speedup` bin and `join_probe` bench: collect the full match
/// lists, gather the complete left ++ right candidate pair columns — and
/// then throw the pairs away, keeping only the matched-row flags. This is
/// exactly the waste `join_batch` used to do before the existence fast
/// path (`join.rs` now skips the gather and short-circuits per row).
pub fn semi_probe_gather_baseline(
    idx: &bdcc_exec::JoinIndex,
    key_cols: &[&[i64]],
    left_payload: &[bdcc_storage::Column],
    right_payload: &[bdcc_storage::Column],
) -> usize {
    let rows = key_cols.first().map(|c| c.len()).unwrap_or(0);
    let (mut lidx, mut ridx) = (Vec::new(), Vec::new());
    idx.probe_pairs(key_cols, 0..rows, &mut lidx, &mut ridx);
    // The wasteful part: full pair columns, gathered only to be discarded.
    let discarded: Vec<bdcc_storage::Column> = left_payload
        .iter()
        .map(|c| c.gather(&lidx))
        .chain(right_payload.iter().map(|c| c.gather_u32(&ridx)))
        .collect();
    std::hint::black_box(&discarded);
    let mut matched = vec![false; rows];
    for &l in &lidx {
        matched[l] = true;
    }
    matched.iter().filter(|&&m| m).count()
}

/// The fixed Semi/Anti probe: the first-hit existence kernel
/// (`JoinIndex::probe_exists`) — no match lists, no gathers (what
/// `HashJoin` now runs for Semi/Anti without a residual).
pub fn semi_probe_direct(idx: &bdcc_exec::JoinIndex, key_cols: &[&[i64]]) -> usize {
    let rows = key_cols.first().map(|c| c.len()).unwrap_or(0);
    let mut lidx = Vec::new();
    idx.probe_exists(key_cols, 0..rows, &mut lidx);
    lidx.len()
}

/// The one machine-readable line every bench bin ends with.
///
/// Each bin prints, as its *last* stdout line, a single JSON object
/// `{"bench":"<name>",...,"results":[...]}` that the perf-trajectory
/// tooling records as `BENCH_<name>.json`. The line used to be a
/// hand-rolled `format!` string copy-pasted (and drifting) across the
/// bins; it is now built here on [`bdcc_obs::json`] so escaping, number
/// formatting and field order are identical everywhere.
#[derive(Debug)]
pub struct BenchReport {
    head: bdcc_obs::json::Obj,
    results: bdcc_obs::json::Arr,
}

impl BenchReport {
    pub fn new(bench: &str) -> BenchReport {
        BenchReport {
            head: bdcc_obs::json::Obj::new().str("bench", bench),
            results: bdcc_obs::json::Arr::new(),
        }
    }

    /// Add a top-level string field (insertion-ordered, like `Obj`).
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.head = self.head.str(k, v);
        self
    }

    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.head = self.head.u64(k, v);
        self
    }

    pub fn usize(mut self, k: &str, v: usize) -> Self {
        self.head = self.head.usize(k, v);
        self
    }

    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.head = self.head.f64(k, v);
        self
    }

    /// Append one row to the `results` array (omitted entirely when no
    /// row is ever pushed — flat reports like `pool_overhead` stay flat).
    pub fn result(&mut self, row: bdcc_obs::json::Obj) {
        self.results.push_raw(&row.finish());
    }

    /// Render the JSON line.
    pub fn finish(self) -> String {
        let mut head = self.head;
        if !self.results.is_empty() {
            head = head.raw("results", &self.results.finish());
        }
        head.finish()
    }

    /// Print the line; every bin calls this last.
    pub fn print(self) {
        println!("{}", self.finish());
    }
}

/// Megabytes, two decimals.
pub fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Milliseconds, one decimal.
pub fn ms(seconds: f64) -> String {
    format!("{:.1}", seconds * 1000.0)
}

/// Round to 3 decimals — the precision the bench JSON lines always used.
pub fn r3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}
