//! E3 — Figure 2: execution times of all 22 TPC-H queries under the Plain,
//! PK and BDCC storage schemes, plus the total. The paper reports cold
//! times on a 100 GB database (Plain 630.82s, PK 491.33s, BDCC 284.43s);
//! here the engine is in-memory, so we report wall-clock time and the
//! I/O-model's estimated cold-read time — the *shape* (BDCC fastest on
//! most queries, Q1 flat) is the reproduction target.

#![allow(clippy::needless_range_loop, clippy::field_reassign_with_default)]

use bdcc_bench::{build_schemes, generate_db, ms, print_table, run_all_queries, scale_factor};
use bdcc_core::DesignConfig;

fn main() {
    let sf = scale_factor();
    let db = generate_db(sf);
    let sdbs = build_schemes(&db, &DesignConfig::default());
    let runs: Vec<Vec<bdcc_bench::QueryRun>> =
        sdbs.iter().map(|s| run_all_queries(s, sf)).collect();

    println!("\n== Figure 2: execution time per query (ms) ==");
    let mut rows = Vec::new();
    for q in 0..22 {
        rows.push(vec![
            format!("Q{:02}", q + 1),
            ms(runs[0][q].seconds),
            ms(runs[1][q].seconds),
            ms(runs[2][q].seconds),
            runs[2][q].rows.to_string(),
        ]);
    }
    let totals: Vec<f64> = runs.iter().map(|r| r.iter().map(|m| m.seconds).sum()).collect();
    rows.push(vec!["TOTAL".into(), ms(totals[0]), ms(totals[1]), ms(totals[2]), String::new()]);
    print_table(&["query", "Plain", "PK", "BDCC", "rows"], &rows);

    println!("\n== Figure 2 (I/O model): estimated cold-read seconds ==");
    let mut rows = Vec::new();
    for q in 0..22 {
        rows.push(vec![
            format!("Q{:02}", q + 1),
            format!("{:.4}", runs[0][q].est_io_seconds),
            format!("{:.4}", runs[1][q].est_io_seconds),
            format!("{:.4}", runs[2][q].est_io_seconds),
        ]);
    }
    let io_totals: Vec<f64> =
        runs.iter().map(|r| r.iter().map(|m| m.est_io_seconds).sum()).collect();
    rows.push(vec![
        "TOTAL".into(),
        format!("{:.4}", io_totals[0]),
        format!("{:.4}", io_totals[1]),
        format!("{:.4}", io_totals[2]),
    ]);
    print_table(&["query", "Plain", "PK", "BDCC"], &rows);
    println!(
        "\npaper totals (SF100, seconds): Plain 630.82  PK 491.33  BDCC 284.43  (BDCC 2.2x vs Plain, 1.7x vs PK)"
    );
    println!(
        "measured speedups here:        Plain/BDCC {:.2}x   PK/BDCC {:.2}x (wall)  |  {:.2}x / {:.2}x (I/O model)",
        totals[0] / totals[2],
        totals[1] / totals[2],
        io_totals[0] / io_totals[2],
        io_totals[1] / io_totals[2],
    );
}
