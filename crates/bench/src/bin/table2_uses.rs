//! E2 — the paper's Section IV dimension-use table: for every TPC-H table,
//! its dimension uses (dimension, path, mask). At paper scale the masks
//! reproduce the printed ones exactly up to D_DATE's 12-vs-13-bit NDV
//! rounding.

use bdcc_bench::{generate_db, print_table, scale_factor};
use bdcc_core::{design_and_cluster, mask_to_string, preview_design, render_path, DesignConfig};
use bdcc_tpch::ddl::{sf100_ndv, tpch_catalog};

fn main() {
    let cfg = DesignConfig::default();
    let catalog = tpch_catalog();

    println!("\n== Table 2 (paper scale, SF100 statistics) ==");
    let (_, tables) = preview_design(&catalog, &sf100_ndv(), &cfg).expect("preview");
    let mut rows = Vec::new();
    for t in &tables {
        for (i, u) in t.uses.iter().enumerate() {
            rows.push(vec![
                if i == 0 { t.table.to_uppercase() } else { String::new() },
                u.dim_name.clone(),
                u.path.clone(),
                u.mask.clone(),
            ]);
        }
    }
    print_table(&["BDCC Table", "D(Ui)", "P(Ui)", "M(Ui)"], &rows);

    let sf = scale_factor();
    println!("\n== Table 2 (measured, SF {sf}, self-tuned granularities) ==");
    let db = generate_db(sf);
    let schema = design_and_cluster(&db, &cfg).expect("cluster");
    let mut rows = Vec::new();
    for (tid, bt) in &schema.tables {
        for (i, u) in bt.uses.iter().enumerate() {
            rows.push(vec![
                if i == 0 { db.catalog().table_name(*tid).to_uppercase() } else { String::new() },
                schema.dimension(u.dim).name.clone(),
                render_path(db.catalog(), &u.path),
                mask_to_string(u.mask, bt.total_bits),
                if i == 0 {
                    format!("b={} of B={}", bt.granularity, bt.total_bits)
                } else {
                    String::new()
                },
            ]);
        }
    }
    print_table(&["BDCC Table", "D(Ui)", "P(Ui)", "M(Ui)", "granularity"], &rows);
}
