//! E6 — detailed analysis: the per-query mechanisms the paper attributes
//! the BDCC wins to. Reports, per query, pages read under Plain vs BDCC
//! (selection pushdown + propagation), and the BDCC peak memory vs Plain
//! (sandwich operators). Checks the paper's named cases: Q1 ≈ full scan
//! (no win), Q13 memory win via the implied customer-nation sandwich,
//! Q6/Q12 correlated (shipdate via orderdate) pruning.

#![allow(clippy::needless_range_loop, clippy::field_reassign_with_default)]

use bdcc_bench::{build_schemes, generate_db, mb, print_table, run_all_queries, scale_factor};
use bdcc_core::DesignConfig;

fn main() {
    let sf = scale_factor();
    let db = generate_db(sf);
    let sdbs = build_schemes(&db, &DesignConfig::default());
    let plain = run_all_queries(&sdbs[0], sf);
    let bdcc = run_all_queries(&sdbs[2], sf);

    println!("\n== Detailed analysis: I/O and memory, Plain vs BDCC ==");
    let mut rows = Vec::new();
    for q in 0..22 {
        let p = &plain[q];
        let b = &bdcc[q];
        rows.push(vec![
            format!("Q{:02}", q + 1),
            p.io.bytes_read.to_string(),
            b.io.bytes_read.to_string(),
            format!("{:.2}x", p.io.bytes_read.max(1) as f64 / b.io.bytes_read.max(1) as f64),
            mb(p.peak_memory),
            mb(b.peak_memory),
            format!("{:.1}x", p.peak_memory.max(1) as f64 / b.peak_memory.max(1) as f64),
        ]);
    }
    print_table(
        &["query", "bytes Plain", "bytes BDCC", "I/O gain", "mem Plain", "mem BDCC", "mem gain"],
        &rows,
    );
    let ratio =
        |q: usize| plain[q].io.bytes_read.max(1) as f64 / bdcc[q].io.bytes_read.max(1) as f64;
    println!("\npaper claims checked:");
    println!("  Q1 is a 95-97% scan, no pushdown win:     I/O gain {:.2}x (expect ~1x)", ratio(0));
    println!("  Q6 correlated shipdate pruning:           I/O gain {:.2}x (expect >1x)", ratio(5));
    println!(
        "  Q13 sandwich via implied customer nation:  mem {}MB vs {}MB Plain",
        mb(bdcc[12].peak_memory),
        mb(plain[12].peak_memory)
    );
}
