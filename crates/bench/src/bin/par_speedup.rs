//! Parallel speedup report: Q1 and Q6 under each scheme, executed with 1
//! and 4 morsel workers, with the measured speedup. Scale factor from
//! `BDCC_SF` (default 0.01); thread counts from `BDCC_THREADS` (comma
//! separated, default `1,4`). Prints a table and, last, one JSON line
//! (`{"bench":"par_speedup",...}`) recorded as `BENCH_par.json` so the
//! end-to-end speedup trajectory is machine-readable across PRs.
//!
//! Note: wall-clock speedup obviously requires the machine to *have*
//! cores; the report prints the detected parallelism so a 1-core
//! container's ~1.0× is interpretable.

use std::sync::Arc;
use std::time::Instant;

use bdcc_bench::{build_schemes, generate_db, print_table, r3, scale_factor, BenchReport};
use bdcc_core::DesignConfig;
use bdcc_exec::{ParallelConfig, QueryContext};
use bdcc_obs::json::Obj;
use bdcc_tpch::{all_queries, QueryCtx};

fn main() {
    let sf = scale_factor();
    let threads: Vec<usize> = std::env::var("BDCC_THREADS")
        .unwrap_or_else(|_| "1,4".into())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("E-PAR — morsel-driven parallel speedup (SF {sf}, {cores} core(s) available)");
    let db = generate_db(sf);
    let schemes = build_schemes(&db, &DesignConfig::default());
    let queries = all_queries();

    let mut rows = Vec::new();
    let mut report = BenchReport::new("par_speedup").f64("sf", sf).usize("cores", cores);
    for qid in [1usize, 6] {
        let q = queries.iter().find(|q| q.id == qid).unwrap();
        for sdb in &schemes {
            let mut timings: Vec<(usize, f64)> = Vec::new();
            for &t in &threads {
                let run_once = || {
                    let qc = if t <= 1 {
                        QueryContext::new(Arc::clone(sdb))
                    } else {
                        QueryContext::with_parallel(
                            Arc::clone(sdb),
                            ParallelConfig::with_threads(t),
                        )
                    };
                    let ctx = QueryCtx::new(qc, sf);
                    (q.run)(&ctx).expect("query runs")
                };
                run_once(); // warm up
                let reps = 5;
                let start = Instant::now();
                for _ in 0..reps {
                    run_once();
                }
                timings.push((t, start.elapsed().as_secs_f64() / reps as f64));
            }
            let base = timings.first().map(|&(_, s)| s).unwrap_or(0.0);
            for &(t, secs) in &timings {
                rows.push(vec![
                    format!("Q{qid:02}"),
                    sdb.scheme.name().to_string(),
                    t.to_string(),
                    format!("{:.2}", secs * 1000.0),
                    format!("{:.2}x", if secs > 0.0 { base / secs } else { 0.0 }),
                ]);
                report.result(
                    Obj::new()
                        .str("query", &format!("Q{qid:02}"))
                        .str("scheme", sdb.scheme.name())
                        .usize("threads", t)
                        .f64("ms", r3(secs * 1000.0))
                        .f64("speedup", r3(if secs > 0.0 { base / secs } else { 0.0 })),
                );
            }
        }
    }
    print_table(&["query", "scheme", "threads", "ms", "speedup"], &rows);
    report.print();
}
