//! E5 — "Other Orderings": the automatic Z-order (round-robin per use)
//! setup versus a hand-created major-minor setup favoring the time
//! dimension, using the same dimensions and bit counts. The paper measures
//! 284 s vs 291 s (SF100) — comparable, automatic slightly faster. An
//! extra column covers the round-robin-per-foreign-key variant of
//! Algorithm 1(i) as an ablation.

#![allow(clippy::needless_range_loop, clippy::field_reassign_with_default)]

use std::sync::Arc;

use bdcc_bench::{generate_db, ms, print_table, run_all_queries, scale_factor};
use bdcc_core::{DesignConfig, InterleaveStrategy};
use bdcc_exec::bdcc_scheme;

fn main() {
    let sf = scale_factor();
    let db = generate_db(sf);
    let strategies = [
        ("Z-order (auto)", InterleaveStrategy::RoundRobinPerUse),
        ("major-minor", InterleaveStrategy::MajorMinor),
        ("per-FK", InterleaveStrategy::RoundRobinPerFk),
    ];
    let mut all = Vec::new();
    for (name, strat) in strategies {
        let mut cfg = DesignConfig::default();
        cfg.selftune.interleave = strat;
        let sdb = Arc::new(bdcc_scheme(&db, &cfg).expect("scheme"));
        let runs = run_all_queries(&sdb, sf);
        all.push((name, runs));
    }

    println!("\n== Other orderings: per-query time (ms) ==");
    let mut rows = Vec::new();
    for q in 0..22 {
        rows.push(vec![
            format!("Q{:02}", q + 1),
            ms(all[0].1[q].seconds),
            ms(all[1].1[q].seconds),
            ms(all[2].1[q].seconds),
        ]);
    }
    let totals: Vec<f64> = all.iter().map(|(_, r)| r.iter().map(|m| m.seconds).sum()).collect();
    rows.push(vec!["TOTAL".into(), ms(totals[0]), ms(totals[1]), ms(totals[2])]);
    print_table(&["query", all[0].0, all[1].0, all[2].0], &rows);
    println!("\npaper (SF100): automatic Z-order 284s vs hand major-minor 291s (comparable, auto slightly faster)");
    println!(
        "measured: Z-order/major-minor ratio {:.3} (1.0 = equal, < 1 = Z-order faster)",
        totals[0] / totals[1]
    );
}
