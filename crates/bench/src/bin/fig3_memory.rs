//! E4 — Figure 3: peak query memory per query under the three schemes,
//! plus the average and peak across the workload. The paper reports
//! (SF100): average Plain 1.59 GB vs BDCC 0.09 GB; peak 8 GB vs 275 MB,
//! and BDCC ≈ 6x (peak 13x) below PK.

#![allow(clippy::needless_range_loop, clippy::field_reassign_with_default)]

use bdcc_bench::{build_schemes, generate_db, mb, print_table, run_all_queries, scale_factor};
use bdcc_core::DesignConfig;

fn main() {
    let sf = scale_factor();
    let db = generate_db(sf);
    let sdbs = build_schemes(&db, &DesignConfig::default());
    let runs: Vec<Vec<bdcc_bench::QueryRun>> =
        sdbs.iter().map(|s| run_all_queries(s, sf)).collect();

    println!("\n== Figure 3: peak query memory (MB) ==");
    let mut rows = Vec::new();
    for q in 0..22 {
        rows.push(vec![
            format!("Q{:02}", q + 1),
            mb(runs[0][q].peak_memory),
            mb(runs[1][q].peak_memory),
            mb(runs[2][q].peak_memory),
        ]);
    }
    print_table(&["query", "Plain", "PK", "BDCC"], &rows);

    let stats = |r: &[bdcc_bench::QueryRun]| {
        let avg = r.iter().map(|m| m.peak_memory).sum::<u64>() / r.len() as u64;
        let peak = r.iter().map(|m| m.peak_memory).max().unwrap_or(0);
        (avg, peak)
    };
    let (pa, pp) = stats(&runs[0]);
    let (ka, kp) = stats(&runs[1]);
    let (ba, bp) = stats(&runs[2]);
    println!("\n  scheme  avg MB   peak MB");
    println!("  Plain   {:>7}  {:>7}", mb(pa), mb(pp));
    println!("  PK      {:>7}  {:>7}", mb(ka), mb(kp));
    println!("  BDCC    {:>7}  {:>7}", mb(ba), mb(bp));
    println!("\npaper (SF100): avg Plain 1.59GB vs BDCC 0.09GB (17x); peak 8GB vs 275MB (29x); BDCC ~6x below PK (peak 13x)");
    println!(
        "measured ratios here: avg Plain/BDCC {:.1}x  peak Plain/BDCC {:.1}x  avg PK/BDCC {:.1}x  peak PK/BDCC {:.1}x",
        pa as f64 / ba.max(1) as f64,
        pp as f64 / bp.max(1) as f64,
        ka as f64 / ba.max(1) as f64,
        kp as f64 / bp.max(1) as f64,
    );
}
