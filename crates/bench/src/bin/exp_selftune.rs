//! E7 — Algorithm 1's granularity choice. The paper's example: LINEITEM's
//! densest column spans 550000 pages at SF100, so the algorithm picks
//! ⌈log2 550000⌉ = 20 bits. This binary shows, for the generated scale,
//! the group-size histograms, the chosen granularity per table, and an
//! ablation over forced AR values.

use bdcc_bench::{generate_db, print_table, scale_factor};
use bdcc_core::{design_and_cluster, DesignConfig};

fn main() {
    let sf = scale_factor();
    let db = generate_db(sf);

    println!("\n== Self-tuned count-table granularities (AR = 32 KB) ==");
    let cfg = DesignConfig::default();
    let schema = design_and_cluster(&db, &cfg).expect("cluster");
    let mut rows = Vec::new();
    for (tid, bt) in &schema.tables {
        let stored = db.stored(*tid).expect("stored");
        rows.push(vec![
            db.catalog().table_name(*tid).to_uppercase(),
            stored.rows().to_string(),
            format!("{:.1}", stored.densest_column_width()),
            bt.total_bits.to_string(),
            bt.granularity.to_string(),
            bt.count.group_count().to_string(),
            bt.count.max_group_rows().to_string(),
        ]);
    }
    print_table(
        &["table", "rows", "densest col B", "B (max bits)", "b (chosen)", "groups", "max group"],
        &rows,
    );

    println!("\n== Ablation: LINEITEM granularity vs efficient random access size ==");
    let mut rows = Vec::new();
    for ar_kb in [4usize, 8, 16, 32, 64, 128, 256] {
        let mut cfg = DesignConfig::default();
        cfg.selftune.ar_bytes = ar_kb * 1024;
        let schema = design_and_cluster(&db, &cfg).expect("cluster");
        let li = db.catalog().table_id("lineitem").expect("lineitem");
        let bt = schema.table(li).expect("clustered");
        rows.push(vec![
            format!("{ar_kb} KB"),
            bt.granularity.to_string(),
            bt.count.group_count().to_string(),
        ]);
    }
    print_table(&["AR", "b (lineitem)", "groups"], &rows);

    println!("\n== LINEITEM log2 group-size histogram per granularity ==");
    let li = db.catalog().table_id("lineitem").expect("lineitem");
    let bt = schema.table(li).expect("clustered");
    let h = &bt.histograms;
    let mut rows = Vec::new();
    for g in (0..=bt.total_bits.min(24)).rev().step_by(2) {
        rows.push(vec![
            g.to_string(),
            h.groups_at(g).to_string(),
            format!("{:?}", h.hist[g as usize]),
        ]);
    }
    print_table(&["granularity", "groups", "hist (entry x = groups of size [2^(x-1),2^x))"], &rows);
    println!(
        "\npaper example: at SF100 LINEITEM's densest column has 550000 32KB pages -> b = 20 bits"
    );
}
