//! Concurrent serving throughput and latency: N closed-loop clients
//! submitting TPC-H queries to one [`Server`], with and without fault
//! injection.
//!
//! For each client count (default `1,8,64`; `BDCC_SERVE_CLIENTS`) the
//! harness measures throughput and p50/p99 submit-to-result latency, and
//! checks every successfully completed query byte-identical (canonical
//! rows) to a serial reference run. Roughly every 16th query carries a
//! deliberately impossible limit — an already-expired deadline or a 1-byte
//! memory budget — proving typed per-query failure under load. With
//! `BDCC_INJECT` set (e.g. `delay=0.05,err=0.02,panic=0.005,seed=42`) the
//! same plan runs under injected delays, simulated errors and worker
//! panics at both pool-job and operator checkpoints: the process must
//! survive, faulted queries must fail typed, and the *non-faulted* ones
//! must still match the reference exactly. Prints a table and, last, one
//! JSON line recorded as `BENCH_serve.json`.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bdcc_bench::{build_schemes, generate_db, print_table, r3, scale_factor, BenchReport};
use bdcc_core::DesignConfig;
use bdcc_exec::{canonical_rows, ParallelConfig, QueryOptions, ServeError, Server, ServerConfig};
use bdcc_obs::json::Obj;
use bdcc_obs::LogHistogram;
use bdcc_pool::{inject, FaultInjector, FaultPlan};
use bdcc_tpch::{all_queries, QueryCtx};

/// Queries served: a scan-heavy, a join-heavy, a selective and a
/// two-sided-join query — enough plan diversity to exercise every
/// governed fan-out shape without a long CI run.
const QUERY_MIX: [usize; 4] = [1, 3, 6, 12];

/// Latency percentile from a log-histogram snapshot (upper-bound buckets).
fn percentile(h: &LogHistogram, p: f64) -> u64 {
    let snap = h.snapshot();
    let total: u64 = snap.iter().map(|&(_, n)| n).sum();
    if total == 0 {
        return 0;
    }
    let rank = ((total as f64) * p).ceil() as u64;
    let mut seen = 0;
    for (upper, n) in snap {
        seen += n;
        if seen >= rank {
            return upper;
        }
    }
    u64::MAX
}

fn main() {
    let sf = scale_factor();
    let clients_axis: Vec<usize> = std::env::var("BDCC_SERVE_CLIENTS")
        .unwrap_or_else(|_| "1,8,64".into())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    let per_client: usize =
        std::env::var("BDCC_SERVE_QPC").ok().and_then(|v| v.parse().ok()).unwrap_or(4);

    // Fault injection: BDCC_INJECT installs the same injector at pool-job
    // boundaries (process-global) and at operator checkpoints (via the
    // server config).
    let injector = match FaultPlan::from_env() {
        Ok(Some(plan)) => {
            let inj = Arc::new(FaultInjector::new(plan));
            inject::install_global(Arc::clone(&inj));
            Some(inj)
        }
        Ok(None) => None,
        Err(e) => panic!("bad BDCC_INJECT: {e}"),
    };
    if injector.is_some() {
        // Injected panics are expected, contained, and re-surfaced typed;
        // keep stderr readable for everything else.
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let t = std::thread::current();
            let name = t.name().unwrap_or("");
            if name.starts_with("bdcc-session") || name.starts_with("bdcc-worker") {
                return;
            }
            default_hook(info);
        }));
    }

    println!(
        "E-SERVE — concurrent serving under admission control (SF {sf}, injection {})",
        if injector.is_some() { "ON" } else { "off" }
    );
    let db = generate_db(sf);
    let schemes = build_schemes(&db, &DesignConfig::default());
    let sdb = schemes.last().expect("bdcc scheme").clone();
    let queries: Vec<_> = all_queries().into_iter().filter(|q| QUERY_MIX.contains(&q.id)).collect();

    // Serial reference: canonical rows per query, computed without any
    // server, governor or injector in the loop.
    let reference: HashMap<usize, Vec<String>> = queries
        .iter()
        .map(|q| {
            let ctx = QueryCtx::new(bdcc_exec::QueryContext::new(Arc::clone(&sdb)), sf);
            (q.id, canonical_rows(&(q.run)(&ctx).expect("reference run")))
        })
        .collect();

    let mut rows = Vec::new();
    let mut report = BenchReport::new("serve")
        .f64("sf", sf)
        .usize("per_client", per_client)
        .str("inject", &std::env::var("BDCC_INJECT").unwrap_or_default());
    let mut total_mismatches = 0usize;

    for &clients in &clients_axis {
        let cfg = ServerConfig {
            max_concurrent: 4,
            queue_depth: 32,
            default_deadline: Some(Duration::from_secs(60)),
            default_budget: None,
            parallel: Some(ParallelConfig::with_threads(4)),
            injector: injector.clone(),
        };
        let server = Arc::new(Server::new(Arc::clone(&sdb), cfg));
        let latency = Arc::new(LogHistogram::new());
        let start = Instant::now();

        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let server = Arc::clone(&server);
                let latency = Arc::clone(&latency);
                let runs: Vec<(usize, bdcc_tpch::Query)> = all_queries()
                    .into_iter()
                    .filter(|q| QUERY_MIX.contains(&q.id))
                    .map(|q| (q.id, q))
                    .collect();
                std::thread::spawn(move || {
                    let mut outcomes: Vec<(usize, Option<Vec<String>>)> = Vec::new();
                    let mut retries = 0u64;
                    for i in 0..per_client {
                        let (qid, q) = &runs[(c + i) % runs.len()];
                        let seq = c * per_client + i;
                        // Every 16th query gets an impossible limit: typed
                        // per-query failure under load, peers unaffected.
                        let opts = match seq % 16 {
                            15 if seq % 32 == 15 => {
                                QueryOptions { deadline: Some(Duration::ZERO), budget: None }
                            }
                            15 => QueryOptions { deadline: None, budget: Some(1) },
                            _ => QueryOptions::default(),
                        };
                        let run = q.run;
                        let submitted = Instant::now();
                        let handle = loop {
                            match server.submit_with(opts.clone(), move |qc| {
                                let ctx = QueryCtx::new(qc.clone(), sf);
                                run(&ctx)
                            }) {
                                Ok(h) => break h,
                                Err(ServeError::Overloaded { .. }) => {
                                    retries += 1;
                                    std::thread::sleep(Duration::from_millis(1));
                                }
                                Err(e) => panic!("submit failed: {e}"),
                            }
                        };
                        let result = handle.wait();
                        latency.record(submitted.elapsed().as_nanos() as u64);
                        match result {
                            Ok(out) => outcomes.push((*qid, Some(canonical_rows(&out.batch)))),
                            // Every failure must be typed — reaching here
                            // without a panic of our own *is* the check.
                            Err(
                                ServeError::Exec(_)
                                | ServeError::Panicked(_)
                                | ServeError::Overloaded { .. }
                                | ServeError::ShuttingDown,
                            ) => outcomes.push((*qid, None)),
                        }
                    }
                    (outcomes, retries)
                })
            })
            .collect();

        let mut completed = 0u64;
        let mut faulted = 0u64;
        let mut mismatches = 0usize;
        let mut retries = 0u64;
        for h in handles {
            let (outcomes, r) = h.join().expect("client thread");
            retries += r;
            for (qid, rows) in outcomes {
                match rows {
                    Some(rows) => {
                        completed += 1;
                        if rows != reference[&qid] {
                            mismatches += 1;
                        }
                    }
                    None => faulted += 1,
                }
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        let m = server.metrics();
        let (p50, p99) =
            (percentile(&latency, 0.50) as f64 / 1e6, percentile(&latency, 0.99) as f64 / 1e6);
        let qps = completed as f64 / elapsed;
        total_mismatches += mismatches;

        rows.push(vec![
            clients.to_string(),
            completed.to_string(),
            faulted.to_string(),
            retries.to_string(),
            format!("{:.1}", qps),
            format!("{:.2}", p50),
            format!("{:.2}", p99),
            mismatches.to_string(),
        ]);
        report.result(
            Obj::new()
                .usize("clients", clients)
                .u64("completed", completed)
                .u64("faulted", faulted)
                .u64("overload_retries", retries)
                .u64("rejected", m.rejected.get())
                .u64("cancelled", m.cancelled.get())
                .u64("deadline_exceeded", m.deadline_exceeded.get())
                .u64("budget_exceeded", m.budget_exceeded.get())
                .u64("injected", m.injected.get())
                .u64("panicked", m.panicked.get())
                .f64("qps", r3(qps))
                .f64("p50_ms", r3(p50))
                .f64("p99_ms", r3(p99))
                .usize("mismatches", mismatches),
        );
        // Every admitted query reached a terminal state and all memory
        // was released — the leak-freedom part of the serving contract.
        assert_eq!(m.finished(), m.admitted.get(), "admitted queries must all finish");
        assert_eq!(server.memory().current(), 0, "serving must release all tracked bytes");
    }

    print_table(
        &["clients", "completed", "faulted", "retries", "qps", "p50 ms", "p99 ms", "mismatch"],
        &rows,
    );
    assert_eq!(total_mismatches, 0, "completed queries must be byte-identical to serial");
    report.print();
}
