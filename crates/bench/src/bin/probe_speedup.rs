//! E-PROBE — join-probe throughput: the serial probe loop vs. the
//! morsel-parallel probe, and the pre-fix Semi/Anti gather-and-discard
//! probe vs. the first-hit existence probe. Mirrors `join_speedup`: scale
//! factor from `BDCC_SF` (default 0.02), thread counts from `BDCC_THREADS`
//! (comma separated, default `1,4`). Prints a table and, last, one JSON
//! line (`{"bench":"join_probe",...}`) recorded as `BENCH_probe.json` so
//! the probe-side perf trajectory is machine-readable across PRs.
//!
//! The workload is the dominant TPC-H probe: LINEITEM (always the probe
//! side) probing an index built over ORDERS' `o_orderkey` — every probe
//! row matches, so pair-list and gather costs are fully exercised.

use std::time::Instant;

use bdcc_bench::{
    generate_db, print_table, r3, scale_factor, semi_probe_direct, semi_probe_gather_baseline,
    BenchReport,
};
use bdcc_exec::hash::JoinIndex;
use bdcc_exec::ParallelConfig;
use bdcc_obs::json::Obj;
use bdcc_storage::Column;

fn timed<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    f(); // warm up
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn mrows_per_s(rows: usize, secs: f64) -> f64 {
    if secs > 0.0 {
        rows as f64 / secs / 1e6
    } else {
        0.0
    }
}

fn main() {
    let sf = scale_factor();
    let threads: Vec<usize> = std::env::var("BDCC_THREADS")
        .unwrap_or_else(|_| "1,4".into())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("E-PROBE — join probe throughput (SF {sf}, {cores} core(s) available)");
    let db = generate_db(sf);
    let li = db.stored_by_name("lineitem").expect("lineitem stored").clone();
    let ord = db.stored_by_name("orders").expect("orders stored").clone();
    let col = |t: &std::sync::Arc<bdcc_storage::StoredTable>, n: &str| -> Column {
        t.column_by_name(n).expect("column").as_ref().clone()
    };
    let build_keys = col(&ord, "o_orderkey").as_i64().expect("ints").to_vec();
    let probe_keys = col(&li, "l_orderkey").as_i64().expect("ints").to_vec();
    // Payloads for the Semi/Anti baseline's wasteful pair gather: a
    // realistic handful of probe- and build-side columns.
    let left_payload: Vec<Column> = ["l_partkey", "l_suppkey", "l_quantity", "l_extendedprice"]
        .iter()
        .map(|n| col(&li, n))
        .collect();
    let right_payload: Vec<Column> =
        ["o_custkey", "o_totalprice", "o_orderdate"].iter().map(|n| col(&ord, n)).collect();
    let rows = probe_keys.len();
    let reps = 10;

    let probe_cols: Vec<&[i64]> = vec![&probe_keys];
    let mut table_rows = Vec::new();
    let mut report =
        BenchReport::new("join_probe").f64("sf", sf).usize("rows", rows).usize("cores", cores);
    let mut record = |variant: &str, t: usize, secs: f64, base_s: f64, rows: usize| {
        table_rows.push(vec![
            variant.to_string(),
            t.to_string(),
            format!("{:.2}", secs * 1000.0),
            format!("{:.2}", mrows_per_s(rows, secs)),
            format!("{:.2}x", base_s / secs),
        ]);
        report.result(
            Obj::new()
                .str("variant", variant)
                .usize("threads", t)
                .f64("probe_ms", r3(secs * 1000.0))
                .f64("mrows_per_s", r3(mrows_per_s(rows, secs)))
                .f64("speedup", r3(base_s / secs)),
        );
    };

    // --- Inner-style pair probe: serial loop vs morsel-parallel ----------
    for (name, parallel_build) in [("serial_build", false), ("partitioned_build", true)] {
        // Force a genuinely partitioned index for the "partitioned" rows
        // even when BDCC_THREADS lists only 1 (CI's serial matrix cell) —
        // a threads=1 config would silently build serial and the variant
        // label would lie. Likewise shrink the morsel gate below the
        // build side: at smoke scale factors ORDERS is smaller than the
        // default morsel and the build would silently stay serial.
        let build_threads = threads.iter().copied().max().unwrap_or(4).max(2);
        let mut cfg_build = ParallelConfig::with_threads(build_threads);
        cfg_build.morsel_rows = cfg_build.morsel_rows.min(build_keys.len() / 2).max(1);
        let build_cfg = if parallel_build { Some(&cfg_build) } else { None };
        let idx = JoinIndex::build(&[&build_keys], build_cfg).expect("build");
        assert_eq!(
            idx.partition_count() > 1,
            parallel_build,
            "index partitioning must match the reported variant"
        );
        let serial_s =
            timed(reps, || idx.probe_pairs_parallel(&probe_cols, rows, None).expect("probe"));
        record(&format!("pairs_{name}_serial"), 1, serial_s, serial_s, rows);
        for &t in &threads {
            if t <= 1 {
                continue;
            }
            let cfg = ParallelConfig::with_threads(t);
            let s = timed(reps, || {
                idx.probe_pairs_parallel(&probe_cols, rows, Some(&cfg)).expect("probe")
            });
            record(&format!("pairs_{name}_parallel_{t}t"), t, s, serial_s, rows);
        }
    }

    // --- Semi/Anti probe: gather-and-discard baseline vs existence ------
    let idx = JoinIndex::build(&[&build_keys], None).expect("build");
    let base_s = timed(reps, || {
        semi_probe_gather_baseline(&idx, &probe_cols, &left_payload, &right_payload)
    });
    record("semi_gather_baseline", 1, base_s, base_s, rows);
    let direct_s = timed(reps, || semi_probe_direct(&idx, &probe_cols));
    record("semi_exists_direct", 1, direct_s, base_s, rows);

    let _ = record; // end the closure's borrows of the table and report
    print_table(&["variant", "threads", "ms", "Mrows/s", "speedup"], &table_rows);
    report.print();
}
