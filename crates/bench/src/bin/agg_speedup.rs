//! E-AGG — aggregation strategy throughput and memory: the serial
//! `HashAggregate` vs. morsel-parallel partial-merge vs. radix-partitioned
//! aggregation, on a fine-grained group-by (`GROUP BY l_partkey`, one
//! group per ~30 rows, keys scattered across morsels — the workload radix
//! partitioning exists for) and a coarse Q1-style group-by
//! (`GROUP BY l_returnflag, l_linestatus`, four groups — the workload the
//! partial-merge path keeps). Mirrors `probe_speedup`: scale factor from
//! `BDCC_SF` (default 0.02), thread counts from `BDCC_THREADS` (comma
//! separated, default `1,4`). Prints a table and, last, one JSON line
//! (`{"bench":"agg_radix",...}`) recorded as `BENCH_agg.json` so the
//! aggregation perf trajectory is machine-readable across PRs.

use std::sync::Arc;
use std::time::Instant;

use bdcc_bench::{generate_db, mb, print_table, r3, scale_factor, BenchReport};
use bdcc_exec::ops::agg::HashAggregate;
use bdcc_exec::ops::scan::PlainScan;
use bdcc_exec::ops::{collect, BoxedOp};
use bdcc_exec::parallel::{FragmentBlueprint, ParallelAggregate, ScanBlueprint, ScanKind};
use bdcc_exec::{AggFunc, AggSpec, Expr, MemoryTracker, ParallelConfig};
use bdcc_obs::json::Obj;
use bdcc_storage::{IoTracker, StoredTable};

/// One benchmark workload: scanned columns, group-by keys and aggregates
/// over LINEITEM. Each workload scans only what it consumes — the
/// radix path materializes the scanned columns during partitioning, so
/// padding the scan would misattribute memory.
struct Workload {
    name: &'static str,
    scan_cols: Vec<&'static str>,
    group_by: Vec<&'static str>,
    aggs: Vec<AggSpec>,
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "fine_partkey",
            scan_cols: vec!["l_partkey", "l_quantity", "l_extendedprice"],
            group_by: vec!["l_partkey"],
            aggs: vec![
                AggSpec::new(AggFunc::Sum, Expr::col("l_extendedprice"), "rev"),
                AggSpec::new(AggFunc::Avg, Expr::col("l_quantity"), "aq"),
                AggSpec::new(AggFunc::Count, Expr::lit(1), "n"),
            ],
        },
        Workload {
            name: "coarse_q1",
            scan_cols: vec!["l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice"],
            group_by: vec!["l_returnflag", "l_linestatus"],
            aggs: vec![
                AggSpec::new(AggFunc::Sum, Expr::col("l_quantity"), "sq"),
                AggSpec::new(AggFunc::Sum, Expr::col("l_extendedprice"), "rev"),
                AggSpec::new(AggFunc::Count, Expr::lit(1), "n"),
            ],
        },
    ]
}

/// Morsel size under test: `BDCC_MORSEL_ROWS`, default 1024. Smaller than
/// the engine default (8192) on purpose: the morsel count is what scales
/// per-morsel partial duplication, so a laptop-scale LINEITEM at 1024-row
/// morsels models the morsel-to-group ratio a server-scale table has at
/// default morsels.
fn bench_morsel_rows() -> usize {
    std::env::var("BDCC_MORSEL_ROWS").ok().and_then(|v| v.parse().ok()).unwrap_or(1024)
}

fn timed<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    f(); // warm up
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn run_serial(li: &Arc<StoredTable>, w: &Workload) -> (usize, u64) {
    let tracker = MemoryTracker::new();
    let scan: BoxedOp =
        Box::new(PlainScan::new(Arc::clone(li), IoTracker::new(), &w.scan_cols, vec![]).unwrap());
    let out = collect(Box::new(
        HashAggregate::new(scan, &w.group_by, w.aggs.clone(), tracker.clone()).unwrap(),
    ))
    .unwrap();
    (out.rows(), tracker.peak())
}

fn run_parallel(li: &Arc<StoredTable>, w: &Workload, threads: usize, radix: bool) -> (usize, u64) {
    let tracker = MemoryTracker::new();
    let bp = ScanBlueprint {
        table: Arc::clone(li),
        columns: w.scan_cols.iter().map(|c| c.to_string()).collect(),
        predicates: vec![],
        kind: ScanKind::Plain,
        filter_kernel: bdcc_exec::kernel_enabled(),
    };
    let cfg = ParallelConfig { threads, morsel_rows: bench_morsel_rows(), agg_radix: Some(radix) };
    let out = collect(Box::new(
        ParallelAggregate::new(
            FragmentBlueprint { scan: bp, steps: vec![] },
            &w.group_by,
            w.aggs.clone(),
            IoTracker::new(),
            cfg,
            tracker.clone(),
        )
        .unwrap(),
    ))
    .unwrap();
    (out.rows(), tracker.peak())
}

fn mrows_per_s(rows: usize, secs: f64) -> f64 {
    if secs > 0.0 {
        rows as f64 / secs / 1e6
    } else {
        0.0
    }
}

fn main() {
    let sf = scale_factor();
    let threads: Vec<usize> = std::env::var("BDCC_THREADS")
        .unwrap_or_else(|_| "1,4".into())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("E-AGG — aggregation strategy throughput (SF {sf}, {cores} core(s) available)");
    let db = generate_db(sf);
    let li = db.stored_by_name("lineitem").expect("lineitem stored").clone();
    let rows = li.rows();
    let reps = 5;

    let mut table_rows = Vec::new();
    let mut report =
        BenchReport::new("agg_radix").f64("sf", sf).usize("rows", rows).usize("cores", cores);
    let mut record = |workload: &str,
                      variant: &str,
                      t: usize,
                      secs: f64,
                      base_s: f64,
                      groups: usize,
                      peak: u64| {
        table_rows.push(vec![
            workload.to_string(),
            variant.to_string(),
            t.to_string(),
            format!("{:.2}", secs * 1000.0),
            format!("{:.2}", mrows_per_s(rows, secs)),
            format!("{:.2}x", base_s / secs),
            groups.to_string(),
            mb(peak),
        ]);
        report.result(
            Obj::new()
                .str("workload", workload)
                .str("variant", variant)
                .usize("threads", t)
                .f64("agg_ms", r3(secs * 1000.0))
                .f64("mrows_per_s", r3(mrows_per_s(rows, secs)))
                .f64("speedup", r3(base_s / secs))
                .usize("groups", groups)
                .u64("peak_bytes", peak),
        );
    };

    for w in &workloads() {
        let (groups, serial_peak) = run_serial(&li, w);
        let serial_s = timed(reps, || run_serial(&li, w));
        record(w.name, "serial", 1, serial_s, serial_s, groups, serial_peak);
        for &t in &threads {
            if t <= 1 {
                continue;
            }
            for (variant, radix) in [("partial_merge", false), ("radix", true)] {
                let (g, peak) = run_parallel(&li, w, t, radix);
                assert_eq!(g, groups, "strategies must agree on the group count");
                let s = timed(reps, || run_parallel(&li, w, t, radix));
                record(w.name, variant, t, s, serial_s, groups, peak);
            }
        }
    }

    let _ = record; // end the closure's borrows of the table and report
    print_table(
        &["workload", "variant", "threads", "ms", "Mrows/s", "speedup", "groups", "peak MB"],
        &table_rows,
    );
    report.print();
}
