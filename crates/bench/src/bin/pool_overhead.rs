//! E-POOL — per-round dispatch latency: spawn-per-fan-out vs the
//! persistent worker pool.
//!
//! Every parallel operator issues *rounds* of fan-outs (a probe round, a
//! radix phase, a batch of sort runs). Before the persistent pool, each
//! round paid `std::thread::scope` create/join; now it pays queue
//! operations against parked workers. This bench measures exactly that
//! recurring cost, two ways:
//!
//! * **empty rounds** — `ntasks` no-op tasks: the pure dispatch floor,
//!   nothing but fan-out machinery;
//! * **small rounds** — summing a 32k-row column in morsel-sized chunks:
//!   the default probe-round shape (threads × 8192 rows), where dispatch
//!   was ~5% of the round before the pool.
//!
//! For the small rounds, *overhead* is the measured round latency minus
//! the inline serial latency of the same work — the part the fan-out
//! machinery adds. The acceptance bar is overhead(spawn) ≥ 2×
//! overhead(pool). Thread count from `BDCC_THREADS` (first value, default
//! 4). Prints a table and, last, one JSON line
//! (`{"bench":"pool_overhead",...}`) recorded as `BENCH_pool.json`.

use std::time::Instant;

use bdcc_bench::{print_table, r3, BenchReport};
use bdcc_exec::parallel::pool::{run_tasks, run_tasks_spawning, WorkerPool};
use bdcc_exec::Result;

fn threads_under_test() -> usize {
    std::env::var("BDCC_THREADS")
        .ok()
        .and_then(|v| v.split(',').next().and_then(|t| t.parse().ok()))
        .filter(|&t| t > 1)
        .unwrap_or(4)
}

/// Mean seconds per invocation of `f`, with warm-up.
fn timed<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    for _ in 0..3 {
        std::hint::black_box(f());
    }
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let threads = threads_under_test();
    let rows: usize = 32 * 1024;
    let morsel = 4 * 1024; // 8 tasks per small round
    let ntasks = rows / morsel;
    let data: Vec<i64> = (0..rows as i64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
    let reps = 300;

    // Warm the persistent pool once (exactly what QueryContext does), so
    // the measurement sees the steady state every query after the first
    // one sees.
    WorkerPool::shared().ensure_workers(threads);

    let sum_chunk = |t: usize| -> Result<i64> {
        let lo = t * morsel;
        Ok(data[lo..(lo + morsel).min(rows)].iter().sum())
    };
    let noop = |_t: usize| -> Result<()> { Ok(()) };

    // Pure dispatch: empty rounds.
    let empty_spawn_s = timed(reps, || run_tasks_spawning(threads, ntasks, noop).expect("spawn"));
    let empty_pool_s = timed(reps, || run_tasks(threads, ntasks, noop).expect("pool"));

    // Small rounds (~32k rows), the default probe-round shape.
    let serial_s =
        timed(reps, || -> i64 { (0..ntasks).map(|t| sum_chunk(t).expect("serial")).sum() });
    let small_spawn_s =
        timed(reps, || run_tasks_spawning(threads, ntasks, sum_chunk).expect("spawn"));
    let small_pool_s = timed(reps, || run_tasks(threads, ntasks, sum_chunk).expect("pool"));

    let spawn_overhead_s = (small_spawn_s - serial_s).max(0.0);
    let pool_overhead_s = (small_pool_s - serial_s).max(0.0);
    let us = |s: f64| s * 1e6;

    let mut table = Vec::new();
    let mut row = |variant: &str, round_s: f64, overhead_s: f64| {
        table.push(vec![
            variant.to_string(),
            threads.to_string(),
            ntasks.to_string(),
            format!("{:.2}", us(round_s)),
            format!("{:.2}", us(overhead_s)),
        ]);
    };
    row("empty_spawn", empty_spawn_s, empty_spawn_s);
    row("empty_pool", empty_pool_s, empty_pool_s);
    row("small_serial_inline", serial_s, 0.0);
    row("small_spawn", small_spawn_s, spawn_overhead_s);
    row("small_pool", small_pool_s, pool_overhead_s);
    print_table(&["variant", "threads", "tasks/round", "round_us", "dispatch_overhead_us"], &table);

    let empty_ratio = empty_spawn_s / empty_pool_s.max(1e-12);
    let small_ratio = spawn_overhead_s / pool_overhead_s.max(1e-12);
    println!(
        "per-round dispatch: empty {:.2}us -> {:.2}us ({empty_ratio:.1}x), \
         32k-row round overhead {:.2}us -> {:.2}us ({small_ratio:.1}x)",
        us(empty_spawn_s),
        us(empty_pool_s),
        us(spawn_overhead_s),
        us(pool_overhead_s),
    );
    let stats = WorkerPool::shared().stats();
    BenchReport::new("pool_overhead")
        .usize("threads", threads)
        .usize("tasks_per_round", ntasks)
        .usize("rows", rows)
        .f64("empty_spawn_us", r3(us(empty_spawn_s)))
        .f64("empty_pool_us", r3(us(empty_pool_s)))
        .f64("empty_ratio", r3(empty_ratio))
        .f64("serial_us", r3(us(serial_s)))
        .f64("small_spawn_us", r3(us(small_spawn_s)))
        .f64("small_pool_us", r3(us(small_pool_s)))
        .f64("small_overhead_spawn_us", r3(us(spawn_overhead_s)))
        .f64("small_overhead_pool_us", r3(us(pool_overhead_s)))
        .f64("small_overhead_ratio", r3(small_ratio))
        .u64("threads_spawned_total", stats.threads_spawned_total as u64)
        .print();
    assert!(
        stats.threads_spawned_total <= threads,
        "persistent pool must not have spawned beyond warm-up"
    );
}
