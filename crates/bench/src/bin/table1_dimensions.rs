//! E1 — the paper's Section IV dimension table:
//!
//! ```text
//! BDCC dimension D   bits(D)  table T(D)  key K(D)
//! D_NATION           5        NATION      n_regionkey,n_nationkey
//! D_PART             13       PART        p_partkey
//! D_DATE             13       ORDERS      o_orderdate
//! ```
//!
//! Printed twice: at paper scale (SF100 statistics, no data needed) and as
//! measured on the generated database at the experiment scale factor.

use bdcc_bench::{generate_db, print_table, scale_factor};
use bdcc_core::{create_dimensions, derive_design, preview_design, DesignConfig};
use bdcc_tpch::ddl::{sf100_ndv, tpch_catalog};

fn main() {
    let cfg = DesignConfig::default();
    let catalog = tpch_catalog();

    println!("\n== Table 1 (paper scale, SF100 statistics) ==");
    let (dims, _) = preview_design(&catalog, &sf100_ndv(), &cfg).expect("preview");
    let rows: Vec<Vec<String>> = dims
        .iter()
        .map(|d| vec![d.name.clone(), d.bits.to_string(), d.table.to_uppercase(), d.key.join(",")])
        .collect();
    print_table(&["BDCC dimension D", "bits(D)", "table T(D)", "key K(D)"], &rows);
    println!("  (paper: D_NATION 5, D_PART 13, D_DATE 13 — D_DATE has 2406 NDV → 12 bits here)");

    let sf = scale_factor();
    println!("\n== Table 1 (measured, SF {sf}) ==");
    let db = generate_db(sf);
    let design = derive_design(db.catalog(), &cfg).expect("design");
    let dims = create_dimensions(&db, &design, &cfg.binning).expect("dimensions");
    let rows: Vec<Vec<String>> = dims
        .iter()
        .map(|d| {
            vec![
                d.name.clone(),
                d.bits().to_string(),
                db.catalog().table_name(d.table).to_uppercase(),
                d.key.join(","),
                d.bin_count().to_string(),
            ]
        })
        .collect();
    print_table(&["BDCC dimension D", "bits(D)", "table T(D)", "key K(D)", "bins"], &rows);
}
