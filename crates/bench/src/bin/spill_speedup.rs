//! E-SPILL — out-of-core execution under a memory budget: two TPC-H
//! workloads (a join+group-by whose hash build dominates the peak, and a
//! fine per-orderkey aggregation that exercises the radix spill path)
//! first run unconstrained to find their in-memory peak `P`, then re-run
//! with a memory budget `B = P/4` and `BDCC_SPILL=auto` semantics. The
//! spilled run must **complete**, produce **byte-identical** results,
//! keep tracked memory within `B`, and meter real spill traffic through
//! the `IoTracker` — each asserted here so the CI smoke fails loudly.
//! Scale factor from `BDCC_SF` (default 0.02). Prints a table and, last,
//! one JSON line (`{"bench":"spill",...}`) → `BENCH_spill.json`.

use std::sync::Arc;
use std::time::Instant;

use bdcc_bench::{generate_db, mb, print_table, r3, scale_factor, BenchReport};
use bdcc_exec::run::run_measured;
use bdcc_exec::{
    aggregate, join_full, plain_scheme, AggFunc, AggSpec, Expr, JoinType, Node, PlanBuilder,
    QueryContext, SpillMode,
};
use bdcc_obs::json::Obj;
use bdcc_storage::live_spill_files;

/// ORDERS ⋈ LINEITEM with the 4-column LINEITEM side as the hash build
/// (no FK hint, so every scheme takes the grace-hash-capable path),
/// grouped coarsely by order date: the join build is the memory hog.
fn join_groupby() -> Node {
    let b = PlanBuilder::new();
    let orders = b.scan("orders", &["o_orderkey", "o_orderdate"], vec![]);
    let lineitem = b.scan("lineitem", &["l_orderkey", "l_extendedprice", "l_quantity"], vec![]);
    let j =
        join_full(orders, lineitem, &[("o_orderkey", "l_orderkey")], JoinType::Inner, None, None);
    aggregate(
        j,
        &["o_orderdate"],
        vec![
            AggSpec::new(AggFunc::Sum, Expr::col("l_extendedprice"), "revenue"),
            AggSpec::new(AggFunc::Sum, Expr::col("l_quantity"), "qty"),
            AggSpec::new(AggFunc::Count, Expr::lit(1), "n"),
        ],
    )
}

/// One group per order over LINEITEM: the aggregation state itself is
/// the peak, so the budget forces the radix aggregate to spill.
fn fine_agg() -> Node {
    let b = PlanBuilder::new();
    let li = b.scan("lineitem", &["l_orderkey", "l_extendedprice", "l_discount"], vec![]);
    aggregate(
        li,
        &["l_orderkey"],
        vec![
            AggSpec::new(AggFunc::Sum, Expr::col("l_extendedprice"), "price"),
            AggSpec::new(AggFunc::Avg, Expr::col("l_discount"), "disc"),
            AggSpec::new(AggFunc::Count, Expr::lit(1), "n"),
        ],
    )
}

fn main() {
    let sf = scale_factor();
    println!(
        "E-SPILL — out-of-core join build + radix aggregation under a memory broker (SF {sf})"
    );
    let db = generate_db(sf);
    let plain = Arc::new(plain_scheme(&db));
    let base_files = live_spill_files();

    let mut table_rows = Vec::new();
    let mut report = BenchReport::new("spill").f64("sf", sf).u64("budget_divisor", 4);
    for (name, plan) in [("join_groupby", join_groupby()), ("fine_agg", fine_agg())] {
        let ctx = QueryContext::new(Arc::clone(&plain)).with_spill(SpillMode::Off);
        let t = Instant::now();
        let (want, off) = run_measured(&ctx, &plan).expect("in-memory reference run");
        let off_s = t.elapsed().as_secs_f64();
        assert!(off.peak_memory > 0, "{name}: reference peak must be tracked");

        let budget = (off.peak_memory / 4).max(1);
        let ctx = QueryContext::new(Arc::clone(&plain))
            .with_memory_budget(budget)
            .with_spill(SpillMode::Auto);
        let t = Instant::now();
        let (got, on) = run_measured(&ctx, &plan)
            .unwrap_or_else(|e| panic!("{name}: must complete under budget {budget}: {e}"));
        let on_s = t.elapsed().as_secs_f64();

        assert_eq!(want, got, "{name}: spilled result must be byte-identical");
        assert!(
            on.peak_memory <= budget,
            "{name}: tracked peak {} must fit budget {budget}",
            on.peak_memory
        );
        let spill_bytes = on.io.bytes_read.saturating_sub(off.io.bytes_read);
        assert!(spill_bytes > 0, "{name}: spill traffic must be metered through the IoTracker");
        assert_eq!(live_spill_files(), base_files, "{name}: spill temp files must drain");

        for (variant, secs, m, b) in [("in_memory", off_s, &off, 0), ("spilled", on_s, &on, budget)]
        {
            table_rows.push(vec![
                name.to_string(),
                variant.to_string(),
                if b == 0 { "-".into() } else { mb(b) },
                mb(m.peak_memory),
                format!("{:.2}", secs * 1000.0),
                m.rows.to_string(),
            ]);
            report.result(
                Obj::new()
                    .str("workload", name)
                    .str("variant", variant)
                    .u64("budget_bytes", b)
                    .u64("peak_bytes", m.peak_memory)
                    .f64("ms", r3(secs * 1000.0))
                    .usize("rows", m.rows)
                    .u64("spill_bytes", if b == 0 { 0 } else { spill_bytes })
                    .f64(
                        "peak_over_budget",
                        if b == 0 { 0.0 } else { r3(off.peak_memory as f64 / b as f64) },
                    )
                    .bool("identical", true),
            );
        }
        println!(
            "{name}: peak {} → budget {} ({:.1}x over), completed byte-identical, \
             {} spill traffic, {:.2}x wall time",
            mb(off.peak_memory),
            mb(budget),
            off.peak_memory as f64 / budget as f64,
            mb(spill_bytes),
            on_s / off_s.max(1e-9),
        );
    }
    print_table(&["workload", "variant", "budget", "peak", "ms", "rows"], &table_rows);
    report.print();
}
