//! E-JOIN — join-build throughput: the seed's `HashMap<Vec<i64>, Vec<u32>>`
//! baseline vs. the flat allocation-free [`JoinIndex`], serial and
//! hash-partitioned parallel. Mirrors `par_speedup`: scale factor from
//! `BDCC_SF` (default 0.01), thread counts from `BDCC_THREADS` (comma
//! separated, default `1,4`). Prints a table and, last, one JSON line
//! (`{"bench":"join_build",...}`) so the perf trajectory is machine-readable
//! across PRs.
//!
//! Build inputs are real TPC-H columns: LINEITEM's `l_orderkey` (the
//! single-`u64` fast path) and `(l_orderkey, l_partkey)` (the packed
//! multi-column path). Probe throughput is measured over the same columns.

use std::time::Instant;

use bdcc_bench::{
    baseline_join_build, generate_db, print_table, probe_all, r3, scale_factor, BenchReport,
};
use bdcc_exec::hash::JoinIndex;
use bdcc_exec::ParallelConfig;
use bdcc_obs::json::Obj;

fn timed<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    f(); // warm up
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn mrows_per_s(rows: usize, secs: f64) -> f64 {
    if secs > 0.0 {
        rows as f64 / secs / 1e6
    } else {
        0.0
    }
}

fn main() {
    let sf = scale_factor();
    let threads: Vec<usize> = std::env::var("BDCC_THREADS")
        .unwrap_or_else(|_| "1,4".into())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("E-JOIN — join build throughput (SF {sf}, {cores} core(s) available)");
    let db = generate_db(sf);
    let li = db.stored_by_name("lineitem").expect("lineitem stored").clone();
    let okey = li.column_by_name("l_orderkey").expect("col").as_i64().expect("ints").to_vec();
    let pkey = li.column_by_name("l_partkey").expect("col").as_i64().expect("ints").to_vec();
    let rows = okey.len();
    let reps = 10;

    let key_sets: Vec<(&str, Vec<&[i64]>)> =
        vec![("l_orderkey", vec![&okey]), ("l_orderkey,l_partkey", vec![&okey, &pkey])];

    let mut table_rows = Vec::new();
    let mut report =
        BenchReport::new("join_build").f64("sf", sf).usize("rows", rows).usize("cores", cores);
    for (name, key_cols) in &key_sets {
        // Build throughput.
        let base_s = timed(reps, || baseline_join_build(key_cols));
        let flat_s = timed(reps, || JoinIndex::build(key_cols, None).expect("build"));
        let mut variants = vec![
            ("hashmap_baseline".to_string(), base_s, 1usize),
            ("flat_serial".to_string(), flat_s, 1usize),
        ];
        for &t in &threads {
            if t <= 1 {
                continue;
            }
            let cfg = ParallelConfig::with_threads(t);
            let s = timed(reps, || JoinIndex::build(key_cols, Some(&cfg)).expect("build"));
            variants.push((format!("flat_parallel_{t}t"), s, t));
        }
        // Probe throughput of the flat index (self-probe counts matches).
        let idx = JoinIndex::build(key_cols, None).expect("build");
        let probe_s = timed(reps, || probe_all(&idx, key_cols));
        for (variant, secs, t) in &variants {
            table_rows.push(vec![
                name.to_string(),
                variant.clone(),
                t.to_string(),
                format!("{:.2}", secs * 1000.0),
                format!("{:.2}", mrows_per_s(rows, *secs)),
                format!("{:.2}x", base_s / secs),
            ]);
            report.result(
                Obj::new()
                    .str("keys", name)
                    .str("variant", variant)
                    .usize("threads", *t)
                    .f64("build_ms", r3(secs * 1000.0))
                    .f64("mrows_per_s", r3(mrows_per_s(rows, *secs)))
                    .f64("speedup_vs_baseline", r3(base_s / secs)),
            );
        }
        table_rows.push(vec![
            name.to_string(),
            "flat_probe".into(),
            "1".into(),
            format!("{:.2}", probe_s * 1000.0),
            format!("{:.2}", mrows_per_s(rows, probe_s)),
            "-".into(),
        ]);
        report.result(
            Obj::new()
                .str("keys", name)
                .str("variant", "flat_probe")
                .usize("threads", 1)
                .f64("build_ms", r3(probe_s * 1000.0))
                .f64("mrows_per_s", r3(mrows_per_s(rows, probe_s))),
        );
    }
    print_table(&["keys", "variant", "threads", "ms", "Mrows/s", "vs baseline"], &table_rows);
    report.print();
}
