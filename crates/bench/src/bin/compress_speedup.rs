//! E-COMPRESS — block-encoding footprint and compression-aware scan
//! throughput: whole-table bytes/row with per-block encodings (dictionary,
//! frame-of-reference, RLE, scaled-decimal FOR) vs raw columnar storage,
//! and the string-equality predicate scan (`l_shipmode = 'AIR'`) over
//! encoded vs raw LINEITEM — the workload where the kernel compares
//! bit-packed dictionary codes and late-materializes only the survivors.
//! A dict-miss probe (`l_shipmode = 'CANOE'`, inside every block's MinMax
//! range but absent from every dictionary) shows whole-block elimination.
//!
//! Scale factor from `BDCC_SF` (default 0.02). Prints a table and, last,
//! one JSON line (`{"bench":"compress",...}`) recorded as
//! `BENCH_compress.json` so the compression trajectory is machine-readable
//! across PRs.

use std::sync::Arc;
use std::time::Instant;

use bdcc_bench::{generate_db, print_table, r3, scale_factor, BenchReport};
use bdcc_exec::ops::collect;
use bdcc_exec::ops::scan::PlainScan;
use bdcc_exec::ColPredicate;
use bdcc_obs::json::Obj;
use bdcc_storage::{set_encode_enabled, Column, Datum, IoTracker, StoredTable};

fn timed<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    f(); // warm up
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// Rebuild `t` column-for-column on the same block grid, under whatever
/// encode gate is currently set.
fn rebuild(t: &Arc<StoredTable>) -> Arc<StoredTable> {
    let named: Vec<(String, Column)> = t
        .schema()
        .columns
        .iter()
        .enumerate()
        .map(|(i, m)| (m.name.clone(), t.column(i).unwrap().as_ref().clone()))
        .collect();
    Arc::new(
        StoredTable::from_columns_with_block_rows(t.name(), named, t.block_rows())
            .expect("rebuild"),
    )
}

/// Storage footprint of the whole table under the `avg_width` byte model,
/// with and without the chosen block encodings.
fn footprint(t: &StoredTable) -> (u64, u64) {
    let rows = t.rows() as f64;
    let (mut enc, mut raw) = (0u64, 0u64);
    for (i, m) in t.schema().columns.iter().enumerate() {
        let col_raw = (m.avg_width * rows) as u64;
        raw += col_raw;
        enc += match t.encoding(i) {
            Some(e) => e.encoded_bytes,
            None => col_raw,
        };
    }
    (enc, raw)
}

fn scan(t: &Arc<StoredTable>, preds: Vec<ColPredicate>) -> bdcc_exec::Batch {
    let s = PlainScan::new(Arc::clone(t), IoTracker::new(), &["l_extendedprice"], preds).unwrap();
    collect(Box::new(s)).unwrap()
}

fn mrows_per_s(rows: usize, secs: f64) -> f64 {
    if secs > 0.0 {
        rows as f64 / secs / 1e6
    } else {
        0.0
    }
}

fn main() {
    let sf = scale_factor();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("E-COMPRESS — block encodings (SF {sf}, {cores} core(s) available)");
    set_encode_enabled(Some(true));
    let db = generate_db(sf);
    let li_enc = db.stored_by_name("lineitem").expect("lineitem stored").clone();
    set_encode_enabled(Some(false));
    let li_raw = rebuild(&li_enc);
    set_encode_enabled(None);
    assert!(li_enc.has_encodings() && !li_raw.has_encodings());
    let rows = li_enc.rows();
    let reps = 20;

    let (enc_bytes, raw_bytes) = footprint(&li_enc);
    let bytes_ratio = raw_bytes as f64 / enc_bytes as f64;
    assert!(
        bytes_ratio >= 2.0,
        "LINEITEM must compress at least 2x under the block codecs, got {bytes_ratio:.2}"
    );

    let mut table_rows = Vec::new();
    let mut report = BenchReport::new("compress")
        .f64("sf", sf)
        .usize("rows", rows)
        .usize("cores", cores)
        .u64("raw_bytes", raw_bytes)
        .u64("enc_bytes", enc_bytes)
        .f64("raw_bytes_per_row", r3(raw_bytes as f64 / rows as f64))
        .f64("enc_bytes_per_row", r3(enc_bytes as f64 / rows as f64))
        .f64("bytes_ratio", r3(bytes_ratio));

    let workloads: [(&str, Datum); 2] =
        [("dict_eq_hit", Datum::Str("AIR".into())), ("dict_eq_miss", Datum::Str("CANOE".into()))];
    for (name, constant) in workloads {
        let preds = || vec![ColPredicate::eq("l_shipmode", constant.clone())];
        let raw_out = scan(&li_raw, preds());
        let enc_out = scan(&li_enc, preds());
        assert_eq!(raw_out, enc_out, "{name}: encoded scan must match raw byte-for-byte");
        let raw_s = timed(reps, || scan(&li_raw, preds()));
        let enc_s = timed(reps, || scan(&li_enc, preds()));
        let speedup = raw_s / enc_s;
        table_rows.push(vec![
            name.to_string(),
            raw_out.rows().to_string(),
            format!("{:.3}", raw_s * 1000.0),
            format!("{:.3}", enc_s * 1000.0),
            format!("{:.2}", mrows_per_s(rows, raw_s)),
            format!("{:.2}", mrows_per_s(rows, enc_s)),
            format!("{speedup:.2}x"),
        ]);
        report.result(
            Obj::new()
                .str("workload", name)
                .usize("hits", raw_out.rows())
                .f64("raw_ms", r3(raw_s * 1000.0))
                .f64("enc_ms", r3(enc_s * 1000.0))
                .f64("raw_mrows_per_s", r3(mrows_per_s(rows, raw_s)))
                .f64("enc_mrows_per_s", r3(mrows_per_s(rows, enc_s)))
                .f64("speedup", r3(speedup)),
        );
    }

    table_rows.push(vec![
        "bytes/row".to_string(),
        rows.to_string(),
        format!("{:.1}", raw_bytes as f64 / rows as f64),
        format!("{:.1}", enc_bytes as f64 / rows as f64),
        String::new(),
        String::new(),
        format!("{bytes_ratio:.2}x"),
    ]);
    print_table(
        &["workload", "hits/rows", "raw ms|B", "enc ms|B", "raw Mr/s", "enc Mr/s", "ratio"],
        &table_rows,
    );
    report.print();
}
