//! E-OBS — profiling overhead and the `EXPLAIN ANALYZE` demo.
//!
//! The observability layer's contract is *pay only when asked*: with no
//! profiler installed the planner allocates no metrics, wraps no edges
//! and hands operators the plain query tracker — the disabled path is
//! byte-for-byte the pre-observability code, so "off" costs nothing by
//! construction. This bin measures the other side of the contract: how
//! much a **profiled** run pays over an unprofiled one on a real
//! join + aggregation query (ORDERS ⋈ LINEITEM grouped by order
//! priority, every row flowing through scan, probe and merge). Timing is
//! min-of-reps (the right estimator for overhead: noise only ever adds).
//!
//! Prints the rendered `EXPLAIN ANALYZE` operator tree and its JSON
//! export for the same run, then a table and, last, one JSON line
//! (`{"bench":"obs_overhead",...}`) recorded as `BENCH_obs.json` so the
//! overhead trajectory is machine-readable across PRs. The target ratio
//! is ≤ 1.05; the hard assertion allows 1.5 so a noisy shared CI runner
//! cannot flake the build, while the recorded number tracks the real
//! trajectory.

use std::sync::Arc;
use std::time::Instant;

use bdcc_bench::{generate_db, print_table, r3, scale_factor, BenchReport};
use bdcc_core::DesignConfig;
use bdcc_exec::{
    aggregate, bdcc_scheme, canonical_rows, explain_analyze, join, run_plan, AggFunc, AggSpec,
    Expr, FkSide, Node, ParallelConfig, PlanBuilder, QueryContext,
};

/// Min-of-reps seconds: the tightest observed run, after warm-up.
fn timed_min<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    f(); // warm up
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// The measured workload: a full-table join + aggregation, so every
/// operator class the profiler instruments (scan, hash-join probe,
/// parallel aggregation, sort) sees every row.
fn workload() -> Node {
    let b = PlanBuilder::new();
    let orders = b.scan("orders", &["o_orderkey", "o_orderpriority"], vec![]);
    let lineitem = b.scan("lineitem", &["l_orderkey", "l_quantity", "l_extendedprice"], vec![]);
    let lo =
        join(lineitem, orders, &[("l_orderkey", "o_orderkey")], Some(("FK_L_O", FkSide::Left)));
    aggregate(
        lo,
        &["o_orderpriority"],
        vec![
            AggSpec::new(AggFunc::Sum, Expr::col("l_extendedprice"), "revenue"),
            AggSpec::new(AggFunc::Avg, Expr::col("l_quantity"), "avg_qty"),
            AggSpec::new(AggFunc::Count, Expr::lit(1), "n"),
        ],
    )
}

fn main() {
    let sf = scale_factor();
    let threads = std::env::var("BDCC_THREADS")
        .ok()
        .and_then(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).max())
        .unwrap_or(4);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("E-OBS — profiling overhead (SF {sf}, {threads} worker(s), {cores} core(s))");
    let db = generate_db(sf);
    let sdb = Arc::new(bdcc_scheme(&db, &DesignConfig::default()).expect("bdcc scheme"));
    let plan = workload();

    let ctx_off = if threads > 1 {
        QueryContext::with_parallel(Arc::clone(&sdb), ParallelConfig::with_threads(threads))
    } else {
        QueryContext::new(Arc::clone(&sdb))
    };
    let ctx_on = ctx_off.clone().with_profiling();

    // Profiled and unprofiled runs must return identical batches — the
    // observability layer observes, it never participates.
    let plain = run_plan(&ctx_off, &plan).expect("unprofiled run");
    let profiled = run_plan(&ctx_on, &plan).expect("profiled run");
    assert_eq!(
        canonical_rows(&plain),
        canonical_rows(&profiled),
        "profiling must not change query results"
    );

    // The demo the acceptance bar asks for: the annotated operator tree
    // and the stable JSON export of the *same* execution.
    let analyzed = explain_analyze(&ctx_off, &plan).expect("explain analyze");
    println!("\nEXPLAIN ANALYZE ({} rows):\n{}", analyzed.batch.rows(), analyzed.profile.render());
    println!("JSON export:\n{}\n", analyzed.profile.to_json());

    let reps = 15;
    let off_s = timed_min(reps, || run_plan(&ctx_off, &plan).expect("unprofiled run"));
    let on_s = timed_min(reps, || run_plan(&ctx_on, &plan).expect("profiled run"));
    let ratio = on_s / off_s.max(1e-12);

    let ms = |s: f64| format!("{:.3}", s * 1000.0);
    print_table(
        &["variant", "threads", "min_ms", "ratio"],
        &[
            vec!["profiling_off".into(), threads.to_string(), ms(off_s), "1.00".into()],
            vec!["profiling_on".into(), threads.to_string(), ms(on_s), format!("{ratio:.3}")],
        ],
    );

    BenchReport::new("obs_overhead")
        .f64("sf", sf)
        .usize("threads", threads)
        .usize("cores", cores)
        .usize("rows_out", analyzed.batch.rows())
        .f64("off_ms", r3(off_s * 1000.0))
        .f64("on_ms", r3(on_s * 1000.0))
        .f64("overhead_ratio", r3(ratio))
        .print();

    assert!(
        ratio <= 1.5,
        "profiling overhead {ratio:.3}x blew even the generous CI bound (target ≤ 1.05x)"
    );
}
