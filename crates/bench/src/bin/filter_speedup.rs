//! E-FILTER — selection-vector expression engine throughput: the fused
//! predicate kernels ([`bdcc_exec::FilterProgram`] / [`bdcc_exec::PairFilter`])
//! against the row-at-a-time interpreter, on two residual workloads:
//!
//! * `scan_q6` — a Q6-style multi-conjunct scan residual over LINEITEM
//!   (`l_shipdate` range ∧ `l_discount` between ∧ `l_quantity` <). The
//!   database is generated with block encoding disabled so the PR 7
//!   compression-aware block kernels sit out and the expression engine is
//!   what gets measured.
//! * `join_residual` — a LINEITEM ⋈ ORDERS inner join with a residual
//!   touching four columns while the join output carries eighteen (several
//!   of them strings): the kernel path gathers only the referenced columns
//!   for candidate pairs and late-materializes the wide output for
//!   survivors.
//!
//! Both workloads first assert the kernel and interpreter outputs are
//! byte-identical, then time each side. Scale factor from `BDCC_SF`
//! (default 0.02). Prints a table and, last, one JSON line
//! (`{"bench":"filter",...}`) recorded as `BENCH_filter.json` so the
//! filter perf trajectory is machine-readable across PRs.

use std::sync::Arc;
use std::time::Instant;

use bdcc_bench::{generate_db, print_table, r3, scale_factor, BenchReport};
use bdcc_exec::ops::join::HashJoin;
use bdcc_exec::ops::scan::PlainScan;
use bdcc_exec::ops::{collect, BoxedOp};
use bdcc_exec::{Batch, ColPredicate, Expr, JoinType, MemoryTracker};
use bdcc_obs::json::Obj;
use bdcc_storage::{date_to_days, set_encode_enabled, Datum, IoTracker, StoredTable};

fn timed<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    f(); // warm up
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// Q6-style predicate set: one date range, one float between, one float
/// upper bound — three sargable conjuncts of different selectivities, the
/// shape the adaptive reorderer exists for.
fn q6_predicates() -> Vec<ColPredicate> {
    vec![
        ColPredicate::ge("l_shipdate", Datum::Date(date_to_days(1994, 1, 1))),
        ColPredicate::lt("l_shipdate", Datum::Date(date_to_days(1995, 1, 1))),
        ColPredicate::between("l_discount", 0.05, 0.07),
        ColPredicate::lt("l_quantity", 24.0),
    ]
}

fn run_scan(li: &Arc<StoredTable>, kernel: bool) -> Batch {
    let scan = PlainScan::new(
        Arc::clone(li),
        IoTracker::new(),
        &["l_orderkey", "l_extendedprice", "l_discount", "l_quantity", "l_shipdate"],
        q6_predicates(),
    )
    .unwrap()
    .with_filter_kernel(kernel);
    collect(Box::new(scan) as BoxedOp).unwrap()
}

/// Join residual referencing `l_shipdate`/`o_orderdate` (pair-dependent),
/// `l_discount` and `l_quantity` — four columns out of the eighteen the
/// join output carries, keeping roughly one pair in six.
fn join_residual() -> Expr {
    Expr::col("l_shipdate")
        .gt(Expr::col("o_orderdate"))
        .and(Expr::col("l_discount").ge(Expr::lit(0.06)))
        .and(Expr::col("l_quantity").lt(Expr::lit(20.0)))
}

fn run_join(li: &Arc<StoredTable>, ord: &Arc<StoredTable>, kernel: bool) -> Batch {
    let left: BoxedOp = Box::new(
        PlainScan::new(
            Arc::clone(li),
            IoTracker::new(),
            &[
                "l_orderkey",
                "l_partkey",
                "l_suppkey",
                "l_quantity",
                "l_extendedprice",
                "l_discount",
                "l_shipdate",
                "l_returnflag",
                "l_linestatus",
                "l_shipmode",
                "l_shipinstruct",
                "l_comment",
            ],
            vec![],
        )
        .unwrap(),
    );
    let right: BoxedOp = Box::new(
        PlainScan::new(
            Arc::clone(ord),
            IoTracker::new(),
            &[
                "o_orderkey",
                "o_orderdate",
                "o_totalprice",
                "o_orderpriority",
                "o_clerk",
                "o_comment",
            ],
            vec![],
        )
        .unwrap(),
    );
    let join = HashJoin::new(
        left,
        right,
        &[("l_orderkey", "o_orderkey")],
        JoinType::Inner,
        Some(join_residual()),
        MemoryTracker::new(),
    )
    .unwrap()
    .with_kernel(kernel);
    collect(Box::new(join) as BoxedOp).unwrap()
}

fn mrows_per_s(rows: usize, secs: f64) -> f64 {
    if secs > 0.0 {
        rows as f64 / secs / 1e6
    } else {
        0.0
    }
}

fn main() {
    let sf = scale_factor();
    println!("E-FILTER — selection-vector expression engine throughput (SF {sf})");
    // Disable block encoding so the PR 7 compression-aware scan kernels
    // don't absorb the predicates the expression engine is being measured
    // on; restore the env-driven default afterwards.
    set_encode_enabled(Some(false));
    let db = generate_db(sf);
    set_encode_enabled(None);
    let li = db.stored_by_name("lineitem").expect("lineitem stored").clone();
    let ord = db.stored_by_name("orders").expect("orders stored").clone();
    let rows = li.rows();
    let reps = 5;

    let mut table_rows = Vec::new();
    let mut report = BenchReport::new("filter").f64("sf", sf).usize("lineitem_rows", rows);
    let mut record = |workload: &str, interp_s: f64, kernel_s: f64, out_rows: usize| {
        table_rows.push(vec![
            workload.to_string(),
            format!("{:.2}", interp_s * 1000.0),
            format!("{:.2}", kernel_s * 1000.0),
            format!("{:.2}", mrows_per_s(rows, interp_s)),
            format!("{:.2}", mrows_per_s(rows, kernel_s)),
            format!("{:.2}x", interp_s / kernel_s),
            out_rows.to_string(),
        ]);
        report.result(
            Obj::new()
                .str("workload", workload)
                .f64("interp_ms", r3(interp_s * 1000.0))
                .f64("kernel_ms", r3(kernel_s * 1000.0))
                .f64("mrows_per_s_interp", r3(mrows_per_s(rows, interp_s)))
                .f64("mrows_per_s_kernel", r3(mrows_per_s(rows, kernel_s)))
                .f64("speedup", r3(interp_s / kernel_s))
                .usize("out_rows", out_rows),
        );
    };

    // Q6-style multi-conjunct scan residual.
    let base = run_scan(&li, false);
    let with_kernel = run_scan(&li, true);
    assert_eq!(
        format!("{:?}", base),
        format!("{:?}", with_kernel),
        "scan residual must be byte-identical with kernels on and off"
    );
    let interp_s = timed(reps, || run_scan(&li, false));
    let kernel_s = timed(reps, || run_scan(&li, true));
    record("scan_q6", interp_s, kernel_s, base.rows());

    // Wide-output join with a narrow residual.
    let base = run_join(&li, &ord, false);
    let with_kernel = run_join(&li, &ord, true);
    assert_eq!(
        format!("{:?}", base),
        format!("{:?}", with_kernel),
        "join residual must be byte-identical with kernels on and off"
    );
    let interp_s = timed(reps, || run_join(&li, &ord, false));
    let kernel_s = timed(reps, || run_join(&li, &ord, true));
    record("join_residual", interp_s, kernel_s, base.rows());

    let _ = record; // end the closure's borrow of the report
    print_table(
        &[
            "workload",
            "interp ms",
            "kernel ms",
            "Mrows/s interp",
            "Mrows/s kernel",
            "speedup",
            "out rows",
        ],
        &table_rows,
    );
    report.print();
}
