//! Criterion bench for E1/E2: Algorithm 2 design derivation and dimension
//! creation (the schema-design path itself).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bdcc_core::{create_dimensions, derive_design, DesignConfig};
use bdcc_tpch::ddl::{sf100_ndv, tpch_catalog};
use bdcc_tpch::{generate, GenConfig};

fn bench_design(c: &mut Criterion) {
    let catalog = tpch_catalog();
    let cfg = DesignConfig::default();
    c.bench_function("algorithm2_derive_design", |b| {
        b.iter(|| derive_design(black_box(&catalog), &cfg).unwrap())
    });
    c.bench_function("design_preview_sf100", |b| {
        b.iter(|| bdcc_core::preview_design(black_box(&catalog), &sf100_ndv(), &cfg).unwrap())
    });
    let db = generate(&GenConfig::new(0.005));
    let design = derive_design(db.catalog(), &cfg).unwrap();
    c.bench_function("algorithm2_create_dimensions_sf0.005", |b| {
        b.iter(|| create_dimensions(black_box(&db), &design, &cfg.binning).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_design
}
criterion_main!(benches);
