//! Criterion bench for the aggregation strategies: serial
//! `HashAggregate` vs. morsel-parallel partial-merge vs. radix-partitioned
//! aggregation, over the fine-grained scattered group-by
//! (`GROUP BY l_partkey`) and the coarse Q1-style group-by radix exists
//! to not regress. The companion binary `agg_speedup` prints the same
//! comparison as a throughput/memory table with JSON output (recorded as
//! `BENCH_agg.json`).

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bdcc_exec::ops::agg::HashAggregate;
use bdcc_exec::ops::scan::PlainScan;
use bdcc_exec::ops::{collect, BoxedOp};
use bdcc_exec::parallel::{FragmentBlueprint, ParallelAggregate, ScanBlueprint, ScanKind};
use bdcc_exec::{AggFunc, AggSpec, Expr, MemoryTracker, ParallelConfig};
use bdcc_storage::{IoTracker, StoredTable};
use bdcc_tpch::{generate, GenConfig};

const SCAN_COLS: [&str; 4] = ["l_partkey", "l_returnflag", "l_quantity", "l_extendedprice"];

fn aggs() -> Vec<AggSpec> {
    vec![
        AggSpec::new(AggFunc::Sum, Expr::col("l_extendedprice"), "rev"),
        AggSpec::new(AggFunc::Avg, Expr::col("l_quantity"), "aq"),
        AggSpec::new(AggFunc::Count, Expr::lit(1), "n"),
    ]
}

fn serial(li: &Arc<StoredTable>, group_by: &[&str]) -> usize {
    let scan: BoxedOp =
        Box::new(PlainScan::new(Arc::clone(li), IoTracker::new(), &SCAN_COLS, vec![]).unwrap());
    collect(Box::new(HashAggregate::new(scan, group_by, aggs(), MemoryTracker::new()).unwrap()))
        .unwrap()
        .rows()
}

fn parallel(li: &Arc<StoredTable>, group_by: &[&str], radix: bool) -> usize {
    let bp = ScanBlueprint {
        table: Arc::clone(li),
        columns: SCAN_COLS.iter().map(|c| c.to_string()).collect(),
        predicates: vec![],
        kind: ScanKind::Plain,
        filter_kernel: bdcc_exec::kernel_enabled(),
    };
    let cfg = ParallelConfig { threads: 4, morsel_rows: 8192, agg_radix: Some(radix) };
    collect(Box::new(
        ParallelAggregate::new(
            FragmentBlueprint { scan: bp, steps: vec![] },
            group_by,
            aggs(),
            IoTracker::new(),
            cfg,
            MemoryTracker::new(),
        )
        .unwrap(),
    ))
    .unwrap()
    .rows()
}

fn bench_agg_radix(c: &mut Criterion) {
    let db = generate(&GenConfig::new(0.01));
    let li = db.stored_by_name("lineitem").expect("lineitem").clone();
    for (name, group_by) in
        [("fine_partkey", vec!["l_partkey"]), ("coarse_returnflag", vec!["l_returnflag"])]
    {
        c.bench_function(&format!("agg_{name}_serial"), |b| {
            b.iter(|| black_box(serial(&li, &group_by)))
        });
        c.bench_function(&format!("agg_{name}_partial_merge_4t"), |b| {
            b.iter(|| black_box(parallel(&li, &group_by, false)))
        });
        c.bench_function(&format!("agg_{name}_radix_4t"), |b| {
            b.iter(|| black_box(parallel(&li, &group_by, true)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_agg_radix
}
criterion_main!(benches);
