//! Criterion bench for the morsel-driven parallel subsystem: Q1 (scan +
//! wide aggregation) and Q6 (selective scan + global aggregation) under
//! every scheme, 1 worker vs. 4 workers. The companion binary
//! `par_speedup` prints the same comparison as a speedup table.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use bdcc_core::DesignConfig;
use bdcc_exec::{bdcc_scheme, pk_scheme, plain_scheme, ParallelConfig, QueryContext};
use bdcc_tpch::{all_queries, generate, GenConfig, QueryCtx};

fn bench_parallel(c: &mut Criterion) {
    let sf = 0.01;
    let db = generate(&GenConfig::new(sf));
    let schemes = vec![
        Arc::new(plain_scheme(&db)),
        Arc::new(pk_scheme(&db).unwrap()),
        Arc::new(bdcc_scheme(&db, &DesignConfig::default()).unwrap()),
    ];
    let queries = all_queries();
    for qid in [1usize, 6] {
        let q = queries.iter().find(|q| q.id == qid).unwrap();
        for sdb in &schemes {
            for threads in [1usize, 4] {
                let name =
                    format!("q{qid:02}_{}_{}thread", sdb.scheme.name().to_lowercase(), threads);
                c.bench_function(&name, |b| {
                    b.iter(|| {
                        let qc = if threads == 1 {
                            QueryContext::new(Arc::clone(sdb))
                        } else {
                            QueryContext::with_parallel(
                                Arc::clone(sdb),
                                ParallelConfig::with_threads(threads),
                            )
                        };
                        (q.run)(&QueryCtx::new(qc, sf)).unwrap()
                    })
                });
            }
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel
}
criterion_main!(benches);
