//! Microbenchmarks of the BDCC primitives: bit scatter/gather, bin lookup,
//! mask assignment, count-table construction and histogram cascade.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bdcc_catalog::TableId;
use bdcc_core::{
    assign_masks, create_dimension, gather_bits, scatter_bits, BinningConfig, CountTable, DimId,
    GranularityHistograms, InterleaveStrategy, KeyValue, UseBits,
};
use bdcc_storage::Datum;

fn bench_micro(c: &mut Criterion) {
    c.bench_function("scatter_gather_roundtrip", |b| {
        let mask = 0b1000100010001000100u64;
        b.iter(|| {
            let v = scatter_bits(black_box(0b10110), 5, mask);
            gather_bits(v, mask)
        })
    });

    let uses = vec![
        UseBits { dim_bits: 13, fk_group: Some(0) },
        UseBits { dim_bits: 5, fk_group: Some(0) },
        UseBits { dim_bits: 5, fk_group: Some(1) },
        UseBits { dim_bits: 13, fk_group: Some(2) },
    ];
    c.bench_function("assign_masks_lineitem", |b| {
        b.iter(|| assign_masks(black_box(&uses), InterleaveStrategy::RoundRobinPerUse))
    });

    let dim = create_dimension(
        DimId(0),
        "D",
        TableId(0),
        vec!["k".into()],
        (0..8192).map(|v| (KeyValue::single(Datum::Int(v)), 1)).collect(),
        &BinningConfig::default(),
    )
    .unwrap();
    c.bench_function("bin_lookup_8k_bins", |b| {
        let kv = KeyValue::single(Datum::Int(4242));
        b.iter(|| dim.bin_of(black_box(&kv)))
    });

    let keys: Vec<u64> = (0..100_000u64).map(|i| (i * 37) % 4096).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    c.bench_function("count_table_100k_rows", |b| {
        b.iter(|| CountTable::from_sorted_keys(black_box(&sorted), 12, 8).unwrap())
    });
    c.bench_function("histogram_cascade_100k_rows", |b| {
        b.iter(|| GranularityHistograms::from_sorted_keys(black_box(&sorted), 12))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_micro
}
criterion_main!(benches);
