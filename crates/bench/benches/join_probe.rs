//! Criterion bench for the join probe: serial pair probe vs. the
//! morsel-parallel probe (over serial and partitioned indexes), and the
//! pre-fix Semi/Anti gather-and-discard probe vs. the first-hit existence
//! probe, over the dominant TPC-H probe pair (LINEITEM probing ORDERS'
//! `o_orderkey`). The companion binary `probe_speedup` prints the same
//! comparison as a throughput table with JSON output.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bdcc_bench::{semi_probe_direct, semi_probe_gather_baseline};
use bdcc_exec::hash::JoinIndex;
use bdcc_exec::ParallelConfig;
use bdcc_storage::Column;
use bdcc_tpch::{generate, GenConfig};

fn bench_join_probe(c: &mut Criterion) {
    let db = generate(&GenConfig::new(0.01));
    let li = db.stored_by_name("lineitem").expect("lineitem").clone();
    let ord = db.stored_by_name("orders").expect("orders").clone();
    let col = |t: &std::sync::Arc<bdcc_storage::StoredTable>, n: &str| -> Column {
        t.column_by_name(n).expect("column").as_ref().clone()
    };
    let build_keys = col(&ord, "o_orderkey").as_i64().expect("ints").to_vec();
    let probe_keys = col(&li, "l_orderkey").as_i64().expect("ints").to_vec();
    let left_payload: Vec<Column> = ["l_partkey", "l_suppkey", "l_quantity", "l_extendedprice"]
        .iter()
        .map(|n| col(&li, n))
        .collect();
    let right_payload: Vec<Column> =
        ["o_custkey", "o_totalprice", "o_orderdate"].iter().map(|n| col(&ord, n)).collect();
    let rows = probe_keys.len();
    let probe_cols: Vec<&[i64]> = vec![probe_keys.as_slice()];

    let cfg = ParallelConfig::with_threads(4);
    for (name, build_cfg) in [("serial_idx", None), ("partitioned_idx", Some(&cfg))] {
        let idx = JoinIndex::build(&[&build_keys], build_cfg).expect("build");
        c.bench_function(&format!("join_probe_pairs_serial_{name}"), |b| {
            b.iter(|| black_box(idx.probe_pairs_parallel(&probe_cols, rows, None).unwrap().0.len()))
        });
        c.bench_function(&format!("join_probe_pairs_parallel4_{name}"), |b| {
            b.iter(|| {
                black_box(idx.probe_pairs_parallel(&probe_cols, rows, Some(&cfg)).unwrap().0.len())
            })
        });
    }

    let idx = JoinIndex::build(&[&build_keys], None).expect("build");
    c.bench_function("join_probe_semi_gather_baseline", |b| {
        b.iter(|| {
            black_box(semi_probe_gather_baseline(&idx, &probe_cols, &left_payload, &right_payload))
        })
    });
    c.bench_function("join_probe_semi_exists_direct", |b| {
        b.iter(|| black_box(semi_probe_direct(&idx, &probe_cols)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_join_probe
}
criterion_main!(benches);
