//! Criterion bench for E3 (Figure 2): representative TPC-H queries under
//! the three storage schemes. The full 22-query sweep lives in the
//! `fig2_exec_time` binary; here Criterion measures a selective query
//! (Q6), a star join (Q5) and a sandwich-heavy join (Q10) per scheme.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use bdcc_core::DesignConfig;
use bdcc_exec::{bdcc_scheme, pk_scheme, plain_scheme, QueryContext};
use bdcc_tpch::{all_queries, generate, GenConfig, QueryCtx};

fn bench_queries(c: &mut Criterion) {
    let sf = 0.005;
    let db = generate(&GenConfig::new(sf));
    let schemes = vec![
        Arc::new(plain_scheme(&db)),
        Arc::new(pk_scheme(&db).unwrap()),
        Arc::new(bdcc_scheme(&db, &DesignConfig::default()).unwrap()),
    ];
    let queries = all_queries();
    for qid in [5usize, 6, 10] {
        let q = queries.iter().find(|q| q.id == qid).unwrap();
        for sdb in &schemes {
            let name = format!("q{qid:02}_{}", sdb.scheme.name().to_lowercase());
            c.bench_function(&name, |b| {
                b.iter(|| {
                    let ctx = QueryCtx::new(QueryContext::new(Arc::clone(sdb)), sf);
                    (q.run)(&ctx).unwrap()
                })
            });
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_queries
}
criterion_main!(benches);
