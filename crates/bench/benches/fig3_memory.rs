//! Criterion bench for E4 (Figure 3): the operators whose memory Figure 3
//! contrasts — a full hash join vs the sandwich join on co-clustered
//! inputs (time here; the memory numbers come from the `fig3_memory`
//! binary).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use bdcc_core::DesignConfig;
use bdcc_exec::{bdcc_scheme, plain_scheme, QueryContext};
use bdcc_tpch::{all_queries, generate, GenConfig, QueryCtx};

fn bench_memory_paths(c: &mut Criterion) {
    let sf = 0.005;
    let db = generate(&GenConfig::new(sf));
    let plain = Arc::new(plain_scheme(&db));
    let bdcc = Arc::new(bdcc_scheme(&db, &DesignConfig::default()).unwrap());
    let queries = all_queries();
    // Q13: the paper's flagship sandwich-memory case.
    let q13 = queries.iter().find(|q| q.id == 13).unwrap();
    for (name, sdb) in [("q13_plain_hash", &plain), ("q13_bdcc_sandwich", &bdcc)] {
        c.bench_function(name, |b| {
            b.iter(|| {
                let ctx = QueryCtx::new(QueryContext::new(Arc::clone(sdb)), sf);
                (q13.run)(&ctx).unwrap()
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_memory_paths
}
criterion_main!(benches);
