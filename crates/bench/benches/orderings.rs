//! Criterion bench for E5 ("Other Orderings"): clustering LINEITEM under
//! the three bit-interleaving strategies, and running a representative
//! query on each resulting schema.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use bdcc_core::{DesignConfig, InterleaveStrategy};
use bdcc_exec::{bdcc_scheme, QueryContext};
use bdcc_tpch::{all_queries, generate, GenConfig, QueryCtx};

fn bench_orderings(c: &mut Criterion) {
    let sf = 0.005;
    let db = generate(&GenConfig::new(sf));
    let queries = all_queries();
    let q3 = queries.iter().find(|q| q.id == 3).unwrap();
    for (name, strat) in [
        ("q03_zorder", InterleaveStrategy::RoundRobinPerUse),
        ("q03_major_minor", InterleaveStrategy::MajorMinor),
        ("q03_per_fk", InterleaveStrategy::RoundRobinPerFk),
    ] {
        let mut cfg = DesignConfig::default();
        cfg.selftune.interleave = strat;
        let sdb = Arc::new(bdcc_scheme(&db, &cfg).unwrap());
        c.bench_function(name, |b| {
            b.iter(|| {
                let ctx = QueryCtx::new(QueryContext::new(Arc::clone(&sdb)), sf);
                (q3.run)(&ctx).unwrap()
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_orderings
}
criterion_main!(benches);
