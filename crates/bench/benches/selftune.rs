//! Criterion bench for E7: Algorithm 1 — full self-tuned clustering of the
//! TPC-H LINEITEM table (bit assignment, path resolution, sort,
//! histograms, count table, consolidation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bdcc_core::{cluster_table, create_dimensions, derive_design, DesignConfig};
use bdcc_tpch::{generate, GenConfig};

fn bench_selftune(c: &mut Criterion) {
    let cfg = DesignConfig::default();
    let db = generate(&GenConfig::new(0.005));
    let design = derive_design(db.catalog(), &cfg).unwrap();
    let dims = create_dimensions(&db, &design, &cfg.binning).unwrap();
    let li = db.catalog().table_id("lineitem").unwrap();
    let specs: Vec<_> = design.uses[&li].iter().map(|u| (u.dim, u.path.clone())).collect();
    c.bench_function("algorithm1_cluster_lineitem_sf0.005", |b| {
        b.iter(|| cluster_table(black_box(&db), li, &specs, &dims, &cfg.selftune).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_selftune
}
criterion_main!(benches);
