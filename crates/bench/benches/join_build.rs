//! Criterion bench for the join-index build: the seed's
//! `HashMap<Vec<i64>, Vec<u32>>` baseline vs. the flat allocation-free
//! [`JoinIndex`] (serial and 4-thread partitioned), plus the probe path,
//! over TPC-H LINEITEM join keys. The companion binary `join_speedup`
//! prints the same comparison as a throughput table with JSON output.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bdcc_bench::{baseline_join_build, probe_all};
use bdcc_exec::hash::JoinIndex;
use bdcc_exec::ParallelConfig;
use bdcc_tpch::{generate, GenConfig};

fn bench_join_build(c: &mut Criterion) {
    let db = generate(&GenConfig::new(0.01));
    let li = db.stored_by_name("lineitem").expect("lineitem").clone();
    let okey = li.column_by_name("l_orderkey").expect("col").as_i64().expect("ints").to_vec();
    let pkey = li.column_by_name("l_partkey").expect("col").as_i64().expect("ints").to_vec();

    for (name, key_cols) in
        [("1key", vec![okey.as_slice()]), ("2key", vec![okey.as_slice(), pkey.as_slice()])]
    {
        c.bench_function(&format!("join_build_hashmap_baseline_{name}"), |b| {
            b.iter(|| black_box(baseline_join_build(&key_cols).len()))
        });
        c.bench_function(&format!("join_build_flat_serial_{name}"), |b| {
            b.iter(|| black_box(JoinIndex::build(&key_cols, None).expect("build").len()))
        });
        let cfg = ParallelConfig::with_threads(4);
        c.bench_function(&format!("join_build_flat_parallel4_{name}"), |b| {
            b.iter(|| black_box(JoinIndex::build(&key_cols, Some(&cfg)).expect("build").len()))
        });
        let idx = JoinIndex::build(&key_cols, None).expect("build");
        c.bench_function(&format!("join_probe_flat_{name}"), |b| {
            b.iter(|| black_box(probe_all(&idx, &key_cols)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_join_build
}
criterion_main!(benches);
