//! Minimal hand-rolled JSON emission.
//!
//! The workspace is offline (no serde); this module is the one place JSON
//! is built, replacing the `format!` strings that used to be copy-pasted
//! across the bench bins. Output is *stable*: fields appear exactly in
//! insertion order, numbers use Rust's shortest round-trip formatting,
//! and strings are escaped per RFC 8259 — so exported profiles diff
//! cleanly across runs.

use std::fmt::Write;

/// Escape a string for embedding between JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number (non-finite values become `null`,
/// which JSON has no spelling for).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// JSON object builder with insertion-ordered fields.
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    pub fn new() -> Self {
        Self::default()
    }

    fn key(&mut self, k: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        let _ = write!(self.buf, "\"{}\":", escape(k));
    }

    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        let _ = write!(self.buf, "\"{}\"", escape(v));
        self
    }

    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    pub fn usize(self, k: &str, v: usize) -> Self {
        self.u64(k, v as u64)
    }

    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        self.buf.push_str(&number(v));
        self
    }

    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Embed a pre-rendered JSON value (object, array, …) verbatim.
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// JSON array builder.
#[derive(Debug, Default)]
pub struct Arr {
    buf: String,
}

impl Arr {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a pre-rendered JSON value.
    pub fn push_raw(&mut self, v: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push_str(v);
    }

    pub fn push_str(&mut self, v: &str) {
        self.push_raw(&format!("\"{}\"", escape(v)));
    }

    pub fn push_u64(&mut self, v: u64) {
        self.push_raw(&v.to_string());
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn finish(self) -> String {
        format!("[{}]", self.buf)
    }
}

/// Collect pre-rendered JSON values into an array.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut a = Arr::new();
    for item in items {
        a.push_raw(&item);
    }
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_stable_json() {
        let inner = Obj::new().str("k", "v\"q\\").u64("n", 7).finish();
        let mut arr = Arr::new();
        arr.push_raw(&inner);
        arr.push_u64(3);
        let out = Obj::new()
            .str("name", "x")
            .f64("ratio", 1.5)
            .bool("ok", true)
            .raw("items", &arr.finish())
            .finish();
        assert_eq!(out, r#"{"name":"x","ratio":1.5,"ok":true,"items":[{"k":"v\"q\\","n":7},3]}"#);
    }

    #[test]
    fn escapes_control_chars_and_nonfinite() {
        assert_eq!(escape("a\nb\u{1}"), "a\\nb\\u0001");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(0.25), "0.25");
    }
}
