//! The query-profile data model: live per-operator metric blocks
//! ([`OpMetrics`]), the frozen per-operator tree they are harvested into
//! ([`ProfileNode`]), and the query-level roll-up ([`QueryProfile`]) with
//! its two renderers — the human-readable `EXPLAIN ANALYZE` tree and the
//! stable JSON export.
//!
//! This crate deliberately knows nothing about operators, trackers or
//! pools: the executor owns the live handles (memory tracker, I/O
//! tracker, pool-stats deltas) and copies their final readings into
//! [`ProfileNode`]/[`QueryProfile`] when a query finishes.

use std::sync::{Arc, Mutex};

use crate::json::{Arr, Obj};
use crate::metrics::{Counter, LogHistogram, MaxGauge};

/// Live metric block for one plan operator, shared between the operator
/// and the edge wrappers that observe its inputs and output.
///
/// All fields are relaxed atomics (see the crate overhead contract);
/// `annotations` is the one mutex-guarded member, written only at
/// strategy-decision points (once or twice per operator per query), never
/// in a hot loop.
#[derive(Debug, Default)]
pub struct OpMetrics {
    /// Wall nanoseconds spent inside this operator's `next` calls,
    /// including its children (exclusive time is derived at render).
    pub wall_nanos: Counter,
    /// Batches / rows pulled from all children.
    pub batches_in: Counter,
    pub rows_in: Counter,
    /// Batches / rows returned to the parent.
    pub batches_out: Counter,
    pub rows_out: Counter,
    /// Morsels executed on the worker pool for this operator, and the
    /// rows those morsels covered.
    pub morsels: Counter,
    pub morsel_rows: Counter,
    /// High-water mark of the streaming reorder buffer (batches), for
    /// operators that use one.
    pub occupancy_hwm: MaxGauge,
    /// Scan blocks skipped by MinMax pruning.
    pub blocks_skipped: Counter,
    /// Scan blocks the encoded-path kernel eliminated without evaluating a
    /// single row (dictionary miss or constant-block stats).
    pub enc_skipped: Counter,
    /// Out-of-core activity (spill-capable operators under a memory
    /// broker): partitions frozen to temp files, bytes written to them,
    /// and bytes read back during restore.
    pub spill_partitions: Counter,
    pub spill_bytes: Counter,
    pub spill_restore_bytes: Counter,
    /// Latency distribution of this operator's `next` calls.
    pub next_nanos: LogHistogram,
    /// Latency distribution of this operator's pool morsels.
    pub morsel_nanos: LogHistogram,
    annotations: Mutex<Vec<(String, String)>>,
}

impl OpMetrics {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record a strategy decision or estimate (e.g. `strategy=radix`,
    /// `est_groups_per_morsel=3.1`). Re-annotating a key replaces its
    /// value; first-insertion order is preserved.
    pub fn annotate(&self, key: &str, value: impl Into<String>) {
        let value = value.into();
        let mut anns = self.annotations.lock().unwrap();
        if let Some(slot) = anns.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            anns.push((key.to_string(), value));
        }
    }

    pub fn annotations(&self) -> Vec<(String, String)> {
        self.annotations.lock().unwrap().clone()
    }
}

/// Frozen measurements of one operator, plus its children: one node of
/// the `EXPLAIN ANALYZE` tree.
#[derive(Debug, Clone, Default)]
pub struct ProfileNode {
    /// Operator label, e.g. `Aggregate(parallel)` or `Scan(lineitem)`.
    pub label: String,
    pub wall_nanos: u64,
    pub batches_in: u64,
    pub rows_in: u64,
    pub batches_out: u64,
    pub rows_out: u64,
    pub morsels: u64,
    pub morsel_rows: u64,
    pub occupancy_hwm: u64,
    /// Scan blocks skipped by MinMax pruning / by the encoded-path kernel
    /// without row evaluation (dict miss, constant-block stats).
    pub blocks_skipped: u64,
    pub enc_skipped: u64,
    /// Out-of-core activity: partitions frozen to temp files, bytes
    /// written, bytes restored.
    pub spill_partitions: u64,
    pub spill_bytes: u64,
    pub spill_restore_bytes: u64,
    /// Peak memory tracked by this operator's (and its descendants')
    /// allocations, bytes.
    pub peak_memory: u64,
    /// I/O attributed to this subtree (normally only `Scan` leaves are
    /// nonzero).
    pub io_bytes: u64,
    pub io_random_seeks: u64,
    pub io_sequential: u64,
    /// Strategy decisions and estimates, in decision order.
    pub annotations: Vec<(String, String)>,
    /// `next` latency histogram: `(inclusive upper bound nanos, count)`.
    pub next_nanos: Vec<(u64, u64)>,
    /// Morsel latency histogram, same encoding.
    pub morsel_nanos: Vec<(u64, u64)>,
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Copy the final readings of a live metric block into a frozen node.
    /// The caller supplies tracker-derived values (`peak_memory`, I/O)
    /// since this crate holds no tracker handles.
    pub fn from_metrics(label: String, m: &OpMetrics, children: Vec<ProfileNode>) -> Self {
        Self {
            label,
            wall_nanos: m.wall_nanos.get(),
            batches_in: m.batches_in.get(),
            rows_in: m.rows_in.get(),
            batches_out: m.batches_out.get(),
            rows_out: m.rows_out.get(),
            morsels: m.morsels.get(),
            morsel_rows: m.morsel_rows.get(),
            occupancy_hwm: m.occupancy_hwm.get(),
            blocks_skipped: m.blocks_skipped.get(),
            enc_skipped: m.enc_skipped.get(),
            spill_partitions: m.spill_partitions.get(),
            spill_bytes: m.spill_bytes.get(),
            spill_restore_bytes: m.spill_restore_bytes.get(),
            peak_memory: 0,
            io_bytes: 0,
            io_random_seeks: 0,
            io_sequential: 0,
            annotations: m.annotations(),
            next_nanos: m.next_nanos.snapshot(),
            morsel_nanos: m.morsel_nanos.snapshot(),
            children,
        }
    }

    /// Wall nanoseconds minus the children's wall nanoseconds: time
    /// attributable to this operator alone. Saturating, because with
    /// pipelined parallel children the inclusive times of parent and
    /// child overlap.
    pub fn exclusive_nanos(&self) -> u64 {
        self.wall_nanos.saturating_sub(self.children.iter().map(|c| c.wall_nanos).sum())
    }

    fn render_into(&self, out: &mut String, prefix: &str, last: bool, root: bool) {
        let (branch, cont) = if root {
            ("", "")
        } else if last {
            ("└─ ", "   ")
        } else {
            ("├─ ", "│  ")
        };
        out.push_str(prefix);
        out.push_str(branch);
        out.push_str(&self.label);
        out.push_str(&format!(
            "  time={:.3}ms ({:.3}ms self)",
            self.wall_nanos as f64 / 1e6,
            self.exclusive_nanos() as f64 / 1e6
        ));
        out.push_str(&format!(
            "  rows={}\u{2192}{} batches={}\u{2192}{}",
            self.rows_in, self.rows_out, self.batches_in, self.batches_out
        ));
        if self.morsels > 0 {
            out.push_str(&format!("  morsels={} ({} rows)", self.morsels, self.morsel_rows));
        }
        if self.occupancy_hwm > 0 {
            out.push_str(&format!("  stream_hwm={}", self.occupancy_hwm));
        }
        if self.blocks_skipped > 0 || self.enc_skipped > 0 {
            out.push_str(&format!(
                "  skipped={} (enc {})",
                self.blocks_skipped + self.enc_skipped,
                self.enc_skipped
            ));
        }
        if self.spill_partitions > 0 {
            out.push_str(&format!(
                "  spilled={} parts ({} out, {} back)",
                self.spill_partitions,
                human_bytes(self.spill_bytes),
                human_bytes(self.spill_restore_bytes)
            ));
        }
        if self.peak_memory > 0 {
            out.push_str(&format!("  mem={}", human_bytes(self.peak_memory)));
        }
        if self.io_bytes > 0 {
            out.push_str(&format!(
                "  io={} ({} seq, {} rand)",
                human_bytes(self.io_bytes),
                self.io_sequential,
                self.io_random_seeks
            ));
        }
        if !self.annotations.is_empty() {
            let anns: Vec<String> =
                self.annotations.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.push_str(&format!("  [{}]", anns.join(" ")));
        }
        out.push('\n');
        let child_prefix = format!("{prefix}{cont}");
        for (i, child) in self.children.iter().enumerate() {
            child.render_into(out, &child_prefix, i + 1 == self.children.len(), false);
        }
    }

    /// Stable JSON: fixed key order, histograms as `[upper, count]`
    /// pairs, children recursively.
    pub fn to_json(&self) -> String {
        let mut children = Arr::new();
        for c in &self.children {
            children.push_raw(&c.to_json());
        }
        let mut anns = Obj::new();
        for (k, v) in &self.annotations {
            anns = anns.str(k, v);
        }
        Obj::new()
            .str("op", &self.label)
            .u64("wall_nanos", self.wall_nanos)
            .u64("self_nanos", self.exclusive_nanos())
            .u64("rows_in", self.rows_in)
            .u64("rows_out", self.rows_out)
            .u64("batches_in", self.batches_in)
            .u64("batches_out", self.batches_out)
            .u64("morsels", self.morsels)
            .u64("morsel_rows", self.morsel_rows)
            .u64("stream_hwm", self.occupancy_hwm)
            .u64("blocks_skipped", self.blocks_skipped)
            .u64("enc_skipped", self.enc_skipped)
            .u64("spill_partitions", self.spill_partitions)
            .u64("spill_bytes", self.spill_bytes)
            .u64("spill_restore_bytes", self.spill_restore_bytes)
            .u64("peak_memory", self.peak_memory)
            .u64("io_bytes", self.io_bytes)
            .u64("io_sequential", self.io_sequential)
            .u64("io_random_seeks", self.io_random_seeks)
            .raw("annotations", &anns.finish())
            .raw("next_nanos_hist", &hist_json(&self.next_nanos))
            .raw("morsel_nanos_hist", &hist_json(&self.morsel_nanos))
            .raw("children", &children.finish())
            .finish()
    }

    /// Depth-first walk over the tree (self included).
    pub fn walk<'a>(&'a self, visit: &mut dyn FnMut(&'a ProfileNode)) {
        visit(self);
        for c in &self.children {
            c.walk(visit);
        }
    }
}

/// A complete query profile: the operator tree plus query-level roll-ups
/// and pool telemetry, as collected by the executor's `QueryContext`.
#[derive(Debug, Clone, Default)]
pub struct QueryProfile {
    pub root: ProfileNode,
    /// End-to-end wall nanoseconds (plan + execute + collect).
    pub wall_nanos: u64,
    /// Query-level peak tracked memory, bytes.
    pub peak_memory: u64,
    /// Query-level I/O model counters.
    pub io_bytes: u64,
    pub io_random_seeks: u64,
    pub io_sequential: u64,
    /// Worker-pool telemetry for the query's span, as `(counter, delta)`
    /// pairs — e.g. `("jobs", 420)`, `("steals", 17)`.
    pub pool: Vec<(String, u64)>,
}

impl QueryProfile {
    /// Render the human-readable `EXPLAIN ANALYZE` tree.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "query: time={:.3}ms mem={} io={} ({} seq, {} rand)\n",
            self.wall_nanos as f64 / 1e6,
            human_bytes(self.peak_memory),
            human_bytes(self.io_bytes),
            self.io_sequential,
            self.io_random_seeks
        ));
        if !self.pool.is_empty() {
            let cells: Vec<String> = self.pool.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.push_str(&format!("pool: {}\n", cells.join(" ")));
        }
        self.root.render_into(&mut out, "", true, true);
        out
    }

    /// Stable JSON export (same data as [`render`](Self::render)).
    pub fn to_json(&self) -> String {
        let mut pool = Obj::new();
        for (k, v) in &self.pool {
            pool = pool.u64(k, *v);
        }
        Obj::new()
            .u64("wall_nanos", self.wall_nanos)
            .u64("peak_memory", self.peak_memory)
            .u64("io_bytes", self.io_bytes)
            .u64("io_sequential", self.io_sequential)
            .u64("io_random_seeks", self.io_random_seeks)
            .raw("pool", &pool.finish())
            .raw("plan", &self.root.to_json())
            .finish()
    }
}

fn hist_json(hist: &[(u64, u64)]) -> String {
    let mut arr = Arr::new();
    for &(upper, count) in hist {
        arr.push_raw(&format!("[{upper},{count}]"));
    }
    arr.finish()
}

fn human_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.2}MB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(label: &str, rows_out: u64) -> ProfileNode {
        ProfileNode { label: label.to_string(), rows_out, ..Default::default() }
    }

    #[test]
    fn annotate_replaces_and_preserves_order() {
        let m = OpMetrics::new();
        m.annotate("strategy", "radix");
        m.annotate("est", "3.5");
        m.annotate("strategy", "partial-merge");
        assert_eq!(
            m.annotations(),
            vec![
                ("strategy".to_string(), "partial-merge".to_string()),
                ("est".to_string(), "3.5".to_string()),
            ]
        );
    }

    #[test]
    fn render_draws_tree_branches() {
        let profile = QueryProfile {
            root: ProfileNode {
                label: "Join(hash)".into(),
                wall_nanos: 2_000_000,
                children: vec![leaf("Scan(a)", 10), leaf("Scan(b)", 20)],
                ..Default::default()
            },
            wall_nanos: 2_500_000,
            ..Default::default()
        };
        let text = profile.render();
        assert!(text.contains("Join(hash)"));
        assert!(text.contains("├─ Scan(a)"));
        assert!(text.contains("└─ Scan(b)"));
    }

    #[test]
    fn json_export_is_stable() {
        let profile = QueryProfile {
            root: ProfileNode {
                label: "Scan(t)".into(),
                rows_out: 5,
                annotations: vec![("path".into(), "serial".into())],
                ..Default::default()
            },
            ..Default::default()
        };
        let a = profile.to_json();
        let b = profile.to_json();
        assert_eq!(a, b);
        assert!(a.contains(r#""op":"Scan(t)""#));
        assert!(a.contains(r#""annotations":{"path":"serial"}"#));
    }

    #[test]
    fn exclusive_time_saturates() {
        let mut n = leaf("X", 0);
        n.wall_nanos = 10;
        n.children = vec![ProfileNode { wall_nanos: 25, ..leaf("Y", 0) }];
        assert_eq!(n.exclusive_nanos(), 0);
    }
}
