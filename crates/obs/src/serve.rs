//! Serving-layer telemetry: one [`ServeMetrics`] block per
//! [`Server`](../bdcc_exec/serve/struct.Server.html), counting every
//! admission decision and query outcome, plus latency histograms for
//! queue wait and execution time.
//!
//! Same overhead contract as the rest of the crate: relaxed atomics
//! touched once per *query* (admission, completion), never inside the
//! execution hot path. The counters are monotone, so a snapshot taken
//! while sessions are still running is a consistent lower bound.

use crate::metrics::{Counter, LogHistogram};

/// Counters and latency histograms for one serving endpoint.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Queries offered to the server (admitted + rejected).
    pub submitted: Counter,
    /// Queries that entered the admission queue.
    pub admitted: Counter,
    /// Queries bounced with `Overloaded` (queue at capacity).
    pub rejected: Counter,
    /// Queries that ran to completion and produced a result batch.
    pub completed: Counter,
    /// Queries that ended with a typed non-success outcome.
    pub cancelled: Counter,
    pub deadline_exceeded: Counter,
    pub budget_exceeded: Counter,
    /// Injected faults surfaced as typed errors.
    pub injected: Counter,
    /// Worker panics caught and converted to typed errors.
    pub panicked: Counter,
    /// Other execution errors.
    pub failed: Counter,
    /// Nanoseconds a query waited between admission and execution start.
    pub queue_wait_nanos: LogHistogram,
    /// Nanoseconds of query execution (successful or not).
    pub exec_nanos: LogHistogram,
}

impl ServeMetrics {
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    /// Queries currently in flight cannot be counted from monotone
    /// counters; this is the terminal tally (everything admitted that
    /// has reached *some* outcome).
    pub fn finished(&self) -> u64 {
        self.completed.get()
            + self.cancelled.get()
            + self.deadline_exceeded.get()
            + self.budget_exceeded.get()
            + self.injected.get()
            + self.panicked.get()
            + self.failed.get()
    }

    /// `(name, value)` pairs for report rendering, in a stable order.
    pub fn pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("submitted", self.submitted.get()),
            ("admitted", self.admitted.get()),
            ("rejected", self.rejected.get()),
            ("completed", self.completed.get()),
            ("cancelled", self.cancelled.get()),
            ("deadline_exceeded", self.deadline_exceeded.get()),
            ("budget_exceeded", self.budget_exceeded.get()),
            ("injected", self.injected.get()),
            ("panicked", self.panicked.get()),
            ("failed", self.failed.get()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finished_sums_terminal_outcomes() {
        let m = ServeMetrics::new();
        m.submitted.add(5);
        m.admitted.add(4);
        m.rejected.add(1);
        m.completed.add(2);
        m.deadline_exceeded.add(1);
        m.panicked.add(1);
        assert_eq!(m.finished(), 4);
        let pairs = m.pairs();
        assert_eq!(pairs[0], ("submitted", 5));
        assert_eq!(pairs[2], ("rejected", 1));
    }
}
