//! # bdcc-obs — low-overhead observability core for the BDCC engine
//!
//! The execution engine (`bdcc-exec`) reproduces the paper's evaluation
//! numbers, but until this crate existed it reported only end-to-end wall
//! clock. `bdcc-obs` is the instrumentation substrate underneath the
//! engine's `EXPLAIN ANALYZE`: metric primitives, the [`profile`] data
//! model that per-operator measurements are collected into, and the
//! dependency-free [`json`] builder its stable export (and the bench
//! harness) is rendered with.
//!
//! Like `bdcc-pool`, this crate sits at the bottom of the workspace and
//! depends on nothing, so every layer — pool, storage, executor, bench —
//! can record into it without dependency cycles.
//!
//! ## Overhead contract
//!
//! Profiling must never perturb the execution it measures:
//!
//! * **Disabled means absent.** When profiling is off, no metric object
//!   is allocated and no instrumented wrapper is installed; the engine
//!   runs the exact same code as before this crate existed. There is no
//!   "disabled counter" that still costs an atomic — the cost of
//!   disabled profiling is zero by construction.
//! * **Enabled means relaxed atomics.** [`metrics::Counter`] and
//!   [`metrics::MaxGauge`] are single relaxed atomic operations.
//!   Operators touch them once per *batch* or once per *morsel*, never
//!   per row.
//! * **Hot loops never touch a shared lock.** [`metrics::LogHistogram`]
//!   records into per-thread buffers (see below); its only lock is taken
//!   once per thread per histogram, on first use, to register the
//!   thread's buffer for later aggregation.
//! * **Results are byte-identical.** Instrumentation observes; it never
//!   feeds back into planning or scheduling. The engine's equivalence
//!   suite asserts profiled and unprofiled runs produce identical
//!   batches.
//!
//! ## Per-thread buffer contract
//!
//! A [`metrics::LogHistogram`] is a set of *shards*, one per recording
//! thread. A thread-local cache maps histogram identity to the calling
//! thread's shard: the fast path (cache hit) is a relaxed increment of a
//! plain `AtomicU64` bucket that no other thread writes, i.e. an
//! uncontended store. Only the first record from a new thread takes the
//! registry mutex to publish its shard. [`metrics::LogHistogram::snapshot`]
//! sums the shards; because counts are monotone, a snapshot taken while
//! workers are still recording is a consistent lower bound, and one taken
//! after the pool has quiesced (the engine always does) is exact.

pub mod json;
pub mod metrics;
pub mod profile;
pub mod serve;

pub use metrics::{Counter, LogHistogram, MaxGauge, SpanTimer};
pub use profile::{OpMetrics, ProfileNode, QueryProfile};
pub use serve::ServeMetrics;
