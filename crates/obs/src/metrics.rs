//! Metric primitives: relaxed-atomic counters and gauges, monotonic-clock
//! spans, and log-bucketed histograms with per-thread shards.
//!
//! Everything here is safe to hammer from operator hot loops; see the
//! crate docs for the overhead and per-thread-buffer contracts.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Monotonically increasing event/row counter.
///
/// A single relaxed `fetch_add`; on x86 an uncontended `lock xadd`.
/// Operators add once per batch or morsel, never per row.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// High-water mark: remembers the largest value ever recorded.
#[derive(Debug, Default)]
pub struct MaxGauge(AtomicU64);

impl MaxGauge {
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    #[inline]
    pub fn record(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Monotonic-clock span: started once, read in integer nanoseconds.
///
/// A thin wrapper over [`Instant`] so call sites read as instrumentation
/// (and so the clock source is swappable in one place).
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer(Instant);

impl SpanTimer {
    #[inline]
    pub fn start() -> Self {
        Self(Instant::now())
    }

    /// Nanoseconds since [`SpanTimer::start`], saturated to `u64`
    /// (584 years of span; saturation is theoretical).
    #[inline]
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Number of log2 buckets in a [`LogHistogram`]: bucket 0 holds the value
/// 0, bucket `b >= 1` holds values in `[2^(b-1), 2^b)`.
pub const HIST_BUCKETS: usize = 64;

/// One thread's private bucket array. Buckets are `AtomicU64` only so the
/// aggregating thread can read them without `unsafe`; the recording
/// thread is the sole writer, so its increments are uncontended stores.
#[derive(Debug)]
struct Shard {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Shard {
    fn new() -> Arc<Self> {
        Arc::new(Self { buckets: std::array::from_fn(|_| AtomicU64::new(0)) })
    }
}

/// Histogram identities are process-global and never reused, so a
/// thread-local cache entry can never alias a new histogram.
static NEXT_HIST_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread map from histogram id to this thread's shard. A linear
    /// scan: a thread records into a handful of live histograms, and dead
    /// entries are pruned on every miss.
    static SHARD_CACHE: RefCell<Vec<(u64, Arc<Shard>)>> = const { RefCell::new(Vec::new()) };
}

/// Log-bucketed latency histogram with per-thread shards.
///
/// [`record`](Self::record) from a thread that has recorded before is a
/// bucket lookup in a thread-local vector plus one uncontended atomic
/// increment — no shared lock, no contended cache line. The first record
/// from a new thread allocates that thread's shard and registers it under
/// the histogram's mutex (once per thread per histogram).
#[derive(Debug)]
pub struct LogHistogram {
    id: u64,
    shards: Mutex<Vec<Arc<Shard>>>,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    pub fn new() -> Self {
        Self { id: NEXT_HIST_ID.fetch_add(1, Ordering::Relaxed), shards: Mutex::new(Vec::new()) }
    }

    #[inline]
    fn bucket_of(value: u64) -> usize {
        ((u64::BITS - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    /// Record one observation (e.g. a span's nanoseconds).
    #[inline]
    pub fn record(&self, value: u64) {
        let b = Self::bucket_of(value);
        SHARD_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, shard)) = cache.iter().find(|(id, _)| *id == self.id) {
                shard.buckets[b].fetch_add(1, Ordering::Relaxed);
                return;
            }
            // Slow path: first record from this thread. Prune entries for
            // histograms that were dropped (the cache then holds the last
            // strong reference to their shard), then register a new shard.
            cache.retain(|(_, s)| Arc::strong_count(s) > 1);
            let shard = Shard::new();
            shard.buckets[b].fetch_add(1, Ordering::Relaxed);
            self.shards.lock().unwrap().push(Arc::clone(&shard));
            cache.push((self.id, shard));
        });
    }

    /// Sum all per-thread shards into `(inclusive upper bound, count)`
    /// pairs for the non-empty buckets, in increasing bucket order.
    ///
    /// Exact once recording threads have quiesced; a consistent lower
    /// bound while they have not (counts are monotone).
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut totals = [0u64; HIST_BUCKETS];
        for shard in self.shards.lock().unwrap().iter() {
            for (t, b) in totals.iter_mut().zip(shard.buckets.iter()) {
                *t += b.load(Ordering::Relaxed);
            }
        }
        totals
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(b, &n)| {
                let upper = match b {
                    0 => 0,
                    _ if b == HIST_BUCKETS - 1 => u64::MAX,
                    _ => (1u64 << b) - 1,
                };
                (upper, n)
            })
            .collect()
    }

    /// Total number of recorded observations across all threads.
    pub fn count(&self) -> u64 {
        self.snapshot().iter().map(|&(_, n)| n).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge() {
        let c = Counter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
        let g = MaxGauge::new();
        g.record(5);
        g.record(2);
        g.record(9);
        g.record(1);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_bucket_bounds() {
        let h = LogHistogram::new();
        h.record(0); // bucket 0, upper 0
        h.record(1); // bucket 1, upper 1
        h.record(2); // bucket 2, upper 3
        h.record(3); // bucket 2, upper 3
        h.record(1024); // bucket 11, upper 2047
        assert_eq!(h.snapshot(), vec![(0, 1), (1, 1), (3, 2), (2047, 1)]);
        assert_eq!(h.count(), 5);
        // Saturated bucket: a u64::MAX observation must not overflow.
        h.record(u64::MAX);
        assert_eq!(h.snapshot().last(), Some(&(u64::MAX, 1)));
    }

    #[test]
    fn histogram_from_many_threads() {
        let h = Arc::new(LogHistogram::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn dead_histograms_are_pruned_from_thread_cache() {
        // Churn histograms on one thread; the cache prunes dropped
        // entries on each miss, so shard memory cannot accumulate.
        for _ in 0..64 {
            let h = LogHistogram::new();
            h.record(1);
            assert_eq!(h.count(), 1);
        }
        SHARD_CACHE.with(|c| assert!(c.borrow().len() < 64));
    }
}
