//! # bdcc-pool — the persistent worker pool
//!
//! One long-lived set of parked worker threads shared by everything in
//! the workspace that fans work out: BDCC schema clustering
//! (`bdcc-core::autodesign`) and the whole morsel-driven execution
//! subsystem (`bdcc-exec::parallel`). Before this crate, every fan-out
//! paid thread create/join (`std::thread::scope` per call, roughly tens
//! of microseconds per round); now the only threads ever spawned live in
//! [`pool`], are created once on first demand, and are reused by every
//! subsequent fan-out of any width.
//!
//! The crate is intentionally at the bottom of the workspace dependency
//! graph (no dependencies, generic over the caller's error type), so both
//! the clustering layer and the executor route through the *same* shared
//! pool — see [`WorkerPool::shared`].
//!
//! The two execution shapes, their contracts and the thread-lending rule
//! that makes nested fan-outs deadlock-free are documented on [`pool`].
//!
//! Robustness plumbing lives beside the pool: [`cancel`] provides the
//! cooperative [`CancelToken`] the serving layer threads through query
//! execution, and [`inject`] the opt-in [`FaultInjector`] consulted at
//! pool-job boundaries when a process explicitly installs one.

pub mod cancel;
pub mod inject;
pub mod pool;

pub use cancel::{CancelReason, CancelToken};
pub use inject::{Fault, FaultInjector, FaultPlan};
pub use pool::{scope_run_spawning, OrderedStream, PoolFailure, PoolStats, WorkerPool};
