//! Probabilistic fault injection for robustness testing.
//!
//! A [`FaultInjector`] rolls a deterministic per-process RNG at
//! well-known *sites* (pool job boundaries, operator morsel loops) and
//! occasionally produces a [`Fault`]: an artificial delay, a simulated
//! I/O error, or a worker panic. Probabilities come from a
//! [`FaultPlan`], normally parsed from the `BDCC_INJECT` environment
//! variable:
//!
//! ```text
//! BDCC_INJECT="delay=0.05,delay_us=200,err=0.02,panic=0.005,seed=42"
//! ```
//!
//! * `delay` — probability a checkpoint sleeps for `delay_us` µs;
//! * `err` — probability a checkpoint reports a simulated I/O error;
//! * `panic` — probability a checkpoint (or pool job) panics;
//! * `seed` — RNG seed, so a failing stress run can be replayed.
//!
//! Injection is **opt-in at every level**. The pool never reads the
//! environment on its own: a process that wants faults at pool-job
//! boundaries calls [`install_global`] explicitly (the `qps_serve`
//! bench bin does this), and query-level injection is threaded through
//! the executor's governor via a builder API. This keeps ordinary
//! builds and the schema-autodesign setup fan-outs fault-free even
//! when tests in the same process are injecting faults elsewhere.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// A fault chosen by the injector at some checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Sleep for the given duration, then continue normally.
    Delay(Duration),
    /// Report a simulated (recoverable) I/O error.
    Error(String),
    /// Panic with the given message (exercises unwind paths).
    Panic(String),
}

/// Fault probabilities in parts-per-million, plus the RNG seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Probability of an injected delay, in parts per million.
    pub delay_ppm: u32,
    /// Duration of an injected delay, in microseconds.
    pub delay_us: u64,
    /// Probability of a simulated I/O error, in parts per million.
    pub err_ppm: u32,
    /// Probability of an injected panic, in parts per million.
    pub panic_ppm: u32,
    /// RNG seed; fixed so stress failures replay deterministically.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan { delay_ppm: 0, delay_us: 100, err_ppm: 0, panic_ppm: 0, seed: 0x5eed_f417 }
    }
}

fn prob_to_ppm(key: &str, v: &str) -> Result<u32, String> {
    let p: f64 = v.parse().map_err(|_| format!("BDCC_INJECT: `{key}={v}` is not a number"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("BDCC_INJECT: `{key}={v}` must be a probability in [0, 1]"));
    }
    Ok((p * 1_000_000.0).round() as u32)
}

impl FaultPlan {
    /// Parse a `key=value` comma-separated spec (the `BDCC_INJECT`
    /// format documented on this module). Unknown keys are rejected so
    /// a typo'd axis fails loudly instead of silently injecting nothing.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("BDCC_INJECT: expected key=value, got `{part}`"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "delay" => plan.delay_ppm = prob_to_ppm(key, value)?,
                "err" => plan.err_ppm = prob_to_ppm(key, value)?,
                "panic" => plan.panic_ppm = prob_to_ppm(key, value)?,
                "delay_us" => {
                    plan.delay_us = value
                        .parse()
                        .map_err(|_| format!("BDCC_INJECT: `delay_us={value}` is not an integer"))?
                }
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("BDCC_INJECT: `seed={value}` is not an integer"))?
                }
                _ => return Err(format!("BDCC_INJECT: unknown key `{key}`")),
            }
        }
        if plan.delay_ppm as u64 + plan.err_ppm as u64 + plan.panic_ppm as u64 > 1_000_000 {
            return Err("BDCC_INJECT: delay + err + panic probabilities exceed 1.0".to_string());
        }
        Ok(plan)
    }

    /// Read the plan from `BDCC_INJECT`; `Ok(None)` when unset/empty.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var("BDCC_INJECT") {
            Ok(spec) if !spec.trim().is_empty() => FaultPlan::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    fn total_ppm(&self) -> u32 {
        self.delay_ppm + self.err_ppm + self.panic_ppm
    }
}

/// Rolls the plan's probabilities at checkpoints. One shared atomic
/// xorshift RNG keeps the fault sequence deterministic per seed
/// regardless of which thread hits a checkpoint (the *assignment* of
/// faults to sites still varies with scheduling, as it should).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: AtomicU64,
    delays: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> FaultInjector {
        // xorshift needs a non-zero state.
        let state = plan.seed | 1;
        FaultInjector {
            plan,
            rng: AtomicU64::new(state),
            delays: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// (delays, simulated errors, panics) injected so far.
    pub fn counts(&self) -> (u64, u64, u64) {
        (
            self.delays.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.panics.load(Ordering::Relaxed),
        )
    }

    fn next_ppm(&self) -> u32 {
        // Relaxed fetch_update xorshift64: racy interleavings only
        // reorder the stream, every draw still comes from it.
        let mut x = self.rng.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.store(x, Ordering::Relaxed);
        (x % 1_000_000) as u32
    }

    /// Roll the dice at a checkpoint. `allow_error` is false at sites
    /// that have no error channel (pool job boundaries), where the
    /// error share of the roll is skipped rather than repurposed.
    pub fn fault_at(&self, site: &'static str, allow_error: bool) -> Option<Fault> {
        if self.plan.total_ppm() == 0 {
            return None;
        }
        let roll = self.next_ppm();
        if roll < self.plan.delay_ppm {
            self.delays.fetch_add(1, Ordering::Relaxed);
            return Some(Fault::Delay(Duration::from_micros(self.plan.delay_us)));
        }
        let roll = roll - self.plan.delay_ppm;
        if roll < self.plan.err_ppm {
            if !allow_error {
                return None;
            }
            self.errors.fetch_add(1, Ordering::Relaxed);
            return Some(Fault::Error(format!("injected i/o error at {site}")));
        }
        let roll = roll - self.plan.err_ppm;
        if roll < self.plan.panic_ppm {
            self.panics.fetch_add(1, Ordering::Relaxed);
            return Some(Fault::Panic(format!("injected panic at {site}")));
        }
        None
    }

    /// Checkpoint for sites with no error channel: applies a delay
    /// inline, panics on an injected panic, ignores the error share.
    pub fn job_boundary(&self, site: &'static str) {
        match self.fault_at(site, false) {
            Some(Fault::Delay(d)) => std::thread::sleep(d),
            Some(Fault::Panic(msg)) => panic!("{msg}"),
            _ => {}
        }
    }
}

static GLOBAL: OnceLock<Arc<FaultInjector>> = OnceLock::new();

/// Install a process-global injector consulted at pool-job boundaries.
/// First call wins; returns `false` if one was already installed.
/// Never installed implicitly — see the module docs.
pub fn install_global(injector: Arc<FaultInjector>) -> bool {
    GLOBAL.set(injector).is_ok()
}

/// The process-global injector, if [`install_global`] was called.
pub fn global() -> Option<&'static Arc<FaultInjector>> {
    GLOBAL.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse("delay=0.05, delay_us=200, err=0.02, panic=0.005, seed=42")
            .expect("valid spec");
        assert_eq!(p.delay_ppm, 50_000);
        assert_eq!(p.delay_us, 200);
        assert_eq!(p.err_ppm, 20_000);
        assert_eq!(p.panic_ppm, 5_000);
        assert_eq!(p.seed, 42);
    }

    #[test]
    fn parse_rejects_junk() {
        assert!(FaultPlan::parse("delay=2").is_err());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("delay").is_err());
        assert!(FaultPlan::parse("delay=0.9,err=0.9").is_err());
        assert!(FaultPlan::parse("").expect("empty is default").total_ppm() == 0);
    }

    #[test]
    fn injector_respects_probabilities() {
        let mut plan = FaultPlan::parse("err=0.5,seed=7").unwrap();
        plan.delay_us = 0;
        let inj = FaultInjector::new(plan);
        let mut errs = 0;
        for _ in 0..10_000 {
            match inj.fault_at("test", true) {
                Some(Fault::Error(msg)) => {
                    assert!(msg.contains("test"));
                    errs += 1;
                }
                Some(other) => panic!("unexpected fault {other:?}"),
                None => {}
            }
        }
        // 50% ± generous slack; xorshift is uniform enough for this.
        assert!((3_500..=6_500).contains(&errs), "errs = {errs}");
        assert_eq!(inj.counts().1, errs);
    }

    #[test]
    fn error_share_skipped_without_error_channel() {
        let plan = FaultPlan::parse("err=1.0,seed=3").unwrap();
        let inj = FaultInjector::new(plan);
        for _ in 0..100 {
            assert_eq!(inj.fault_at("pool", false), None);
        }
        assert_eq!(inj.counts(), (0, 0, 0));
    }

    #[test]
    fn zero_plan_is_free_of_faults() {
        let inj = FaultInjector::new(FaultPlan::default());
        for _ in 0..100 {
            assert_eq!(inj.fault_at("x", true), None);
        }
    }
}
