//! The persistent work-stealing worker pool.
//!
//! ## Architecture
//!
//! A [`WorkerPool`] owns a set of long-lived worker threads that park on a
//! condition variable when idle. Work arrives as index-addressed **jobs**
//! in two kinds of queues:
//!
//! * an **injector** — the FIFO entry point for streaming work
//!   ([`OrderedStream`] submits one job per in-flight morsel here);
//! * **per-worker deques** — blocking fan-outs ([`WorkerPool::scope_run`])
//!   seed their task indices round-robin across a window of worker deques
//!   (neighbouring, usually similarly sized morsels spread across
//!   workers). A worker pops from the *front* of its own deque and, when
//!   empty, takes from the injector or steals from the *back* of a
//!   victim's deque — the classic discipline, implemented with mutexed
//!   deques, which is plenty at morsel granularity (a task is thousands
//!   of rows; queue operations are a rounding error next to task bodies).
//!
//! Workers are spawned lazily ([`WorkerPool::ensure_workers`]) and only
//! ever *grow* to the largest width any caller asked for; after that
//! warm-up no OS thread is ever created again ([`WorkerPool::stats`]
//! exposes the monotone spawn counter that pins this in tests). Sharing
//! cuts the other way too: every fan-out carries a **claim gate** capping
//! its concurrent task bodies at the width it asked for, so a narrow
//! fan-out stays narrow even when a wider warm-up left extra workers
//! idle — stealing never runs a fan-out wider than its configuration.
//! Dropping a pool shuts it down gracefully: workers finish the queued
//! jobs, park out, and are joined.
//!
//! ## Blocking fan-outs and the thread-lending rule
//!
//! [`scope_run`](WorkerPool::scope_run) runs `task(0..ntasks)` and blocks
//! until every task finished, returning results **in task order** —
//! whatever order workers finished in — the property every merge in the
//! execution subsystem relies on for determinism. While it waits, the
//! calling thread is **lent to the pool**: it first drains its own
//! scope's unstarted tasks, then runs any other queued job, and only
//! parks when there is nothing runnable anywhere. Lending is what makes
//! *nested* fan-outs deadlock-free: a task that itself calls `scope_run`
//! (a probe round issued while a streaming scan's producers are live, an
//! oversized sandwich group inside a probe) always has at least one
//! thread — its own caller — making progress on its sub-tasks, so a
//! bottom-most scope can always finish, unwinding the whole stack of
//! waiters. (Each *blocked* scope therefore keeps exactly its caller
//! busy; no thread ever sleeps while runnable work exists.)
//!
//! Error/panic contract (identical to the scoped-thread implementation it
//! replaced, [`scope_run_spawning`]): the first task error — in task
//! order — is returned after every claimed task ran or was skipped; once
//! any task errs, workers stop *starting* this scope's tasks. A panicking
//! task is re-raised on the calling thread after the scope drains.
//!
//! Because scope tasks may borrow the caller's stack (the closure is not
//! `'static`), scope jobs are type-erased behind raw pointers; safety
//! rests on `scope_run` not returning until every job of the scope has
//! been popped and retired, which the completion counter enforces.
//!
//! ## Streaming fan-outs
//!
//! [`OrderedStream`] is the streaming shape: `task(0..ntasks)` with a
//! **bounded reorder buffer**. At most `cap` tasks are ever submitted
//! beyond the consumer's position — backpressure by *submission gating*
//! rather than by parking producers, so a stalled consumer costs the pool
//! nothing: workers run other jobs instead of sleeping on a full buffer.
//! [`recv`](OrderedStream::recv) releases results strictly in task order
//! and tops the window back up; dropping the stream cancels all unstarted
//! work, waits for in-flight tasks to retire, and leaves the pool ready
//! for the next query. Consumers must not call `recv` from inside a pool
//! task (a consumer does not lend its thread; every current operator
//! drives streams from plan-driver threads).

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A failure originating in the pool machinery itself rather than in a
/// task body: a panicking streaming task surfaced as an error at its
/// index, or (unreachable in practice) a dropped task slot. Callers embed
/// it in their own error type via `From<PoolFailure>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolFailure(pub String);

impl fmt::Display for PoolFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for PoolFailure {}

/// A unit of queued work: which runner, which task index.
struct Job {
    runner: Arc<dyn JobRunner>,
    index: usize,
}

/// Bounds one fan-out's concurrent task bodies to the width it asked for:
/// seeding only `width` deques is not enough on a shared pool, because
/// idle workers of a wider warm-up would steal past it. Claims are taken
/// under the queues lock (job selection), released when the body retires.
struct ClaimGate {
    active: AtomicUsize,
    limit: usize,
}

impl ClaimGate {
    fn new(limit: usize) -> ClaimGate {
        ClaimGate { active: AtomicUsize::new(0), limit: limit.max(1) }
    }

    fn try_claim(&self) -> bool {
        self.active
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |a| {
                (a < self.limit).then_some(a + 1)
            })
            .is_ok()
    }

    fn release(&self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Type-erased executable work. Implemented by the (unsafe, borrowed)
/// scope core and the ('static, Arc'd) stream job.
trait JobRunner: Send + Sync {
    /// Reserve one concurrency slot of this job's fan-out. Called under
    /// the queues lock while selecting a job; a `false` leaves the job
    /// queued for later (its fan-out is already running `width` bodies —
    /// stealing must not run a fan-out wider than it asked for).
    /// [`run`](Self::run) releases the slot when the body retires.
    fn try_claim(&self) -> bool;
    fn run(&self, index: usize);
}

/// Scan a deque in pop order and take the first job whose fan-out has a
/// free concurrency slot (claimed as part of the removal — callers run
/// what they take). All jobs of one fan-out share one gate, so after a
/// runner denies a claim its remaining jobs are skipped by pointer
/// identity — a saturated 2500-morsel scope costs the scan one CAS plus
/// cheap pointer compares, not one CAS per queued job.
fn take_claimable(d: &mut VecDeque<Job>, from_front: bool) -> Option<Job> {
    let mut denied: Vec<*const ()> = Vec::new();
    let mut check = |j: &Job| {
        let key = Arc::as_ptr(&j.runner) as *const ();
        if denied.contains(&key) {
            return false;
        }
        let ok = j.runner.try_claim();
        if !ok {
            denied.push(key);
        }
        ok
    };
    let idx = if from_front {
        (0..d.len()).find(|&i| check(&d[i]))
    } else {
        (0..d.len()).rev().find(|&i| check(&d[i]))
    }?;
    d.remove(idx)
}

/// The queues, guarded by one mutex: at morsel granularity a fan-out
/// performs a handful of queue operations per task body of thousands of
/// rows, so a single lock is simpler than per-queue locks and just as
/// invisible in profiles.
struct Queues {
    injector: VecDeque<Job>,
    locals: Vec<VecDeque<Job>>,
    shutdown: bool,
    /// Telemetry (see [`PoolStats`]). Plain fields, not atomics: every
    /// pop, push and park already holds this mutex, so counting here is
    /// free — no new synchronization on any path.
    counters: PoolCounters,
}

/// The mutable telemetry counters inside [`Queues`].
#[derive(Debug, Default)]
struct PoolCounters {
    jobs: u64,
    steals: u64,
    parks: u64,
    lends: u64,
    lent_jobs: u64,
    queue_depth_hwm: u64,
    worker_jobs: Vec<u64>,
}

impl Queues {
    /// Record the current total queue depth into the high-water mark;
    /// called after pushes (scope seeding, stream submission).
    fn note_depth(&mut self) {
        let depth =
            (self.injector.len() + self.locals.iter().map(|d| d.len()).sum::<usize>()) as u64;
        self.counters.queue_depth_hwm = self.counters.queue_depth_hwm.max(depth);
    }

    /// Worker `me`'s pop order: own front, injector, steal a victim's
    /// back — skipping jobs whose fan-out is at its concurrency limit.
    fn pop_for(&mut self, me: usize) -> Option<Job> {
        if let Some(j) = take_claimable(&mut self.locals[me], true) {
            self.counters.jobs += 1;
            self.counters.worker_jobs[me] += 1;
            return Some(j);
        }
        if let Some(j) = take_claimable(&mut self.injector, true) {
            self.counters.jobs += 1;
            self.counters.worker_jobs[me] += 1;
            return Some(j);
        }
        let n = self.locals.len();
        for v in (me + 1..n).chain(0..me) {
            if let Some(j) = take_claimable(&mut self.locals[v], false) {
                self.counters.jobs += 1;
                self.counters.steals += 1;
                self.counters.worker_jobs[me] += 1;
                return Some(j);
            }
        }
        None
    }

    /// A lent (non-worker) thread's pop order: injector, then steal.
    fn pop_any(&mut self) -> Option<Job> {
        if let Some(j) = take_claimable(&mut self.injector, true) {
            self.counters.jobs += 1;
            self.counters.lent_jobs += 1;
            return Some(j);
        }
        for d in &mut self.locals {
            if let Some(j) = take_claimable(d, false) {
                self.counters.jobs += 1;
                self.counters.steals += 1;
                self.counters.lent_jobs += 1;
                return Some(j);
            }
        }
        None
    }

    /// Remove a claimable queued job belonging to `runner`, if any — the
    /// lent caller's own-scope-first preference. One claim decides the
    /// whole scan: every job of the runner shares the same gate, so the
    /// first match either claims or nothing here is claimable.
    fn pop_matching(&mut self, runner: &Arc<dyn JobRunner>) -> Option<Job> {
        let hit = |j: &Job| Arc::ptr_eq(&j.runner, runner);
        let taken = 'found: {
            if let Some(p) = self.injector.iter().position(hit) {
                break 'found runner.try_claim().then(|| self.injector.remove(p)).flatten();
            }
            for d in &mut self.locals {
                if let Some(p) = d.iter().position(hit) {
                    break 'found runner.try_claim().then(|| d.remove(p)).flatten();
                }
            }
            None
        };
        if taken.is_some() {
            self.counters.jobs += 1;
            self.counters.lent_jobs += 1;
        }
        taken
    }
}

struct PoolShared {
    queues: Mutex<Queues>,
    /// Woken on every job push *and* every job retirement: idle workers
    /// wait here for work, lent callers wait here for either more work or
    /// their scope's completion.
    work_cond: Condvar,
    /// Monotone count of OS threads this pool ever spawned (the warm-up
    /// invariant [`WorkerPool::stats`] exposes).
    spawned_total: AtomicUsize,
    /// Rotates the round-robin seed start so concurrent scopes don't all
    /// pile onto worker 0.
    seed_cursor: AtomicUsize,
}

impl PoolShared {
    /// Notify after a job retired or was pushed. The empty critical
    /// section is deliberate: a waiter checks its predicate *under* the
    /// queues lock before sleeping, so acquiring the lock here ensures the
    /// notification cannot slip between that check and the sleep.
    fn notify(&self) {
        drop(self.queues.lock().expect("pool queues poisoned"));
        self.work_cond.notify_all();
    }
}

/// Aggregate pool counters (see [`WorkerPool::stats`]). All counters are
/// process-lifetime monotone; use [`since`](PoolStats::since) to window
/// them over one query or benchmark phase.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Live worker threads.
    pub workers: usize,
    /// OS threads ever spawned by this pool — monotone; constant after
    /// warm-up is the persistent-pool guarantee.
    pub threads_spawned_total: usize,
    /// Job bodies taken from the queues (all paths: own deque, injector,
    /// steals, lent threads).
    pub jobs: u64,
    /// Jobs taken from a deque the taker does not own.
    pub steals: u64,
    /// Times a thread went to sleep on the work condvar (idle workers and
    /// blocked scope callers with nothing runnable).
    pub parks: u64,
    /// Thread-lending events: times a blocked `scope_run` caller entered
    /// the lent-thread loop.
    pub lends: u64,
    /// Jobs executed by lent (non-worker) threads.
    pub lent_jobs: u64,
    /// High-water mark of total queued (not yet taken) jobs.
    pub queue_depth_hwm: u64,
    /// Jobs taken by each worker, indexed like the worker deques.
    pub worker_jobs: Vec<u64>,
}

impl PoolStats {
    /// Counter deltas since `base` (an earlier snapshot of the same
    /// pool): the telemetry window for one query. `workers`,
    /// `threads_spawned_total` and `queue_depth_hwm` keep their current
    /// values — the first two describe pool shape, and the high-water
    /// mark is a lifetime maximum that cannot be windowed.
    pub fn since(&self, base: &PoolStats) -> PoolStats {
        PoolStats {
            workers: self.workers,
            threads_spawned_total: self.threads_spawned_total,
            jobs: self.jobs.saturating_sub(base.jobs),
            steals: self.steals.saturating_sub(base.steals),
            parks: self.parks.saturating_sub(base.parks),
            lends: self.lends.saturating_sub(base.lends),
            lent_jobs: self.lent_jobs.saturating_sub(base.lent_jobs),
            queue_depth_hwm: self.queue_depth_hwm,
            worker_jobs: self
                .worker_jobs
                .iter()
                .enumerate()
                .map(|(i, &j)| j.saturating_sub(base.worker_jobs.get(i).copied().unwrap_or(0)))
                .collect(),
        }
    }
}

/// A long-lived set of parked worker threads. See the [module docs](self)
/// for the architecture and the thread-lending contract.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

static SHARED: OnceLock<WorkerPool> = OnceLock::new();

impl WorkerPool {
    /// A pool with `workers` threads (more are spawned on demand by
    /// [`ensure_workers`](Self::ensure_workers)).
    pub fn new(workers: usize) -> WorkerPool {
        let pool = WorkerPool {
            shared: Arc::new(PoolShared {
                queues: Mutex::new(Queues {
                    injector: VecDeque::new(),
                    locals: Vec::new(),
                    shutdown: false,
                    counters: PoolCounters::default(),
                }),
                work_cond: Condvar::new(),
                spawned_total: AtomicUsize::new(0),
                seed_cursor: AtomicUsize::new(0),
            }),
            handles: Mutex::new(Vec::new()),
        };
        pool.ensure_workers(workers);
        pool
    }

    /// The process-wide shared pool every production fan-out routes
    /// through — created empty on first touch, grown lazily to the widest
    /// fan-out ever requested, never dropped (workers park between
    /// queries; parked threads do not keep the process alive).
    pub fn shared() -> &'static WorkerPool {
        SHARED.get_or_init(|| WorkerPool::new(0))
    }

    /// Grow the worker set to at least `n` threads. Existing workers are
    /// never dropped or re-created — after the widest caller has been
    /// seen once, this is a no-op (`stats().threads_spawned_total` stays
    /// constant).
    pub fn ensure_workers(&self, n: usize) {
        let mut q = self.shared.queues.lock().expect("pool queues poisoned");
        let mut handles = self.handles.lock().expect("pool handles poisoned");
        while q.locals.len() < n {
            let me = q.locals.len();
            q.locals.push(VecDeque::new());
            q.counters.worker_jobs.push(0);
            self.shared.spawned_total.fetch_add(1, Ordering::Relaxed);
            let shared = Arc::clone(&self.shared);
            let h = std::thread::Builder::new()
                .name(format!("bdcc-worker-{me}"))
                .spawn(move || worker_loop(&shared, me))
                .expect("spawn pool worker");
            handles.push(h);
        }
    }

    /// Snapshot of the pool's telemetry: thread counts plus the
    /// scheduling counters (jobs, steals, parks, lends, queue depth).
    pub fn stats(&self) -> PoolStats {
        let q = self.shared.queues.lock().expect("pool queues poisoned");
        PoolStats {
            workers: q.locals.len(),
            threads_spawned_total: self.shared.spawned_total.load(Ordering::Relaxed),
            jobs: q.counters.jobs,
            steals: q.counters.steals,
            parks: q.counters.parks,
            lends: q.counters.lends,
            lent_jobs: q.counters.lent_jobs,
            queue_depth_hwm: q.counters.queue_depth_hwm,
            worker_jobs: q.counters.worker_jobs.clone(),
        }
    }

    /// Run `task(0..ntasks)` across up to `width` workers plus the lent
    /// calling thread, blocking until every task finished; results return
    /// in task order. `width <= 1` or `ntasks <= 1` runs inline on the
    /// caller with zero pool interaction. See the [module docs](self) for
    /// the full error/panic contract and the lending rule.
    pub fn scope_run<T, E, F>(&self, width: usize, ntasks: usize, task: F) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send + From<PoolFailure>,
        F: Fn(usize) -> Result<T, E> + Sync,
    {
        self.scope_run_labeled(width, ntasks, None, task)
    }

    /// [`scope_run`](Self::scope_run) with a static job label. The label
    /// names the fan-out site in re-raised panic payloads (`pool job
    /// 'join-probe' panicked: ...`), so a worker panic during a
    /// many-client serving run identifies the operator that died instead
    /// of an anonymous task index. Unlabeled scopes re-raise the original
    /// payload untouched.
    pub fn scope_run_labeled<T, E, F>(
        &self,
        width: usize,
        ntasks: usize,
        label: Option<&'static str>,
        task: F,
    ) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send + From<PoolFailure>,
        F: Fn(usize) -> Result<T, E> + Sync,
    {
        if width <= 1 || ntasks <= 1 {
            return (0..ntasks).map(&task).collect();
        }
        self.ensure_workers(width.min(ntasks));
        let slots: Vec<Mutex<Option<Result<T, E>>>> =
            (0..ntasks).map(|_| Mutex::new(None)).collect();
        // SAFETY: the raw pointers into `task` and `slots` stored in the
        // erased core are dereferenced only inside `ScopeCore::run`, and
        // `drain_scope` below does not return until `remaining` hit zero —
        // i.e. every job of this scope has been popped and retired — so
        // the borrows outlive every dereference.
        let data = ScopeData { task: &task as *const F, slots: slots.as_ptr() };
        let core: Arc<ScopeCore> = Arc::new(ScopeCore {
            run_one: run_one_impl::<T, E, F>,
            data: &data as *const ScopeData<T, E, F> as *const (),
            remaining: AtomicUsize::new(ntasks),
            gate: ClaimGate::new(width),
            failed: AtomicBool::new(false),
            panic: Mutex::new(None),
            label,
        });
        {
            let mut q = self.shared.queues.lock().expect("pool queues poisoned");
            let n = q.locals.len().max(1);
            let w = width.min(n);
            let start = self.shared.seed_cursor.fetch_add(1, Ordering::Relaxed);
            for t in 0..ntasks {
                let runner: Arc<dyn JobRunner> = Arc::clone(&core) as Arc<dyn JobRunner>;
                q.locals[(start + t % w) % n].push_back(Job { runner, index: t });
            }
            q.note_depth();
        }
        self.shared.work_cond.notify_all();
        self.drain_scope(&core);
        if let Some(p) = core.panic.lock().expect("scope panic slot poisoned").take() {
            resume_unwind(p);
        }
        collect_results(slots)
    }

    /// The lent-thread loop: until `core`'s scope completes, run its own
    /// queued tasks first, then any other claimable queued job, and park
    /// only when nothing anywhere is runnable (woken by every job push
    /// and every retirement — either may complete the scope or free a
    /// concurrency slot).
    fn drain_scope(&self, core: &Arc<ScopeCore>) {
        let own: Arc<dyn JobRunner> = Arc::clone(core) as Arc<dyn JobRunner>;
        {
            let mut q = self.shared.queues.lock().expect("pool queues poisoned");
            q.counters.lends += 1;
        }
        loop {
            if core.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            let job = {
                let mut q = self.shared.queues.lock().expect("pool queues poisoned");
                if core.remaining.load(Ordering::Acquire) == 0 {
                    return;
                }
                match q.pop_matching(&own).or_else(|| q.pop_any()) {
                    Some(j) => Some(j),
                    None => {
                        q.counters.parks += 1;
                        drop(self.shared.work_cond.wait(q).expect("pool queues poisoned"));
                        None
                    }
                }
            };
            if let Some(j) = job {
                j.runner.run(j.index);
                drop(j);
                self.shared.notify();
            }
        }
    }

    /// Enqueue one streaming job on the injector.
    fn submit(&self, runner: Arc<dyn JobRunner>, index: usize) {
        {
            let mut q = self.shared.queues.lock().expect("pool queues poisoned");
            q.injector.push_back(Job { runner, index });
            q.note_depth();
        }
        self.work_cond_notify();
    }

    fn work_cond_notify(&self) {
        self.shared.work_cond.notify_all();
    }
}

impl Drop for WorkerPool {
    /// Graceful shutdown: flag, wake everyone, join. Workers drain any
    /// queued jobs before exiting (at drop time those can only be
    /// cancelled stream no-ops — blocking scopes cannot outlive their
    /// callers, and a caller blocks in `scope_run`).
    fn drop(&mut self) {
        {
            let mut q = self.shared.queues.lock().expect("pool queues poisoned");
            q.shutdown = true;
        }
        self.shared.work_cond.notify_all();
        for h in self.handles.get_mut().expect("pool handles poisoned").drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, me: usize) {
    loop {
        let job = {
            let mut q = shared.queues.lock().expect("pool queues poisoned");
            loop {
                if let Some(j) = q.pop_for(me) {
                    break Some(j);
                }
                if q.shutdown {
                    break None;
                }
                q.counters.parks += 1;
                q = shared.work_cond.wait(q).expect("pool queues poisoned");
            }
        };
        match job {
            Some(j) => {
                j.runner.run(j.index);
                drop(j);
                shared.notify();
            }
            None => return,
        }
    }
}

// ---------------------------------------------------------------------------
// Blocking scopes (borrowed, type-erased)
// ---------------------------------------------------------------------------

/// The borrowed ends of one scope, monomorphized per `(T, E, F)`; lives on
/// the `scope_run` stack frame and is reached only through [`ScopeCore`].
struct ScopeData<T, E, F> {
    task: *const F,
    slots: *const Mutex<Option<Result<T, E>>>,
}

/// Runs task `i` of the scope `data` points at, storing the result in its
/// slot; returns whether it was an error (the short-circuit signal).
///
/// # Safety
/// `data` must point at a live `ScopeData<T, E, F>` whose `task` and
/// `slots` borrows are still valid, and `i` must be in bounds of `slots`.
unsafe fn run_one_impl<T, E, F>(data: *const (), i: usize) -> bool
where
    F: Fn(usize) -> Result<T, E>,
{
    let d = &*(data as *const ScopeData<T, E, F>);
    let r = (*d.task)(i);
    let is_err = r.is_err();
    *(*d.slots.add(i)).lock().expect("slot poisoned") = Some(r);
    is_err
}

/// The type-erased shared state of one blocking scope. `Send`/`Sync` are
/// asserted manually: the raw pointers reach only `Sync` data (`F: Sync`,
/// slots behind mutexes), and `scope_run` keeps the pointees alive until
/// the last job retired.
struct ScopeCore {
    run_one: unsafe fn(*const (), usize) -> bool,
    data: *const (),
    /// Jobs not yet retired (run, skipped or panicked). Zero ⇒ the caller
    /// may reclaim the borrowed task and slots.
    remaining: AtomicUsize,
    /// At most `width` bodies of this scope execute concurrently.
    gate: ClaimGate,
    /// Set on first error or panic: later jobs of this scope are skipped
    /// instead of run (the fan-out's query is already doomed).
    failed: AtomicBool,
    /// First panic payload, re-raised on the calling thread.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Fan-out site name, prefixed onto re-raised panic payloads; `None`
    /// re-raises the original payload untouched.
    label: Option<&'static str>,
}

/// Render a caught panic payload for embedding in a labeled message.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

unsafe impl Send for ScopeCore {}
unsafe impl Sync for ScopeCore {}

impl JobRunner for ScopeCore {
    fn try_claim(&self) -> bool {
        self.gate.try_claim()
    }

    fn run(&self, index: usize) {
        if !self.failed.load(Ordering::Relaxed) {
            // SAFETY: scope_run guarantees the pointees outlive this call
            // (it blocks until `remaining` reaches zero, which happens
            // strictly after this body).
            match catch_unwind(AssertUnwindSafe(|| {
                if let Some(inj) = crate::inject::global() {
                    inj.job_boundary(self.label.unwrap_or("scope-job"));
                }
                unsafe { (self.run_one)(self.data, index) }
            })) {
                Ok(is_err) => {
                    if is_err {
                        self.failed.store(true, Ordering::Relaxed);
                    }
                }
                Err(payload) => {
                    let mut slot = self.panic.lock().expect("scope panic slot poisoned");
                    if slot.is_none() {
                        // A labeled scope re-raises a message naming the
                        // fan-out site; an unlabeled one re-raises the
                        // caller's original payload untouched.
                        *slot = Some(match self.label {
                            Some(l) => Box::new(format!(
                                "pool job '{l}' panicked: {}",
                                panic_message(payload.as_ref())
                            )),
                            None => payload,
                        });
                    }
                    self.failed.store(true, Ordering::Relaxed);
                }
            }
        }
        self.gate.release();
        self.remaining.fetch_sub(1, Ordering::Release);
    }
}

/// The scoped-thread fan-out this pool replaced, kept as the measurable
/// baseline for the `pool_overhead` benchmark: spawns and joins a fresh
/// `std::thread::scope` per call, with the same ordering, short-circuit
/// and panic contract as [`WorkerPool::scope_run`].
pub fn scope_run_spawning<T, E, F>(threads: usize, ntasks: usize, task: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send + From<PoolFailure>,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let threads = threads.min(ntasks).max(1);
    if threads == 1 {
        return (0..ntasks).map(&task).collect();
    }
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for t in 0..ntasks {
        queues[t % threads].lock().expect("queue poisoned").push_back(t);
    }
    let slots: Vec<Mutex<Option<Result<T, E>>>> = (0..ntasks).map(|_| Mutex::new(None)).collect();
    let failed = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for w in 0..threads {
            let queues = &queues;
            let slots = &slots;
            let task = &task;
            let failed = &failed;
            scope.spawn(move || loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let mut job = queues[w].lock().expect("queue poisoned").pop_front();
                if job.is_none() {
                    for v in (0..queues.len()).filter(|&v| v != w) {
                        job = queues[v].lock().expect("queue poisoned").pop_back();
                        if job.is_some() {
                            break;
                        }
                    }
                }
                match job {
                    Some(j) => {
                        let r = task(j);
                        if r.is_err() {
                            failed.store(true, Ordering::Relaxed);
                        }
                        *slots[j].lock().expect("slot poisoned") = Some(r);
                    }
                    None => break,
                }
            });
        }
    });
    collect_results(slots)
}

/// Turn a fan-out's result slots into the caller-facing `Result`:
/// propagate the first *actual* error in task order (slots skipped after
/// the short-circuit are not themselves the failure), otherwise unwrap
/// every slot. Shared by [`WorkerPool::scope_run`] and its benchmark
/// baseline [`scope_run_spawning`] so the two can never diverge on the
/// error-ordering contract.
fn collect_results<T, E>(slots: Vec<Mutex<Option<Result<T, E>>>>) -> Result<Vec<T>, E>
where
    E: From<PoolFailure>,
{
    let mut results: Vec<Option<Result<T, E>>> =
        slots.into_iter().map(|s| s.into_inner().expect("slot poisoned")).collect();
    if let Some(pos) = results.iter().position(|r| matches!(r, Some(Err(_)))) {
        match results.swap_remove(pos) {
            Some(Err(e)) => return Err(e),
            _ => unreachable!("position matched an error"),
        }
    }
    results
        .into_iter()
        .map(|r| match r {
            Some(Ok(v)) => Ok(v),
            Some(Err(_)) => unreachable!("first error already propagated"),
            None => Err(E::from(PoolFailure("worker pool dropped a task".into()))),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Ordered streams ('static, submission-gated)
// ---------------------------------------------------------------------------

/// Shared state of one streaming fan-out.
struct StreamState<T, E> {
    /// Completed results awaiting release, keyed by task index. Occupancy
    /// is bounded by `cap` through the submission window: `submitted`
    /// never runs more than `cap` ahead of the consumer's next index
    /// (the initial window is `cap` and each release submits one more).
    buffer: HashMap<usize, Result<T, E>>,
    /// Tasks handed to the pool so far (an ascending prefix `0..submitted`).
    submitted: usize,
    /// Tasks currently executing a body (drop waits for these to retire).
    running: usize,
    /// Consumer gone (drop) — unstarted jobs become no-ops.
    cancelled: bool,
    /// A task failed — the consumer hits the error at its index and no
    /// further tasks are submitted; already-submitted ones still run (the
    /// consumer may need their predecessors' results first).
    failed: bool,
}

struct StreamShared<T, E> {
    state: Mutex<StreamState<T, E>>,
    cond: Condvar,
    task: Box<dyn Fn(usize) -> Result<T, E> + Send + Sync>,
}

/// One stream's pool-facing job (a single instance shared by every
/// submission): runs `task(index)` and publishes into the reorder buffer.
struct StreamJob<T, E> {
    shared: Arc<StreamShared<T, E>>,
    /// At most `threads` bodies of this stream execute concurrently,
    /// whatever the warm pool's width.
    gate: ClaimGate,
    /// Fan-out site name included in panic-derived [`PoolFailure`]s.
    label: Option<&'static str>,
}

impl<T, E> JobRunner for StreamJob<T, E>
where
    T: Send + 'static,
    E: Send + From<PoolFailure> + 'static,
{
    fn try_claim(&self) -> bool {
        self.gate.try_claim()
    }

    fn run(&self, index: usize) {
        {
            let mut st = self.shared.state.lock().expect("stream state poisoned");
            if st.cancelled {
                // Cancelled before starting: retire without running. The
                // notify below lets a Drop waiting on `running` recheck.
                self.gate.release();
                self.shared.cond.notify_all();
                return;
            }
            st.running += 1;
        }
        // A panicking task must still publish *something*, or the consumer
        // would wait on its index forever. Surface it as an error at the
        // task's index instead.
        let r = catch_unwind(AssertUnwindSafe(|| {
            if let Some(inj) = crate::inject::global() {
                inj.job_boundary(self.label.unwrap_or("stream-job"));
            }
            (self.shared.task)(index)
        }))
        .unwrap_or_else(|p| {
            let msg = panic_message(p.as_ref());
            Err(E::from(PoolFailure(match self.label {
                Some(l) => format!("streaming worker '{l}' panicked: {msg}"),
                None => format!("streaming worker panicked: {msg}"),
            })))
        });
        let r = {
            let mut st = self.shared.state.lock().expect("stream state poisoned");
            if !st.cancelled {
                if r.is_err() {
                    st.failed = true;
                }
                st.buffer.insert(index, r);
                None
            } else {
                Some(r)
            }
        };
        // A result produced after cancellation must drop *before* this
        // body retires: Drop waits on `running == 0` as its "no task code
        // executing, every tracked byte released" guarantee, and a
        // descheduled worker still holding the result would break it.
        drop(r);
        let mut st = self.shared.state.lock().expect("stream state poisoned");
        st.running -= 1;
        self.gate.release();
        self.shared.cond.notify_all();
    }
}

/// Streaming ordered fan-out over the shared [`WorkerPool`]: tasks
/// `0..ntasks` are submitted to the pool at most `cap` ahead of the
/// consumer, the consumer pulls results **in task order**, and at most
/// `cap` results are in flight (submitted but unreleased) at once. See the
/// [module docs](self) for the backpressure and cancellation contract.
pub struct OrderedStream<T, E> {
    shared: Arc<StreamShared<T, E>>,
    /// The one job runner every submission of this stream reuses.
    runner: Arc<dyn JobRunner>,
    pool: &'static WorkerPool,
    ntasks: usize,
    /// Next task index to release; `ntasks` once exhausted or failed.
    next: usize,
}

impl<T, E> OrderedStream<T, E>
where
    T: Send + 'static,
    E: Send + From<PoolFailure> + 'static,
{
    /// Start the stream on the shared pool, which is grown to at least
    /// `threads` workers. `cap` is clamped to at least `threads` (a
    /// smaller cap could not even keep one result per worker in flight).
    pub fn spawn<F>(threads: usize, ntasks: usize, cap: usize, task: F) -> OrderedStream<T, E>
    where
        F: Fn(usize) -> Result<T, E> + Send + Sync + 'static,
    {
        OrderedStream::spawn_labeled(threads, ntasks, cap, None, task)
    }

    /// [`spawn`](Self::spawn) with a static job label naming the fan-out
    /// site in panic-derived [`PoolFailure`] messages.
    pub fn spawn_labeled<F>(
        threads: usize,
        ntasks: usize,
        cap: usize,
        label: Option<&'static str>,
        task: F,
    ) -> OrderedStream<T, E>
    where
        F: Fn(usize) -> Result<T, E> + Send + Sync + 'static,
    {
        let threads = threads.min(ntasks).max(1);
        let pool = WorkerPool::shared();
        pool.ensure_workers(threads);
        let cap = cap.max(threads);
        let shared = Arc::new(StreamShared {
            state: Mutex::new(StreamState {
                buffer: HashMap::new(),
                submitted: 0,
                running: 0,
                cancelled: false,
                failed: false,
            }),
            cond: Condvar::new(),
            task: Box::new(task),
        });
        let runner: Arc<dyn JobRunner> = Arc::new(StreamJob {
            shared: Arc::clone(&shared),
            gate: ClaimGate::new(threads),
            label,
        });
        let stream = OrderedStream { shared, runner, pool, ntasks, next: 0 };
        let initial = cap.min(ntasks);
        stream.shared.state.lock().expect("stream state poisoned").submitted = initial;
        for i in 0..initial {
            stream.pool.submit(Arc::clone(&stream.runner), i);
        }
        stream
    }

    /// Completed-but-unreleased results currently in the reorder buffer —
    /// an occupancy probe for stream telemetry (a consumer that samples
    /// this at every [`recv`](Self::recv) sees how far the producers run
    /// ahead of it within the `cap` window).
    pub fn buffered(&self) -> usize {
        self.shared.state.lock().expect("stream state poisoned").buffer.len()
    }

    /// The next task's result, in task order; blocks until a worker
    /// publishes it. `Ok(None)` after the last task; a task error is
    /// returned at its index and ends the stream (a *panicking* task is
    /// published as a [`PoolFailure`]-derived error at its index).
    /// Releasing a result opens one submission slot, which is handed to
    /// the pool before returning.
    pub fn recv(&mut self) -> Result<Option<T>, E> {
        if self.next >= self.ntasks {
            return Ok(None);
        }
        let i = self.next;
        let result = {
            let mut st = self.shared.state.lock().expect("stream state poisoned");
            loop {
                if let Some(r) = st.buffer.remove(&i) {
                    break r;
                }
                st = self.shared.cond.wait(st).expect("stream state poisoned");
            }
        };
        match result {
            Ok(v) => {
                self.next += 1;
                let to_submit = {
                    let mut st = self.shared.state.lock().expect("stream state poisoned");
                    if st.submitted < self.ntasks && !st.failed {
                        st.submitted += 1;
                        Some(st.submitted - 1)
                    } else {
                        None
                    }
                };
                if let Some(s) = to_submit {
                    self.pool.submit(Arc::clone(&self.runner), s);
                }
                Ok(Some(v))
            }
            Err(e) => {
                self.next = self.ntasks; // terminal
                Err(e)
            }
        }
    }
}

impl<T, E> Drop for OrderedStream<T, E> {
    /// Cancel-on-drop: unstarted jobs become no-ops, buffered results are
    /// released immediately, and the drop blocks until in-flight task
    /// bodies retire — after this returns, no task code of this stream is
    /// executing (the guarantee memory accounting relies on).
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("stream state poisoned");
        st.cancelled = true;
        st.buffer.clear();
        while st.running > 0 {
            st = self.shared.cond.wait(st).expect("stream state poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[derive(Debug, PartialEq, Eq)]
    struct TestErr(String);

    impl From<PoolFailure> for TestErr {
        fn from(f: PoolFailure) -> TestErr {
            TestErr(f.0)
        }
    }

    type R<T> = Result<T, TestErr>;

    #[test]
    fn scope_results_arrive_in_task_order() {
        let pool = WorkerPool::new(4);
        let out: Vec<usize> = pool.scope_run(4, 33, |i| R::Ok(i * 2)).unwrap();
        assert_eq!(out, (0..33).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn scope_runs_every_task_exactly_once() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        let out: Vec<usize> = pool
            .scope_run(3, 100, |i| {
                counter.fetch_add(1, Ordering::Relaxed);
                R::Ok(i)
            })
            .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn scope_propagates_first_error_in_task_order() {
        let pool = WorkerPool::new(3);
        let r: R<Vec<usize>> =
            pool.scope_run(
                3,
                20,
                |i| {
                    if i == 7 {
                        Err(TestErr(format!("boom {i}")))
                    } else {
                        Ok(i)
                    }
                },
            );
        assert_eq!(r.unwrap_err(), TestErr("boom 7".into()));
    }

    #[test]
    fn scope_propagates_panics() {
        let pool = WorkerPool::new(4);
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _: Vec<usize> = pool
                .scope_run(4, 16, |i| {
                    if i == 5 {
                        panic!("task exploded");
                    }
                    R::Ok(i)
                })
                .unwrap();
        }));
        let payload = r.expect_err("panic must propagate to the caller");
        let msg = payload.downcast_ref::<&str>().expect("payload preserved");
        assert_eq!(*msg, "task exploded");
        // The pool survives a panicking scope.
        let out: Vec<usize> = pool.scope_run(4, 8, R::Ok).unwrap();
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // Outer tasks occupy every worker; inner scopes can only finish
        // because blocked callers lend themselves to the pool.
        let pool = WorkerPool::new(4);
        let out: Vec<usize> = pool
            .scope_run(4, 8, |i| {
                let inner: Vec<usize> = pool.scope_run(4, 8, |j| R::Ok(i * 100 + j))?;
                R::Ok(inner.into_iter().sum())
            })
            .unwrap();
        let expect: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i * 100 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn deeply_nested_scopes_on_a_tiny_pool() {
        let pool = WorkerPool::new(2);
        let out: Vec<usize> = pool
            .scope_run(2, 4, |a| {
                let mid: Vec<usize> = pool.scope_run(2, 4, |b| {
                    let leaf: Vec<usize> = pool.scope_run(2, 4, |c| R::Ok(a + b + c))?;
                    R::Ok(leaf.into_iter().sum())
                })?;
                R::Ok(mid.into_iter().sum())
            })
            .unwrap();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn pool_drop_joins_workers_gracefully() {
        let pool = WorkerPool::new(4);
        let out: Vec<usize> = pool.scope_run(4, 32, R::Ok).unwrap();
        assert_eq!(out.len(), 32);
        let stats = pool.stats();
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.threads_spawned_total, 4);
        drop(pool); // must not hang
    }

    #[test]
    fn workers_grow_once_and_never_again() {
        let pool = WorkerPool::new(0);
        let _: Vec<usize> = pool.scope_run(4, 16, R::Ok).unwrap();
        assert_eq!(pool.stats().threads_spawned_total, 4);
        for _ in 0..20 {
            let _: Vec<usize> = pool.scope_run(4, 16, R::Ok).unwrap();
            let _: Vec<usize> = pool.scope_run(2, 64, R::Ok).unwrap();
        }
        assert_eq!(pool.stats().threads_spawned_total, 4, "warm pool must not spawn");
        let _: Vec<usize> = pool.scope_run(6, 12, R::Ok).unwrap();
        assert_eq!(pool.stats().threads_spawned_total, 6, "wider fan-out grows the pool once");
    }

    #[test]
    fn telemetry_counts_jobs_and_multi_worker_fanout() {
        let pool = WorkerPool::new(4);
        let base = pool.stats();
        let _: Vec<usize> = pool
            .scope_run(4, 64, |i| {
                std::thread::sleep(std::time::Duration::from_micros(50));
                R::Ok(i)
            })
            .unwrap();
        let d = pool.stats().since(&base);
        // Every task body was taken through a counted pop path.
        assert_eq!(d.jobs, 64);
        // The blocked caller lent itself at least once.
        assert!(d.lends >= 1);
        // Seeding 64 jobs left a nonzero queue depth behind.
        assert!(d.queue_depth_hwm >= 1);
        // Worker jobs + lent jobs account for every job.
        assert_eq!(d.worker_jobs.iter().sum::<u64>() + d.lent_jobs, d.jobs);
        // A warm-pool fan-out must actually spread across workers —
        // relaxed on single-core machines, where the OS may legitimately
        // run the whole scope on whichever thread it wakes first.
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if cores > 1 {
            let active = d.worker_jobs.iter().filter(|&&j| j > 0).count();
            assert!(
                active >= 2,
                "warm-pool fan-out ran on {active} worker(s): {:?}",
                d.worker_jobs
            );
        }
    }

    #[test]
    fn fan_out_width_bounds_concurrency_on_a_wider_pool() {
        // 6 idle workers, width-2 fan-out: the claim gate must keep the
        // stealing workers from running the scope wider than asked.
        let pool = WorkerPool::new(6);
        let active = AtomicUsize::new(0);
        let high = AtomicUsize::new(0);
        let _: Vec<usize> = pool
            .scope_run(2, 48, |i| {
                let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                high.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_micros(200));
                active.fetch_sub(1, Ordering::SeqCst);
                R::Ok(i)
            })
            .unwrap();
        assert!(
            high.load(Ordering::SeqCst) <= 2,
            "width-2 scope ran {} bodies concurrently",
            high.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn stream_width_bounds_concurrency_on_a_wider_pool() {
        // The shared pool may be warmed wide by other tests; a threads-2
        // stream must still run at most 2 bodies at once (its submission
        // window of `cap` jobs does not widen execution).
        WorkerPool::shared().ensure_workers(6);
        let active = Arc::new(AtomicUsize::new(0));
        let high = Arc::new(AtomicUsize::new(0));
        let (a, h) = (Arc::clone(&active), Arc::clone(&high));
        let mut s: OrderedStream<usize, TestErr> = OrderedStream::spawn(2, 40, 8, move |i| {
            let now = a.fetch_add(1, Ordering::SeqCst) + 1;
            h.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(200));
            a.fetch_sub(1, Ordering::SeqCst);
            Ok(i)
        });
        let mut n = 0;
        while s.recv().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 40);
        assert!(
            high.load(Ordering::SeqCst) <= 2,
            "threads-2 stream ran {} bodies concurrently",
            high.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn borrowed_captures_survive_the_scope() {
        // Tasks borrow a caller-stack buffer; the completion counter must
        // keep scope_run blocked until the last borrow ended.
        let pool = WorkerPool::new(4);
        let data: Vec<u64> = (0..10_000).collect();
        let chunks = 16;
        let per = data.len() / chunks;
        let sums: Vec<u64> = pool
            .scope_run(4, chunks, |i| R::Ok(data[i * per..(i + 1) * per].iter().sum()))
            .unwrap();
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn stream_yields_results_in_task_order_and_bounds_flight() {
        let outstanding = Arc::new(AtomicUsize::new(0));
        let high = Arc::new(AtomicUsize::new(0));
        let (o, h) = (Arc::clone(&outstanding), Arc::clone(&high));
        let mut s: OrderedStream<usize, TestErr> = OrderedStream::spawn(4, 40, 4, move |i| {
            let now = o.fetch_add(1, Ordering::SeqCst) + 1;
            h.fetch_max(now, Ordering::SeqCst);
            Ok(i)
        });
        let mut got = Vec::new();
        while let Some(v) = s.recv().unwrap() {
            outstanding.fetch_sub(1, Ordering::SeqCst);
            got.push(v);
        }
        assert_eq!(got, (0..40).collect::<Vec<_>>());
        // +1 slack: the consumer's decrement lands after recv returns, so
        // a task released by that recv can start (and count) first — a
        // measurement race, not a cap leak.
        assert!(
            high.load(Ordering::SeqCst) <= 5,
            "in-flight {} exceeded cap",
            high.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn stream_drop_cancels_unstarted_work() {
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        let mut s: OrderedStream<usize, TestErr> = OrderedStream::spawn(2, 1000, 2, move |i| {
            r.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(200));
            Ok(i)
        });
        assert_eq!(s.recv().unwrap(), Some(0));
        drop(s);
        let after_drop = ran.load(Ordering::SeqCst);
        assert!(after_drop < 1000, "drop must cancel unstarted tasks, ran {after_drop}");
        // No task body is running after drop returns, and none start later.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(ran.load(Ordering::SeqCst), after_drop, "tasks ran after cancellation");
    }

    #[test]
    fn stream_drop_releases_every_result_before_returning() {
        // Regression: a worker whose result landed after cancellation
        // used to retire from `running` *before* dropping it, so
        // OrderedStream::drop could return while a descheduled worker
        // still held the payload — and anything its destructor releases
        // (tracked memory, spill files) leaked past the drop.
        struct Payload {
            freed: Arc<AtomicUsize>,
        }
        impl Drop for Payload {
            fn drop(&mut self) {
                self.freed.fetch_add(1, Ordering::SeqCst);
            }
        }
        for round in 0..30 {
            let made = Arc::new(AtomicUsize::new(0));
            let freed = Arc::new(AtomicUsize::new(0));
            let (m, f) = (Arc::clone(&made), Arc::clone(&freed));
            let mut s: OrderedStream<Payload, TestErr> =
                OrderedStream::spawn(4, 64, 8, move |_| {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                    m.fetch_add(1, Ordering::SeqCst);
                    Ok(Payload { freed: Arc::clone(&f) })
                });
            drop(s.recv().unwrap().expect("first result"));
            drop(s);
            assert_eq!(
                made.load(Ordering::SeqCst),
                freed.load(Ordering::SeqCst),
                "round {round}: every produced payload must drop before the stream's Drop returns"
            );
        }
    }

    #[test]
    fn scope_inside_stream_consumer_does_not_deadlock() {
        // The nested shape ParallelScan + HashJoin produce: a streaming
        // fan-out is live while its consumer issues blocking fan-outs.
        let mut s: OrderedStream<usize, TestErr> = OrderedStream::spawn(4, 30, 8, Ok);
        let pool = WorkerPool::shared();
        let mut total = 0usize;
        while let Some(v) = s.recv().unwrap() {
            let part: Vec<usize> = pool.scope_run(4, 6, |j| R::Ok(v * 10 + j)).unwrap();
            total += part.into_iter().sum::<usize>();
        }
        let expect: usize = (0..30).map(|v| (0..6).map(|j| v * 10 + j).sum::<usize>()).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn labeled_scope_panic_names_the_fanout_site() {
        let pool = WorkerPool::new(4);
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _: Vec<usize> = pool
                .scope_run_labeled(4, 16, Some("probe-round"), |i| {
                    if i == 3 {
                        panic!("index died");
                    }
                    R::Ok(i)
                })
                .unwrap();
        }));
        let payload = r.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("labeled payload is a String");
        assert_eq!(msg, "pool job 'probe-round' panicked: index died");
    }

    #[test]
    fn labeled_stream_panic_names_the_fanout_site() {
        let mut s: OrderedStream<usize, TestErr> =
            OrderedStream::spawn_labeled(2, 8, 4, Some("scan-morsel"), |i| {
                if i == 0 {
                    panic!("morsel died");
                }
                Ok(i)
            });
        let err = loop {
            match s.recv() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("stream must surface the panic"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.0, "streaming worker 'scan-morsel' panicked: morsel died");
    }

    #[test]
    fn spawning_baseline_matches_pool_contract() {
        let out: Vec<usize> = scope_run_spawning(4, 17, |i| R::Ok(i * i)).unwrap();
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        let r: R<Vec<usize>> =
            scope_run_spawning(3, 10, |i| if i == 7 { Err(TestErr("boom".into())) } else { Ok(i) });
        assert_eq!(r.unwrap_err(), TestErr("boom".into()));
    }
}
