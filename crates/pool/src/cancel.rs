//! Cooperative cancellation.
//!
//! A [`CancelToken`] is a cheap, cloneable flag shared between whoever
//! may cancel a unit of work (a serving layer, a deadline watchdog, a
//! memory broker) and the work itself. Cancellation is *cooperative*:
//! nothing is interrupted — workers poll [`is_cancelled`] between
//! morsels and unwind through their normal error path, which is what
//! lets the pool's cancel-on-drop machinery reclaim queued jobs and lets
//! RAII memory guards release every tracked byte.
//!
//! The first cancellation wins and records *why* ([`CancelReason`]), so
//! a query cancelled because its deadline expired reports
//! "deadline exceeded" at every later checkpoint instead of a generic
//! "cancelled" — whichever worker observes the flag first.
//!
//! [`is_cancelled`]: CancelToken::is_cancelled

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Why a token was cancelled. The first [`CancelToken::cancel_with`]
/// fixes the reason for the token's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// Explicit cancellation (a client gave up, a server shed load).
    Cancelled,
    /// The work ran past its deadline.
    DeadlineExceeded,
    /// The work exceeded its memory budget.
    BudgetExceeded,
}

const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;
const BUDGET: u8 = 3;

/// A shared cancellation flag with a sticky reason. Clones observe the
/// same state; `Default` is a fresh, live token.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    state: Arc<AtomicU8>,
}

impl CancelToken {
    /// A fresh, live token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Cancel with the generic [`CancelReason::Cancelled`] reason.
    pub fn cancel(&self) {
        self.cancel_with(CancelReason::Cancelled);
    }

    /// Cancel with an explicit reason. The first cancellation wins;
    /// later calls (any reason) are no-ops, so every checkpoint reports
    /// the original cause.
    pub fn cancel_with(&self, reason: CancelReason) {
        let code = match reason {
            CancelReason::Cancelled => CANCELLED,
            CancelReason::DeadlineExceeded => DEADLINE,
            CancelReason::BudgetExceeded => BUDGET,
        };
        let _ = self.state.compare_exchange(LIVE, code, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Has this token been cancelled (any reason)?
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.state.load(Ordering::Relaxed) != LIVE
    }

    /// The recorded cancellation reason, or `None` while live.
    #[inline]
    pub fn reason(&self) -> Option<CancelReason> {
        match self.state.load(Ordering::Relaxed) {
            CANCELLED => Some(CancelReason::Cancelled),
            DEADLINE => Some(CancelReason::DeadlineExceeded),
            BUDGET => Some(CancelReason::BudgetExceeded),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
    }

    #[test]
    fn clones_share_state_and_first_reason_sticks() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel_with(CancelReason::DeadlineExceeded);
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::DeadlineExceeded));
        // A later cancel does not overwrite the original cause.
        t.cancel();
        assert_eq!(c.reason(), Some(CancelReason::DeadlineExceeded));
    }
}
