//! Encode → decode round-trip properties for the block codecs.
//!
//! The storage contract the compression-aware scans rely on:
//! `ColumnEncoding::decode_range(raw, s, e)` equals `raw.slice(s, e)` for
//! every column and every range, whatever mix of codecs the blocks chose
//! (dictionary, frame-of-reference, RLE, scaled-decimal FOR, or the raw
//! fallback where nothing wins).

use bdcc_storage::{Column, ColumnEncoding};
use proptest::prelude::*;

/// Check the contract over the whole column, one random sub-range, and
/// every block of the chosen grid. Columns where no block wins over raw
/// carry no encoding at all — that is the fallback contract, not a failure.
fn check_roundtrip(column: &Column, block_rows: usize, cuts: (u64, u64)) {
    let Some(enc) = ColumnEncoding::build(column, block_rows) else {
        return;
    };
    let n = column.len();
    assert_eq!(&enc.decode_range(column, 0, n), column);
    let (mut a, mut b) = (cuts.0 as usize % (n + 1), cuts.1 as usize % (n + 1));
    if a > b {
        std::mem::swap(&mut a, &mut b);
    }
    assert_eq!(enc.decode_range(column, a, b), column.slice(a, b));
    let mut s = 0;
    while s < n {
        let e = (s + block_rows).min(n);
        assert_eq!(enc.decode_range(column, s, e), column.slice(s, e));
        s = e;
    }
}

proptest! {
    #[test]
    fn narrow_int_columns_round_trip(
        v in prop::collection::vec(-1000i64..1000, 1..600),
        block_rows in 1usize..130,
        cuts in (any::<u64>(), any::<u64>()),
    ) {
        check_roundtrip(&Column::from_i64(v), block_rows, cuts);
    }

    #[test]
    fn extreme_int_columns_round_trip(
        v in prop::collection::vec(i64::MIN..i64::MAX, 1..300),
        block_rows in 1usize..130,
        cuts in (any::<u64>(), any::<u64>()),
    ) {
        // Full-range values exercise the wrapping frame-of-reference math.
        check_roundtrip(&Column::from_i64(v), block_rows, cuts);
    }

    #[test]
    fn runny_int_columns_round_trip(
        runs in prop::collection::vec((-50i64..50, 1usize..40), 1..30),
        block_rows in 1usize..130,
        cuts in (any::<u64>(), any::<u64>()),
    ) {
        let v: Vec<i64> =
            runs.iter().flat_map(|&(val, len)| std::iter::repeat_n(val, len)).collect();
        check_roundtrip(&Column::from_i64(v), block_rows, cuts);
    }

    #[test]
    fn single_value_blocks_round_trip(
        x in i64::MIN..i64::MAX,
        len in 1usize..300,
        block_rows in 1usize..130,
        cuts in (any::<u64>(), any::<u64>()),
    ) {
        // Degenerate constant column: width-0 frame-of-reference.
        check_roundtrip(&Column::from_i64(vec![x; len]), block_rows, cuts);
    }

    #[test]
    fn date_columns_keep_their_logical_type(
        v in prop::collection::vec(0i64..40_000, 1..400),
        block_rows in 1usize..130,
        cuts in (any::<u64>(), any::<u64>()),
    ) {
        // `Column`'s `PartialEq` covers `logical`, so equality here also
        // proves Date survives the i64 codecs.
        check_roundtrip(&Column::from_dates(v), block_rows, cuts);
    }

    #[test]
    fn low_cardinality_string_columns_round_trip(
        picks in prop::collection::vec(0usize..6, 1..500),
        block_rows in 1usize..130,
        cuts in (any::<u64>(), any::<u64>()),
    ) {
        let pool = ["AIR", "RAIL", "TRUCK", "SHIP", "MAIL", "REG AIR"];
        let v: Vec<String> = picks.iter().map(|&i| pool[i].to_string()).collect();
        check_roundtrip(&Column::from_strings(v), block_rows, cuts);
    }

    #[test]
    fn decimal_float_columns_round_trip(
        cents in prop::collection::vec(-10_000_000i64..10_000_000, 1..400),
        block_rows in 1usize..130,
        cuts in (any::<u64>(), any::<u64>()),
    ) {
        let v: Vec<f64> = cents.iter().map(|&c| c as f64 / 100.0).collect();
        check_roundtrip(&Column::from_f64(v), block_rows, cuts);
    }

    #[test]
    fn arbitrary_bit_pattern_floats_round_trip(
        bits in prop::collection::vec(0u64..u64::MAX, 1..200),
        block_rows in 1usize..130,
        cuts in (any::<u64>(), any::<u64>()),
    ) {
        // Mostly non-decimal values (including NaN payloads): blocks must
        // either reproduce them bit-exactly or fall back to raw.
        let v: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let col = Column::from_f64(v);
        if let Some(enc) = ColumnEncoding::build(&col, block_rows) {
            let decoded = enc.decode_range(&col, 0, col.len());
            let (a, b) = (decoded.as_f64().unwrap(), col.as_f64().unwrap());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        let _ = cuts;
    }
}

#[test]
fn all_unique_strings_fall_back_to_raw() {
    // A dictionary of all-distinct entries always costs more than raw, so
    // the column must carry no encoding at all.
    let v: Vec<String> = (0..512).map(|i| format!("value-{i:05}")).collect();
    assert!(ColumnEncoding::build(&Column::from_strings(v), 128).is_none());
}

#[test]
fn empty_columns_carry_no_encoding() {
    assert!(ColumnEncoding::build(&Column::from_i64(vec![]), 64).is_none());
}
