//! Temp-file spill substrate for out-of-core execution.
//!
//! When a query's tracked memory approaches its budget, the executor's
//! spill-capable operators (`bdcc-exec`'s hash-join build and radix
//! aggregation) *freeze* resident partitions: they serialize the
//! partition's batches through a [`SpillWriter`] into a real temp file
//! and drop the in-memory copy. On *restore* the partition's batches are
//! read back **in exactly the order they were written** — which, by the
//! executor's freeze discipline, is the original input stream order — so
//! spilled execution stays byte-identical to in-memory execution.
//!
//! This module is mechanism only; *when* to freeze is the
//! `bdcc-exec::broker::MemoryBroker`'s policy call. The contract pinned
//! here:
//!
//! * **Serialization is exact.** Every column round-trips bit-for-bit:
//!   integer-backed columns (with their `Int`-vs-`Date` logical type) use
//!   the same frame-of-reference + bit-packing codec as the block
//!   encodings ([`PackedInts`], with a raw fallback for full-range
//!   deltas), floats round-trip through their IEEE bit pattern (NaN
//!   payloads included), strings byte-for-byte.
//! * **Order is preserved.** A [`SpillReader`] yields entries in write
//!   order; nothing is reordered, deduplicated, or compacted.
//! * **Spill I/O is metered.** Every byte written and every byte read
//!   back is recorded against the query's [`IoTracker`] (under per-file
//!   write/read keys), so `EXPLAIN ANALYZE` and the device cost model see
//!   spill traffic like any other I/O. Writes and first reads are
//!   sequential appends/scans by construction; re-restores of the same
//!   partition charge no new bytes (the tracker's once-per-query
//!   buffer-pool semantics), but still count accesses.
//! * **Cleanup is RAII — cancellation included.** [`SpillWriter`] and
//!   [`SpillHandle`] unlink their temp file on drop. A query that errors,
//!   exceeds its deadline, or is cancelled unwinds its operator tree, and
//!   the unwind drops the handles — no leaked files, verified by
//!   [`live_spill_files`] (a process-wide registry of not-yet-unlinked
//!   spill paths that tests assert drains to empty).
//!
//! Files live in `BDCC_SPILL_DIR` when set, else the OS temp dir.

use std::collections::HashSet;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::column::Column;
use crate::encode::PackedInts;
use crate::error::{Result, StorageError};
use crate::io::IoTracker;
use crate::value::DataType;

// ---------------------------------------------------------------------------
// Live-file registry
// ---------------------------------------------------------------------------

fn registry() -> &'static Mutex<HashSet<PathBuf>> {
    static LIVE: OnceLock<Mutex<HashSet<PathBuf>>> = OnceLock::new();
    LIVE.get_or_init(|| Mutex::new(HashSet::new()))
}

/// Number of spill files currently on disk (process-wide). Tests assert
/// this returns to its baseline after every query — including queries
/// that were cancelled or failed mid-spill.
pub fn live_spill_files() -> usize {
    registry().lock().expect("spill registry poisoned").len()
}

fn register(path: &Path) {
    registry().lock().expect("spill registry poisoned").insert(path.to_path_buf());
}

fn unlink(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    registry().lock().expect("spill registry poisoned").remove(path);
}

/// Directory spill files are created in: `BDCC_SPILL_DIR` or the OS
/// temp dir.
pub fn spill_dir() -> PathBuf {
    match std::env::var_os("BDCC_SPILL_DIR") {
        Some(d) if !d.is_empty() => PathBuf::from(d),
        _ => std::env::temp_dir(),
    }
}

fn fresh_path(label: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    spill_dir().join(format!("bdcc-spill-{}-{label}-{n}.tmp", std::process::id()))
}

/// Stable I/O-tracker key for a spill path (FNV-1a over the path bytes).
/// The write stream records under `key`, the read stream under `key + 1`,
/// so written and restored bytes are both charged exactly once per query.
fn path_key(path: &Path) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in path.as_os_str().as_encoded_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h & !1
}

fn ioerr(e: std::io::Error) -> StorageError {
    StorageError::Io(e.to_string())
}

// ---------------------------------------------------------------------------
// Primitive wire helpers
// ---------------------------------------------------------------------------

struct CountingWriter<W> {
    inner: W,
    written: u64,
}

impl<W: Write> CountingWriter<W> {
    fn put(&mut self, bytes: &[u8]) -> Result<()> {
        self.inner.write_all(bytes).map_err(ioerr)?;
        self.written += bytes.len() as u64;
        Ok(())
    }
    fn u8(&mut self, v: u8) -> Result<()> {
        self.put(&[v])
    }
    fn u32(&mut self, v: u32) -> Result<()> {
        self.put(&v.to_le_bytes())
    }
    fn u64(&mut self, v: u64) -> Result<()> {
        self.put(&v.to_le_bytes())
    }
    fn i64(&mut self, v: i64) -> Result<()> {
        self.put(&v.to_le_bytes())
    }
}

struct CountingReader<R> {
    inner: R,
    consumed: u64,
}

impl<R: Read> CountingReader<R> {
    fn take(&mut self, buf: &mut [u8]) -> Result<()> {
        self.inner.read_exact(buf).map_err(ioerr)?;
        self.consumed += buf.len() as u64;
        Ok(())
    }
    fn u8(&mut self) -> Result<u8> {
        let mut b = [0u8; 1];
        self.take(&mut b)?;
        Ok(b[0])
    }
    fn u32(&mut self) -> Result<u32> {
        let mut b = [0u8; 4];
        self.take(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }
    fn u64(&mut self) -> Result<u64> {
        let mut b = [0u8; 8];
        self.take(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
    fn i64(&mut self) -> Result<i64> {
        let mut b = [0u8; 8];
        self.take(&mut b)?;
        Ok(i64::from_le_bytes(b))
    }
}

// Column tags.
const TAG_I64_FOR: u8 = 0;
const TAG_I64_RAW: u8 = 1;
const TAG_F64: u8 = 2;
const TAG_STR: u8 = 3;

fn write_column<W: Write>(w: &mut CountingWriter<W>, col: &Column) -> Result<()> {
    match col {
        Column::I64 { values, logical } => {
            let logical_tag = if *logical == DataType::Date { 1u8 } else { 0u8 };
            // Frame-of-reference + bit-packing, the block codec's integer
            // scheme: deltas from the minimum, wrapping arithmetic so a
            // full-range `max - min` still round-trips — but a ≥ 64-bit
            // delta range means packing cannot narrow anything, so fall
            // back to raw values.
            let min = values.iter().copied().min().unwrap_or(0);
            let deltas: Vec<u64> = values.iter().map(|&v| v.wrapping_sub(min) as u64).collect();
            let width = PackedInts::bits_for(deltas.iter().copied().max().unwrap_or(0));
            if width >= 64 {
                w.u8(TAG_I64_RAW)?;
                w.u8(logical_tag)?;
                w.u64(values.len() as u64)?;
                for &v in values {
                    w.i64(v)?;
                }
            } else {
                let packed = PackedInts::pack(&deltas, width);
                w.u8(TAG_I64_FOR)?;
                w.u8(logical_tag)?;
                w.i64(min)?;
                w.u8(width)?;
                w.u64(values.len() as u64)?;
                w.u64(packed.words().len() as u64)?;
                for &word in packed.words() {
                    w.u64(word)?;
                }
            }
        }
        Column::F64(values) => {
            w.u8(TAG_F64)?;
            w.u64(values.len() as u64)?;
            for &v in values {
                w.u64(v.to_bits())?;
            }
        }
        Column::Str(values) => {
            w.u8(TAG_STR)?;
            w.u64(values.len() as u64)?;
            for s in values {
                w.u32(s.len() as u32)?;
                w.put(s.as_bytes())?;
            }
        }
    }
    Ok(())
}

fn read_column<R: Read>(r: &mut CountingReader<R>) -> Result<Column> {
    let logical_of = |tag: u8| if tag == 1 { DataType::Date } else { DataType::Int };
    match r.u8()? {
        TAG_I64_FOR => {
            let logical = logical_of(r.u8()?);
            let min = r.i64()?;
            let width = r.u8()?;
            let len = r.u64()? as usize;
            let nwords = r.u64()? as usize;
            let mut words = Vec::with_capacity(nwords);
            for _ in 0..nwords {
                words.push(r.u64()?);
            }
            let packed = PackedInts::from_parts(width, len, words);
            let values: Vec<i64> =
                (0..len).map(|i| min.wrapping_add(packed.get(i) as i64)).collect();
            Ok(Column::I64 { values, logical })
        }
        TAG_I64_RAW => {
            let logical = logical_of(r.u8()?);
            let len = r.u64()? as usize;
            let mut values = Vec::with_capacity(len);
            for _ in 0..len {
                values.push(r.i64()?);
            }
            Ok(Column::I64 { values, logical })
        }
        TAG_F64 => {
            let len = r.u64()? as usize;
            let mut values = Vec::with_capacity(len);
            for _ in 0..len {
                values.push(f64::from_bits(r.u64()?));
            }
            Ok(Column::F64(values))
        }
        TAG_STR => {
            let len = r.u64()? as usize;
            let mut values = Vec::with_capacity(len);
            for _ in 0..len {
                let bytes = r.u32()? as usize;
                let mut buf = vec![0u8; bytes];
                r.take(&mut buf)?;
                values.push(String::from_utf8(buf).map_err(|e| StorageError::Io(e.to_string()))?);
            }
            Ok(Column::Str(values))
        }
        tag => Err(StorageError::Io(format!("unknown spill column tag {tag}"))),
    }
}

// ---------------------------------------------------------------------------
// Writer / handle / reader
// ---------------------------------------------------------------------------

/// Append-only writer for one spill file. Each [`write_columns`] call
/// appends one *entry* (a batch's columns); [`finish`] seals the file
/// into a [`SpillHandle`]. Dropping an unfinished writer unlinks the
/// file (a query that dies mid-freeze leaks nothing).
///
/// [`write_columns`]: Self::write_columns
/// [`finish`]: Self::finish
pub struct SpillWriter {
    out: CountingWriter<BufWriter<File>>,
    /// `Some` until `finish` — `Drop` unlinks while this is `Some`.
    path: Option<PathBuf>,
    io: IoTracker,
    key: u64,
    entries: u64,
    rows: u64,
}

impl SpillWriter {
    /// Create a fresh temp spill file; `label` tags the file name for
    /// debuggability (e.g. `"join-build"` / `"agg-p3"`).
    pub fn create(label: &str, io: &IoTracker) -> Result<SpillWriter> {
        let path = fresh_path(label);
        let file = File::create(&path).map_err(ioerr)?;
        register(&path);
        let key = path_key(&path);
        Ok(SpillWriter {
            out: CountingWriter { inner: BufWriter::new(file), written: 0 },
            path: Some(path),
            io: io.clone(),
            key,
            entries: 0,
            rows: 0,
        })
    }

    /// Append one entry. Returns the entry's on-disk byte size (metered
    /// against the query's `IoTracker` under the file's write key).
    pub fn write_columns(&mut self, cols: &[Column]) -> Result<u64> {
        let start = self.out.written;
        self.out.u32(cols.len() as u32)?;
        let rows = cols.first().map(|c| c.len()).unwrap_or(0);
        self.out.u64(rows as u64)?;
        for col in cols {
            debug_assert_eq!(col.len(), rows, "spill entry columns must align");
            write_column(&mut self.out, col)?;
        }
        let end = self.out.written;
        if end > start {
            self.io.record_span(self.key, start, end - 1);
        }
        self.entries += 1;
        self.rows += rows as u64;
        Ok(end - start)
    }

    /// Total bytes appended so far.
    pub fn bytes(&self) -> u64 {
        self.out.written
    }

    /// Entries appended so far.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Total rows across all entries.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Flush and seal the file. The returned handle owns the temp file
    /// (unlinks it on drop) and can open any number of sequential readers.
    pub fn finish(mut self) -> Result<SpillHandle> {
        self.out.inner.flush().map_err(ioerr)?;
        let path = self.path.take().expect("finish called once");
        Ok(SpillHandle {
            path,
            io: self.io.clone(),
            key: self.key,
            bytes: self.out.written,
            entries: self.entries,
            rows: self.rows,
        })
    }
}

impl Drop for SpillWriter {
    fn drop(&mut self) {
        if let Some(path) = &self.path {
            unlink(path);
        }
    }
}

/// A sealed spill file: metadata plus RAII ownership of the temp file.
/// Dropping the handle unlinks the file — this is the cancellation
/// cleanup path (an unwinding operator tree drops its handles).
pub struct SpillHandle {
    path: PathBuf,
    io: IoTracker,
    key: u64,
    bytes: u64,
    entries: u64,
    rows: u64,
}

impl SpillHandle {
    /// On-disk size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of entries (batches) in the file.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Total rows across all entries.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Open a sequential reader over the file's entries (write order).
    /// Restored bytes are metered under the file's read key.
    pub fn open(&self) -> Result<SpillReader> {
        let file = File::open(&self.path).map_err(ioerr)?;
        Ok(SpillReader {
            input: CountingReader { inner: BufReader::new(file), consumed: 0 },
            io: self.io.clone(),
            key: self.key | 1,
            remaining: self.entries,
        })
    }
}

impl Drop for SpillHandle {
    fn drop(&mut self) {
        unlink(&self.path);
    }
}

/// Sequential reader over a spill file's entries, in write order.
pub struct SpillReader {
    input: CountingReader<BufReader<File>>,
    io: IoTracker,
    key: u64,
    remaining: u64,
}

impl SpillReader {
    /// The next entry's columns, or `None` past the last entry.
    pub fn next_columns(&mut self) -> Result<Option<Vec<Column>>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let start = self.input.consumed;
        let ncols = self.input.u32()? as usize;
        let _rows = self.input.u64()?;
        let mut cols = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            cols.push(read_column(&mut self.input)?);
        }
        let end = self.input.consumed;
        if end > start {
            self.io.record_span(self.key, start, end - 1);
        }
        Ok(Some(cols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn columns() -> Vec<Column> {
        vec![
            Column::from_i64(vec![5, -3, 1 << 40, 5, 0]),
            Column::from_dates(vec![9131, 9132, 9131, 10000, 0]),
            Column::from_f64(vec![1.5, -0.0, f64::NAN, f64::INFINITY, 1e-300]),
            Column::from_strings(vec![
                "".into(),
                "alpha".into(),
                "βeta".into(),
                "x".repeat(300),
                "end".into(),
            ]),
        ]
    }

    #[test]
    fn round_trips_every_type_bit_exactly() {
        let io = IoTracker::new();
        let mut w = SpillWriter::create("test", &io).unwrap();
        let cols = columns();
        w.write_columns(&cols).unwrap();
        // A second entry with different shapes, including the raw-i64
        // fallback (full-range deltas) and empty columns.
        let extreme = vec![
            Column::from_i64(vec![i64::MIN, i64::MAX, 0]),
            Column::from_dates(vec![1, 2, 3]),
            Column::from_f64(vec![0.0; 3]),
            Column::from_strings(vec!["a".into(), "".into(), "b".into()]),
        ];
        w.write_columns(&extreme).unwrap();
        w.write_columns(&[Column::from_i64(vec![]), Column::from_strings(vec![])]).unwrap();
        let h = w.finish().unwrap();
        assert_eq!(h.entries(), 3);
        assert_eq!(h.rows(), 8);

        let mut r = h.open().unwrap();
        let got = r.next_columns().unwrap().unwrap();
        // Bit-exactness for floats: compare bit patterns (NaN != NaN).
        assert_eq!(got.len(), cols.len());
        assert_eq!(got[0], cols[0]);
        assert_eq!(got[1], cols[1]);
        assert_eq!(got[1].data_type(), DataType::Date, "logical type survives");
        let (a, b) = (got[2].as_f64().unwrap(), cols[2].as_f64().unwrap());
        assert!(a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
        assert_eq!(got[3], cols[3]);
        assert_eq!(r.next_columns().unwrap().unwrap(), extreme);
        let empty = r.next_columns().unwrap().unwrap();
        assert_eq!(empty[0].len(), 0);
        assert!(r.next_columns().unwrap().is_none());
    }

    #[test]
    fn rereads_yield_identical_entries() {
        let io = IoTracker::new();
        let mut w = SpillWriter::create("test", &io).unwrap();
        w.write_columns(&columns()).unwrap();
        let h = w.finish().unwrap();
        let a = h.open().unwrap().next_columns().unwrap().unwrap();
        let b = h.open().unwrap().next_columns().unwrap().unwrap();
        assert_eq!(a[0], b[0]);
        assert_eq!(a[3], b[3]);
    }

    #[test]
    fn spill_io_is_metered_once_per_direction() {
        let io = IoTracker::new();
        let mut w = SpillWriter::create("test", &io).unwrap();
        w.write_columns(&columns()).unwrap();
        let written = w.bytes();
        assert!(written > 0);
        assert_eq!(io.stats().bytes_read, written, "write bytes metered");
        let h = w.finish().unwrap();
        let mut r = h.open().unwrap();
        while r.next_columns().unwrap().is_some() {}
        assert_eq!(io.stats().bytes_read, 2 * written, "restore bytes metered");
        // A re-restore charges no *new* bytes (buffer-pool semantics).
        let mut r = h.open().unwrap();
        while r.next_columns().unwrap().is_some() {}
        assert_eq!(io.stats().bytes_read, 2 * written);
    }

    #[test]
    fn files_unlink_on_drop_and_on_unfinished_writer() {
        let base = live_spill_files();
        let io = IoTracker::new();
        let mut w = SpillWriter::create("test", &io).unwrap();
        w.write_columns(&columns()).unwrap();
        assert_eq!(live_spill_files(), base + 1);
        let h = w.finish().unwrap();
        assert_eq!(live_spill_files(), base + 1);
        drop(h);
        assert_eq!(live_spill_files(), base, "handle drop unlinks");
        // Unfinished writer (mid-freeze failure / cancellation): same.
        let w = SpillWriter::create("test", &io).unwrap();
        assert_eq!(live_spill_files(), base + 1);
        drop(w);
        assert_eq!(live_spill_files(), base, "writer drop unlinks");
    }
}
