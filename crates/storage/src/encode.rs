//! Per-block lightweight column encodings.
//!
//! BDCC clustering deliberately produces blocks that are locally sorted and
//! dimensionally homogeneous — exactly the shape where lightweight columnar
//! codecs pay off. This module adds three of them, chosen **per block** at
//! table build time, next to the existing [`crate::block::ColumnBlockStats`]
//! MinMax metadata (the encodings share the same block grid):
//!
//! * [`BlockEncoding::DictStr`] — block-local **dictionary** for strings: the
//!   sorted distinct values plus a bit-packed code vector. Equality/range
//!   predicates can be answered on codes after translating the constant once
//!   per block; a constant absent from the dict kills the whole block.
//! * [`BlockEncoding::ForI64`] — **frame-of-reference + bit-packing** for
//!   integer-backed columns: the block minimum plus the narrowest uniform bit
//!   width covering `max - min`. Great on BDCC's clustered key/date columns.
//! * [`BlockEncoding::RleI64`] — **run-length** for the low-cardinality runs
//!   BDCC clustering naturally produces: run values + exclusive end offsets.
//! * [`BlockEncoding::ForF64`] — a decimal-scaled frame-of-reference variant
//!   for the `f64` DECIMAL stand-ins: values are multiplied by a small power
//!   of ten, verified **bit-exact** per value, and stored like `ForI64`.
//!
//! # Encoding-selection contract
//!
//! For every block each applicable codec's size is estimated and the
//! smallest is kept **only if it is strictly smaller than raw**
//! ([`BlockEncoding::Raw`] otherwise — the scan then reads the raw column
//! slice for that block). [`ColumnEncoding::build`] returns `None` when no
//! block of the column wins, so wholly incompressible columns cost nothing.
//!
//! # Exactness contract
//!
//! Decoding any encoded block reproduces the raw column slice **exactly**:
//! `i64` values round-trip by construction, strings byte-for-byte, and
//! `ForF64` is only chosen when every scaled value round-trips to the
//! identical IEEE bit pattern (`to_bits()` equality; `-0.0` and non-finite
//! values therefore fall back to raw). This is what lets the execution layer
//! evaluate predicates on encoded data and still produce byte-identical
//! query results (see `bdcc-exec`'s late-materialization scan kernels).
//!
//! # Gate
//!
//! Building encodings is controlled by the `BDCC_ENCODE` environment
//! variable (default **on**; `0`/`false`/`off` disables) and by the
//! process-wide test override [`set_encode_enabled`]. With the gate off,
//! tables carry no encodings and scans take the raw path verbatim.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::column::Column;
use crate::value::DataType;

// ---------------------------------------------------------------------------
// Gate
// ---------------------------------------------------------------------------

/// 0 = follow the environment, 1 = force on, 2 = force off.
static ENCODE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Process-wide override of the `BDCC_ENCODE` gate, for tests and benches
/// that build the same table both ways. `None` restores env behaviour.
pub fn set_encode_enabled(enabled: Option<bool>) {
    let v = match enabled {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    };
    ENCODE_OVERRIDE.store(v, Ordering::SeqCst);
}

/// Should tables built now carry block encodings? Default **on**;
/// `BDCC_ENCODE=0|false|off` disables; [`set_encode_enabled`] overrides.
pub fn encode_enabled() -> bool {
    match ENCODE_OVERRIDE.load(Ordering::SeqCst) {
        1 => return true,
        2 => return false,
        _ => {}
    }
    match std::env::var("BDCC_ENCODE") {
        Ok(v) => !matches!(v.trim().to_ascii_lowercase().as_str(), "0" | "false" | "off"),
        Err(_) => true,
    }
}

// ---------------------------------------------------------------------------
// PackedInts
// ---------------------------------------------------------------------------

/// Bit-packed unsigned integers with one uniform width per vector.
///
/// `width == 0` stores nothing (every value is 0); widths up to 63 pack
/// little-endian into `u64` words, values straddling word boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedInts {
    width: u8,
    len: usize,
    words: Vec<u64>,
}

impl PackedInts {
    /// Narrowest width (bits) that can hold `range` (0 for a zero range).
    pub fn bits_for(range: u64) -> u8 {
        (u64::BITS - range.leading_zeros()) as u8
    }

    /// Pack `values` at `width` bits each. Every value must fit.
    pub fn pack(values: &[u64], width: u8) -> PackedInts {
        assert!(width < 64, "64-bit packing never wins over raw");
        let len = values.len();
        if width == 0 {
            debug_assert!(values.iter().all(|&v| v == 0));
            return PackedInts { width, len, words: Vec::new() };
        }
        let mask = (1u64 << width) - 1;
        let nwords = (len * width as usize).div_ceil(64);
        let mut words = vec![0u64; nwords];
        for (i, &v) in values.iter().enumerate() {
            debug_assert!(v <= mask, "value {v} exceeds {width}-bit width");
            let bit = i * width as usize;
            let (word, off) = (bit / 64, bit % 64);
            words[word] |= (v & mask) << off;
            if off + width as usize > 64 {
                words[word + 1] |= (v & mask) >> (64 - off);
            }
        }
        PackedInts { width, len, words }
    }

    /// Value at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        if self.width == 0 {
            return 0;
        }
        let w = self.width as usize;
        let mask = (1u64 << w) - 1;
        let bit = i * w;
        let (word, off) = (bit / 64, bit % 64);
        let mut v = self.words[word] >> off;
        if off + w > 64 {
            v |= self.words[word + 1] << (64 - off);
        }
        v & mask
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per value.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Packed payload size in bytes (the size estimate the codec selection
    /// uses, not the in-memory `Vec` capacity).
    pub fn byte_size(&self) -> usize {
        (self.len * self.width as usize).div_ceil(8)
    }

    /// The packed `u64` words, for serialization (the spill file format
    /// writes these verbatim and rebuilds with [`PackedInts::from_parts`]).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild from serialized parts. `words` must be exactly the word
    /// count [`pack`](Self::pack) would produce for `(len, width)`.
    pub fn from_parts(width: u8, len: usize, words: Vec<u64>) -> PackedInts {
        debug_assert!(width < 64);
        debug_assert_eq!(words.len(), (len * width as usize).div_ceil(64));
        PackedInts { width, len, words }
    }
}

// ---------------------------------------------------------------------------
// Block codecs
// ---------------------------------------------------------------------------

/// The encoding chosen for one block of one column.
#[derive(Debug, Clone)]
pub enum BlockEncoding {
    /// Encoding did not pay for this block; scans read the raw column slice.
    Raw,
    /// Frame-of-reference: `value[i] = min ⊞ packed[i]` (wrapping add, so a
    /// full-range `max - min` that overflows `i64` still round-trips).
    ForI64 { min: i64, packed: PackedInts },
    /// Run-length: `values[r]` repeats up to the in-block exclusive end
    /// offset `ends[r]` (`ends` is strictly increasing, last = block rows).
    RleI64 { values: Vec<i64>, ends: Vec<u32> },
    /// Block-local dictionary: `dict` holds the sorted distinct strings,
    /// `codes[i]` indexes into it.
    DictStr { dict: Vec<String>, codes: PackedInts },
    /// Decimal-scaled frame-of-reference for floats:
    /// `value[i] = ((min + packed[i]) as f64) / scale`, bit-exact verified
    /// per value at build time.
    ForF64 { min: i64, scale: f64, packed: PackedInts },
}

impl BlockEncoding {
    /// Short codec tag for annotations (`raw`/`for`/`rle`/`dict`/`forf`).
    pub fn tag(&self) -> &'static str {
        match self {
            BlockEncoding::Raw => "raw",
            BlockEncoding::ForI64 { .. } => "for",
            BlockEncoding::RleI64 { .. } => "rle",
            BlockEncoding::DictStr { .. } => "dict",
            BlockEncoding::ForF64 { .. } => "forf",
        }
    }

    /// Decode `rows` values of this block into a fresh column, or `None`
    /// for [`BlockEncoding::Raw`] (the caller slices the raw column).
    /// `logical` restores the Int-vs-Date logical type of `i64` codecs.
    pub fn decode(&self, rows: usize, logical: DataType) -> Option<Column> {
        let int_col = |values: Vec<i64>| {
            if logical == DataType::Date {
                Column::from_dates(values)
            } else {
                Column::from_i64(values)
            }
        };
        match self {
            BlockEncoding::Raw => None,
            BlockEncoding::ForI64 { min, packed } => {
                debug_assert_eq!(packed.len(), rows);
                let values = (0..rows).map(|i| min.wrapping_add(packed.get(i) as i64)).collect();
                Some(int_col(values))
            }
            BlockEncoding::RleI64 { values, ends } => {
                let mut out = Vec::with_capacity(rows);
                let mut start = 0u32;
                for (&v, &end) in values.iter().zip(ends) {
                    out.extend(std::iter::repeat_n(v, (end - start) as usize));
                    start = end;
                }
                debug_assert_eq!(out.len(), rows);
                Some(int_col(out))
            }
            BlockEncoding::DictStr { dict, codes } => {
                debug_assert_eq!(codes.len(), rows);
                let values = (0..rows).map(|i| dict[codes.get(i) as usize].clone()).collect();
                Some(Column::from_strings(values))
            }
            BlockEncoding::ForF64 { min, scale, packed } => {
                debug_assert_eq!(packed.len(), rows);
                let values = (0..rows)
                    .map(|i| (min.wrapping_add(packed.get(i) as i64)) as f64 / scale)
                    .collect();
                Some(Column::from_f64(values))
            }
        }
    }
}

/// Estimated payload bytes of `n` values packed at `width` bits plus a
/// per-block header of `header` bytes.
fn packed_size(n: usize, width: u8, header: usize) -> usize {
    header + (n * width as usize).div_ceil(8)
}

/// Raw size estimate of a string slice: the same `len + 1` model
/// `Column::avg_width` uses.
fn raw_str_size(values: &[String]) -> usize {
    values.iter().map(|s| s.len() + 1).sum()
}

fn encode_i64_block(values: &[i64]) -> (BlockEncoding, usize) {
    let n = values.len();
    let raw = n * 8;
    let (mut min, mut max) = (values[0], values[0]);
    let mut runs = 1usize;
    for w in values.windows(2) {
        if w[1] != w[0] {
            runs += 1;
        }
    }
    for &v in &values[1..] {
        min = min.min(v);
        max = max.max(v);
    }
    let width = PackedInts::bits_for(max.wrapping_sub(min) as u64);
    // FOR header: 8-byte min + 1-byte width.
    let for_size = if width < 64 { packed_size(n, width, 9) } else { usize::MAX };
    // RLE: 8-byte value + 4-byte end offset per run.
    let rle_size = if n <= u32::MAX as usize { runs * 12 } else { usize::MAX };
    let best = for_size.min(rle_size);
    if best >= raw {
        return (BlockEncoding::Raw, raw);
    }
    if rle_size < for_size {
        let mut vals = Vec::with_capacity(runs);
        let mut ends = Vec::with_capacity(runs);
        for (i, &v) in values.iter().enumerate() {
            if i == 0 || v != values[i - 1] {
                vals.push(v);
                ends.push(0);
            }
            *ends.last_mut().expect("run started") = (i + 1) as u32;
        }
        (BlockEncoding::RleI64 { values: vals, ends }, rle_size)
    } else {
        let deltas: Vec<u64> = values.iter().map(|&v| v.wrapping_sub(min) as u64).collect();
        (BlockEncoding::ForI64 { min, packed: PackedInts::pack(&deltas, width) }, for_size)
    }
}

fn encode_str_block(values: &[String]) -> (BlockEncoding, usize) {
    let raw = raw_str_size(values);
    let mut dict: Vec<&String> = values.iter().collect();
    dict.sort_unstable();
    dict.dedup();
    let width = PackedInts::bits_for(dict.len().saturating_sub(1) as u64);
    // Dict header: 4-byte entry count + the distinct strings themselves.
    let dict_size =
        packed_size(values.len(), width, 4 + dict.iter().map(|s| s.len() + 1).sum::<usize>());
    if dict_size >= raw {
        return (BlockEncoding::Raw, raw);
    }
    let codes: Vec<u64> = values
        .iter()
        .map(|v| dict.binary_search(&v).expect("value in its own dict") as u64)
        .collect();
    let dict: Vec<String> = dict.into_iter().cloned().collect();
    (BlockEncoding::DictStr { dict, codes: PackedInts::pack(&codes, width) }, dict_size)
}

/// Scale every value by `scale` to an integer, or `None` if any value does
/// not round-trip to the identical bit pattern.
fn scale_exact(values: &[f64], scale: f64) -> Option<Vec<i64>> {
    const LIMIT: f64 = 9_007_199_254_740_992.0; // 2^53: exact i64↔f64 range
    values
        .iter()
        .map(|&v| {
            let s = (v * scale).round();
            if s.is_nan() || s.abs() >= LIMIT {
                return None; // non-finite, NaN, or too large to be exact
            }
            let i = s as i64;
            if (i as f64 / scale).to_bits() == v.to_bits() {
                Some(i)
            } else {
                None
            }
        })
        .collect()
}

fn encode_f64_block(values: &[f64]) -> (BlockEncoding, usize) {
    let n = values.len();
    let raw = n * 8;
    let mut best: Option<(BlockEncoding, usize)> = None;
    // TPC-H DECIMAL(15,2) stand-ins: try whole numbers, then cents.
    for scale in [1.0f64, 100.0] {
        let Some(ints) = scale_exact(values, scale) else { continue };
        let (mut min, mut max) = (ints[0], ints[0]);
        for &v in &ints[1..] {
            min = min.min(v);
            max = max.max(v);
        }
        let width = PackedInts::bits_for(max.wrapping_sub(min) as u64);
        if width == 64 {
            continue;
        }
        // Header: 8-byte min + 8-byte scale + 1-byte width.
        let size = packed_size(n, width, 17);
        if best.as_ref().is_none_or(|(_, b)| size < *b) {
            let deltas: Vec<u64> = ints.iter().map(|&v| v.wrapping_sub(min) as u64).collect();
            best = Some((
                BlockEncoding::ForF64 { min, scale, packed: PackedInts::pack(&deltas, width) },
                size,
            ));
        }
    }
    match best {
        Some((enc, size)) if size < raw => (enc, size),
        _ => (BlockEncoding::Raw, raw),
    }
}

// ---------------------------------------------------------------------------
// ColumnEncoding
// ---------------------------------------------------------------------------

/// The chosen per-block encodings of one column, sharing the block grid of
/// the column's [`crate::block::ColumnBlockStats`].
#[derive(Debug, Clone)]
pub struct ColumnEncoding {
    /// Rows per block (same grid as the MinMax stats).
    pub block_rows: usize,
    /// Logical type restored on decode (`Int` vs `Date` for `i64` codecs).
    pub logical: DataType,
    /// One codec per block; [`BlockEncoding::Raw`] where encoding lost.
    pub blocks: Vec<BlockEncoding>,
    /// Estimated encoded bytes of the whole column (raw blocks at raw size).
    pub encoded_bytes: u64,
    /// Estimated raw bytes of the whole column (same model as `avg_width`).
    pub raw_bytes: u64,
}

impl ColumnEncoding {
    /// Choose a codec per block. Returns `None` when no block wins over raw
    /// (including empty columns), so incompressible columns carry nothing.
    pub fn build(column: &Column, block_rows: usize) -> Option<ColumnEncoding> {
        assert!(block_rows > 0, "block_rows must be positive");
        let n = column.len();
        if n == 0 {
            return None;
        }
        let nblocks = n.div_ceil(block_rows);
        let mut blocks = Vec::with_capacity(nblocks);
        let (mut encoded_bytes, mut raw_bytes) = (0u64, 0u64);
        let mut any = false;
        for b in 0..nblocks {
            let (start, end) = (b * block_rows, ((b + 1) * block_rows).min(n));
            let (enc, size, raw) = match column {
                Column::I64 { values, .. } => {
                    let (enc, size) = encode_i64_block(&values[start..end]);
                    (enc, size, (end - start) * 8)
                }
                Column::F64(values) => {
                    let (enc, size) = encode_f64_block(&values[start..end]);
                    (enc, size, (end - start) * 8)
                }
                Column::Str(values) => {
                    let slice = &values[start..end];
                    let (enc, size) = encode_str_block(slice);
                    (enc, size, raw_str_size(slice))
                }
            };
            any |= !matches!(enc, BlockEncoding::Raw);
            encoded_bytes += size as u64;
            raw_bytes += raw as u64;
            blocks.push(enc);
        }
        if !any {
            return None;
        }
        Some(ColumnEncoding {
            block_rows,
            logical: column.data_type(),
            blocks,
            encoded_bytes,
            raw_bytes,
        })
    }

    /// The codec of block `b`.
    pub fn block(&self, b: usize) -> &BlockEncoding {
        &self.blocks[b]
    }

    /// Estimated encoded bytes per row.
    pub fn avg_encoded_width(&self, rows: usize) -> f64 {
        if rows == 0 {
            0.0
        } else {
            self.encoded_bytes as f64 / rows as f64
        }
    }

    /// Compact per-codec block counts, e.g. `"for:10,rle:2,raw:1"`,
    /// insertion-ordered by first appearance.
    pub fn codec_summary(&self) -> String {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for b in &self.blocks {
            let tag = b.tag();
            match counts.iter_mut().find(|(t, _)| *t == tag) {
                Some((_, n)) => *n += 1,
                None => counts.push((tag, 1)),
            }
        }
        counts.iter().map(|(t, n)| format!("{t}:{n}")).collect::<Vec<_>>().join(",")
    }

    /// Decode rows `[start, end)` from the encodings, reading `raw` for
    /// [`BlockEncoding::Raw`] blocks. The round-trip contract: the result
    /// always equals `raw.slice(start, end)` exactly.
    pub fn decode_range(&self, raw: &Column, start: usize, end: usize) -> Column {
        let mut out: Option<Column> = None;
        let n = raw.len();
        let mut row = start;
        while row < end {
            let b = row / self.block_rows;
            let (bs, be) = (b * self.block_rows, ((b + 1) * self.block_rows).min(n));
            let (s, e) = (row.max(bs), end.min(be));
            let piece = match self.blocks[b].decode(be - bs, self.logical) {
                Some(block) => block.slice(s - bs, e - bs),
                None => raw.slice(s, e),
            };
            match &mut out {
                Some(acc) => acc.append(&piece).expect("same type across blocks"),
                None => out = Some(piece),
            }
            row = e;
        }
        out.unwrap_or_else(|| raw.slice(0, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Datum;

    #[test]
    fn packed_ints_round_trip_across_word_boundaries() {
        for width in [1u8, 3, 7, 13, 31, 63] {
            let mask = (1u64 << width) - 1;
            let values: Vec<u64> =
                (0..200u64).map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15)) & mask).collect();
            let packed = PackedInts::pack(&values, width);
            assert_eq!(packed.len(), values.len());
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(packed.get(i), v, "width {width} index {i}");
            }
        }
    }

    #[test]
    fn zero_width_stores_nothing() {
        let packed = PackedInts::pack(&[0, 0, 0], 0);
        assert_eq!(packed.byte_size(), 0);
        assert_eq!(packed.get(2), 0);
        assert_eq!(PackedInts::bits_for(0), 0);
        assert_eq!(PackedInts::bits_for(1), 1);
        assert_eq!(PackedInts::bits_for(255), 8);
        assert_eq!(PackedInts::bits_for(256), 9);
        assert_eq!(PackedInts::bits_for(u64::MAX), 64);
    }

    #[test]
    fn clustered_ints_pick_for() {
        let values: Vec<i64> = (1000..1512).collect();
        let col = Column::from_i64(values.clone());
        let enc = ColumnEncoding::build(&col, 4096).expect("FOR wins");
        assert!(matches!(enc.blocks[0], BlockEncoding::ForI64 { .. }));
        assert!(enc.encoded_bytes < enc.raw_bytes);
        assert_eq!(enc.decode_range(&col, 0, values.len()), col);
        assert_eq!(enc.decode_range(&col, 100, 300), col.slice(100, 300));
    }

    #[test]
    fn constant_runs_pick_rle() {
        let mut values = vec![7i64; 300];
        values.extend(vec![9i64; 212]);
        let col = Column::from_i64(values.clone());
        let enc = ColumnEncoding::build(&col, 4096).expect("RLE wins");
        match &enc.blocks[0] {
            BlockEncoding::RleI64 { values: v, ends } => {
                assert_eq!(v, &vec![7, 9]);
                assert_eq!(ends, &vec![300, 512]);
            }
            other => panic!("expected RLE, got {other:?}"),
        }
        assert_eq!(enc.decode_range(&col, 250, 350), col.slice(250, 350));
    }

    #[test]
    fn date_logical_type_survives_decode() {
        let col = Column::from_dates((9000..9500).collect());
        let enc = ColumnEncoding::build(&col, 4096).expect("FOR wins");
        let dec = enc.decode_range(&col, 0, 500);
        assert_eq!(dec.datum(0), Datum::Date(9000));
        assert_eq!(dec, col);
    }

    #[test]
    fn random_ints_fall_back_to_raw() {
        // Full-width noise: neither FOR nor RLE can win.
        let values: Vec<i64> =
            (0..512u64).map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15)) as i64).collect();
        let col = Column::from_i64(values);
        assert!(ColumnEncoding::build(&col, 4096).is_none());
    }

    #[test]
    fn low_cardinality_strings_pick_dict() {
        let modes = ["AIR", "RAIL", "TRUCK", "SHIP"];
        let values: Vec<String> = (0..512).map(|i| modes[i % 4].to_string()).collect();
        let col = Column::from_strings(values);
        let enc = ColumnEncoding::build(&col, 4096).expect("dict wins");
        match &enc.blocks[0] {
            BlockEncoding::DictStr { dict, codes } => {
                assert_eq!(dict, &vec!["AIR", "RAIL", "SHIP", "TRUCK"]);
                assert_eq!(codes.width(), 2);
            }
            other => panic!("expected dict, got {other:?}"),
        }
        assert_eq!(enc.decode_range(&col, 3, 400), col.slice(3, 400));
    }

    #[test]
    fn all_unique_strings_fall_back_to_raw() {
        let values: Vec<String> = (0..256).map(|i| format!("unique-value-{i:05}")).collect();
        let col = Column::from_strings(values);
        assert!(ColumnEncoding::build(&col, 4096).is_none());
    }

    #[test]
    fn single_value_blocks_degenerate_cleanly() {
        let col = Column::from_i64(vec![42]);
        // One row: RLE is 12 bytes vs 8 raw, FOR is 9 — both lose.
        assert!(ColumnEncoding::build(&col, 4096).is_none());
        let col = Column::from_strings(vec!["hello-world-string".into()]);
        assert!(ColumnEncoding::build(&col, 4096).is_none());
    }

    #[test]
    fn decimal_floats_encode_bit_exact() {
        let values: Vec<f64> = (0..512).map(|i| (i % 90000) as f64 / 100.0 + 900.0).collect();
        let col = Column::from_f64(values.clone());
        let enc = ColumnEncoding::build(&col, 4096).expect("forf wins");
        assert!(matches!(enc.blocks[0], BlockEncoding::ForF64 { .. }));
        let dec = enc.decode_range(&col, 0, 512);
        let (a, b) = (dec.as_f64().unwrap(), col.as_f64().unwrap());
        for i in 0..512 {
            assert_eq!(a[i].to_bits(), b[i].to_bits(), "row {i}");
        }
    }

    #[test]
    fn inexact_floats_fall_back_to_raw() {
        let values: Vec<f64> = (0..64).map(|i| 0.1 + i as f64 * 0.001).collect();
        let col = Column::from_f64(values);
        assert!(ColumnEncoding::build(&col, 4096).is_none());
        // NaN / infinity never encode.
        let col = Column::from_f64(vec![f64::NAN, 1.0, f64::INFINITY, 2.0]);
        assert!(ColumnEncoding::build(&col, 4096).is_none());
    }

    #[test]
    fn multi_block_columns_choose_per_block() {
        // Block 0: two wide-apart runs (RLE beats FOR's 20-bit width).
        // Block 1: full-width noise (raw).
        let mut values = vec![5i64; 4];
        values.extend(vec![1_000_000i64; 4]);
        values.extend((0..8u64).map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15)) as i64));
        let col = Column::from_i64(values);
        let enc = ColumnEncoding::build(&col, 8).expect("block 0 wins");
        assert!(matches!(enc.blocks[0], BlockEncoding::RleI64 { .. }));
        assert!(matches!(enc.blocks[1], BlockEncoding::Raw));
        assert_eq!(enc.codec_summary(), "rle:1,raw:1");
        assert_eq!(enc.decode_range(&col, 4, 12), col.slice(4, 12));
    }

    #[test]
    fn gate_override_wins_over_env() {
        set_encode_enabled(Some(false));
        assert!(!encode_enabled());
        set_encode_enabled(Some(true));
        assert!(encode_enabled());
        set_encode_enabled(None);
    }
}
