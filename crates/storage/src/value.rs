//! Scalar values and their types.
//!
//! The engine supports the four scalar types TPC-H needs: 64-bit integers,
//! 64-bit floats (used for DECIMAL, a documented approximation), dates
//! (stored as `i64` days since 1970-01-01) and UTF-8 strings. TPC-H contains
//! no NULLs, so the storage layer does not model them; this keeps every hot
//! path branch-free.

use std::cmp::Ordering;
use std::fmt;

/// The type of a column or scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (also used for keys and flags).
    Int,
    /// 64-bit IEEE float (stand-in for TPC-H DECIMAL(15,2)).
    Float,
    /// Calendar date, physically `i64` days since 1970-01-01.
    Date,
    /// UTF-8 string.
    Str,
}

impl DataType {
    /// Short lowercase name, used in error messages and schema dumps.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Date => "date",
            DataType::Str => "str",
        }
    }

    /// Estimated bytes per value when stored on disk, used by the I/O cost
    /// model. Strings use an estimate refined per column by
    /// [`crate::table::ColumnMeta::avg_width`].
    pub fn fixed_width(self) -> Option<usize> {
        match self {
            DataType::Int | DataType::Float | DataType::Date => Some(8),
            DataType::Str => None,
        }
    }

    /// Whether values of this type are physically `i64`.
    pub fn is_integer_backed(self) -> bool {
        matches!(self, DataType::Int | DataType::Date)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An owned scalar value.
///
/// `Datum` is used at the *edges* of the system (predicates, dimension bin
/// boundaries, result rows); hot loops operate on typed column vectors
/// directly.
#[derive(Debug, Clone, PartialEq)]
pub enum Datum {
    Int(i64),
    Float(f64),
    Date(i64),
    Str(String),
}

impl Datum {
    /// The [`DataType`] of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Datum::Int(_) => DataType::Int,
            Datum::Float(_) => DataType::Float,
            Datum::Date(_) => DataType::Date,
            Datum::Str(_) => DataType::Str,
        }
    }

    /// The `i64` payload of integer-backed values.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(v) | Datum::Date(v) => Some(*v),
            _ => None,
        }
    }

    /// The `f64` payload; integers are widened so arithmetic expressions can
    /// mix the two.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Datum::Float(v) => Some(*v),
            Datum::Int(v) | Datum::Date(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Total ordering across same-typed datums; integers and dates compare
    /// by value, floats by `total_cmp`, strings lexicographically.
    /// Cross-type comparisons order by type tag (they only occur in
    /// diagnostics, never in query execution).
    pub fn total_cmp(&self, other: &Datum) -> Ordering {
        use Datum::*;
        match (self, other) {
            (Int(a), Int(b)) | (Date(a), Date(b)) | (Int(a), Date(b)) | (Date(a), Int(b)) => {
                a.cmp(b)
            }
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Float(a), Int(b)) | (Float(a), Date(b)) => a.total_cmp(&(*b as f64)),
            (Int(a), Float(b)) | (Date(a), Float(b)) => (*a as f64).total_cmp(b),
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }
}

fn type_rank(d: &Datum) -> u8 {
    match d {
        Datum::Int(_) => 0,
        Datum::Float(_) => 1,
        Datum::Date(_) => 2,
        Datum::Str(_) => 3,
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Int(v) => write!(f, "{v}"),
            Datum::Float(v) => write!(f, "{v:.2}"),
            Datum::Date(v) => write!(f, "{}", format_date(*v)),
            Datum::Str(s) => f.write_str(s),
        }
    }
}

impl From<i64> for Datum {
    fn from(v: i64) -> Self {
        Datum::Int(v)
    }
}
impl From<f64> for Datum {
    fn from(v: f64) -> Self {
        Datum::Float(v)
    }
}
impl From<&str> for Datum {
    fn from(v: &str) -> Self {
        Datum::Str(v.to_string())
    }
}
impl From<String> for Datum {
    fn from(v: String) -> Self {
        Datum::Str(v)
    }
}

// ---------------------------------------------------------------------------
// Date arithmetic (proleptic Gregorian, civil-days algorithm).
// ---------------------------------------------------------------------------

/// Days since 1970-01-01 for a calendar date. Implements the standard
/// "days from civil" conversion (Howard Hinnant's algorithm), valid across
/// the whole TPC-H date range (1992..1999).
pub fn date_to_days(year: i64, month: u32, day: u32) -> i64 {
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = month as i64;
    let d = day as i64;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Inverse of [`date_to_days`]: `(year, month, day)` for a day count.
pub fn days_to_date(days: i64) -> (i64, u32, u32) {
    let z = days + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// `YYYY-MM-DD` rendering of a day count.
pub fn format_date(days: i64) -> String {
    let (y, m, d) = days_to_date(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Parse `YYYY-MM-DD` into a day count.
///
/// Returns [`StorageError::InvalidDate`] (carrying the input) on anything
/// malformed: missing parts, non-digits, or a calendar-invalid date like
/// `1993-02-30` (checked by round-tripping through [`days_to_date`]).
pub fn parse_date(s: &str) -> crate::error::Result<i64> {
    let bad = || crate::error::StorageError::InvalidDate(s.to_string());
    let mut parts = s.splitn(3, '-');
    let mut next = || parts.next().ok_or_else(bad);
    let y: i64 = next()?.parse().map_err(|_| bad())?;
    let m: u32 = next()?.parse().map_err(|_| bad())?;
    let d: u32 = next()?.parse().map_err(|_| bad())?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return Err(bad());
    }
    let days = date_to_days(y, m, d);
    // Out-of-calendar days (Feb 30, Apr 31) normalize under the civil-days
    // conversion; a round-trip mismatch means the input was not a real date.
    if days_to_date(days) != (y, m, d) {
        return Err(bad());
    }
    Ok(days)
}

/// The calendar year of a day count (`EXTRACT(YEAR FROM ...)`).
pub fn year_of(days: i64) -> i64 {
    days_to_date(days).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(date_to_days(1970, 1, 1), 0);
        assert_eq!(days_to_date(0), (1970, 1, 1));
    }

    #[test]
    fn known_tpch_dates_round_trip() {
        for (y, m, d) in [
            (1992, 1, 1),
            (1995, 3, 15),
            (1996, 12, 31),
            (1998, 12, 1),
            (2000, 2, 29), // leap day
        ] {
            let days = date_to_days(y, m, d);
            assert_eq!(days_to_date(days), (y, m, d), "{y}-{m}-{d}");
        }
    }

    #[test]
    fn dates_are_monotonic_across_year_boundary() {
        assert_eq!(date_to_days(1995, 1, 1) - date_to_days(1994, 12, 31), 1);
        // 1996 is a leap year.
        assert_eq!(date_to_days(1997, 1, 1) - date_to_days(1996, 1, 1), 366);
        assert_eq!(date_to_days(1996, 1, 1) - date_to_days(1995, 1, 1), 365);
    }

    #[test]
    fn parse_and_format_round_trip() {
        for s in ["1992-01-01", "1995-03-15", "1998-12-01"] {
            assert_eq!(format_date(parse_date(s).unwrap()), s);
        }
    }

    #[test]
    fn malformed_dates_are_typed_errors_not_panics() {
        for s in [
            "",
            "1995",
            "1995-03",
            "1995-3-",
            "not-a-date",
            "1995-03-15x",
            "1995-13-01", // month out of range
            "1995-00-10",
            "1995-02-30", // not a real calendar day
            "1995-04-31",
            "1995-06-00",
        ] {
            match parse_date(s) {
                Err(crate::error::StorageError::InvalidDate(got)) => assert_eq!(got, s),
                other => panic!("{s:?}: expected InvalidDate, got {other:?}"),
            }
        }
        // Leap-day handling stays exact: valid in 1996, invalid in 1995.
        assert!(parse_date("1996-02-29").is_ok());
        assert!(parse_date("1995-02-29").is_err());
    }

    #[test]
    fn year_extraction() {
        assert_eq!(year_of(parse_date("1995-06-17").unwrap()), 1995);
        assert_eq!(year_of(parse_date("1992-01-01").unwrap()), 1992);
    }

    #[test]
    fn datum_total_cmp_orders_values() {
        assert_eq!(Datum::Int(1).total_cmp(&Datum::Int(2)), Ordering::Less);
        assert_eq!(
            Datum::Str("apple".into()).total_cmp(&Datum::Str("banana".into())),
            Ordering::Less
        );
        assert_eq!(Datum::Float(1.5).total_cmp(&Datum::Int(1)), Ordering::Greater);
        assert_eq!(
            Datum::Date(parse_date("1995-01-01").unwrap())
                .total_cmp(&Datum::Date(parse_date("1994-01-01").unwrap())),
            Ordering::Greater
        );
    }

    #[test]
    fn datum_accessors() {
        assert_eq!(Datum::Int(7).as_int(), Some(7));
        assert_eq!(Datum::Date(3).as_int(), Some(3));
        assert_eq!(Datum::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Datum::Int(2).as_float(), Some(2.0));
        assert_eq!(Datum::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Datum::Str("x".into()).as_int(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Datum::Int(42).to_string(), "42");
        assert_eq!(Datum::Float(1.0).to_string(), "1.00");
        assert_eq!(Datum::Date(parse_date("1996-05-02").unwrap()).to_string(), "1996-05-02");
    }
}
