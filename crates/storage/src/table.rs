//! Stored tables: named, typed column collections with block statistics.

use std::collections::HashMap;
use std::sync::Arc;

use crate::block::{ColumnBlockStats, DEFAULT_BLOCK_ROWS};
use crate::column::Column;
use crate::encode::ColumnEncoding;
use crate::error::{Result, StorageError};
use crate::io::pages_for;
use crate::value::{DataType, Datum};

/// Static description of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMeta {
    pub name: String,
    pub data_type: DataType,
    /// Average stored width in bytes (measured at build time); feeds the
    /// page/cost model and Algorithm 1's densest-column computation.
    pub avg_width: f64,
}

/// Ordered column names and types of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnMeta>,
}

impl TableSchema {
    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| StorageError::UnknownColumn(format!("{}.{}", self.name, name)))
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

/// An immutable stored table: columns of equal length plus per-column block
/// statistics (MinMax indices).
#[derive(Debug, Clone)]
pub struct StoredTable {
    schema: TableSchema,
    columns: Vec<Arc<Column>>,
    stats: Vec<ColumnBlockStats>,
    /// Per-column block encodings (`None` when the `BDCC_ENCODE` gate was
    /// off at build time or no block of the column won over raw). Shares
    /// the MinMax block grid; raw columns stay resident, so encodings are
    /// an *additional* predicate-evaluation representation, never the only
    /// copy.
    encodings: Vec<Option<Arc<ColumnEncoding>>>,
    rows: usize,
    name_index: HashMap<String, usize>,
}

impl StoredTable {
    /// Build a table from `(name, column)` pairs. All columns must have the
    /// same length; the table name is recorded in the schema.
    pub fn from_columns(
        table_name: &str,
        named_columns: Vec<(String, Column)>,
    ) -> Result<StoredTable> {
        Self::from_columns_with_block_rows(table_name, named_columns, DEFAULT_BLOCK_ROWS)
    }

    /// As [`from_columns`](Self::from_columns) with an explicit MinMax block
    /// size (tests use small blocks).
    pub fn from_columns_with_block_rows(
        table_name: &str,
        named_columns: Vec<(String, Column)>,
        block_rows: usize,
    ) -> Result<StoredTable> {
        if named_columns.is_empty() {
            return Err(StorageError::Invalid(format!("table {table_name} has no columns")));
        }
        let rows = named_columns[0].1.len();
        let encode = crate::encode::encode_enabled();
        let mut metas = Vec::with_capacity(named_columns.len());
        let mut columns = Vec::with_capacity(named_columns.len());
        let mut stats = Vec::with_capacity(named_columns.len());
        let mut encodings = Vec::with_capacity(named_columns.len());
        let mut name_index = HashMap::with_capacity(named_columns.len());
        for (i, (name, column)) in named_columns.into_iter().enumerate() {
            if column.len() != rows {
                return Err(StorageError::LengthMismatch { expected: rows, actual: column.len() });
            }
            if name_index.insert(name.clone(), i).is_some() {
                return Err(StorageError::Invalid(format!(
                    "duplicate column {name} in table {table_name}"
                )));
            }
            metas.push(ColumnMeta {
                name,
                data_type: column.data_type(),
                avg_width: column.avg_width(),
            });
            if rows > 0 {
                stats.push(ColumnBlockStats::build(&column, block_rows));
            } else {
                stats.push(ColumnBlockStats { block_rows, blocks: Vec::new() });
            }
            encodings.push(if encode {
                ColumnEncoding::build(&column, block_rows).map(Arc::new)
            } else {
                None
            });
            columns.push(Arc::new(column));
        }
        Ok(StoredTable {
            schema: TableSchema { name: table_name.to_string(), columns: metas },
            columns,
            stats,
            encodings,
            rows,
            name_index,
        })
    }

    /// The table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column by index.
    pub fn column(&self, index: usize) -> Result<&Arc<Column>> {
        self.columns
            .get(index)
            .ok_or(StorageError::ColumnIndexOutOfRange { index, arity: self.columns.len() })
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Arc<Column>> {
        let idx = self
            .name_index
            .get(name)
            .copied()
            .ok_or_else(|| StorageError::UnknownColumn(format!("{}.{}", self.name(), name)))?;
        Ok(&self.columns[idx])
    }

    /// Column index by name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.schema.column_index(name)
    }

    /// MinMax statistics of a column by index.
    pub fn block_stats(&self, index: usize) -> Result<&ColumnBlockStats> {
        self.stats
            .get(index)
            .ok_or(StorageError::ColumnIndexOutOfRange { index, arity: self.stats.len() })
    }

    /// One full row as datums (diagnostics and tests; never a hot path).
    pub fn row(&self, row: usize) -> Result<Vec<Datum>> {
        if row >= self.rows {
            return Err(StorageError::RowOutOfRange { row, rows: self.rows });
        }
        Ok(self.columns.iter().map(|c| c.datum(row)).collect())
    }

    /// Block encoding of a column, if one was built and won over raw.
    pub fn encoding(&self, index: usize) -> Option<&Arc<ColumnEncoding>> {
        self.encodings.get(index).and_then(|e| e.as_ref())
    }

    /// Whether any column of this table is block-encoded.
    pub fn has_encodings(&self) -> bool {
        self.encodings.iter().any(|e| e.is_some())
    }

    /// Average *stored* bytes per value of column `index`: the encoded
    /// width when the column is block-encoded, the raw `avg_width`
    /// otherwise. This is what the I/O cost model charges per scan —
    /// dictionary-encoded string columns no longer bill their raw heap
    /// size. Algorithm 1's [`densest_column_width`](Self::densest_column_width)
    /// deliberately stays on raw widths so BDCC designs are invariant
    /// under the `BDCC_ENCODE` gate.
    pub fn io_width(&self, index: usize) -> f64 {
        match self.encoding(index) {
            Some(enc) => enc.avg_encoded_width(self.rows),
            None => self.schema.columns[index].avg_width,
        }
    }

    /// Logical pages occupied by column `index` (cost model; encoded
    /// columns occupy their encoded footprint).
    pub fn column_pages(&self, index: usize) -> Result<u64> {
        Ok(pages_for(self.rows, self.io_width(index)))
    }

    /// Average width of the *densest* (widest stored) column, in bytes —
    /// the quantity Algorithm 1 sizes groups against.
    pub fn densest_column_width(&self) -> f64 {
        self.schema.columns.iter().map(|c| c.avg_width).fold(0.0, f64::max)
    }

    /// Total logical pages across all columns.
    pub fn total_pages(&self) -> u64 {
        (0..self.arity()).map(|i| self.column_pages(i).unwrap_or(0)).sum()
    }

    /// Number of MinMax statistics blocks (uniform across columns) — the
    /// unit the morsel scheduler partitions plain scans by.
    pub fn block_count(&self) -> usize {
        self.stats.first().map(|s| s.len()).unwrap_or(0)
    }

    /// Rows per statistics block.
    pub fn block_rows(&self) -> usize {
        self.stats.first().map(|s| s.block_rows).unwrap_or(DEFAULT_BLOCK_ROWS)
    }

    /// Row span `[start, end)` covered by blocks `[lo, hi)` — a block-range
    /// view for parallel scan workers. Clamped to the table.
    pub fn block_range_rows(&self, lo: usize, hi: usize) -> (usize, usize) {
        let br = self.block_rows();
        let start = (lo * br).min(self.rows);
        let end = (hi * br).min(self.rows);
        (start, end)
    }

    /// A stable key identifying column `index` of this table for I/O
    /// tracking (fnv-style hash of table name and column position).
    pub fn io_key(&self, index: usize) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in self.name().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^ (index as u64)
    }
}

/// Builds a [`StoredTable`] row-group-at-a-time from typed columns.
#[derive(Debug, Default)]
pub struct TableBuilder {
    name: String,
    columns: Vec<(String, Column)>,
}

impl TableBuilder {
    /// A builder for table `name`.
    pub fn new(name: &str) -> TableBuilder {
        TableBuilder { name: name.to_string(), columns: Vec::new() }
    }

    /// Add a named column; order of calls defines column order.
    pub fn column(mut self, name: &str, column: Column) -> TableBuilder {
        self.columns.push((name.to_string(), column));
        self
    }

    /// Finish into a [`StoredTable`].
    pub fn build(self) -> Result<StoredTable> {
        StoredTable::from_columns(&self.name, self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StoredTable {
        TableBuilder::new("t")
            .column("k", Column::from_i64(vec![1, 2, 3]))
            .column("v", Column::from_strings(vec!["a".into(), "bb".into(), "ccc".into()]))
            .build()
            .unwrap()
    }

    #[test]
    fn lookup_by_name_and_index() {
        let t = sample();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.column_index("v").unwrap(), 1);
        assert_eq!(t.column_by_name("k").unwrap().as_i64().unwrap(), &[1, 2, 3]);
        assert!(t.column_by_name("nope").is_err());
        assert!(t.column(5).is_err());
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let r = TableBuilder::new("t")
            .column("a", Column::from_i64(vec![1]))
            .column("b", Column::from_i64(vec![1, 2]))
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = TableBuilder::new("t")
            .column("a", Column::from_i64(vec![1]))
            .column("a", Column::from_i64(vec![2]))
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn empty_schema_rejected() {
        assert!(TableBuilder::new("t").build().is_err());
    }

    #[test]
    fn densest_column_is_widest() {
        let t = sample();
        // strings: (1+1 + 2+1 + 3+1)/3 = 3
        assert!(t.densest_column_width() >= 8.0); // ints are 8 bytes
        let t2 = TableBuilder::new("t2")
            .column("s", Column::from_strings(vec!["x".repeat(100)]))
            .column("k", Column::from_i64(vec![1]))
            .build()
            .unwrap();
        assert!((t2.densest_column_width() - 101.0).abs() < 1e-9);
    }

    #[test]
    fn row_access() {
        let t = sample();
        assert_eq!(t.row(1).unwrap(), vec![Datum::Int(2), Datum::Str("bb".into())]);
        assert!(t.row(3).is_err());
    }

    #[test]
    fn io_keys_differ_per_column_and_table() {
        let t = sample();
        assert_ne!(t.io_key(0), t.io_key(1));
        let t2 = TableBuilder::new("other").column("k", Column::from_i64(vec![1])).build().unwrap();
        assert_ne!(t.io_key(0), t2.io_key(0));
    }

    #[test]
    fn block_stats_present_per_column() {
        let t = sample();
        assert_eq!(t.block_stats(0).unwrap().len(), 1);
    }

    #[test]
    fn block_range_views() {
        let t = StoredTable::from_columns_with_block_rows(
            "t",
            vec![("k".into(), Column::from_i64((0..10).collect()))],
            4,
        )
        .unwrap();
        assert_eq!(t.block_count(), 3);
        assert_eq!(t.block_rows(), 4);
        assert_eq!(t.block_range_rows(0, 1), (0, 4));
        assert_eq!(t.block_range_rows(2, 3), (8, 10)); // partial last block
        assert_eq!(t.block_range_rows(0, 3), (0, 10));
        assert_eq!(t.block_range_rows(3, 9), (10, 10)); // past the end
    }

    #[test]
    fn encoded_columns_shrink_io_width() {
        crate::encode::set_encode_enabled(Some(true));
        let modes = ["AIR", "RAIL", "TRUCK", "SHIP"];
        let t = StoredTable::from_columns_with_block_rows(
            "t",
            vec![
                (
                    "mode".into(),
                    Column::from_strings((0..512).map(|i| modes[i % 4].into()).collect()),
                ),
                ("k".into(), Column::from_i64((0..512).collect())),
            ],
            4096,
        )
        .unwrap();
        crate::encode::set_encode_enabled(None);
        assert!(t.has_encodings());
        let enc = t.encoding(0).expect("dict-encoded strings");
        assert!(enc.encoded_bytes < enc.raw_bytes);
        // io_width reports the encoded footprint; raw avg_width is untouched.
        assert!(t.io_width(0) < t.schema().columns[0].avg_width);
        // ("AIR"+1 + "RAIL"+1 + "TRUCK"+1 + "SHIP"+1) / 4 = 5 bytes raw.
        assert!((t.schema().columns[0].avg_width - 5.0).abs() < 1e-9);
        // Algorithm 1 still sees raw widths.
        assert!((t.densest_column_width() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn encode_gate_off_builds_no_encodings() {
        crate::encode::set_encode_enabled(Some(false));
        let t = StoredTable::from_columns_with_block_rows(
            "t",
            vec![("k".into(), Column::from_i64((0..512).collect()))],
            4096,
        )
        .unwrap();
        crate::encode::set_encode_enabled(None);
        assert!(!t.has_encodings());
        assert_eq!(t.io_width(0), t.schema().columns[0].avg_width);
    }

    #[test]
    fn zero_row_table_allowed() {
        let t = TableBuilder::new("empty").column("k", Column::from_i64(vec![])).build().unwrap();
        assert_eq!(t.rows(), 0);
        assert_eq!(t.block_stats(0).unwrap().len(), 0);
    }
}
