//! Per-block column statistics (MinMax indices).
//!
//! Vectorwise maintains automatic MinMax indices on every column (ref [8] of
//! the paper); the evaluation relies on them for *correlated* selection
//! pushdown (e.g. `l_shipdate` predicates prune blocks because LINEITEM is
//! BDCC-clustered on the correlated `o_orderdate`). We reproduce the
//! mechanism: every stored column keeps min/max per fixed-size row block,
//! and scans skip blocks whose range cannot satisfy a predicate.

use crate::column::Column;
use crate::value::Datum;

/// Rows per statistics block. 4096 rows of an 8-byte column is exactly one
/// 32 KB page, so block granularity and page granularity coincide for the
/// densest fixed-width columns.
pub const DEFAULT_BLOCK_ROWS: usize = 4096;

/// Min/max of one block of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockStats {
    pub min: Datum,
    pub max: Datum,
}

impl BlockStats {
    /// Could a value `v` with `v OP ...` satisfied inside `[min, max]`?
    /// Conservative: `true` means "cannot exclude".
    pub fn may_contain_range(&self, lo: Option<&Datum>, hi: Option<&Datum>) -> bool {
        if let Some(lo) = lo {
            if self.max.total_cmp(lo) == std::cmp::Ordering::Less {
                return false;
            }
        }
        if let Some(hi) = hi {
            if self.min.total_cmp(hi) == std::cmp::Ordering::Greater {
                return false;
            }
        }
        true
    }
}

/// MinMax statistics for one column: one [`BlockStats`] per block of
/// `block_rows` rows.
#[derive(Debug, Clone)]
pub struct ColumnBlockStats {
    pub block_rows: usize,
    pub blocks: Vec<BlockStats>,
}

impl ColumnBlockStats {
    /// Compute stats for `column` with the given block size.
    pub fn build(column: &Column, block_rows: usize) -> ColumnBlockStats {
        assert!(block_rows > 0, "block_rows must be positive");
        let n = column.len();
        let nblocks = n.div_ceil(block_rows);
        let mut blocks = Vec::with_capacity(nblocks);
        for b in 0..nblocks {
            let start = b * block_rows;
            let end = (start + block_rows).min(n);
            blocks.push(block_min_max(column, start, end));
        }
        ColumnBlockStats { block_rows, blocks }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if the column was empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block index covering `row`.
    pub fn block_of_row(&self, row: usize) -> usize {
        row / self.block_rows
    }

    /// Row range `[start, end)` of block `b`, clamped to `total_rows`.
    pub fn rows_of_block(&self, b: usize, total_rows: usize) -> (usize, usize) {
        let start = b * self.block_rows;
        let end = (start + self.block_rows).min(total_rows);
        (start, end)
    }
}

fn block_min_max(column: &Column, start: usize, end: usize) -> BlockStats {
    debug_assert!(start < end);
    match column {
        Column::I64 { values, logical } => {
            let mut min = values[start];
            let mut max = values[start];
            for &v in &values[start + 1..end] {
                min = min.min(v);
                max = max.max(v);
            }
            if logical.is_integer_backed() && *logical == crate::value::DataType::Date {
                BlockStats { min: Datum::Date(min), max: Datum::Date(max) }
            } else {
                BlockStats { min: Datum::Int(min), max: Datum::Int(max) }
            }
        }
        Column::F64(values) => {
            let mut min = values[start];
            let mut max = values[start];
            for &v in &values[start + 1..end] {
                if v < min {
                    min = v;
                }
                if v > max {
                    max = v;
                }
            }
            BlockStats { min: Datum::Float(min), max: Datum::Float(max) }
        }
        Column::Str(values) => {
            let mut min = &values[start];
            let mut max = &values[start];
            for v in &values[start + 1..end] {
                if v < min {
                    min = v;
                }
                if v > max {
                    max = v;
                }
            }
            BlockStats { min: Datum::Str(min.clone()), max: Datum::Str(max.clone()) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_covers_partial_last_block() {
        let c = Column::from_i64((0..10).collect());
        let s = ColumnBlockStats::build(&c, 4);
        assert_eq!(s.len(), 3);
        assert_eq!(s.blocks[0], BlockStats { min: Datum::Int(0), max: Datum::Int(3) });
        assert_eq!(s.blocks[2], BlockStats { min: Datum::Int(8), max: Datum::Int(9) });
        assert_eq!(s.rows_of_block(2, 10), (8, 10));
        assert_eq!(s.block_of_row(9), 2);
    }

    #[test]
    fn range_pruning_is_conservative() {
        let b = BlockStats { min: Datum::Int(10), max: Datum::Int(20) };
        // predicate value >= 25 → min..max entirely below → prune
        assert!(!b.may_contain_range(Some(&Datum::Int(25)), None));
        // predicate value <= 5 → prune
        assert!(!b.may_contain_range(None, Some(&Datum::Int(5))));
        // overlapping range → keep
        assert!(b.may_contain_range(Some(&Datum::Int(15)), Some(&Datum::Int(30))));
        // unbounded → keep
        assert!(b.may_contain_range(None, None));
        // boundary inclusive
        assert!(b.may_contain_range(Some(&Datum::Int(20)), None));
        assert!(b.may_contain_range(None, Some(&Datum::Int(10))));
    }

    #[test]
    fn date_blocks_keep_date_type() {
        let c = Column::from_dates(vec![5, 1, 9]);
        let s = ColumnBlockStats::build(&c, 8);
        assert_eq!(s.blocks[0].min, Datum::Date(1));
        assert_eq!(s.blocks[0].max, Datum::Date(9));
    }

    #[test]
    fn string_blocks() {
        let c = Column::from_strings(vec!["pear".into(), "apple".into(), "melon".into()]);
        let s = ColumnBlockStats::build(&c, 1024);
        assert_eq!(s.blocks[0].min, Datum::Str("apple".into()));
        assert_eq!(s.blocks[0].max, Datum::Str("pear".into()));
    }

    #[test]
    fn float_blocks() {
        let c = Column::from_f64(vec![2.5, -1.0, 0.0]);
        let s = ColumnBlockStats::build(&c, 2);
        assert_eq!(s.blocks[0].min, Datum::Float(-1.0));
        assert_eq!(s.blocks[1].min, Datum::Float(0.0));
    }
}
