//! Sort-permutation utilities for table re-organization.
//!
//! BDCC bulk-load sorts an entire table on the computed `_bdcc_` key.
//! Rather than sorting each column independently we compute one permutation
//! and gather every column through it.

use crate::column::Column;

/// Indices that sort `keys` ascending; ties keep their original order
/// (stable), which makes bulk-load deterministic.
pub fn sort_permutation(keys: &[u64]) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..keys.len()).collect();
    perm.sort_by_key(|&i| keys[i]);
    perm
}

/// Indices that sort rows by a sequence of integer key columns
/// (lexicographic, all ascending, stable).
pub fn sort_permutation_multi(keys: &[&[i64]]) -> Vec<usize> {
    assert!(!keys.is_empty(), "need at least one key column");
    let n = keys[0].len();
    for k in keys {
        assert_eq!(k.len(), n, "key columns must have equal length");
    }
    let mut perm: Vec<usize> = (0..n).collect();
    perm.sort_by(|&a, &b| {
        for k in keys {
            match k[a].cmp(&k[b]) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        std::cmp::Ordering::Equal
    });
    perm
}

/// Gather each column through `perm`, producing re-ordered columns.
pub fn apply_permutation(columns: &[Column], perm: &[usize]) -> Vec<Column> {
    columns.iter().map(|c| c.gather(perm)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_sorts_and_is_stable() {
        let keys = [3u64, 1, 2, 1];
        let perm = sort_permutation(&keys);
        assert_eq!(perm, vec![1, 3, 2, 0]); // the two 1s keep order 1 then 3
        let sorted: Vec<u64> = perm.iter().map(|&i| keys[i]).collect();
        assert_eq!(sorted, vec![1, 1, 2, 3]);
    }

    #[test]
    fn multi_key_sort_is_lexicographic() {
        let a = [1i64, 1, 0, 1];
        let b = [5i64, 2, 9, 2];
        let perm = sort_permutation_multi(&[&a, &b]);
        assert_eq!(perm, vec![2, 1, 3, 0]);
    }

    #[test]
    fn apply_permutes_all_columns_consistently() {
        let c1 = Column::from_i64(vec![30, 10, 20]);
        let c2 = Column::from_strings(vec!["c".into(), "a".into(), "b".into()]);
        let perm = sort_permutation(&[2, 0, 1]);
        let out = apply_permutation(&[c1, c2], &perm);
        assert_eq!(out[0], Column::from_i64(vec![10, 20, 30]));
        assert_eq!(out[1], Column::from_strings(vec!["a".into(), "b".into(), "c".into()]));
    }

    #[test]
    fn empty_input() {
        assert!(sort_permutation(&[]).is_empty());
    }
}
