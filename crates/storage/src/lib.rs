//! # bdcc-storage — columnar storage substrate
//!
//! The BDCC paper (Baumann, Boncz, Sattler: *Automatic Schema Design for
//! Co-Clustered Tables*, ICDE 2013) evaluates inside Vectorwise, a columnar
//! analytical engine. This crate is the from-scratch substitute: an
//! in-memory, strongly typed column store with the three facilities the
//! paper's machinery consumes:
//!
//! * **Typed columns** ([`Column`], [`Datum`], [`DataType`]) holding `i64`,
//!   `f64`, date (days since the Unix epoch) and UTF-8 string values.
//! * **Block statistics** ([`block::BlockStats`]) — per-block min/max values
//!   for every column, the equivalent of Vectorwise MinMax indices, used for
//!   block skipping and correlated selection pushdown.
//! * **An I/O cost model** ([`io::IoTracker`], [`io::DeviceProfile`]) —
//!   logical 32 KB pages per column, sequential vs. random accounting, and
//!   the *efficient random access size* `AR` that drives the self-tuning of
//!   count-table granularity (Algorithm 1 of the paper).
//! * **Per-block lightweight encodings** ([`encode::ColumnEncoding`]) —
//!   dictionary for strings, frame-of-reference + bit-packing and RLE for
//!   integers, decimal-scaled FOR for floats, chosen per block with a raw
//!   fallback when encoding doesn't pay.
//!
//! # Encoding selection and late materialization
//!
//! Encodings are built at table-construction time on the same block grid as
//! the MinMax statistics, and only kept where they are *estimated smaller
//! than raw* (see [`encode`] for the per-codec size models and the
//! bit-exactness contract). The raw columns always stay resident: the
//! execution layer evaluates predicates directly on the encoded blocks
//! (dictionary-code comparison, per-run RLE tests) and **materializes
//! late** — gathering raw values only for the rows that survive a block's
//! predicates — so operators downstream of a scan never see encoded data
//! and results are byte-identical with the `BDCC_ENCODE` gate on or off.
//! [`StoredTable::io_width`] exposes the encoded footprint to the I/O cost
//! model, while Algorithm 1's `densest_column_width` stays on raw widths so
//! BDCC schema designs do not shift when the gate flips.
//!
//! Tables are immutable once built (BDCC re-organizes on bulk-load), which
//! keeps the storage layer simple and lock-free on the read path.

pub mod block;
pub mod column;
pub mod encode;
pub mod error;
pub mod io;
pub mod sort;
pub mod spill;
pub mod table;
pub mod value;

pub use block::{BlockStats, ColumnBlockStats, DEFAULT_BLOCK_ROWS};
pub use column::{Column, ColumnBuilder};
pub use encode::{set_encode_enabled, BlockEncoding, ColumnEncoding, PackedInts};
pub use error::{Result, StorageError};
pub use io::{AccessKind, DeviceProfile, IoStats, IoTracker, PAGE_SIZE};
pub use sort::{apply_permutation, sort_permutation, sort_permutation_multi};
pub use spill::{live_spill_files, SpillHandle, SpillReader, SpillWriter};
pub use table::{ColumnMeta, StoredTable, TableBuilder, TableSchema};
pub use value::{date_to_days, days_to_date, format_date, parse_date, year_of, DataType, Datum};
