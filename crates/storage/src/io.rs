//! I/O accounting and the device cost model.
//!
//! The paper's Algorithm 1 tunes the count-table granularity against the
//! *efficient random access size* `AR`: the request size at which random
//! reads approach sequential throughput (§III — "a few MB for magnetic
//! disks, for Flash devices just 32KB"). Our tables live in memory, so we
//! model the disk instead of touching one: scans report the byte spans of
//! each column they read, and the tracker keeps, per column, the set of
//! read intervals. Every byte is charged **once per query** (a warm buffer
//! pool within one cold run) and every discontinuity counts as a seek, so:
//!
//! * selection pushdown (skipping blocks/groups) directly reduces bytes,
//! * scatter-scan reordering costs seeks but never re-reads,
//! * [`DeviceProfile::estimate_seconds`] converts both into a cold-read
//!   time estimate.
//!
//! Byte granularity rather than page granularity keeps the model faithful
//! at laptop scale factors, where BDCC groups are far smaller than the
//! 32 KB pages the paper's SF100 groups were tuned to (at SF100 the two
//! coincide, since Algorithm 1 sizes groups to at least `AR`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Logical page size in bytes (the paper's evaluation uses 32 KB pages);
/// used to derive page counts from byte counts for reporting.
pub const PAGE_SIZE: usize = 32 * 1024;

/// Whether an access continued the previous run or seeked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Sequential,
    Random,
}

/// Device characteristics used to turn byte counts into time estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Sequential throughput in bytes/second.
    pub seq_bytes_per_sec: f64,
    /// Cost of one random seek in seconds.
    pub seek_seconds: f64,
    /// Efficient random access size `AR` in bytes: a random read of at
    /// least this size runs at ~sequential efficiency.
    pub efficient_random_access: usize,
}

impl DeviceProfile {
    /// The paper's SSD RAID: 1 GB/s sequential, AR = 32 KB (flash, per
    /// ref [5]). The seek cost is *defined by AR*: a random read of AR
    /// bytes achieves ~80% of sequential throughput, i.e.
    /// `seek = 0.25 · AR / seq_rate` ≈ 8 µs.
    pub fn ssd_raid() -> DeviceProfile {
        DeviceProfile::from_ar(1_000_000_000.0, 32 * 1024)
    }

    /// A magnetic disk: 150 MB/s sequential, AR = 2 MB (seek ≈ 3.3 ms by
    /// the same 80%-efficiency definition).
    pub fn magnetic() -> DeviceProfile {
        DeviceProfile::from_ar(150_000_000.0, 2 * 1024 * 1024)
    }

    /// Build a profile from sequential rate and efficient random access
    /// size, deriving the seek cost from the paper's AR definition
    /// ("random reads approach the efficiency of sequential reads … e.g.
    /// such that throughput is 80% of sequential throughput").
    pub fn from_ar(seq_bytes_per_sec: f64, ar: usize) -> DeviceProfile {
        DeviceProfile {
            seq_bytes_per_sec,
            seek_seconds: 0.25 * ar as f64 / seq_bytes_per_sec,
            efficient_random_access: ar,
        }
    }

    /// Estimated seconds to read `stats` cold from this device.
    pub fn estimate_seconds(&self, stats: &IoStats) -> f64 {
        stats.bytes_read as f64 / self.seq_bytes_per_sec
            + stats.random_seeks as f64 * self.seek_seconds
    }
}

impl Default for DeviceProfile {
    fn default() -> Self {
        DeviceProfile::ssd_raid()
    }
}

/// Aggregated access counts for one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Distinct bytes read across all columns.
    pub bytes_read: u64,
    /// Accesses that started with a seek (first access of each column
    /// included).
    pub random_seeks: u64,
    /// Accesses that continued the previous run.
    pub sequential_accesses: u64,
}

impl IoStats {
    /// Logical 32 KB pages touched (rounded up).
    pub fn pages_read(&self) -> u64 {
        self.bytes_read.div_ceil(PAGE_SIZE as u64)
    }

    /// Merge another stats block into this one.
    pub fn merge(&mut self, other: &IoStats) {
        self.bytes_read += other.bytes_read;
        self.random_seeks += other.random_seeks;
        self.sequential_accesses += other.sequential_accesses;
    }
}

#[derive(Debug, Default)]
struct ColumnState {
    /// Sorted, disjoint byte intervals `[lo, hi]` already read.
    intervals: Vec<(u64, u64)>,
    /// Byte position after the most recent access.
    cursor: u64,
    touched: bool,
}

impl ColumnState {
    /// Insert `[lo, hi]`, returning the number of newly read bytes.
    fn insert(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        // Find overlap window. `saturating_add` on both bounds: an interval
        // (or request) ending at `u64::MAX` must not wrap to 0 and be
        // skipped (or terminate the scan early) — it is adjacent to nothing
        // above it, which saturation models exactly.
        let start = self.intervals.partition_point(|&(_, ihi)| ihi.saturating_add(1) < lo);
        let mut new_lo = lo;
        let mut new_hi = hi;
        let mut covered: u64 = 0;
        let mut end = start;
        while end < self.intervals.len() && self.intervals[end].0 <= hi.saturating_add(1) {
            let (ilo, ihi) = self.intervals[end];
            // Bytes of [lo, hi] already covered by this interval.
            let olo = ilo.max(lo);
            let ohi = ihi.min(hi);
            if olo <= ohi {
                covered += ohi - olo + 1;
            }
            new_lo = new_lo.min(ilo);
            new_hi = new_hi.max(ihi);
            end += 1;
        }
        let added = (hi - lo + 1) - covered;
        self.intervals.splice(start..end, [(new_lo, new_hi)]);
        added
    }
}

/// Aggregate counters, kept in atomics so concurrent scan workers update
/// them lock-free and [`IoTracker::stats`] never contends with readers.
#[derive(Debug, Default)]
struct AtomicStats {
    bytes_read: AtomicU64,
    random_seeks: AtomicU64,
    sequential_accesses: AtomicU64,
}

#[derive(Debug, Default)]
struct TrackerInner {
    /// Per-column interval state, **sorted by column key** so
    /// [`IoTracker::record_span`] can binary-search under the mutex
    /// instead of scanning every column (queries over wide schemes and
    /// spill files can accumulate thousands of keys).
    columns: Vec<(u64, ColumnState)>,
}

/// Shared, thread-safe I/O accounting for one query execution. Cloning is
/// cheap and clones share state — parallel scan workers all record into
/// the same tracker. The per-column interval sets (which deduplicate
/// re-reads) live under a mutex; the aggregate counters are atomics.
///
/// Caveat under parallel execution: `bytes_read` stays exact (the
/// interval sets charge every byte once regardless of arrival order), but
/// the sequential/random *classification* uses one cursor per column, so
/// workers interleaving disjoint ranges of the same column can turn what
/// a serial scan would count as sequential continuations into seeks —
/// `random_seeks` is then timing-dependent and overstated. Cost-model
/// comparisons (Figure 2's estimates) should be taken from serial runs.
#[derive(Debug, Clone, Default)]
pub struct IoTracker {
    stats: Arc<AtomicStats>,
    inner: Arc<Mutex<TrackerInner>>,
    /// When set, every recorded span is forwarded to this tracker and the
    /// *parent's* classification is the one returned (see [`child`]).
    ///
    /// [`child`]: Self::child
    parent: Option<Box<IoTracker>>,
}

impl IoTracker {
    /// A fresh tracker with zeroed counters.
    pub fn new() -> IoTracker {
        IoTracker::default()
    }

    /// A tracker that records into its own counters *and* forwards every
    /// span to `self` (recursively, if `self` is itself a child), so I/O
    /// can be attributed per-operator while the query-level interval sets
    /// stay authoritative. [`record_span`](Self::record_span) on a child
    /// returns the *root* tracker's classification, so code paths that
    /// branch on [`AccessKind`] behave identically whether they record
    /// into the query tracker or a per-operator child.
    pub fn child(&self) -> IoTracker {
        IoTracker {
            stats: Arc::default(),
            inner: Arc::default(),
            parent: Some(Box::new(self.clone())),
        }
    }

    /// Record a read of bytes `[first_byte, last_byte]` of the column
    /// identified by `column_key` (any stable hash of table+column).
    /// Returns the access classification.
    pub fn record_span(&self, column_key: u64, first_byte: u64, last_byte: u64) -> AccessKind {
        debug_assert!(first_byte <= last_byte);
        let mut inner = self.inner.lock().expect("io tracker poisoned");
        // `columns` stays sorted by key: O(log n) lookup while holding the
        // mutex, with a sorted insert on first touch of a column.
        let idx = match inner.columns.binary_search_by_key(&column_key, |(k, _)| *k) {
            Ok(i) => i,
            Err(i) => {
                inner.columns.insert(i, (column_key, ColumnState::default()));
                i
            }
        };
        let state = &mut inner.columns[idx].1;
        let added = state.insert(first_byte, last_byte);
        // Sequential = forward continuation from the head (possibly
        // overlapping the last span), or a read fully served from already-
        // read bytes (buffer pool, no physical I/O). Everything else —
        // forward jumps, backward jumps with new bytes, and the first
        // access of a column — seeks.
        let forward_continuation = state.touched
            && first_byte <= state.cursor.saturating_add(1)
            && last_byte > state.cursor;
        let kind = if forward_continuation || (state.touched && added == 0) {
            AccessKind::Sequential
        } else {
            AccessKind::Random
        };
        state.cursor = last_byte;
        state.touched = true;
        drop(inner);
        self.stats.bytes_read.fetch_add(added, Ordering::Relaxed);
        match kind {
            AccessKind::Sequential => {
                self.stats.sequential_accesses.fetch_add(1, Ordering::Relaxed)
            }
            AccessKind::Random => self.stats.random_seeks.fetch_add(1, Ordering::Relaxed),
        };
        match &self.parent {
            Some(parent) => parent.record_span(column_key, first_byte, last_byte),
            None => kind,
        }
    }

    /// Snapshot of the counters so far.
    pub fn stats(&self) -> IoStats {
        IoStats {
            bytes_read: self.stats.bytes_read.load(Ordering::Relaxed),
            random_seeks: self.stats.random_seeks.load(Ordering::Relaxed),
            sequential_accesses: self.stats.sequential_accesses.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters and interval sets (between queries).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("io tracker poisoned");
        inner.columns.clear();
        drop(inner);
        self.stats.bytes_read.store(0, Ordering::Relaxed);
        self.stats.random_seeks.store(0, Ordering::Relaxed);
        self.stats.sequential_accesses.store(0, Ordering::Relaxed);
    }
}

/// Number of pages needed for `rows` values of `avg_width` bytes each.
pub fn pages_for(rows: usize, avg_width: f64) -> u64 {
    let bytes = rows as f64 * avg_width;
    (bytes / PAGE_SIZE as f64).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_bytes_charged_once() {
        let t = IoTracker::new();
        assert_eq!(t.record_span(1, 0, 99), AccessKind::Random);
        assert_eq!(t.record_span(1, 100, 199), AccessKind::Sequential);
        assert_eq!(t.stats().bytes_read, 200);
        // Overlapping forward re-read adds only the new tail.
        assert_eq!(t.record_span(1, 150, 249), AccessKind::Sequential);
        assert_eq!(t.stats().bytes_read, 250);
        // Fully covered re-read is free.
        t.record_span(1, 0, 249);
        assert_eq!(t.stats().bytes_read, 250);
    }

    #[test]
    fn scatter_order_reads_each_byte_once() {
        let t = IoTracker::new();
        // Groups read out of order: every byte still counted once, but the
        // backward jump costs a seek.
        assert_eq!(t.record_span(1, 200, 299), AccessKind::Random);
        assert_eq!(t.record_span(1, 0, 99), AccessKind::Random);
        assert_eq!(t.record_span(1, 100, 199), AccessKind::Sequential);
        let s = t.stats();
        assert_eq!(s.bytes_read, 300);
        assert_eq!(s.random_seeks, 2);
        assert_eq!(s.sequential_accesses, 1);
    }

    #[test]
    fn columns_are_tracked_independently() {
        let t = IoTracker::new();
        t.record_span(1, 0, 9);
        assert_eq!(t.record_span(2, 0, 9), AccessKind::Random);
        assert_eq!(t.record_span(1, 10, 19), AccessKind::Sequential);
        assert_eq!(t.stats().bytes_read, 30);
    }

    #[test]
    fn reset_clears_everything() {
        let t = IoTracker::new();
        t.record_span(1, 0, 9);
        t.reset();
        assert_eq!(t.stats(), IoStats::default());
        assert_eq!(t.record_span(1, 10, 10), AccessKind::Random);
    }

    #[test]
    fn child_attributes_and_forwards() {
        let query = IoTracker::new();
        // The query tracker has seen the column's prefix already…
        query.record_span(1, 0, 99);
        let scan = query.child();
        // …so the child's first span, while locally a cold first access,
        // must classify exactly as the query tracker would (sequential
        // continuation), keeping profiled behavior byte-identical.
        assert_eq!(scan.record_span(1, 100, 199), AccessKind::Sequential);
        // The child attributes its own bytes; the query stays deduped.
        assert_eq!(scan.stats().bytes_read, 100);
        assert_eq!(query.stats().bytes_read, 200);
        // A re-read through another child adds nothing at query level.
        let scan2 = query.child();
        scan2.record_span(1, 0, 199);
        assert_eq!(scan2.stats().bytes_read, 200);
        assert_eq!(query.stats().bytes_read, 200);
    }

    #[test]
    fn interval_merging() {
        let mut c = ColumnState::default();
        assert_eq!(c.insert(10, 19), 10);
        assert_eq!(c.insert(30, 39), 10);
        assert_eq!(c.insert(15, 34), 10); // bridges the two
        assert_eq!(c.intervals, vec![(10, 39)]);
        assert_eq!(c.insert(0, 50), 21);
        assert_eq!(c.intervals, vec![(0, 50)]);
        assert_eq!(c.insert(20, 30), 0);
    }

    #[test]
    fn interval_at_u64_max_does_not_overflow() {
        // An interval ending at `u64::MAX` used to overflow `ihi + 1` in
        // the partition-point closure; both bounds now saturate.
        let mut c = ColumnState::default();
        assert_eq!(c.insert(u64::MAX - 9, u64::MAX), 10);
        // Re-reading the tail is free, and the adjacency probe below the
        // top interval must still find it (no wrap to 0).
        assert_eq!(c.insert(u64::MAX, u64::MAX), 0);
        assert_eq!(c.insert(u64::MAX - 19, u64::MAX - 10), 10);
        assert_eq!(c.intervals, vec![(u64::MAX - 19, u64::MAX)]);
        // A request ending at `u64::MAX` merges with everything it touches.
        let mut c = ColumnState::default();
        c.insert(0, 9);
        assert_eq!(c.insert(5, u64::MAX), u64::MAX - 9);
        assert_eq!(c.intervals, vec![(0, u64::MAX)]);
        // Through the tracker: the whole-address-space span charges once.
        let t = IoTracker::new();
        assert_eq!(t.record_span(1, u64::MAX - 1, u64::MAX), AccessKind::Random);
        assert_eq!(t.record_span(1, u64::MAX - 1, u64::MAX), AccessKind::Sequential);
        assert_eq!(t.stats().bytes_read, 2);
    }

    #[test]
    fn many_columns_stay_sorted_and_deduped() {
        // Regression for the linear `position` scan: keys arrive in a
        // scrambled order and the map must stay sorted (the invariant the
        // O(log n) lookup depends on) while every span still dedupes into
        // the right column's interval set.
        let t = IoTracker::new();
        let n = 4096u64;
        for i in 0..n {
            let key = (i * 2654435761) % n; // scrambled arrival order
            t.record_span(key, 0, 7);
            t.record_span(key, 0, 7); // re-read: must hit the same state
        }
        let inner = t.inner.lock().unwrap();
        assert_eq!(inner.columns.len(), n as usize);
        assert!(
            inner.columns.windows(2).all(|w| w[0].0 < w[1].0),
            "columns must stay sorted by key for binary search"
        );
        drop(inner);
        assert_eq!(t.stats().bytes_read, n * 8, "each column's bytes charged exactly once");
    }

    #[test]
    fn pages_and_estimates() {
        let mut stats = IoStats { bytes_read: PAGE_SIZE as u64 + 1, ..IoStats::default() };
        assert_eq!(stats.pages_read(), 2);
        stats.random_seeks = 10;
        let d = DeviceProfile::ssd_raid();
        let secs = d.estimate_seconds(&stats);
        let expected = (PAGE_SIZE as f64 + 1.0) / 1e9 + 10.0 * d.seek_seconds;
        assert!((secs - expected).abs() < 1e-12);
        // AR-consistency: an AR-sized random read runs at 80% efficiency.
        let ar_read = IoStats {
            bytes_read: d.efficient_random_access as u64,
            random_seeks: 1,
            sequential_accesses: 0,
        };
        let seq_time = d.efficient_random_access as f64 / d.seq_bytes_per_sec;
        assert!((d.estimate_seconds(&ar_read) / seq_time - 1.25).abs() < 1e-9);
        assert!(DeviceProfile::magnetic().estimate_seconds(&stats) > secs);
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0, 8.0), 0);
        assert_eq!(pages_for(1, 8.0), 1);
        assert_eq!(pages_for(PAGE_SIZE / 8, 8.0), 1);
        assert_eq!(pages_for(PAGE_SIZE / 8 + 1, 8.0), 2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = IoStats { bytes_read: 1, random_seeks: 0, sequential_accesses: 1 };
        a.merge(&IoStats { bytes_read: 2, random_seeks: 2, sequential_accesses: 0 });
        assert_eq!(a, IoStats { bytes_read: 3, random_seeks: 2, sequential_accesses: 1 });
    }
}
