//! Error type shared by the storage layer.

use std::fmt;

/// Errors raised by the storage substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A column was addressed by a name the table does not contain.
    UnknownColumn(String),
    /// A column was addressed by an index outside the table's arity.
    ColumnIndexOutOfRange { index: usize, arity: usize },
    /// An operation mixed columns of different lengths.
    LengthMismatch { expected: usize, actual: usize },
    /// An operation expected one [`crate::DataType`] but found another.
    TypeMismatch { expected: &'static str, actual: &'static str },
    /// A row index was outside the table's cardinality.
    RowOutOfRange { row: usize, rows: usize },
    /// A date literal failed to parse as `YYYY-MM-DD` (carries the input).
    InvalidDate(String),
    /// An operating-system I/O failure (spill files). Carries the rendered
    /// `std::io::Error` message — the error type itself is not `Eq`.
    Io(String),
    /// Catch-all for invalid arguments (empty schema, duplicate names, ...).
    Invalid(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            StorageError::ColumnIndexOutOfRange { index, arity } => {
                write!(f, "column index {index} out of range (arity {arity})")
            }
            StorageError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            StorageError::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected}, got {actual}")
            }
            StorageError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range (table has {rows} rows)")
            }
            StorageError::InvalidDate(input) => {
                write!(f, "invalid date literal (expected YYYY-MM-DD): {input:?}")
            }
            StorageError::Io(msg) => write!(f, "spill i/o error: {msg}"),
            StorageError::Invalid(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenience alias used across the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::UnknownColumn("l_shipdate".into());
        assert!(e.to_string().contains("l_shipdate"));
        let e = StorageError::LengthMismatch { expected: 3, actual: 5 };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
        let e = StorageError::TypeMismatch { expected: "i64", actual: "str" };
        assert!(e.to_string().contains("i64"));
    }
}
