//! Typed column vectors.
//!
//! A [`Column`] is the unit of storage and of data exchange between
//! operators: a contiguous, homogeneously typed vector. Integer-backed types
//! (`Int`, `Date`) share the `I64` representation but remember their logical
//! type so schema information survives through the executor.

use crate::error::{Result, StorageError};
use crate::value::{DataType, Datum};

/// A typed vector of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Integer-backed values; `logical` distinguishes `Int` from `Date`.
    I64 { values: Vec<i64>, logical: DataType },
    /// 64-bit floats.
    F64(Vec<f64>),
    /// UTF-8 strings.
    Str(Vec<String>),
}

impl Column {
    /// An empty column of the given type.
    pub fn empty(dt: DataType) -> Column {
        match dt {
            DataType::Int | DataType::Date => Column::I64 { values: Vec::new(), logical: dt },
            DataType::Float => Column::F64(Vec::new()),
            DataType::Str => Column::Str(Vec::new()),
        }
    }

    /// Integer column with logical type `Int`.
    pub fn from_i64(values: Vec<i64>) -> Column {
        Column::I64 { values, logical: DataType::Int }
    }

    /// Integer-backed column with logical type `Date`.
    pub fn from_dates(values: Vec<i64>) -> Column {
        Column::I64 { values, logical: DataType::Date }
    }

    /// Float column.
    pub fn from_f64(values: Vec<f64>) -> Column {
        Column::F64(values)
    }

    /// String column.
    pub fn from_strings(values: Vec<String>) -> Column {
        Column::Str(values)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::I64 { values, .. } => values.len(),
            Column::F64(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The logical data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::I64 { logical, .. } => *logical,
            Column::F64(_) => DataType::Float,
            Column::Str(_) => DataType::Str,
        }
    }

    /// Borrow the `i64` payload of an integer-backed column.
    pub fn as_i64(&self) -> Result<&[i64]> {
        match self {
            Column::I64 { values, .. } => Ok(values),
            other => Err(StorageError::TypeMismatch {
                expected: "i64",
                actual: other.data_type().name(),
            }),
        }
    }

    /// Borrow the `f64` payload.
    pub fn as_f64(&self) -> Result<&[f64]> {
        match self {
            Column::F64(values) => Ok(values),
            other => Err(StorageError::TypeMismatch {
                expected: "f64",
                actual: other.data_type().name(),
            }),
        }
    }

    /// Borrow the string payload.
    pub fn as_str(&self) -> Result<&[String]> {
        match self {
            Column::Str(values) => Ok(values),
            other => Err(StorageError::TypeMismatch {
                expected: "str",
                actual: other.data_type().name(),
            }),
        }
    }

    /// The value at `row` as an owned [`Datum`].
    pub fn datum(&self, row: usize) -> Datum {
        match self {
            Column::I64 { values, logical: DataType::Date } => Datum::Date(values[row]),
            Column::I64 { values, .. } => Datum::Int(values[row]),
            Column::F64(values) => Datum::Float(values[row]),
            Column::Str(values) => Datum::Str(values[row].clone()),
        }
    }

    /// Gather rows by index into a new column. Indices must be in range.
    pub fn gather(&self, indices: &[usize]) -> Column {
        self.gather_impl(indices.iter().copied())
    }

    /// Gather rows by `u32` index into a new column — the row-id width the
    /// executor's join indexes and partition scatters use, saving a
    /// per-match widening pass. Indices must be in range.
    pub fn gather_u32(&self, indices: &[u32]) -> Column {
        self.gather_impl(indices.iter().map(|&i| i as usize))
    }

    fn gather_impl<I: Iterator<Item = usize>>(&self, indices: I) -> Column {
        match self {
            Column::I64 { values, logical } => {
                Column::I64 { values: indices.map(|i| values[i]).collect(), logical: *logical }
            }
            Column::F64(values) => Column::F64(indices.map(|i| values[i]).collect()),
            Column::Str(values) => Column::Str(indices.map(|i| values[i].clone()).collect()),
        }
    }

    /// Keep only rows whose `keep` flag is set. `keep.len()` must equal
    /// `self.len()`.
    pub fn filter(&self, keep: &[bool]) -> Column {
        debug_assert_eq!(keep.len(), self.len());
        match self {
            Column::I64 { values, logical } => Column::I64 {
                values: values.iter().zip(keep).filter_map(|(v, &k)| k.then_some(*v)).collect(),
                logical: *logical,
            },
            Column::F64(values) => {
                Column::F64(values.iter().zip(keep).filter_map(|(v, &k)| k.then_some(*v)).collect())
            }
            Column::Str(values) => Column::Str(
                values.iter().zip(keep).filter(|&(_, &k)| k).map(|(v, _)| v.clone()).collect(),
            ),
        }
    }

    /// Copy rows `[start, end)` into a new column.
    pub fn slice(&self, start: usize, end: usize) -> Column {
        match self {
            Column::I64 { values, logical } => {
                Column::I64 { values: values[start..end].to_vec(), logical: *logical }
            }
            Column::F64(values) => Column::F64(values[start..end].to_vec()),
            Column::Str(values) => Column::Str(values[start..end].to_vec()),
        }
    }

    /// Append all rows of `other` (same *logical* type) to `self` —
    /// `Int` and `Date` share the `I64` representation but do not merge.
    pub fn append(&mut self, other: &Column) -> Result<()> {
        match (self, other) {
            (Column::I64 { values: a, logical: la }, Column::I64 { values: b, logical: lb }) => {
                if la != lb {
                    return Err(StorageError::TypeMismatch {
                        expected: la.name(),
                        actual: lb.name(),
                    });
                }
                a.extend_from_slice(b);
                Ok(())
            }
            (Column::F64(a), Column::F64(b)) => {
                a.extend_from_slice(b);
                Ok(())
            }
            (Column::Str(a), Column::Str(b)) => {
                a.extend_from_slice(b);
                Ok(())
            }
            (a, b) => Err(StorageError::TypeMismatch {
                expected: a.data_type().name(),
                actual: b.data_type().name(),
            }),
        }
    }

    /// Push a single [`Datum`] (must match the column type).
    pub fn push(&mut self, d: Datum) -> Result<()> {
        match (self, d) {
            (Column::I64 { values, .. }, Datum::Int(v) | Datum::Date(v)) => {
                values.push(v);
                Ok(())
            }
            (Column::F64(values), Datum::Float(v)) => {
                values.push(v);
                Ok(())
            }
            (Column::Str(values), Datum::Str(v)) => {
                values.push(v);
                Ok(())
            }
            (col, d) => Err(StorageError::TypeMismatch {
                expected: col.data_type().name(),
                actual: d.data_type().name(),
            }),
        }
    }

    /// Average stored width in bytes (exact for fixed-width types, measured
    /// for strings). Used by the I/O cost model; strings add one length byte.
    pub fn avg_width(&self) -> f64 {
        match self {
            Column::I64 { .. } | Column::F64(_) => 8.0,
            Column::Str(values) => {
                if values.is_empty() {
                    1.0
                } else {
                    let total: usize = values.iter().map(|s| s.len() + 1).sum();
                    total as f64 / values.len() as f64
                }
            }
        }
    }
}

/// Incremental builder used by data generators: pushes datums of one type
/// and finishes into a [`Column`].
#[derive(Debug)]
pub struct ColumnBuilder {
    column: Column,
}

impl ColumnBuilder {
    /// A builder for the given type, pre-sized for `capacity` rows.
    pub fn with_capacity(dt: DataType, capacity: usize) -> ColumnBuilder {
        let column = match dt {
            DataType::Int | DataType::Date => {
                Column::I64 { values: Vec::with_capacity(capacity), logical: dt }
            }
            DataType::Float => Column::F64(Vec::with_capacity(capacity)),
            DataType::Str => Column::Str(Vec::with_capacity(capacity)),
        };
        ColumnBuilder { column }
    }

    /// Push an `i64` (valid for `Int` and `Date` columns).
    pub fn push_i64(&mut self, v: i64) {
        match &mut self.column {
            Column::I64 { values, .. } => values.push(v),
            _ => panic!("push_i64 on non-integer column"),
        }
    }

    /// Push an `f64`.
    pub fn push_f64(&mut self, v: f64) {
        match &mut self.column {
            Column::F64(values) => values.push(v),
            _ => panic!("push_f64 on non-float column"),
        }
    }

    /// Push a string.
    pub fn push_str(&mut self, v: String) {
        match &mut self.column {
            Column::Str(values) => values.push(v),
            _ => panic!("push_str on non-string column"),
        }
    }

    /// Finish and return the built column.
    pub fn finish(self) -> Column {
        self.column
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_and_filter() {
        let c = Column::from_i64(vec![10, 20, 30, 40]);
        assert_eq!(c.gather(&[3, 0, 0]), Column::from_i64(vec![40, 10, 10]));
        assert_eq!(c.filter(&[true, false, true, false]), Column::from_i64(vec![10, 30]));
    }

    #[test]
    fn gather_u32_matches_gather() {
        let c = Column::from_strings(vec!["a".into(), "b".into(), "c".into()]);
        assert_eq!(c.gather_u32(&[2, 0, 2]), c.gather(&[2, 0, 2]));
        let d = Column::from_dates(vec![5, 6]);
        assert_eq!(d.gather_u32(&[1]).data_type(), DataType::Date);
        assert_eq!(Column::from_f64(vec![1.5, 2.5]).gather_u32(&[1]), Column::from_f64(vec![2.5]));
    }

    #[test]
    fn date_columns_keep_logical_type() {
        let c = Column::from_dates(vec![1, 2]);
        assert_eq!(c.data_type(), DataType::Date);
        assert_eq!(c.datum(0), Datum::Date(1));
        assert_eq!(c.slice(1, 2).data_type(), DataType::Date);
        assert_eq!(c.gather(&[0]).data_type(), DataType::Date);
    }

    #[test]
    fn append_type_checks() {
        let mut a = Column::from_i64(vec![1]);
        assert!(a.append(&Column::from_i64(vec![2])).is_ok());
        assert_eq!(a.len(), 2);
        assert!(a.append(&Column::from_f64(vec![1.0])).is_err());
        // Int and Date share the i64 representation but must not merge.
        assert!(a.append(&Column::from_dates(vec![3])).is_err());
        assert_eq!(a.len(), 2);
        let mut d = Column::from_dates(vec![4]);
        assert!(d.append(&Column::from_i64(vec![5])).is_err());
        assert!(d.append(&Column::from_dates(vec![6])).is_ok());
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn push_datum() {
        let mut c = Column::empty(DataType::Str);
        c.push(Datum::Str("a".into())).unwrap();
        assert!(c.push(Datum::Int(1)).is_err());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn builder_round_trip() {
        let mut b = ColumnBuilder::with_capacity(DataType::Float, 2);
        b.push_f64(1.5);
        b.push_f64(-2.5);
        let c = b.finish();
        assert_eq!(c.as_f64().unwrap(), &[1.5, -2.5]);
    }

    #[test]
    fn avg_width_strings() {
        let c = Column::from_strings(vec!["ab".into(), "abcd".into()]);
        // (2+1 + 4+1) / 2 = 4
        assert!((c.avg_width() - 4.0).abs() < 1e-9);
        assert_eq!(Column::from_i64(vec![1]).avg_width(), 8.0);
    }

    #[test]
    fn slice_copies_range() {
        let c = Column::from_strings(vec!["a".into(), "b".into(), "c".into()]);
        assert_eq!(c.slice(1, 3), Column::from_strings(vec!["b".into(), "c".into()]));
    }

    #[test]
    fn accessors_type_check() {
        let c = Column::from_i64(vec![1]);
        assert!(c.as_i64().is_ok());
        assert!(c.as_f64().is_err());
        assert!(c.as_str().is_err());
    }
}
