//! Scalar expressions over batches.
//!
//! Expressions are resolved against an operator schema (columns referenced
//! by name, bound to indices at plan time) and evaluate vectorized over a
//! whole [`Batch`]. Booleans are represented as `Int` columns of 0/1, with
//! [`eval_bool`] as the predicate entry point.

use bdcc_storage::{year_of, Column, DataType, Datum};

use crate::batch::{schema_index, Batch, ColMeta};
use crate::error::{ExecError, Result};

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Simplified LIKE patterns (all the 22 TPC-H queries need).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LikePattern {
    /// `'PROMO%'`
    StartsWith(String),
    /// `'%BRASS'`
    EndsWith(String),
    /// `'%green%'`
    Contains(String),
    /// `'%word1%word2%'` — both present, in order (Q13's
    /// `'%special%requests%'`).
    ContainsSeq(String, String),
}

impl LikePattern {
    /// Does `s` match the pattern?
    pub fn matches(&self, s: &str) -> bool {
        match self {
            LikePattern::StartsWith(p) => s.starts_with(p.as_str()),
            LikePattern::EndsWith(p) => s.ends_with(p.as_str()),
            LikePattern::Contains(p) => s.contains(p.as_str()),
            LikePattern::ContainsSeq(a, b) => match s.find(a.as_str()) {
                Some(i) => s[i + a.len()..].contains(b.as_str()),
                None => false,
            },
        }
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column by name (resolved against the input schema at
    /// evaluation time via [`bind`]).
    Col(String),
    /// Resolved column index (produced by [`bind`]).
    ColIdx(usize),
    /// Literal value.
    Lit(Datum),
    /// Arithmetic on numeric columns (Int op Int → Int except Div → Float;
    /// anything involving Float → Float).
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Comparison producing a 0/1 Int column.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical connectives over 0/1 Int columns.
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    /// `CASE WHEN cond THEN a ELSE b END`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// String LIKE.
    Like(Box<Expr>, LikePattern),
    NotLike(Box<Expr>, LikePattern),
    /// `expr IN (list)`.
    InList(Box<Expr>, Vec<Datum>),
    /// `EXTRACT(YEAR FROM date_expr)`.
    Year(Box<Expr>),
    /// `SUBSTRING(s, 1, n)` (1-based prefix, all TPC-H needs).
    Prefix(Box<Expr>, usize),
}

#[allow(clippy::should_implement_trait)]
impl Expr {
    pub fn col(name: &str) -> Expr {
        Expr::Col(name.to_string())
    }
    pub fn lit(d: impl Into<Datum>) -> Expr {
        Expr::Lit(d.into())
    }
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Add, Box::new(self), Box::new(rhs))
    }
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Sub, Box::new(self), Box::new(rhs))
    }
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Mul, Box::new(self), Box::new(rhs))
    }
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Div, Box::new(self), Box::new(rhs))
    }
    pub fn cmp(op: CmpOp, l: Expr, r: Expr) -> Expr {
        Expr::Cmp(op, Box::new(l), Box::new(r))
    }
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::Eq, self, rhs)
    }
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::Ne, self, rhs)
    }
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::Lt, self, rhs)
    }
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::Le, self, rhs)
    }
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::Gt, self, rhs)
    }
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::Ge, self, rhs)
    }
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    pub fn year(self) -> Expr {
        Expr::Year(Box::new(self))
    }
    pub fn like(self, p: LikePattern) -> Expr {
        Expr::Like(Box::new(self), p)
    }
    pub fn not_like(self, p: LikePattern) -> Expr {
        Expr::NotLike(Box::new(self), p)
    }
    pub fn in_list(self, vals: Vec<Datum>) -> Expr {
        Expr::InList(Box::new(self), vals)
    }
    pub fn prefix(self, n: usize) -> Expr {
        Expr::Prefix(Box::new(self), n)
    }
    pub fn if_else(cond: Expr, then: Expr, otherwise: Expr) -> Expr {
        Expr::If(Box::new(cond), Box::new(then), Box::new(otherwise))
    }

    /// Resolve all [`Expr::Col`] references to indices in `schema`.
    pub fn bind(&self, schema: &[ColMeta]) -> Result<Expr> {
        Ok(match self {
            Expr::Col(name) => Expr::ColIdx(
                schema_index(schema, name).ok_or_else(|| ExecError::UnknownColumn(name.clone()))?,
            ),
            Expr::ColIdx(i) => Expr::ColIdx(*i),
            Expr::Lit(d) => Expr::Lit(d.clone()),
            Expr::Arith(op, a, b) => {
                Expr::Arith(*op, Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
            Expr::Cmp(op, a, b) => {
                Expr::Cmp(*op, Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
            Expr::And(a, b) => Expr::And(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Or(a, b) => Expr::Or(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Not(a) => Expr::Not(Box::new(a.bind(schema)?)),
            Expr::If(c, t, e) => Expr::If(
                Box::new(c.bind(schema)?),
                Box::new(t.bind(schema)?),
                Box::new(e.bind(schema)?),
            ),
            Expr::Like(a, p) => Expr::Like(Box::new(a.bind(schema)?), p.clone()),
            Expr::NotLike(a, p) => Expr::NotLike(Box::new(a.bind(schema)?), p.clone()),
            Expr::InList(a, vals) => {
                // Sort the literal list once at bind time, grouped by
                // comparison class (integer-backed, float, string) and by
                // value within each class, so `eval_in_list`'s typed
                // projections come out pre-sorted and every batch probes
                // by binary search. No dedup: cross-class "equal"
                // literals (`Int(1)` vs `Float(1.0)`) must both survive.
                let mut sorted = vals.clone();
                sorted.sort_by(in_list_order);
                Expr::InList(Box::new(a.bind(schema)?), sorted)
            }
            Expr::Year(a) => Expr::Year(Box::new(a.bind(schema)?)),
            Expr::Prefix(a, n) => Expr::Prefix(Box::new(a.bind(schema)?), *n),
        })
    }

    /// The output type of this (bound) expression given `schema`.
    pub fn data_type(&self, schema: &[ColMeta]) -> Result<DataType> {
        Ok(match self {
            Expr::Col(name) => {
                let i = schema_index(schema, name)
                    .ok_or_else(|| ExecError::UnknownColumn(name.clone()))?;
                schema[i].data_type
            }
            Expr::ColIdx(i) => schema[*i].data_type,
            Expr::Lit(d) => d.data_type(),
            Expr::Arith(op, a, b) => {
                let (ta, tb) = (a.data_type(schema)?, b.data_type(schema)?);
                if *op == ArithOp::Div || ta == DataType::Float || tb == DataType::Float {
                    DataType::Float
                } else {
                    DataType::Int
                }
            }
            Expr::Cmp(..)
            | Expr::And(..)
            | Expr::Or(..)
            | Expr::Not(..)
            | Expr::Like(..)
            | Expr::NotLike(..)
            | Expr::InList(..) => DataType::Int,
            Expr::If(_, t, _) => t.data_type(schema)?,
            Expr::Year(_) => DataType::Int,
            Expr::Prefix(..) => DataType::Str,
        })
    }

    /// Evaluate a bound expression over a batch.
    pub fn eval(&self, batch: &Batch) -> Result<Column> {
        let n = batch.rows();
        Ok(match self {
            Expr::Col(name) => return Err(ExecError::Internal(format!("unbound column {name}"))),
            Expr::ColIdx(i) => batch.columns[*i].clone(),
            Expr::Lit(d) => broadcast(d, n),
            Expr::Arith(op, a, b) => eval_arith(*op, &a.eval(batch)?, &b.eval(batch)?)?,
            Expr::Cmp(op, a, b) => {
                bools_to_column(&eval_cmp(*op, &a.eval(batch)?, &b.eval(batch)?)?)
            }
            Expr::And(a, b) => {
                let (x, y) = (a.eval_bool(batch)?, b.eval_bool(batch)?);
                bools_to_column(&x.iter().zip(&y).map(|(&p, &q)| p && q).collect::<Vec<_>>())
            }
            Expr::Or(a, b) => {
                let (x, y) = (a.eval_bool(batch)?, b.eval_bool(batch)?);
                bools_to_column(&x.iter().zip(&y).map(|(&p, &q)| p || q).collect::<Vec<_>>())
            }
            Expr::Not(a) => {
                let x = a.eval_bool(batch)?;
                bools_to_column(&x.iter().map(|&p| !p).collect::<Vec<_>>())
            }
            Expr::If(c, t, e) => {
                let cond = c.eval_bool(batch)?;
                let tv = t.eval(batch)?;
                let ev = e.eval(batch)?;
                eval_if(&cond, &tv, &ev)?
            }
            Expr::Like(a, p) => {
                let col = a.eval(batch)?;
                let vals = col.as_str()?;
                bools_to_column(&vals.iter().map(|s| p.matches(s)).collect::<Vec<_>>())
            }
            Expr::NotLike(a, p) => {
                let col = a.eval(batch)?;
                let vals = col.as_str()?;
                bools_to_column(&vals.iter().map(|s| !p.matches(s)).collect::<Vec<_>>())
            }
            Expr::InList(a, list) => {
                let col = a.eval(batch)?;
                eval_in_list(&col, list)?
            }
            Expr::Year(a) => {
                let col = a.eval(batch)?;
                let days = col.as_i64()?;
                Column::from_i64(days.iter().map(|&d| year_of(d)).collect())
            }
            Expr::Prefix(a, len) => {
                let col = a.eval(batch)?;
                let vals = col.as_str()?;
                Column::from_strings(vals.iter().map(|s| s.chars().take(*len).collect()).collect())
            }
        })
    }

    /// Evaluate as a boolean vector (expression must produce 0/1 ints).
    pub fn eval_bool(&self, batch: &Batch) -> Result<Vec<bool>> {
        let col = self.eval(batch)?;
        Ok(col.as_i64()?.iter().map(|&v| v != 0).collect())
    }
}

fn broadcast(d: &Datum, n: usize) -> Column {
    match d {
        Datum::Int(v) => Column::from_i64(vec![*v; n]),
        Datum::Date(v) => Column::from_dates(vec![*v; n]),
        Datum::Float(v) => Column::from_f64(vec![*v; n]),
        Datum::Str(s) => Column::from_strings(vec![s.clone(); n]),
    }
}

fn bools_to_column(b: &[bool]) -> Column {
    Column::from_i64(b.iter().map(|&p| p as i64).collect())
}

fn eval_arith(op: ArithOp, a: &Column, b: &Column) -> Result<Column> {
    use ArithOp::*;
    // Division and any float operand promote to float.
    let float = op == Div || a.data_type() == DataType::Float || b.data_type() == DataType::Float;
    if float {
        let x = to_f64(a)?;
        let y = to_f64(b)?;
        let out: Vec<f64> = x
            .iter()
            .zip(&y)
            .map(|(&p, &q)| match op {
                Add => p + q,
                Sub => p - q,
                Mul => p * q,
                Div => p / q,
            })
            .collect();
        Ok(Column::from_f64(out))
    } else {
        let x = a.as_i64()?;
        let y = b.as_i64()?;
        let out: Vec<i64> = x
            .iter()
            .zip(y)
            .map(|(&p, &q)| match op {
                Add => p + q,
                Sub => p - q,
                Mul => p * q,
                Div => unreachable!("integer division promoted to float"),
            })
            .collect();
        Ok(Column::from_i64(out))
    }
}

fn to_f64(c: &Column) -> Result<Vec<f64>> {
    Ok(match c {
        Column::F64(v) => v.clone(),
        Column::I64 { values, .. } => values.iter().map(|&v| v as f64).collect(),
        Column::Str(_) => {
            return Err(ExecError::Type("cannot use a string column in arithmetic".into()))
        }
    })
}

fn eval_cmp(op: CmpOp, a: &Column, b: &Column) -> Result<Vec<bool>> {
    use std::cmp::Ordering::*;
    let pass = |o: std::cmp::Ordering| match op {
        CmpOp::Eq => o == Equal,
        CmpOp::Ne => o != Equal,
        CmpOp::Lt => o == Less,
        CmpOp::Le => o != Greater,
        CmpOp::Gt => o == Greater,
        CmpOp::Ge => o != Less,
    };
    match (a, b) {
        (Column::I64 { values: x, .. }, Column::I64 { values: y, .. }) => {
            Ok(x.iter().zip(y).map(|(p, q)| pass(p.cmp(q))).collect())
        }
        (Column::Str(x), Column::Str(y)) => {
            Ok(x.iter().zip(y).map(|(p, q)| pass(p.cmp(q))).collect())
        }
        _ => {
            let x = to_f64(a)?;
            let y = to_f64(b)?;
            Ok(x.iter().zip(&y).map(|(p, q)| pass(p.total_cmp(q))).collect())
        }
    }
}

fn eval_if(cond: &[bool], t: &Column, e: &Column) -> Result<Column> {
    match (t, e) {
        (Column::I64 { values: x, logical }, Column::I64 { values: y, .. }) => Ok(Column::I64 {
            values: cond.iter().enumerate().map(|(i, &c)| if c { x[i] } else { y[i] }).collect(),
            logical: *logical,
        }),
        (Column::Str(x), Column::Str(y)) => Ok(Column::Str(
            cond.iter()
                .enumerate()
                .map(|(i, &c)| if c { x[i].clone() } else { y[i].clone() })
                .collect(),
        )),
        _ => {
            let x = to_f64(t)?;
            let y = to_f64(e)?;
            Ok(Column::from_f64(
                cond.iter().enumerate().map(|(i, &c)| if c { x[i] } else { y[i] }).collect(),
            ))
        }
    }
}

/// IN-list literal order: comparison class first (integer-backed values
/// interleave whatever their `Int`/`Date` tag, since they project onto one
/// `i64` probe set), value within the class. [`Expr::bind`] sorts by this
/// key so [`eval_in_list`]'s per-class projections are already sorted.
fn in_list_order(a: &Datum, b: &Datum) -> std::cmp::Ordering {
    fn class(d: &Datum) -> u8 {
        match d {
            Datum::Int(_) | Datum::Date(_) => 0,
            Datum::Float(_) => 1,
            Datum::Str(_) => 2,
        }
    }
    class(a).cmp(&class(b)).then_with(|| match (a, b) {
        (Datum::Int(x) | Datum::Date(x), Datum::Int(y) | Datum::Date(y)) => x.cmp(y),
        (Datum::Float(x), Datum::Float(y)) => x.total_cmp(y),
        (Datum::Str(x), Datum::Str(y)) => x.cmp(y),
        _ => unreachable!("same class"),
    })
}

fn eval_in_list(col: &Column, list: &[Datum]) -> Result<Column> {
    // The typed probe sets are sorted already when the expression went
    // through `bind` (the common path); re-sort defensively for directly
    // constructed lists — membership is order-insensitive either way.
    match col {
        Column::I64 { values, .. } => {
            let mut set: Vec<i64> = list.iter().filter_map(|d| d.as_int()).collect();
            if !set.windows(2).all(|w| w[0] <= w[1]) {
                set.sort_unstable();
            }
            Ok(bools_to_column(
                &values.iter().map(|v| set.binary_search(v).is_ok()).collect::<Vec<_>>(),
            ))
        }
        Column::Str(values) => {
            let mut set: Vec<&str> = list.iter().filter_map(|d| d.as_str()).collect();
            if !set.windows(2).all(|w| w[0] <= w[1]) {
                set.sort_unstable();
            }
            Ok(bools_to_column(
                &values.iter().map(|v| set.binary_search(&v.as_str()).is_ok()).collect::<Vec<_>>(),
            ))
        }
        Column::F64(_) => Err(ExecError::Type("IN over float columns is not supported".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdcc_storage::parse_date;

    fn schema() -> Vec<ColMeta> {
        vec![
            ColMeta::new("a", DataType::Int),
            ColMeta::new("b", DataType::Float),
            ColMeta::new("s", DataType::Str),
            ColMeta::new("d", DataType::Date),
        ]
    }

    fn batch() -> Batch {
        Batch::new(vec![
            Column::from_i64(vec![1, 2, 3]),
            Column::from_f64(vec![0.5, 1.5, 2.5]),
            Column::from_strings(vec![
                "PROMO anodized".into(),
                "small BRASS".into(),
                "green".into(),
            ]),
            Column::from_dates(vec![
                parse_date("1994-01-01").unwrap(),
                parse_date("1995-06-15").unwrap(),
                parse_date("1996-12-31").unwrap(),
            ]),
        ])
    }

    fn eval(e: Expr) -> Column {
        e.bind(&schema()).unwrap().eval(&batch()).unwrap()
    }

    #[test]
    fn arithmetic_types() {
        assert_eq!(eval(Expr::col("a").add(Expr::lit(10))).as_i64().unwrap(), &[11, 12, 13]);
        let f = eval(Expr::col("a").mul(Expr::col("b")));
        assert_eq!(f.as_f64().unwrap(), &[0.5, 3.0, 7.5]);
        let d = eval(Expr::col("a").div(Expr::lit(2)));
        assert_eq!(d.as_f64().unwrap(), &[0.5, 1.0, 1.5]);
    }

    #[test]
    fn comparisons_and_logic() {
        let e = Expr::col("a").ge(Expr::lit(2)).and(Expr::col("b").lt(Expr::lit(2.0)));
        assert_eq!(eval(e).as_i64().unwrap(), &[0, 1, 0]);
        let e = Expr::col("a").eq(Expr::lit(1)).or(Expr::col("a").eq(Expr::lit(3)));
        assert_eq!(eval(e).as_i64().unwrap(), &[1, 0, 1]);
        assert_eq!(eval(Expr::col("a").lt(Expr::lit(3)).not()).as_i64().unwrap(), &[0, 0, 1]);
    }

    #[test]
    fn like_patterns() {
        assert!(LikePattern::StartsWith("PROMO".into()).matches("PROMO x"));
        assert!(LikePattern::EndsWith("BRASS".into()).matches("small BRASS"));
        assert!(LikePattern::Contains("green".into()).matches("dark green metal"));
        let seq = LikePattern::ContainsSeq("special".into(), "requests".into());
        assert!(seq.matches("very special and unusual requests here"));
        assert!(!seq.matches("requests that are special")); // order matters
        let e = Expr::col("s").like(LikePattern::StartsWith("PROMO".into()));
        assert_eq!(eval(e).as_i64().unwrap(), &[1, 0, 0]);
    }

    #[test]
    fn year_and_date_cmp() {
        let e = Expr::col("d").year();
        assert_eq!(eval(e).as_i64().unwrap(), &[1994, 1995, 1996]);
        let e = Expr::col("d").ge(Expr::lit(Datum::Date(parse_date("1995-01-01").unwrap())));
        assert_eq!(eval(e).as_i64().unwrap(), &[0, 1, 1]);
    }

    #[test]
    fn case_when() {
        let e = Expr::if_else(Expr::col("a").eq(Expr::lit(2)), Expr::col("b"), Expr::lit(0.0));
        assert_eq!(eval(e).as_f64().unwrap(), &[0.0, 1.5, 0.0]);
    }

    #[test]
    fn in_list_and_prefix() {
        let e = Expr::col("a").in_list(vec![Datum::Int(1), Datum::Int(3)]);
        assert_eq!(eval(e).as_i64().unwrap(), &[1, 0, 1]);
        let e = Expr::col("s").prefix(5);
        assert_eq!(eval(e).as_str().unwrap()[0], "PROMO");
    }

    #[test]
    fn bind_rejects_unknown_columns() {
        assert!(Expr::col("zzz").bind(&schema()).is_err());
    }

    #[test]
    fn data_type_inference() {
        let s = schema();
        assert_eq!(Expr::col("a").data_type(&s).unwrap(), DataType::Int);
        assert_eq!(Expr::col("a").div(Expr::lit(2)).data_type(&s).unwrap(), DataType::Float);
        assert_eq!(Expr::col("a").eq(Expr::lit(2)).data_type(&s).unwrap(), DataType::Int);
        assert_eq!(Expr::col("s").prefix(2).data_type(&s).unwrap(), DataType::Str);
    }
}
