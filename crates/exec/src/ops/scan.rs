//! Plain table scan with MinMax block skipping.
//!
//! The baseline access path of all three schemes: iterate the table's
//! statistics blocks, skip blocks that cannot satisfy the sargable
//! predicates (Vectorwise's automatic MinMax indices, ref [8]), read the
//! surviving blocks, and apply the exact residual filter row-wise.
//!
//! I/O accounting: every *read* block contributes the pages of the
//! projected and predicate columns it covers; skipped blocks cost nothing —
//! this is precisely the effect Figure 2 attributes to selection pushdown.

use std::sync::Arc;

use bdcc_obs::OpMetrics;
use bdcc_storage::{IoTracker, StoredTable};

use crate::batch::{Batch, ColMeta, OpSchema};
use crate::enc::{BlockVerdict, ScanKernel};
use crate::error::Result;
use crate::expr::Expr;
use crate::kernel::{kernel_enabled, FilterProgram};
use crate::ops::Operator;
use crate::pred::{predicates_to_expr, ColPredicate};

/// Drop the trailing residual-only columns without cloning the kept ones.
fn truncate_cols(mut b: Batch, n: usize) -> Batch {
    b.columns.truncate(n);
    b
}

/// Scan over a stored table.
pub struct PlainScan {
    table: Arc<StoredTable>,
    io: IoTracker,
    /// Column indices to read (projection), in output order.
    projection: Vec<usize>,
    /// Sargable predicates (block pruning + residual).
    predicates: Vec<(usize, ColPredicate)>,
    /// Predicate columns not in the projection, read for residual
    /// evaluation only (deduplicated, in stable order).
    extra_cols: Vec<usize>,
    /// Residual filter bound against projection ++ extra columns.
    residual: Option<Expr>,
    /// Schema the residual is bound against (projection ++ extras).
    eval_schema: OpSchema,
    /// Selection-vector program for the residual (see [`crate::kernel`]);
    /// `None` keeps the interpreter path.
    program: Option<FilterProgram>,
    /// Compression-aware predicate kernel; `Some` only when the table is
    /// block-encoded and every predicate is kernel-supported.
    kernel: Option<ScanKernel>,
    metrics: Option<Arc<OpMetrics>>,
    schema: OpSchema,
    next_block: usize,
    /// One past the last block to read (block-range partition view).
    end_block: usize,
}

impl PlainScan {
    /// Create a scan reading `columns` (by name) under `predicates`.
    /// Predicate columns are automatically added to the read set; they are
    /// still excluded from the output unless projected.
    pub fn new(
        table: Arc<StoredTable>,
        io: IoTracker,
        columns: &[&str],
        predicates: Vec<ColPredicate>,
    ) -> Result<PlainScan> {
        let end = table.block_count();
        PlainScan::with_block_range(table, io, columns, predicates, 0..end)
    }

    /// Partition entry point for the morsel scheduler: a scan restricted to
    /// statistics blocks `[blocks.start, blocks.end)`. Reading a table as
    /// the ordered concatenation of disjoint block ranges yields exactly
    /// the batch stream of a full scan.
    pub fn with_block_range(
        table: Arc<StoredTable>,
        io: IoTracker,
        columns: &[&str],
        predicates: Vec<ColPredicate>,
        blocks: std::ops::Range<usize>,
    ) -> Result<PlainScan> {
        // The physical read set = projection ∪ predicate columns; output
        // only the projection. To keep the operator simple we read (and
        // charge I/O for) predicate columns but emit projection columns.
        let mut projection = Vec::with_capacity(columns.len());
        let mut schema = Vec::with_capacity(columns.len());
        for &name in columns {
            let idx = table.column_index(name)?;
            projection.push(idx);
            schema.push(ColMeta::new(name, table.schema().columns[idx].data_type));
        }
        let mut preds = Vec::with_capacity(predicates.len());
        for p in &predicates {
            preds.push((table.column_index(&p.column)?, p.clone()));
        }
        // Residual is evaluated over projection ∪ predicate columns.
        let mut eval_schema = schema.clone();
        let mut extra_cols = Vec::new();
        for (idx, p) in &preds {
            if !eval_schema.iter().any(|m| m.name == p.column) {
                extra_cols.push(*idx);
                eval_schema.push(ColMeta::new(&p.column, table.schema().columns[*idx].data_type));
            }
        }
        let residual = match predicates_to_expr(&predicates) {
            Some(e) => Some(e.bind(&eval_schema)?),
            None => None,
        };
        let end_block = blocks.end.min(table.block_count());
        let kernel = ScanKernel::try_new(&table, &preds);
        let program = match (&residual, kernel_enabled()) {
            (Some(e), true) => Some(FilterProgram::compile(e, &eval_schema)),
            _ => None,
        };
        Ok(PlainScan {
            table,
            io,
            projection,
            predicates: preds,
            extra_cols,
            residual,
            eval_schema,
            program,
            kernel,
            metrics: None,
            schema,
            next_block: blocks.start.min(end_block),
            end_block,
        })
    }

    /// Attach operator metrics (block-skip counters) to this scan.
    pub fn with_metrics(mut self, metrics: Option<Arc<OpMetrics>>) -> PlainScan {
        self.metrics = metrics;
        self
    }

    /// Pin the residual's selection-vector kernel on or off, overriding
    /// the `BDCC_KERNEL` gate consulted at construction.
    pub fn with_filter_kernel(mut self, on: bool) -> PlainScan {
        self.program = match (&self.residual, on) {
            (Some(e), true) => Some(FilterProgram::compile(e, &self.eval_schema)),
            _ => None,
        };
        self
    }

    /// All columns this scan physically reads (projection ∪ predicates).
    fn read_set(&self) -> Vec<usize> {
        let mut set = self.projection.clone();
        for idx in &self.extra_cols {
            if !set.contains(idx) {
                set.push(*idx);
            }
        }
        set
    }

    fn charge_io(&self, start_row: usize, end_row: usize) {
        for &col in &self.read_set() {
            let width = self.table.io_width(col);
            let first = (start_row as f64 * width) as u64;
            let last = ((end_row as f64 * width) as u64).saturating_sub(1).max(first);
            self.io.record_span(self.table.io_key(col), first, last);
        }
    }
}

impl Operator for PlainScan {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        let rows = self.table.rows();
        if rows == 0 {
            return Ok(None);
        }
        let stats0 = self.table.block_stats(0)?;
        // Resolve each predicate column's statistics once per scan, not once
        // per (block, predicate) pair.
        let mut pred_stats = Vec::with_capacity(self.predicates.len());
        for (col, _) in &self.predicates {
            pred_stats.push(self.table.block_stats(*col)?);
        }
        while self.next_block < self.end_block {
            let b = self.next_block;
            self.next_block += 1;
            // MinMax pruning over all predicate columns.
            let mut skip = false;
            for (i, (_, pred)) in self.predicates.iter().enumerate() {
                if !pred.block_may_match(&pred_stats[i].blocks[b]) {
                    skip = true;
                    break;
                }
            }
            if skip {
                if let Some(m) = &self.metrics {
                    m.blocks_skipped.add(1);
                }
                continue;
            }
            let (start, end) = stats0.rows_of_block(b, rows);
            if let Some(kernel) = &self.kernel {
                // Compression-aware path: predicates run on encoded blocks;
                // the projection materializes late, only for survivors, from
                // the resident raw columns. Extra predicate columns are
                // never assembled.
                let verdict = kernel.eval_block(&self.table, b, start, start, end, &pred_stats)?;
                if matches!(verdict, BlockVerdict::SkipNoRows) {
                    if let Some(m) = &self.metrics {
                        m.enc_skipped.add(1);
                    }
                    continue;
                }
                self.charge_io(start, end);
                let batch = match verdict {
                    BlockVerdict::SkipNoRows => unreachable!(),
                    BlockVerdict::Skip => continue,
                    BlockVerdict::All => {
                        let mut columns = Vec::with_capacity(self.projection.len());
                        for &col in &self.projection {
                            columns.push(self.table.column(col)?.slice(start, end));
                        }
                        Batch::new(columns)
                    }
                    BlockVerdict::Rows(idx) => {
                        let mut columns = Vec::with_capacity(self.projection.len());
                        for &col in &self.projection {
                            columns.push(self.table.column(col)?.gather(&idx));
                        }
                        Batch::new(columns)
                    }
                };
                if batch.rows() > 0 {
                    return Ok(Some(batch));
                }
                continue;
            }
            self.charge_io(start, end);
            // Assemble projection ∪ predicate columns for residual eval.
            let mut columns = Vec::with_capacity(self.projection.len() + self.extra_cols.len());
            for &col in &self.projection {
                columns.push(self.table.column(col)?.slice(start, end));
            }
            for &idx in &self.extra_cols {
                columns.push(self.table.column(idx)?.slice(start, end));
            }
            let full = Batch::new(columns);
            let batch = match (&self.residual, &self.program) {
                (Some(_), Some(program)) => {
                    let sel = program.select(&full)?;
                    if sel.is_empty() {
                        continue;
                    }
                    // An all-pass selection moves the slices through
                    // unchanged; extras drop without cloning survivors.
                    truncate_cols(sel.take(full), self.projection.len())
                }
                (Some(filter), None) => {
                    let keep = filter.eval_bool(&full)?;
                    if !keep.iter().any(|&k| k) {
                        continue;
                    }
                    if keep.iter().all(|&k| k) {
                        // All rows pass: skip the per-column copy.
                        truncate_cols(full, self.projection.len())
                    } else {
                        truncate_cols(full.filter(&keep), self.projection.len())
                    }
                }
                (None, _) => truncate_cols(full, self.projection.len()),
            };
            if batch.rows() > 0 {
                return Ok(Some(batch));
            }
        }
        if let (Some(m), Some(p)) = (&self.metrics, &self.program) {
            p.annotate(m);
        }
        Ok(None)
    }
}

/// Convenience: scan the whole table with no predicates.
pub fn full_scan(table: Arc<StoredTable>, io: IoTracker, columns: &[&str]) -> Result<PlainScan> {
    PlainScan::new(table, io, columns, Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::collect;
    use bdcc_storage::{Column, Datum, TableBuilder};

    fn table() -> Arc<StoredTable> {
        // 3 blocks of 4 rows (block_rows = 4).
        let k: Vec<i64> = (0..12).collect();
        let v: Vec<i64> = (0..12).map(|i| i * 10).collect();
        Arc::new(
            StoredTable::from_columns_with_block_rows(
                "t",
                vec![("k".into(), Column::from_i64(k)), ("v".into(), Column::from_i64(v))],
                4,
            )
            .unwrap(),
        )
    }

    #[test]
    fn full_scan_returns_everything() {
        let io = IoTracker::new();
        let scan = full_scan(table(), io.clone(), &["k", "v"]).unwrap();
        let out = collect(Box::new(scan)).unwrap();
        assert_eq!(out.rows(), 12);
        assert!(io.stats().bytes_read > 0);
    }

    #[test]
    fn block_skipping_reduces_io() {
        let io_full = IoTracker::new();
        let scan = full_scan(table(), io_full.clone(), &["k"]).unwrap();
        collect(Box::new(scan)).unwrap();

        let io_pruned = IoTracker::new();
        // k >= 8 → only the last block qualifies.
        let scan =
            PlainScan::new(table(), io_pruned.clone(), &["k"], vec![ColPredicate::ge("k", 8i64)])
                .unwrap();
        let out = collect(Box::new(scan)).unwrap();
        assert_eq!(out.columns[0].as_i64().unwrap(), &[8, 9, 10, 11]);
        assert!(io_pruned.stats().bytes_read < io_full.stats().bytes_read);
    }

    #[test]
    fn residual_filters_within_blocks() {
        let io = IoTracker::new();
        let scan =
            PlainScan::new(table(), io, &["v"], vec![ColPredicate::between("k", 2i64, 5i64)])
                .unwrap();
        let out = collect(Box::new(scan)).unwrap();
        assert_eq!(out.columns[0].as_i64().unwrap(), &[20, 30, 40, 50]);
    }

    #[test]
    fn predicate_on_unprojected_column() {
        let io = IoTracker::new();
        let scan = PlainScan::new(table(), io, &["v"], vec![ColPredicate::eq("k", 7i64)]).unwrap();
        let out = collect(Box::new(scan)).unwrap();
        assert_eq!(out.columns[0].as_i64().unwrap(), &[70]);
        assert_eq!(out.arity(), 1);
    }

    #[test]
    fn empty_result_when_nothing_matches() {
        let io = IoTracker::new();
        let scan =
            PlainScan::new(table(), io, &["k"], vec![ColPredicate::eq("k", 999i64)]).unwrap();
        let out = collect(Box::new(scan)).unwrap();
        assert_eq!(out.rows(), 0);
    }

    #[test]
    fn unknown_column_rejected() {
        let io = IoTracker::new();
        assert!(PlainScan::new(table(), io, &["zzz"], vec![]).is_err());
    }

    #[test]
    fn string_block_stats_prune() {
        let t = Arc::new(
            StoredTable::from_columns_with_block_rows(
                "s",
                vec![(
                    "name".into(),
                    Column::from_strings(
                        ["apple", "avocado", "banana", "cherry", "melon", "peach", "pear", "plum"]
                            .iter()
                            .map(|s| s.to_string())
                            .collect(),
                    ),
                )],
                4,
            )
            .unwrap(),
        );
        let io = IoTracker::new();
        let scan = PlainScan::new(
            t,
            io,
            &["name"],
            vec![ColPredicate::eq("name", Datum::Str("pear".into()))],
        )
        .unwrap();
        let out = collect(Box::new(scan)).unwrap();
        assert_eq!(out.columns[0].as_str().unwrap(), &["pear".to_string()]);
    }

    #[test]
    fn builder_rejects_unknown_predicate_column() {
        let io = IoTracker::new();
        assert!(
            PlainScan::new(table(), io, &["k"], vec![ColPredicate::eq("missing", 1i64)]).is_err()
        );
    }

    #[test]
    fn block_range_partitions_tile_the_scan() {
        let io = IoTracker::new();
        let full = collect(Box::new(full_scan(table(), io.clone(), &["k"]).unwrap())).unwrap();
        // Split into [0,1) ++ [1,3): concatenation equals the full scan.
        let a = collect(Box::new(
            PlainScan::with_block_range(table(), io.clone(), &["k"], vec![], 0..1).unwrap(),
        ))
        .unwrap();
        let b = collect(Box::new(
            PlainScan::with_block_range(table(), io.clone(), &["k"], vec![], 1..3).unwrap(),
        ))
        .unwrap();
        let mut joined = a.columns[0].as_i64().unwrap().to_vec();
        joined.extend_from_slice(b.columns[0].as_i64().unwrap());
        assert_eq!(joined, full.columns[0].as_i64().unwrap());
        // Out-of-range partitions are empty, not errors.
        let e = collect(Box::new(
            PlainScan::with_block_range(table(), io, &["k"], vec![], 7..9).unwrap(),
        ))
        .unwrap();
        assert_eq!(e.rows(), 0);
    }

    #[test]
    fn table_builder_smoke() {
        let t = TableBuilder::new("x").column("a", Column::from_i64(vec![1])).build().unwrap();
        assert_eq!(t.rows(), 1);
    }
}
