//! The BDCC scatter-scan.
//!
//! Reads a BDCC table group-at-a-time through its count table. The planner
//! passes the *selected* groups (bin-range restrictions already applied —
//! selection pushdown and propagation happen at plan time) in the requested
//! major-minor order; the scan:
//!
//! * reads each group's row range (one random seek per discontinuity, then
//!   sequential — the access pattern Algorithm 1 sized the groups for),
//! * still applies MinMax block skipping *within* groups (correlated
//!   pushdown, e.g. `l_shipdate` thanks to `o_orderdate` locality),
//! * appends one group-identifier column per requested dimension use, which
//!   downstream sandwich operators align on,
//! * never lets a batch cross a group boundary.

use std::sync::Arc;

use bdcc_obs::OpMetrics;
use bdcc_storage::{DataType, IoTracker, StoredTable};

use crate::batch::{Batch, ColMeta, OpSchema};
use crate::enc::{BlockVerdict, ScanKernel};
use crate::error::Result;
use crate::expr::Expr;
use crate::kernel::{kernel_enabled, FilterProgram};
use crate::ops::Operator;
use crate::pred::{predicates_to_expr, ColPredicate};

/// Drop the trailing residual-only columns without cloning the kept ones.
fn truncate_cols(mut b: Batch, n: usize) -> Batch {
    b.columns.truncate(n);
    b
}

/// One selected group in output order: its row range in the stored table
/// plus the values of the emitted group-key columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupSpec {
    pub start: usize,
    pub count: usize,
    /// One value per requested group-key column (negotiated prefix bits of
    /// the corresponding dimension use).
    pub group_keys: Vec<i64>,
}

impl GroupSpec {
    /// Rows this group covers — the weight the morsel scheduler balances.
    pub fn rows(&self) -> usize {
        self.count
    }
}

/// Scatter-scan over a clustered table.
pub struct BdccScan {
    table: Arc<StoredTable>,
    io: IoTracker,
    projection: Vec<usize>,
    predicates: Vec<(usize, ColPredicate)>,
    extra_cols: Vec<usize>,
    residual: Option<Expr>,
    /// Schema the residual is bound against (projection ++ extras).
    eval_schema: OpSchema,
    /// Selection-vector program for the residual (see [`crate::kernel`]);
    /// `None` keeps the interpreter path.
    program: Option<FilterProgram>,
    /// Compression-aware predicate kernel; `Some` only when the table is
    /// block-encoded and every predicate is kernel-supported.
    kernel: Option<ScanKernel>,
    metrics: Option<Arc<OpMetrics>>,
    /// Names of the emitted group-key columns (appended after projection).
    schema: OpSchema,
    groups: Vec<GroupSpec>,
    next_group: usize,
}

impl BdccScan {
    /// Create a scatter-scan emitting `columns` plus one group-key column
    /// per name in `group_key_names`, over the pre-selected `groups`.
    pub fn new(
        table: Arc<StoredTable>,
        io: IoTracker,
        columns: &[&str],
        predicates: Vec<ColPredicate>,
        group_key_names: &[String],
        groups: Vec<GroupSpec>,
    ) -> Result<BdccScan> {
        let mut projection = Vec::with_capacity(columns.len());
        let mut schema = Vec::with_capacity(columns.len() + group_key_names.len());
        for &name in columns {
            let idx = table.column_index(name)?;
            projection.push(idx);
            schema.push(ColMeta::new(name, table.schema().columns[idx].data_type));
        }
        let mut preds = Vec::with_capacity(predicates.len());
        for p in &predicates {
            preds.push((table.column_index(&p.column)?, p.clone()));
        }
        let mut eval_schema = schema.clone();
        let mut extra_cols = Vec::new();
        for (idx, p) in &preds {
            if !eval_schema.iter().any(|m| m.name == p.column) {
                extra_cols.push(*idx);
                eval_schema.push(ColMeta::new(&p.column, table.schema().columns[*idx].data_type));
            }
        }
        let residual = match predicates_to_expr(&predicates) {
            Some(e) => Some(e.bind(&eval_schema)?),
            None => None,
        };
        for name in group_key_names {
            schema.push(ColMeta::new(name.clone(), DataType::Int));
        }
        let kernel = ScanKernel::try_new(&table, &preds);
        let program = match (&residual, kernel_enabled()) {
            (Some(e), true) => Some(FilterProgram::compile(e, &eval_schema)),
            _ => None,
        };
        Ok(BdccScan {
            table,
            io,
            projection,
            predicates: preds,
            extra_cols,
            residual,
            eval_schema,
            program,
            kernel,
            metrics: None,
            schema,
            groups,
            next_group: 0,
        })
    }

    /// Attach operator metrics (block-skip counters) to this scan.
    pub fn with_metrics(mut self, metrics: Option<Arc<OpMetrics>>) -> BdccScan {
        self.metrics = metrics;
        self
    }

    /// Pin the residual's selection-vector kernel on or off, overriding
    /// the `BDCC_KERNEL` gate consulted at construction.
    pub fn with_filter_kernel(mut self, on: bool) -> BdccScan {
        self.program = match (&self.residual, on) {
            (Some(e), true) => Some(FilterProgram::compile(e, &self.eval_schema)),
            _ => None,
        };
        self
    }

    fn read_set(&self) -> Vec<usize> {
        let mut set = self.projection.clone();
        for idx in &self.extra_cols {
            if !set.contains(idx) {
                set.push(*idx);
            }
        }
        set
    }

    fn charge_io(&self, start_row: usize, end_row: usize) {
        for &col in &self.read_set() {
            let width = self.table.io_width(col);
            let first = (start_row as f64 * width) as u64;
            let last = ((end_row as f64 * width) as u64).saturating_sub(1).max(first);
            self.io.record_span(self.table.io_key(col), first, last);
        }
    }

    /// Number of group-key columns this scan appends.
    pub fn group_key_count(&self) -> usize {
        self.schema.len() - self.projection.len()
    }

    /// Partition entry point for the morsel scheduler: the selected groups
    /// in output order. A scatter-scan over any contiguous index range of
    /// these groups (constructed via [`BdccScan::new`] with the sliced
    /// list) yields exactly the corresponding sub-stream of this scan, so
    /// ordered concatenation over a partition of the ranges reproduces the
    /// full scan batch-for-batch.
    pub fn groups(&self) -> &[GroupSpec] {
        &self.groups
    }
}

impl Operator for BdccScan {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        let rows = self.table.rows();
        let stats0 = if rows > 0 { Some(self.table.block_stats(0)?) } else { None };
        // Resolve each predicate column's statistics once per call, not once
        // per (block, predicate) pair.
        let mut pred_stats = Vec::with_capacity(self.predicates.len());
        if rows > 0 {
            for (col, _) in &self.predicates {
                pred_stats.push(self.table.block_stats(*col)?);
            }
        }
        while self.next_group < self.groups.len() {
            let g = self.groups[self.next_group].clone();
            self.next_group += 1;
            if g.count == 0 {
                continue;
            }
            let (gstart, gend) = (g.start, g.start + g.count);
            if let (Some(stats0), Some(kernel)) = (&stats0, &self.kernel) {
                // Compression-aware path: predicates run per block on the
                // encoded data; the projection materializes late with one
                // gather over the group's surviving rows. Extra predicate
                // columns are never assembled.
                let first_block = stats0.block_of_row(gstart);
                let last_block = stats0.block_of_row(gend - 1);
                let mut rows_idx: Vec<usize> = Vec::new();
                'kblocks: for b in first_block..=last_block {
                    let (bs, be) = stats0.rows_of_block(b, rows);
                    let s = bs.max(gstart);
                    let e = be.min(gend);
                    if s >= e {
                        continue;
                    }
                    for (i, (_, pred)) in self.predicates.iter().enumerate() {
                        if !pred.block_may_match(&pred_stats[i].blocks[b]) {
                            if let Some(m) = &self.metrics {
                                m.blocks_skipped.add(1);
                            }
                            continue 'kblocks;
                        }
                    }
                    match kernel.eval_block(&self.table, b, bs, s, e, &pred_stats)? {
                        BlockVerdict::SkipNoRows => {
                            if let Some(m) = &self.metrics {
                                m.enc_skipped.add(1);
                            }
                        }
                        BlockVerdict::Skip => self.charge_io(s, e),
                        BlockVerdict::All => {
                            self.charge_io(s, e);
                            rows_idx.extend(s..e);
                        }
                        BlockVerdict::Rows(idx) => {
                            self.charge_io(s, e);
                            rows_idx.extend(idx);
                        }
                    }
                }
                if rows_idx.is_empty() {
                    continue;
                }
                let mut batch = Batch::new(
                    self.projection
                        .iter()
                        .map(|&col| Ok(self.table.column(col)?.gather(&rows_idx)))
                        .collect::<Result<Vec<_>>>()?,
                );
                if batch.rows() == 0 {
                    continue;
                }
                let n = batch.rows();
                for &gk in &g.group_keys {
                    batch.columns.push(bdcc_storage::Column::from_i64(vec![gk; n]));
                }
                return Ok(Some(batch));
            }
            // MinMax pruning over the blocks the group spans: collect the
            // surviving sub-ranges.
            let mut survivors: Vec<(usize, usize)> = Vec::new();
            if let Some(stats0) = &stats0 {
                let first_block = stats0.block_of_row(gstart);
                let last_block = stats0.block_of_row(gend - 1);
                'blocks: for b in first_block..=last_block {
                    let (bs, be) = stats0.rows_of_block(b, self.table.rows());
                    let s = bs.max(gstart);
                    let e = be.min(gend);
                    if s >= e {
                        continue;
                    }
                    for (i, (_, pred)) in self.predicates.iter().enumerate() {
                        if !pred.block_may_match(&pred_stats[i].blocks[b]) {
                            if let Some(m) = &self.metrics {
                                m.blocks_skipped.add(1);
                            }
                            continue 'blocks;
                        }
                    }
                    match survivors.last_mut() {
                        Some((_, pe)) if *pe == s => *pe = e,
                        _ => survivors.push((s, e)),
                    }
                }
            }
            if survivors.is_empty() {
                continue;
            }
            // Assemble the group's surviving rows.
            let mut columns: Vec<bdcc_storage::Column> = Vec::new();
            for &col in &self.projection {
                let mut out = self.table.column(col)?.slice(survivors[0].0, survivors[0].1);
                for &(s, e) in &survivors[1..] {
                    out.append(&self.table.column(col)?.slice(s, e))?;
                }
                columns.push(out);
            }
            for &idx in &self.extra_cols {
                let mut out = self.table.column(idx)?.slice(survivors[0].0, survivors[0].1);
                for &(s, e) in &survivors[1..] {
                    out.append(&self.table.column(idx)?.slice(s, e))?;
                }
                columns.push(out);
            }
            for &(s, e) in &survivors {
                self.charge_io(s, e);
            }
            let full = Batch::new(columns);
            let mut batch = match (&self.residual, &self.program) {
                (Some(_), Some(program)) => {
                    let sel = program.select(&full)?;
                    if sel.is_empty() {
                        continue;
                    }
                    // An all-pass selection moves the assembled columns
                    // through unchanged; extras drop without cloning.
                    truncate_cols(sel.take(full), self.projection.len())
                }
                (Some(filter), None) => {
                    let keep = filter.eval_bool(&full)?;
                    if !keep.iter().any(|&k| k) {
                        continue;
                    }
                    if keep.iter().all(|&k| k) {
                        // All rows pass: skip the per-column copy.
                        truncate_cols(full, self.projection.len())
                    } else {
                        truncate_cols(full.filter(&keep), self.projection.len())
                    }
                }
                (None, _) => truncate_cols(full, self.projection.len()),
            };
            if batch.rows() == 0 {
                continue;
            }
            // Append the group-key columns (constant within the group).
            let n = batch.rows();
            for &gk in &g.group_keys {
                batch.columns.push(bdcc_storage::Column::from_i64(vec![gk; n]));
            }
            return Ok(Some(batch));
        }
        if let (Some(m), Some(p)) = (&self.metrics, &self.program) {
            p.annotate(m);
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::collect;
    use bdcc_storage::Column;

    /// A sorted table of 16 rows: key = row/4 (4 groups of 4).
    fn table() -> Arc<StoredTable> {
        let k: Vec<i64> = (0..16).map(|i| i / 4).collect();
        let v: Vec<i64> = (0..16).collect();
        Arc::new(
            StoredTable::from_columns_with_block_rows(
                "t_bdcc",
                vec![("k".into(), Column::from_i64(k)), ("v".into(), Column::from_i64(v))],
                4,
            )
            .unwrap(),
        )
    }

    fn groups(sel: &[usize]) -> Vec<GroupSpec> {
        sel.iter()
            .map(|&g| GroupSpec { start: g * 4, count: 4, group_keys: vec![g as i64] })
            .collect()
    }

    #[test]
    fn scan_selected_groups_in_given_order() {
        let io = IoTracker::new();
        let scan =
            BdccScan::new(table(), io, &["v"], vec![], &["__gk0".into()], groups(&[2, 0])).unwrap();
        let out = collect(Box::new(scan)).unwrap();
        // Group 2 rows first, then group 0 (scatter order).
        assert_eq!(out.columns[0].as_i64().unwrap(), &[8, 9, 10, 11, 0, 1, 2, 3]);
        assert_eq!(out.columns[1].as_i64().unwrap(), &[2, 2, 2, 2, 0, 0, 0, 0]);
    }

    #[test]
    fn batches_never_cross_groups() {
        let io = IoTracker::new();
        let mut scan =
            BdccScan::new(table(), io, &["v"], vec![], &["__gk0".into()], groups(&[0, 1, 2, 3]))
                .unwrap();
        let mut batches = 0;
        while let Some(b) = scan.next().unwrap() {
            batches += 1;
            let gk = b.columns[1].as_i64().unwrap();
            assert!(gk.iter().all(|&g| g == gk[0]), "batch spans groups");
        }
        assert_eq!(batches, 4);
    }

    #[test]
    fn group_skipping_reduces_io() {
        let io_all = IoTracker::new();
        let scan =
            BdccScan::new(table(), io_all.clone(), &["v"], vec![], &[], groups(&[0, 1, 2, 3]))
                .unwrap();
        collect(Box::new(scan)).unwrap();

        let io_sel = IoTracker::new();
        let scan =
            BdccScan::new(table(), io_sel.clone(), &["v"], vec![], &[], groups(&[1])).unwrap();
        let out = collect(Box::new(scan)).unwrap();
        assert_eq!(out.rows(), 4);
        assert!(io_sel.stats().bytes_read <= io_all.stats().bytes_read);
    }

    #[test]
    fn minmax_inside_groups() {
        let io = IoTracker::new();
        // v >= 14 within all groups: only the last block of group 3 matches.
        let scan = BdccScan::new(
            table(),
            io,
            &["v"],
            vec![ColPredicate::ge("v", 14i64)],
            &[],
            groups(&[0, 1, 2, 3]),
        )
        .unwrap();
        let out = collect(Box::new(scan)).unwrap();
        assert_eq!(out.columns[0].as_i64().unwrap(), &[14, 15]);
    }

    #[test]
    fn multiple_group_keys() {
        let io = IoTracker::new();
        let g = vec![GroupSpec { start: 0, count: 4, group_keys: vec![7, 9] }];
        let scan = BdccScan::new(table(), io, &["v"], vec![], &["__gk0".into(), "__gk1".into()], g)
            .unwrap();
        let out = collect(Box::new(scan)).unwrap();
        assert_eq!(out.arity(), 3);
        assert_eq!(out.columns[1].as_i64().unwrap(), &[7, 7, 7, 7]);
        assert_eq!(out.columns[2].as_i64().unwrap(), &[9, 9, 9, 9]);
    }

    #[test]
    fn empty_group_list_terminates() {
        let io = IoTracker::new();
        let scan = BdccScan::new(table(), io, &["v"], vec![], &[], vec![]).unwrap();
        let out = collect(Box::new(scan)).unwrap();
        assert_eq!(out.rows(), 0);
    }
}
