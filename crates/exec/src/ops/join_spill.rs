//! Spill-capable grace-hash build for [`HashJoin`] under an active
//! [`MemoryBroker`](crate::broker::MemoryBroker).
//!
//! When the broker reports pressure mid-drain, the build side switches
//! to a 16-way hash-partitioned drain: each pending batch is scattered
//! by key hash, and the **largest resident partitions freeze** — their
//! accumulated rows are written to a spill file and later rows for that
//! partition stream straight to disk. At drain end, frozen files whose
//! estimated in-memory size exceeds the broker's restore limit are
//! **split recursively** on deeper hash bits (4 bits per level) until
//! every leaf fits; still-resident partitions become ordinary in-memory
//! leaves with their own [`JoinIndex`].
//!
//! Probing restores one file leaf at a time (governor checkpoint
//! `join-spill-restore`): the leaf's rows are read back in original
//! build-stream order, indexed, and the **whole** probe batch runs
//! against the leaf index. Equal keys hash to exactly one leaf, so each
//! probe row matches in at most one leaf and per-leaf match fragments
//! are disjoint; a stable merge on the left row id reassembles each
//! batch's output in exactly the serial probe order — byte-identical,
//! spilled or not. Semi/anti unite per-leaf match lists into one
//! matched-flag set; left-outer ORs matched flags across leaves before
//! defaulting the unmatched rows.
//!
//! All spill writes and restores are metered through the join's
//! [`IoTracker`] (restores of the same file charge bytes once), and
//! every file unlinks on drop — including mid-query cancellation,
//! because handles live inside the operator tree.

use bdcc_storage::{Column, SpillHandle, SpillWriter};

use crate::batch::Batch;
use crate::error::Result;
use crate::hash::{hash_group_row, JoinIndex};
use crate::memory::MemoryGuard;
use crate::ops::BoxedOp;
use crate::parallel::partition::partition_rows_of_batch;

use super::{default_column, needs_pairs, probe_range, BuildSide, HashJoin, JoinType};

/// Top-level spill partition fan-out: 2^4 = 16 partitions.
const JOIN_BITS: u32 = 4;
/// Extra hash bits consumed per recursive split of an oversized file.
const RECURSE_BITS: u32 = 4;
/// Hash bits are finite; beyond this depth a leaf loads whole regardless.
const MAX_TOTAL_BITS: u32 = 32;

/// The join's build side: fully resident, or partitioned with some
/// partitions frozen to spill files.
pub(super) enum Build {
    Mem(BuildSide),
    Spilled(SpilledBuild),
}

/// A finalized spilled build: a flat list of leaves, each either an
/// indexed in-memory partition or a spill file small enough to restore
/// within the broker's limit.
pub(super) struct SpilledBuild {
    leaves: Vec<Leaf>,
}

enum Leaf {
    Mem(BuildSide),
    File { handle: SpillHandle },
}

/// One partition mid-drain.
enum PartState {
    Resident { columns: Vec<Column>, bytes: u64 },
    Frozen { writer: SpillWriter, mem_bytes: u64 },
}

/// Estimated in-memory bytes of a column set (same payload formula the
/// in-memory build registers).
pub(super) fn est_cols(cols: &[Column]) -> u64 {
    cols.iter().map(|c| (c.len() as f64 * c.avg_width()) as u64).sum()
}

/// Per-(batch, leaf) match fragment: matched left rows plus the right
/// pair columns gathered while the leaf was resident.
struct Fragment {
    lidx: Vec<usize>,
    right: Vec<Column>,
}

impl HashJoin {
    fn note_spill(&self, parts: u64, out: u64, back: u64) {
        if let Some(m) = &self.metrics {
            if parts > 0 {
                m.spill_partitions.add(parts);
            }
            if out > 0 {
                m.spill_bytes.add(out);
            }
            if back > 0 {
                m.spill_restore_bytes.add(back);
            }
        }
    }

    /// Scatter one build batch across the partitions, appending to
    /// resident ones and streaming straight to disk for frozen ones.
    /// Row order within each partition follows the build stream.
    fn scatter(&self, batch: &Batch, parts: &mut [PartState], resident: &mut u64) -> Result<()> {
        let keys: Vec<&Column> = self.right_keys.iter().map(|&k| &batch.columns[k]).collect();
        let ids = partition_rows_of_batch(&keys, batch.rows(), JOIN_BITS);
        for (part, ids) in parts.iter_mut().zip(&ids) {
            if ids.is_empty() {
                continue;
            }
            let cols: Vec<Column> = batch.columns.iter().map(|c| c.gather(ids)).collect();
            let bytes = est_cols(&cols);
            match part {
                PartState::Resident { columns, bytes: pb } => {
                    for (dst, src) in columns.iter_mut().zip(&cols) {
                        dst.append(src)?;
                    }
                    *pb += bytes;
                    *resident += bytes;
                }
                PartState::Frozen { writer, mem_bytes } => {
                    writer.write_columns(&cols)?;
                    *mem_bytes += bytes;
                }
            }
        }
        Ok(())
    }

    /// Freeze the largest resident partitions until at least `target`
    /// bytes are released (or everything nonempty is frozen).
    fn freeze_parts(&self, parts: &mut [PartState], target: u64, resident: &mut u64) -> Result<()> {
        let mut order: Vec<(u64, usize)> = parts
            .iter()
            .enumerate()
            .filter_map(|(i, p)| match p {
                PartState::Resident { bytes, .. } if *bytes > 0 => Some((*bytes, i)),
                _ => None,
            })
            .collect();
        order.sort_by_key(|&(bytes, _)| std::cmp::Reverse(bytes));
        let mut released = 0u64;
        for (bytes, i) in order {
            if released >= target {
                break;
            }
            let PartState::Resident { columns, .. } = &mut parts[i] else { unreachable!() };
            let mut writer = SpillWriter::create("join-build", &self.spill_io)?;
            writer.write_columns(columns)?;
            self.note_spill(1, writer.bytes(), 0);
            parts[i] = PartState::Frozen { writer, mem_bytes: bytes };
            released += bytes;
            *resident -= bytes;
        }
        Ok(())
    }

    /// Partitioned drain, entered the moment the in-memory drain sees
    /// pressure: `seed` holds the rows drained so far (stream order) and
    /// `first` is the pending batch that tripped the high-water mark.
    pub(super) fn build_spilled(
        &mut self,
        mut right: BoxedOp,
        seed: Vec<Column>,
        mut guard: MemoryGuard,
        first: Batch,
    ) -> Result<SpilledBuild> {
        if let Some(m) = &self.metrics {
            m.annotate("spill_mode", "build-broker");
        }
        let nparts = 1usize << JOIN_BITS;
        let mut parts: Vec<PartState> = (0..nparts)
            .map(|_| PartState::Resident {
                columns: self.right_types.iter().map(|&dt| Column::empty(dt)).collect(),
                bytes: 0,
            })
            .collect();
        let mut resident = 0u64;
        let seed = Batch::new(seed);
        if seed.rows() > 0 {
            self.scatter(&seed, &mut parts, &mut resident)?;
        }
        drop(seed);
        guard.resize(resident);
        let mut pending = Some(first);
        loop {
            let batch = match pending.take() {
                Some(b) => b,
                None => match right.next()? {
                    Some(b) => b,
                    None => break,
                },
            };
            let bytes = est_cols(&batch.columns);
            if self.broker.should_spill(bytes) {
                self.freeze_parts(
                    &mut parts,
                    self.broker.release_target().max(bytes),
                    &mut resident,
                )?;
                guard.resize(resident);
            }
            self.scatter(&batch, &mut parts, &mut resident)?;
            guard.resize(resident);
        }
        // Finalize. Once anything froze, freeze *everything*: probing
        // then holds exactly one restored leaf (payload + index) at a
        // time, which is what keeps the query inside its budget — a
        // partially resident build would pay resident payloads *and*
        // their indexes on top of every restore. (If pressure never
        // fired mid-drain we never got here, so the common in-memory
        // case is untouched.) Then writers become files and oversized
        // files split until they fit the broker's restore limit.
        if parts.iter().any(|p| matches!(p, PartState::Frozen { .. })) {
            self.freeze_parts(&mut parts, u64::MAX, &mut resident)?;
            guard.resize(resident);
        }
        let mut leaves = Vec::new();
        let mut rows = 0u64;
        for part in parts {
            match part {
                PartState::Resident { columns, bytes } => {
                    if columns.first().map_or(0, |c| c.len()) == 0 {
                        continue;
                    }
                    rows += columns.first().map_or(0, |c| c.len()) as u64;
                    leaves.push(Leaf::Mem(self.index_leaf(columns, bytes)?));
                }
                PartState::Frozen { writer, mem_bytes } => {
                    let handle = writer.finish()?;
                    rows += handle.rows();
                    self.split_oversized(handle, mem_bytes, JOIN_BITS, &mut leaves)?;
                }
            }
        }
        guard.resize(0);
        if let Some(m) = &self.metrics {
            m.annotate("build_rows", rows.to_string());
            m.annotate("build", format!("spilled({})", leaves.len()));
        }
        Ok(SpilledBuild { leaves })
    }

    /// Build a leaf's [`JoinIndex`] and register its memory.
    fn index_leaf(&self, columns: Vec<Column>, bytes: u64) -> Result<BuildSide> {
        let key_cols: Vec<&[i64]> = self
            .right_keys
            .iter()
            .map(|&k| columns[k].as_i64())
            .collect::<std::result::Result<_, _>>()?;
        let index = JoinIndex::build(&key_cols, None)?;
        let mem = self.tracker.register(bytes + index.estimated_bytes());
        drop(key_cols);
        Ok(BuildSide { columns, index, _mem: mem })
    }

    /// Recursively split a spill file on deeper hash bits until its
    /// estimated restore size fits the broker's limit. Entries scatter
    /// stably, so each sub-leaf keeps original build-stream order.
    ///
    /// The payload is doubled before comparing against the limit:
    /// restoring a leaf also builds its [`JoinIndex`], whose flat arrays
    /// cost the same order as the payload itself.
    fn split_oversized(
        &self,
        handle: SpillHandle,
        mem_bytes: u64,
        used_bits: u32,
        leaves: &mut Vec<Leaf>,
    ) -> Result<()> {
        if mem_bytes.saturating_mul(2) <= self.broker.restore_limit()
            || used_bits + RECURSE_BITS > MAX_TOTAL_BITS
        {
            leaves.push(Leaf::File { handle });
            return Ok(());
        }
        self.governor.check("join-spill-restore")?;
        let n = 1usize << RECURSE_BITS;
        let mut subs: Vec<Option<(SpillWriter, u64)>> = (0..n).map(|_| None).collect();
        let file_bytes = handle.bytes();
        let mut reader = handle.open()?;
        while let Some(cols) = reader.next_columns()? {
            let rows = cols.first().map_or(0, |c| c.len());
            let keys: Vec<&Column> = self.right_keys.iter().map(|&k| &cols[k]).collect();
            let mut ids: Vec<Vec<usize>> = vec![Vec::new(); n];
            for row in 0..rows {
                let h = hash_group_row(&keys, row);
                ids[sub_partition_of(h, used_bits)].push(row);
            }
            drop(keys);
            for (si, ids) in ids.iter().enumerate() {
                if ids.is_empty() {
                    continue;
                }
                if subs[si].is_none() {
                    subs[si] = Some((SpillWriter::create("join-rec", &self.spill_io)?, 0));
                }
                let (w, mb) = subs[si].as_mut().expect("just created");
                let gathered: Vec<Column> = cols.iter().map(|c| c.gather(ids)).collect();
                w.write_columns(&gathered)?;
                *mb += est_cols(&gathered);
            }
        }
        drop(reader);
        drop(handle); // parent file unlinks here
        self.note_spill(1, 0, file_bytes);
        for (w, mb) in subs.into_iter().flatten() {
            self.note_spill(0, w.bytes(), 0);
            let h = w.finish()?;
            self.split_oversized(h, mb, used_bits + RECURSE_BITS, leaves)?;
        }
        Ok(())
    }

    /// Restore one file leaf: read rows back (build-stream order), index,
    /// register memory for the leaf's lifetime.
    fn restore_leaf(&self, handle: &SpillHandle) -> Result<BuildSide> {
        self.governor.check("join-spill-restore")?;
        let mut columns: Vec<Column> =
            self.right_types.iter().map(|&dt| Column::empty(dt)).collect();
        let mut reader = handle.open()?;
        while let Some(cols) = reader.next_columns()? {
            for (dst, src) in columns.iter_mut().zip(&cols) {
                dst.append(src)?;
            }
        }
        self.note_spill(0, 0, handle.bytes());
        let bytes = est_cols(&columns);
        self.index_leaf(columns, bytes)
    }

    /// Probe a round against a spilled build, one leaf at a time; merge
    /// the per-leaf fragments back into serial probe order per batch.
    pub(super) fn probe_round_spilled(
        &self,
        build: &SpilledBuild,
        round: &[Batch],
    ) -> Result<Vec<Batch>> {
        let pairs = needs_pairs(self.join_type, self.residual.as_ref());
        let mut frags: Vec<Vec<Fragment>> = round.iter().map(|_| Vec::new()).collect();
        for leaf in &build.leaves {
            let restored;
            let side = match leaf {
                Leaf::Mem(b) => b,
                Leaf::File { handle } => {
                    restored = self.restore_leaf(handle)?;
                    &restored
                }
            };
            for (bi, batch) in round.iter().enumerate() {
                let (lidx, ridx) = probe_range(
                    batch,
                    side,
                    &self.left_keys,
                    self.join_type,
                    self.residual.as_ref(),
                    self.pair_filter.as_ref(),
                    0..batch.rows(),
                )?;
                if lidx.is_empty() {
                    continue;
                }
                let right = if pairs {
                    side.columns.iter().map(|c| c.gather_u32(&ridx)).collect()
                } else {
                    Vec::new()
                };
                frags[bi].push(Fragment { lidx, right });
            }
        }
        round
            .iter()
            .zip(frags)
            .map(|(batch, frags)| self.merge_leaf_fragments(batch, frags))
            .collect()
    }

    /// Reassemble one batch's output from its per-leaf fragments.
    ///
    /// Each probe row's key lives in exactly one leaf, so fragment
    /// `lidx` sets are disjoint: a stable sort on the left row id
    /// interleaves the fragments into exactly the serial probe order
    /// (ties within a row stay in the leaf's chain order, which matches
    /// the full index's because partitioning preserves relative build
    /// order among equal keys).
    fn merge_leaf_fragments(&self, left: &Batch, frags: Vec<Fragment>) -> Result<Batch> {
        if matches!(self.join_type, JoinType::Semi | JoinType::Anti) {
            // Union of matched rows across leaves: only the matched-flag
            // set decides survivors, so order and dupes are moot.
            let rows = left.rows();
            let mut matched = vec![false; rows];
            for l in frags.into_iter().flat_map(|f| f.lidx) {
                matched[l] = true;
            }
            let keep: Vec<bool> = match self.join_type {
                JoinType::Semi => matched,
                _ => matched.iter().map(|&m| !m).collect(),
            };
            return Ok(left.filter(&keep));
        }
        let total: usize = frags.iter().map(|f| f.lidx.len()).sum();
        let mut all_l: Vec<usize> = Vec::with_capacity(total);
        let mut rcols: Vec<Column> = self.right_types.iter().map(|&dt| Column::empty(dt)).collect();
        for f in frags {
            all_l.extend(f.lidx);
            for (dst, src) in rcols.iter_mut().zip(&f.right) {
                dst.append(src)?;
            }
        }
        let mut order: Vec<usize> = (0..all_l.len()).collect();
        order.sort_by_key(|&i| all_l[i]); // stable: in-frag chain order kept
        let lidx: Vec<usize> = order.iter().map(|&i| all_l[i]).collect();
        let mut cols: Vec<Column> = left.columns.iter().map(|c| c.gather(&lidx)).collect();
        for rc in &rcols {
            cols.push(rc.gather(&order));
        }
        match self.join_type {
            JoinType::Inner => Ok(Batch::new(cols)),
            JoinType::LeftOuter => {
                cols.push(Column::from_i64(vec![1; lidx.len()]));
                let mut out = Batch::new(cols);
                let rows = left.rows();
                let mut matched = vec![false; rows];
                for &l in &lidx {
                    matched[l] = true;
                }
                let unmatched: Vec<usize> = (0..rows).filter(|&r| !matched[r]).collect();
                if !unmatched.is_empty() {
                    let mut ucols: Vec<Column> =
                        left.columns.iter().map(|c| c.gather(&unmatched)).collect();
                    for &dt in self.right_types.iter().take(self.right_arity) {
                        ucols.push(default_column(dt, unmatched.len()));
                    }
                    ucols.push(Column::from_i64(vec![0; unmatched.len()]));
                    let ub = Batch::new(ucols);
                    for (dst, src) in out.columns.iter_mut().zip(&ub.columns) {
                        dst.append(src)?;
                    }
                }
                Ok(out)
            }
            JoinType::Semi | JoinType::Anti => unreachable!("handled above"),
        }
    }
}

/// The next `RECURSE_BITS` hash bits after `used_bits` — disjoint from
/// every ancestor's routing bits, so recursion refines partitions.
fn sub_partition_of(h: u64, used_bits: u32) -> usize {
    ((h << used_bits) >> (64 - RECURSE_BITS)) as usize
}
