//! Merge join for PK-ordered inputs.
//!
//! The PK storage scheme's signature optimization (Section IV): when both
//! inputs arrive sorted on the join key (LINEITEM–ORDERS on `orderkey`,
//! PARTSUPP–PART on `partkey`), the join needs no hash table at all —
//! which is exactly why the paper's Figure 3 shows the PK scheme's memory
//! win on the big join, and why BDCC must compensate elsewhere.

use bdcc_storage::Column;

use crate::batch::{Batch, OpSchema};
use crate::error::{ExecError, Result};
use crate::ops::{BoxedOp, Operator};

/// Inner merge join on one integer key per side; inputs must be sorted
/// ascending on their key.
pub struct MergeJoin {
    left: BoxedOp,
    right: BoxedOp,
    left_key: usize,
    right_key: usize,
    schema: OpSchema,
    lbuf: Option<Batch>,
    lpos: usize,
    rbuf: Option<Batch>,
    rpos: usize,
    /// Buffered right-side group (rows sharing the current key) for
    /// many-to-many joins.
    rgroup: Option<(i64, Batch)>,
    done: bool,
}

impl MergeJoin {
    pub fn new(left: BoxedOp, right: BoxedOp, on: (&str, &str)) -> Result<MergeJoin> {
        let lschema = left.schema().clone();
        let rschema = right.schema().clone();
        let left_key = crate::batch::schema_index(&lschema, on.0)
            .ok_or_else(|| ExecError::UnknownColumn(on.0.to_string()))?;
        let right_key = crate::batch::schema_index(&rschema, on.1)
            .ok_or_else(|| ExecError::UnknownColumn(on.1.to_string()))?;
        let mut schema = lschema;
        schema.extend(rschema);
        Ok(MergeJoin {
            left,
            right,
            left_key,
            right_key,
            schema,
            lbuf: None,
            lpos: 0,
            rbuf: None,
            rpos: 0,
            rgroup: None,
            done: false,
        })
    }

    /// Current left key, refilling the buffer as needed.
    fn left_peek(&mut self) -> Result<Option<i64>> {
        loop {
            if let Some(b) = &self.lbuf {
                if self.lpos < b.rows() {
                    return Ok(Some(b.columns[self.left_key].as_i64()?[self.lpos]));
                }
            }
            match self.left.next()? {
                Some(b) => {
                    self.lbuf = Some(b);
                    self.lpos = 0;
                }
                None => return Ok(None),
            }
        }
    }

    fn right_peek(&mut self) -> Result<Option<i64>> {
        loop {
            if let Some(b) = &self.rbuf {
                if self.rpos < b.rows() {
                    return Ok(Some(b.columns[self.right_key].as_i64()?[self.rpos]));
                }
            }
            match self.right.next()? {
                Some(b) => {
                    self.rbuf = Some(b);
                    self.rpos = 0;
                }
                None => return Ok(None),
            }
        }
    }

    /// Collect all right rows with key `k` into `rgroup`.
    fn fill_right_group(&mut self, k: i64) -> Result<()> {
        let right_schema_len = self.schema.len() - self.left.schema().len();
        let mut cols: Vec<Column> = self.schema[self.schema.len() - right_schema_len..]
            .iter()
            .map(|m| Column::empty(m.data_type))
            .collect();
        loop {
            match self.right_peek()? {
                Some(rk) if rk == k => {
                    // Take the run of equal keys within the current buffer.
                    let b = self.rbuf.as_ref().expect("peek filled buffer");
                    let keys = b.columns[self.right_key].as_i64()?;
                    let start = self.rpos;
                    let mut end = start;
                    while end < b.rows() && keys[end] == k {
                        end += 1;
                    }
                    for (dst, src) in cols.iter_mut().zip(&b.columns) {
                        dst.append(&src.slice(start, end))?;
                    }
                    self.rpos = end;
                }
                _ => break,
            }
        }
        self.rgroup = Some((k, Batch::new(cols)));
        Ok(())
    }
}

impl Operator for MergeJoin {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        loop {
            let lk = match self.left_peek()? {
                Some(k) => k,
                None => {
                    self.done = true;
                    return Ok(None);
                }
            };
            // Reuse the buffered right group if the key matches (left dups).
            let group_matches = matches!(&self.rgroup, Some((k, _)) if *k == lk);
            if !group_matches {
                // Advance right until key >= lk.
                loop {
                    match self.right_peek()? {
                        Some(rk) if rk < lk => {
                            self.rpos += 1;
                        }
                        _ => break,
                    }
                }
                match self.right_peek()? {
                    Some(rk) if rk == lk => self.fill_right_group(lk)?,
                    _ => {
                        // No right match: skip the left run of this key.
                        let b = self.lbuf.as_ref().expect("peeked");
                        let keys = b.columns[self.left_key].as_i64()?;
                        while self.lpos < b.rows() && keys[self.lpos] == lk {
                            self.lpos += 1;
                        }
                        // Right exhausted entirely? Then nothing further
                        // can match only if right is done AND rgroup is
                        // stale — loop continues and terminates via left.
                        continue;
                    }
                }
            }
            // Emit the cross product of the left run (within this batch)
            // and the right group.
            let b = self.lbuf.as_ref().expect("peeked");
            let keys = b.columns[self.left_key].as_i64()?;
            let start = self.lpos;
            let mut end = start;
            while end < b.rows() && keys[end] == lk {
                end += 1;
            }
            self.lpos = end;
            let (_, rgroup) = self.rgroup.as_ref().expect("filled");
            let ln = end - start;
            let rn = rgroup.rows();
            let mut lidx = Vec::with_capacity(ln * rn);
            let mut ridx = Vec::with_capacity(ln * rn);
            for l in start..end {
                for r in 0..rn {
                    lidx.push(l);
                    ridx.push(r);
                }
            }
            let mut cols: Vec<Column> = b.columns.iter().map(|c| c.gather(&lidx)).collect();
            for rc in &rgroup.columns {
                cols.push(rc.gather(&ridx));
            }
            let out = Batch::new(cols);
            if out.rows() > 0 {
                return Ok(Some(out));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::ColMeta;
    use crate::ops::collect;

    struct Sorted {
        schema: OpSchema,
        batches: std::vec::IntoIter<Batch>,
    }

    impl Sorted {
        fn new(name: &str, keys: Vec<i64>, chunk: usize) -> Sorted {
            let schema = vec![ColMeta::new(name, bdcc_storage::DataType::Int)];
            let batches: Vec<Batch> = keys
                .chunks(chunk)
                .map(|c| Batch::new(vec![Column::from_i64(c.to_vec())]))
                .collect();
            Sorted { schema, batches: batches.into_iter() }
        }
    }

    impl Operator for Sorted {
        fn schema(&self) -> &OpSchema {
            &self.schema
        }
        fn next(&mut self) -> Result<Option<Batch>> {
            Ok(self.batches.next())
        }
    }

    #[test]
    fn one_to_many_merge() {
        let l = Sorted::new("lk", vec![1, 1, 2, 4, 4, 4], 2);
        let r = Sorted::new("rk", vec![1, 2, 3, 4], 3);
        let j = MergeJoin::new(Box::new(l), Box::new(r), ("lk", "rk")).unwrap();
        let out = collect(Box::new(j)).unwrap();
        assert_eq!(out.columns[0].as_i64().unwrap(), &[1, 1, 2, 4, 4, 4]);
        assert_eq!(out.columns[1].as_i64().unwrap(), &[1, 1, 2, 4, 4, 4]);
    }

    #[test]
    fn many_to_many_merge() {
        let l = Sorted::new("lk", vec![5, 5], 10);
        let r = Sorted::new("rk", vec![5, 5, 5], 2); // group spans batches
        let j = MergeJoin::new(Box::new(l), Box::new(r), ("lk", "rk")).unwrap();
        let out = collect(Box::new(j)).unwrap();
        assert_eq!(out.rows(), 6);
    }

    #[test]
    fn disjoint_keys_empty_result() {
        let l = Sorted::new("lk", vec![1, 3, 5], 2);
        let r = Sorted::new("rk", vec![2, 4, 6], 2);
        let j = MergeJoin::new(Box::new(l), Box::new(r), ("lk", "rk")).unwrap();
        let out = collect(Box::new(j)).unwrap();
        assert_eq!(out.rows(), 0);
    }

    #[test]
    fn left_run_spanning_batches_reuses_right_group() {
        let l = Sorted::new("lk", vec![7, 7, 7], 1); // one row per batch
        let r = Sorted::new("rk", vec![7, 7], 10);
        let j = MergeJoin::new(Box::new(l), Box::new(r), ("lk", "rk")).unwrap();
        let out = collect(Box::new(j)).unwrap();
        assert_eq!(out.rows(), 6);
    }
}
