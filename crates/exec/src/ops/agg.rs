//! Aggregation: hash, streaming, and sandwich variants.
//!
//! * [`HashAggregate`] — the baseline: one hash table over the whole input;
//!   its size is what Figure 3 charges the Plain scheme for.
//! * [`StreamingAggregate`] — input already sorted on the group-by prefix
//!   (the PK scheme's Q18); constant memory.
//! * [`SandwichAggregate`] — input pre-grouped on dimension bits that the
//!   group-by keys *functionally determine* (ref [3]): the hash table is
//!   flushed at every group boundary, so it only ever holds one
//!   co-cluster's worth of groups.

use std::collections::{HashMap, HashSet};

use std::sync::Arc;

use bdcc_storage::{Column, DataType, Datum};

use crate::batch::{Batch, ColMeta, OpSchema};
use crate::error::{ExecError, Result};
use crate::expr::Expr;
use crate::hash::FxBuildHasher;
use crate::memory::{MemoryGuard, MemoryTracker};
use crate::ops::{BoxedOp, Operator};

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Sum,
    Avg,
    Min,
    Max,
    Count,
    /// COUNT(DISTINCT expr) over integer-backed expressions.
    CountDistinct,
}

/// One output aggregate: function, input expression, output name.
#[derive(Debug, Clone)]
pub struct AggSpec {
    pub func: AggFunc,
    pub input: Expr,
    pub name: String,
}

impl AggSpec {
    pub fn new(func: AggFunc, input: Expr, name: &str) -> AggSpec {
        AggSpec { func, input, name: name.to_string() }
    }
}

/// Composite group key: integer and string parts.
#[derive(Debug, Clone, PartialEq, Eq)]
struct GroupKey {
    ints: Vec<i64>,
    strs: Vec<String>,
}

/// One shared key codec: the write sequence below, fed through
/// [`FxHasher`], produces *exactly*
/// [`crate::hash::hash_group_row`]'s value for the row this key was built
/// from (ints in order, then strings with a `0xff` terminator each; no
/// length prefixes). Radix partition routing and the aggregation hash
/// table therefore hash every group key identically — a group's
/// partition and its table bucket derive from one hash.
impl std::hash::Hash for GroupKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        for &v in &self.ints {
            state.write_u64(v as u64);
        }
        for s in &self.strs {
            state.write(s.as_bytes());
            state.write_u8(0xff);
        }
    }
}

/// Neumaier-compensated add: accumulates the rounding error of `sum += v`
/// into `c`. Makes float sums accurate to ~1 ulp of the true value
/// regardless of accumulation order, which is what lets morsel-parallel
/// partial aggregates merge without observable drift from the serial
/// result.
fn compensated_add(sum: &mut f64, c: &mut f64, v: f64) {
    let t = *sum + v;
    if sum.abs() >= v.abs() {
        *c += (*sum - t) + v;
    } else {
        *c += (v - t) + *sum;
    }
    *sum = t;
}

/// Running state of one aggregate for one group.
#[derive(Debug, Clone)]
enum AccState {
    SumI(i64),
    SumF { sum: f64, c: f64 },
    AvgF { sum: f64, c: f64, n: u64 },
    MinMax(Option<Datum>, bool /* is_min */),
    Count(u64),
    Distinct(HashSet<i64, FxBuildHasher>),
}

impl AccState {
    fn new(func: AggFunc, dt: DataType) -> AccState {
        match func {
            AggFunc::Sum => match dt {
                DataType::Float => AccState::SumF { sum: 0.0, c: 0.0 },
                _ => AccState::SumI(0),
            },
            AggFunc::Avg => AccState::AvgF { sum: 0.0, c: 0.0, n: 0 },
            AggFunc::Min => AccState::MinMax(None, true),
            AggFunc::Max => AccState::MinMax(None, false),
            AggFunc::Count => AccState::Count(0),
            AggFunc::CountDistinct => AccState::Distinct(Default::default()),
        }
    }

    fn update(&mut self, col: &Column, row: usize) {
        match self {
            AccState::SumI(acc) => *acc += col.as_i64().expect("int sum")[row],
            AccState::SumF { sum, c } => {
                compensated_add(sum, c, col.as_f64().expect("float sum")[row])
            }
            AccState::AvgF { sum, c, n } => {
                let v = match col {
                    Column::F64(v) => v[row],
                    Column::I64 { values, .. } => values[row] as f64,
                    Column::Str(_) => panic!("avg over strings"),
                };
                compensated_add(sum, c, v);
                *n += 1;
            }
            AccState::MinMax(cur, is_min) => {
                let v = col.datum(row);
                let better = match cur {
                    None => true,
                    Some(c) => {
                        let ord = v.total_cmp(c);
                        if *is_min {
                            ord == std::cmp::Ordering::Less
                        } else {
                            ord == std::cmp::Ordering::Greater
                        }
                    }
                };
                if better {
                    *cur = Some(v);
                }
            }
            AccState::Count(n) => *n += 1,
            AccState::Distinct(set) => {
                set.insert(col.as_i64().expect("distinct over ints")[row]);
            }
        }
    }

    fn finish(&self) -> Datum {
        match self {
            AccState::SumI(v) => Datum::Int(*v),
            AccState::SumF { sum, c } => Datum::Float(sum + c),
            AccState::AvgF { sum, c, n } => {
                Datum::Float(if *n == 0 { 0.0 } else { (sum + c) / *n as f64 })
            }
            AccState::MinMax(v, _) => v.clone().unwrap_or(Datum::Int(0)),
            AccState::Count(n) => Datum::Int(*n as i64),
            AccState::Distinct(set) => Datum::Int(set.len() as i64),
        }
    }

    /// Fold another state of the same function into this one (the merge
    /// contract of morsel-parallel partial aggregation). Exact for every
    /// function except float sums, where the compensated representation
    /// keeps the merged total within ~1 ulp of the serial result.
    fn merge(&mut self, other: &AccState) {
        match (self, other) {
            (AccState::SumI(a), AccState::SumI(b)) => *a += b,
            (AccState::SumF { sum, c }, AccState::SumF { sum: bs, c: bc }) => {
                compensated_add(sum, c, *bs);
                compensated_add(sum, c, *bc);
            }
            (AccState::AvgF { sum, c, n }, AccState::AvgF { sum: bs, c: bc, n: bn }) => {
                compensated_add(sum, c, *bs);
                compensated_add(sum, c, *bc);
                *n += bn;
            }
            (AccState::MinMax(a, is_min), AccState::MinMax(b, _)) => {
                if let Some(bv) = b {
                    let better = match a {
                        None => true,
                        Some(av) => {
                            let ord = bv.total_cmp(av);
                            if *is_min {
                                ord == std::cmp::Ordering::Less
                            } else {
                                ord == std::cmp::Ordering::Greater
                            }
                        }
                    };
                    if better {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AccState::Count(a), AccState::Count(b)) => *a += b,
            (AccState::Distinct(a), AccState::Distinct(b)) => a.extend(b),
            _ => panic!("merging mismatched aggregate states"),
        }
    }

    fn estimated_bytes(&self) -> u64 {
        match self {
            AccState::Distinct(set) => 16 + set.len() as u64 * 16,
            _ => 16,
        }
    }
}

/// Output type of an aggregate over an input of type `dt`.
fn agg_output_type(func: AggFunc, dt: DataType) -> DataType {
    match func {
        AggFunc::Sum => {
            if dt == DataType::Float {
                DataType::Float
            } else {
                DataType::Int
            }
        }
        AggFunc::Avg => DataType::Float,
        AggFunc::Min | AggFunc::Max => dt,
        AggFunc::Count | AggFunc::CountDistinct => DataType::Int,
    }
}

/// Shared core: grouping + accumulation over batches.
struct AggCore {
    group_cols: Vec<usize>,
    group_types: Vec<DataType>,
    agg_exprs: Vec<Expr>,
    agg_funcs: Vec<AggFunc>,
    agg_types: Vec<DataType>,
    /// Group states, hashed with the same multiplicative FxHash rounds as
    /// the join index (SipHash is measurable overhead on this hot path);
    /// output order comes from `order`, so the hasher never affects
    /// results.
    groups: HashMap<GroupKey, Vec<AccState>, FxBuildHasher>,
    /// Insertion order for deterministic output.
    order: Vec<GroupKey>,
    /// Parallel to `order`: the global input position of each group's
    /// first row. On the plain [`consume`](Self::consume) path this is a
    /// running row counter (so it equals the serial stream position);
    /// [`consume_indexed`](Self::consume_indexed) records caller-supplied
    /// positions instead — how radix-partitioned aggregation remembers
    /// the serial first-seen order across disjoint partitions.
    first_seen: Vec<u64>,
    /// Rows consumed so far (the id space of `first_seen` when no
    /// explicit ids are supplied).
    rows_seen: u64,
}

impl AggCore {
    fn new(
        input_schema: &[ColMeta],
        group_by: &[&str],
        aggs: &[AggSpec],
    ) -> Result<(AggCore, OpSchema)> {
        let mut group_cols = Vec::with_capacity(group_by.len());
        let mut group_types = Vec::with_capacity(group_by.len());
        let mut schema = Vec::new();
        for &g in group_by {
            let idx = crate::batch::schema_index(input_schema, g)
                .ok_or_else(|| ExecError::UnknownColumn(g.to_string()))?;
            group_cols.push(idx);
            group_types.push(input_schema[idx].data_type);
            schema.push(input_schema[idx].clone());
        }
        let mut agg_exprs = Vec::with_capacity(aggs.len());
        let mut agg_funcs = Vec::with_capacity(aggs.len());
        let mut agg_types = Vec::with_capacity(aggs.len());
        for a in aggs {
            let dt = a.input.data_type(input_schema)?;
            let out_dt = agg_output_type(a.func, dt);
            agg_exprs.push(a.input.bind(input_schema)?);
            agg_funcs.push(a.func);
            agg_types.push(dt);
            schema.push(ColMeta::new(&a.name, out_dt));
        }
        Ok((
            AggCore {
                group_cols,
                group_types,
                agg_exprs,
                agg_funcs,
                agg_types,
                groups: HashMap::default(),
                order: Vec::new(),
                first_seen: Vec::new(),
                rows_seen: 0,
            },
            schema,
        ))
    }

    fn consume(&mut self, batch: &Batch) -> Result<()> {
        self.consume_rows(batch, None, 0)
    }

    /// [`consume`](Self::consume) with explicit global input positions:
    /// `ids[row] + base` is row `row`'s position in the original (serial)
    /// stream. Radix-partitioned aggregation feeds each partition the
    /// gathered sub-batches with their pre-gather positions, so the
    /// partition-local `first_seen` ranks stay comparable across
    /// partitions and the final concatenation can reproduce the serial
    /// first-seen group order exactly.
    fn consume_indexed(&mut self, batch: &Batch, ids: &[u64], base: u64) -> Result<()> {
        debug_assert_eq!(ids.len(), batch.rows());
        self.consume_rows(batch, Some(ids), base)
    }

    fn consume_rows(&mut self, batch: &Batch, ids: Option<&[u64]>, base: u64) -> Result<()> {
        let agg_inputs: Vec<Column> =
            self.agg_exprs.iter().map(|e| e.eval(batch)).collect::<Result<Vec<_>>>()?;
        for row in 0..batch.rows() {
            let mut ints = Vec::new();
            let mut strs = Vec::new();
            for &c in &self.group_cols {
                match &batch.columns[c] {
                    Column::I64 { values, .. } => ints.push(values[row]),
                    Column::Str(values) => strs.push(values[row].clone()),
                    // Floats group by exact bit pattern (sufficient for
                    // values that were never arithmetically re-derived,
                    // e.g. c_acctbal, o_totalprice).
                    Column::F64(values) => ints.push(values[row].to_bits() as i64),
                }
            }
            let key = GroupKey { ints, strs };
            if !self.groups.contains_key(&key) {
                self.order.push(key.clone());
                self.first_seen.push(match ids {
                    Some(ids) => base + ids[row],
                    None => self.rows_seen + row as u64,
                });
                let fresh: Vec<AccState> = self
                    .agg_funcs
                    .iter()
                    .zip(&self.agg_types)
                    .map(|(&f, &dt)| AccState::new(f, dt))
                    .collect();
                self.groups.insert(key.clone(), fresh);
            }
            let states = self.groups.get_mut(&key).expect("just inserted");
            for (state, col) in states.iter_mut().zip(&agg_inputs) {
                state.update(col, row);
            }
        }
        self.rows_seen += batch.rows() as u64;
        Ok(())
    }

    fn estimated_bytes(&self) -> u64 {
        let per_key: u64 = 32
            + self
                .groups
                .keys()
                .next()
                .map(|k| {
                    k.ints.len() as u64 * 8 + k.strs.iter().map(|s| s.len() as u64 + 8).sum::<u64>()
                })
                .unwrap_or(8);
        let states: u64 = self
            .groups
            .values()
            .next()
            .map(|v| v.iter().map(|s| s.estimated_bytes()).sum())
            .unwrap_or(16);
        self.groups.len() as u64 * (per_key + states)
    }

    /// Drain all groups into one output batch (insertion order).
    fn flush(&mut self) -> Result<Batch> {
        let mut cols: Vec<Column> = Vec::new();
        // Group key columns.
        let mut int_i = 0;
        let mut str_i = 0;
        for &dt in &self.group_types {
            match dt {
                DataType::Str => {
                    let i = str_i;
                    str_i += 1;
                    cols.push(Column::from_strings(
                        self.order.iter().map(|k| k.strs[i].clone()).collect(),
                    ));
                }
                DataType::Date => {
                    let i = int_i;
                    int_i += 1;
                    cols.push(Column::from_dates(self.order.iter().map(|k| k.ints[i]).collect()));
                }
                DataType::Float => {
                    let i = int_i;
                    int_i += 1;
                    cols.push(Column::from_f64(
                        self.order.iter().map(|k| f64::from_bits(k.ints[i] as u64)).collect(),
                    ));
                }
                _ => {
                    let i = int_i;
                    int_i += 1;
                    cols.push(Column::from_i64(self.order.iter().map(|k| k.ints[i]).collect()));
                }
            }
        }
        // Aggregate columns.
        for (a, &func) in self.agg_funcs.iter().enumerate() {
            let dt = agg_output_type(func, self.agg_types[a]);
            let mut col = Column::empty(dt);
            for k in &self.order {
                let d = self.groups[k][a].finish();
                // Coerce to the declared output type.
                let d = match (dt, d) {
                    (DataType::Float, Datum::Int(v)) => Datum::Float(v as f64),
                    (DataType::Int, Datum::Float(v)) => Datum::Int(v as i64),
                    (DataType::Date, Datum::Int(v)) => Datum::Date(v),
                    (_, d) => d,
                };
                col.push(d)?;
            }
            cols.push(col);
        }
        self.groups.clear();
        self.order.clear();
        self.first_seen.clear();
        Ok(Batch::new(cols))
    }

    /// True when no groups have been accumulated.
    #[allow(dead_code)]
    fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Fold another core (same grouping and aggregates) into this one.
    /// Groups unseen here are appended in `other`'s order, so folding
    /// per-morsel cores in morsel order reproduces the serial first-seen
    /// group order exactly.
    fn merge_from(&mut self, other: AggCore) {
        debug_assert_eq!(self.agg_funcs, other.agg_funcs);
        let mut other_groups = other.groups;
        for (i, key) in other.order.into_iter().enumerate() {
            let states = other_groups.remove(&key).expect("ordered key present");
            match self.groups.get_mut(&key) {
                Some(mine) => {
                    for (m, o) in mine.iter_mut().zip(&states) {
                        m.merge(o);
                    }
                }
                None => {
                    self.order.push(key.clone());
                    // Partials each count rows from 0, so merged ranks are
                    // only ordinal per-partial; the partial-merge path
                    // orders by fold position, never by these ranks.
                    self.first_seen.push(other.first_seen[i]);
                    self.groups.insert(key, states);
                }
            }
        }
    }

    /// The one-row batch a *global* aggregation (no group-by) yields over
    /// empty input: every aggregate's zero state (COUNT() = 0, SUM() = 0).
    fn zero_state_batch(&self) -> Batch {
        let cols: Vec<Column> = self
            .agg_funcs
            .iter()
            .zip(&self.agg_types)
            .map(|(&f, &dt)| {
                let out_dt = agg_output_type(f, dt);
                let mut c = Column::empty(out_dt);
                let d = AccState::new(f, dt).finish();
                let d = match (out_dt, d) {
                    (DataType::Float, Datum::Int(v)) => Datum::Float(v as f64),
                    (DataType::Date, Datum::Int(v)) => Datum::Date(v),
                    (DataType::Str, _) => Datum::Str(String::new()),
                    (_, d) => d,
                };
                c.push(d).expect("zero state matches output type");
                c
            })
            .collect();
        Batch::new(cols)
    }
}

/// Partial aggregation state for one morsel — the partition side of the
/// morsel-parallel aggregation contract (the merge side lives in
/// [`crate::parallel::merge`]). Each worker consumes its morsel's batches
/// into a `PartialAgg`; folding the partials *in morsel order* and
/// finishing yields exactly what a serial [`HashAggregate`] over the
/// concatenated stream would produce.
pub struct PartialAgg {
    core: AggCore,
    schema: OpSchema,
}

impl PartialAgg {
    /// State for aggregating `aggs` grouped by `group_by` over inputs with
    /// `input_schema`.
    pub fn new(
        input_schema: &[ColMeta],
        group_by: &[&str],
        aggs: &[AggSpec],
    ) -> Result<PartialAgg> {
        let (core, schema) = AggCore::new(input_schema, group_by, aggs)?;
        Ok(PartialAgg { core, schema })
    }

    /// Output schema (group keys then aggregates).
    pub fn schema(&self) -> &OpSchema {
        &self.schema
    }

    /// Accumulate one batch.
    pub fn consume(&mut self, batch: &Batch) -> Result<()> {
        self.core.consume(batch)
    }

    /// Accumulate one batch whose rows carry explicit global stream
    /// positions (`ids[row] + base`) — the radix-partitioned consume: a
    /// partition sees only its slice of the input, but remembers where
    /// each group first appeared in the *whole* stream.
    pub fn consume_indexed(&mut self, batch: &Batch, ids: &[u64], base: u64) -> Result<()> {
        self.core.consume_indexed(batch, ids, base)
    }

    /// Estimated bytes of accumulated state (memory accounting).
    pub fn estimated_bytes(&self) -> u64 {
        self.core.estimated_bytes()
    }

    /// Fold `other` into this partial, preserving first-seen group order.
    pub fn merge(&mut self, other: PartialAgg) {
        self.core.merge_from(other.core);
    }

    /// Finish into the final output batch, including the one-row zero
    /// state a global aggregation yields over empty input.
    pub fn finish(mut self) -> Result<Batch> {
        let out = self.core.flush()?;
        if out.rows() == 0 && self.core.group_cols.is_empty() {
            return Ok(self.core.zero_state_batch());
        }
        Ok(out)
    }

    /// Finish into `(output batch, first-seen rank per output row)` — the
    /// radix-partition finish. The ranks are the global stream positions
    /// recorded by [`consume_indexed`](Self::consume_indexed); sorting the
    /// concatenated partition outputs by them reproduces the serial
    /// first-seen group order byte-for-byte
    /// ([`crate::parallel::merge::concat_radix_partitions`]).
    pub fn finish_ordered(mut self) -> Result<(Batch, Vec<u64>)> {
        let ranks = std::mem::take(&mut self.core.first_seen);
        let out = self.core.flush()?;
        debug_assert_eq!(ranks.len(), out.rows());
        Ok((out, ranks))
    }
}

/// Whole-input hash aggregation.
pub struct HashAggregate {
    input: BoxedOp,
    core: AggCore,
    schema: OpSchema,
    tracker: Arc<MemoryTracker>,
    done: bool,
}

impl HashAggregate {
    pub fn new(
        input: BoxedOp,
        group_by: &[&str],
        aggs: Vec<AggSpec>,
        tracker: Arc<MemoryTracker>,
    ) -> Result<HashAggregate> {
        let (core, schema) = AggCore::new(input.schema(), group_by, &aggs)?;
        Ok(HashAggregate { input, core, schema, tracker, done: false })
    }
}

impl Operator for HashAggregate {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        let mut mem: Option<MemoryGuard> = None;
        while let Some(batch) = self.input.next()? {
            self.core.consume(&batch)?;
            let bytes = self.core.estimated_bytes();
            match &mut mem {
                Some(m) => m.resize(bytes),
                None => mem = Some(self.tracker.register(bytes)),
            }
        }
        self.done = true;
        let out = self.core.flush()?;
        if out.rows() == 0 && self.core.group_cols.is_empty() {
            // Global aggregation over empty input still yields one row of
            // zero states (COUNT() = 0, SUM() = 0, ...).
            return Ok(Some(self.core.zero_state_batch()));
        }
        Ok(Some(out))
    }
}

/// Streaming aggregation over key-sorted input (constant memory).
pub struct StreamingAggregate {
    input: BoxedOp,
    core: AggCore,
    schema: OpSchema,
    /// Current run's key.
    current: Option<GroupKey>,
    pending_out: Option<Batch>,
    done: bool,
}

impl StreamingAggregate {
    pub fn new(
        input: BoxedOp,
        group_by: &[&str],
        aggs: Vec<AggSpec>,
    ) -> Result<StreamingAggregate> {
        let (core, schema) = AggCore::new(input.schema(), group_by, &aggs)?;
        Ok(StreamingAggregate {
            input,
            core,
            schema,
            current: None,
            pending_out: None,
            done: false,
        })
    }

    fn key_of(&self, batch: &Batch, row: usize) -> Result<GroupKey> {
        let mut ints = Vec::new();
        let mut strs = Vec::new();
        for &c in &self.core.group_cols {
            match &batch.columns[c] {
                Column::I64 { values, .. } => ints.push(values[row]),
                Column::Str(values) => strs.push(values[row].clone()),
                Column::F64(values) => ints.push(values[row].to_bits() as i64),
            }
        }
        Ok(GroupKey { ints, strs })
    }
}

impl Operator for StreamingAggregate {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if let Some(out) = self.pending_out.take() {
            return Ok(Some(out));
        }
        if self.done {
            return Ok(None);
        }
        while let Some(batch) = self.input.next()? {
            // Split the batch at key changes and emit completed runs.
            let mut start = 0;
            let mut flushed: Option<Batch> = None;
            for row in 0..batch.rows() {
                let key = self.key_of(&batch, row)?;
                match &self.current {
                    Some(cur) if *cur == key => {}
                    Some(_) => {
                        // Key change: consume the run so far, flush.
                        if row > start {
                            let part = slice(&batch, start, row);
                            self.core.consume(&part)?;
                        }
                        start = row;
                        let out = self.core.flush()?;
                        self.current = Some(key);
                        match &mut flushed {
                            Some(f) => {
                                for (d, s) in f.columns.iter_mut().zip(&out.columns) {
                                    d.append(s)?;
                                }
                            }
                            None => flushed = Some(out),
                        }
                    }
                    None => self.current = Some(key),
                }
            }
            let part = slice(&batch, start, batch.rows());
            self.core.consume(&part)?;
            if let Some(f) = flushed {
                if f.rows() > 0 {
                    return Ok(Some(f));
                }
            }
        }
        self.done = true;
        let out = self.core.flush()?;
        if out.rows() > 0 {
            return Ok(Some(out));
        }
        Ok(None)
    }
}

fn slice(b: &Batch, start: usize, end: usize) -> Batch {
    Batch::new(b.columns.iter().map(|c| c.slice(start, end)).collect())
}

/// Sandwich aggregation: like hash aggregation, but the table flushes at
/// every boundary of the `partition_cols` (the dimension group-key columns
/// the group-by keys determine). The partition columns are *not* part of
/// the output.
pub struct SandwichAggregate {
    input: BoxedOp,
    core: AggCore,
    schema: OpSchema,
    partition_cols: Vec<usize>,
    current_partition: Option<Vec<i64>>,
    tracker: Arc<MemoryTracker>,
    mem: Option<MemoryGuard>,
    /// Largest per-partition table size seen (diagnostics).
    pub max_partition_groups: usize,
    done: bool,
}

impl SandwichAggregate {
    pub fn new(
        input: BoxedOp,
        group_by: &[&str],
        aggs: Vec<AggSpec>,
        partition_cols: Vec<usize>,
        tracker: Arc<MemoryTracker>,
    ) -> Result<SandwichAggregate> {
        if partition_cols.is_empty() {
            return Err(ExecError::Plan("sandwich aggregation needs partition columns".into()));
        }
        let (core, schema) = AggCore::new(input.schema(), group_by, &aggs)?;
        Ok(SandwichAggregate {
            input,
            core,
            schema,
            partition_cols,
            current_partition: None,
            tracker,
            mem: None,
            max_partition_groups: 0,
            done: false,
        })
    }

    fn partition_of(&self, batch: &Batch, row: usize) -> Result<Vec<i64>> {
        self.partition_cols.iter().map(|&c| Ok(batch.columns[c].as_i64()?[row])).collect()
    }
}

impl Operator for SandwichAggregate {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        while let Some(batch) = self.input.next()? {
            let mut start = 0;
            let mut flushed: Option<Batch> = None;
            for row in 0..batch.rows() {
                let p = self.partition_of(&batch, row)?;
                match &self.current_partition {
                    Some(cur) if *cur == p => {}
                    Some(_) => {
                        if row > start {
                            self.core.consume(&slice(&batch, start, row))?;
                        }
                        start = row;
                        self.max_partition_groups =
                            self.max_partition_groups.max(self.core.groups.len());
                        let out = self.core.flush()?;
                        self.current_partition = Some(p);
                        match &mut flushed {
                            Some(f) => {
                                for (d, s) in f.columns.iter_mut().zip(&out.columns) {
                                    d.append(s)?;
                                }
                            }
                            None => flushed = Some(out),
                        }
                    }
                    None => self.current_partition = Some(p),
                }
            }
            self.core.consume(&slice(&batch, start, batch.rows()))?;
            let bytes = self.core.estimated_bytes();
            match &mut self.mem {
                Some(m) => m.resize(bytes),
                None => self.mem = Some(self.tracker.register(bytes)),
            }
            if let Some(f) = flushed {
                if f.rows() > 0 {
                    return Ok(Some(f));
                }
            }
        }
        self.done = true;
        self.max_partition_groups = self.max_partition_groups.max(self.core.groups.len());
        let out = self.core.flush()?;
        self.mem = None;
        if out.rows() > 0 {
            return Ok(Some(out));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::collect;

    struct Source {
        schema: OpSchema,
        batches: std::vec::IntoIter<Batch>,
    }

    impl Source {
        fn new(cols: Vec<(&str, Column)>, chunk: usize) -> Source {
            let schema: OpSchema =
                cols.iter().map(|(n, c)| ColMeta::new(*n, c.data_type())).collect();
            let n = cols[0].1.len();
            let mut batches = Vec::new();
            let mut start = 0;
            while start < n {
                let end = (start + chunk).min(n);
                batches.push(Batch::new(cols.iter().map(|(_, c)| c.slice(start, end)).collect()));
                start = end;
            }
            Source { schema, batches: batches.into_iter() }
        }
    }

    impl Operator for Source {
        fn schema(&self) -> &OpSchema {
            &self.schema
        }
        fn next(&mut self) -> Result<Option<Batch>> {
            Ok(self.batches.next())
        }
    }

    fn lineitems() -> Vec<(&'static str, Column)> {
        vec![
            ("flag", Column::from_strings(vec!["A".into(), "B".into(), "A".into(), "A".into()])),
            ("qty", Column::from_i64(vec![10, 20, 30, 40])),
            ("price", Column::from_f64(vec![1.0, 2.0, 3.0, 4.0])),
        ]
    }

    #[test]
    fn hash_aggregate_groups_and_sums() {
        let t = MemoryTracker::new();
        let agg = HashAggregate::new(
            Box::new(Source::new(lineitems(), 2)),
            &["flag"],
            vec![
                AggSpec::new(AggFunc::Sum, Expr::col("qty"), "sum_qty"),
                AggSpec::new(AggFunc::Avg, Expr::col("price"), "avg_price"),
                AggSpec::new(AggFunc::Count, Expr::lit(1), "cnt"),
            ],
            t.clone(),
        )
        .unwrap();
        let out = collect(Box::new(agg)).unwrap();
        assert_eq!(out.rows(), 2);
        let flags = out.columns[0].as_str().unwrap();
        let a = flags.iter().position(|f| f == "A").unwrap();
        let b = flags.iter().position(|f| f == "B").unwrap();
        assert_eq!(out.columns[1].as_i64().unwrap()[a], 80);
        assert_eq!(out.columns[1].as_i64().unwrap()[b], 20);
        assert!((out.columns[2].as_f64().unwrap()[a] - (1.0 + 3.0 + 4.0) / 3.0).abs() < 1e-9);
        assert_eq!(out.columns[3].as_i64().unwrap()[b], 1);
        assert!(t.peak() > 0);
    }

    #[test]
    fn global_aggregate_without_groups() {
        let t = MemoryTracker::new();
        let agg = HashAggregate::new(
            Box::new(Source::new(lineitems(), 4)),
            &[],
            vec![AggSpec::new(AggFunc::Sum, Expr::col("price"), "rev")],
            t,
        )
        .unwrap();
        let out = collect(Box::new(agg)).unwrap();
        assert_eq!(out.rows(), 1);
        assert!((out.columns[0].as_f64().unwrap()[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn min_max_count_distinct() {
        let t = MemoryTracker::new();
        let agg = HashAggregate::new(
            Box::new(Source::new(
                vec![
                    ("g", Column::from_i64(vec![1, 1, 1, 2])),
                    ("v", Column::from_i64(vec![5, 5, 9, 7])),
                ],
                4,
            )),
            &["g"],
            vec![
                AggSpec::new(AggFunc::Min, Expr::col("v"), "mn"),
                AggSpec::new(AggFunc::Max, Expr::col("v"), "mx"),
                AggSpec::new(AggFunc::CountDistinct, Expr::col("v"), "nd"),
            ],
            t,
        )
        .unwrap();
        let out = collect(Box::new(agg)).unwrap();
        let g = out.columns[0].as_i64().unwrap();
        let i = g.iter().position(|&x| x == 1).unwrap();
        assert_eq!(out.columns[1].as_i64().unwrap()[i], 5);
        assert_eq!(out.columns[2].as_i64().unwrap()[i], 9);
        assert_eq!(out.columns[3].as_i64().unwrap()[i], 2);
    }

    #[test]
    fn streaming_aggregate_on_sorted_input() {
        let src = Source::new(
            vec![
                ("k", Column::from_i64(vec![1, 1, 2, 2, 2, 3])),
                ("v", Column::from_i64(vec![1, 2, 3, 4, 5, 6])),
            ],
            2, // runs span batches
        );
        let agg = StreamingAggregate::new(
            Box::new(src),
            &["k"],
            vec![AggSpec::new(AggFunc::Sum, Expr::col("v"), "s")],
        )
        .unwrap();
        let out = collect(Box::new(agg)).unwrap();
        assert_eq!(out.columns[0].as_i64().unwrap(), &[1, 2, 3]);
        assert_eq!(out.columns[1].as_i64().unwrap(), &[3, 12, 6]);
    }

    #[test]
    fn sandwich_aggregate_flushes_per_partition() {
        // Partition column __gk determines the group key's high part.
        let src = Source::new(
            vec![
                ("k", Column::from_i64(vec![10, 11, 10, 20, 21, 20])),
                ("v", Column::from_i64(vec![1, 2, 3, 4, 5, 6])),
                ("__gk", Column::from_i64(vec![0, 0, 0, 1, 1, 1])),
            ],
            2,
        );
        let t = MemoryTracker::new();
        let agg = SandwichAggregate::new(
            Box::new(src),
            &["k"],
            vec![AggSpec::new(AggFunc::Sum, Expr::col("v"), "s")],
            vec![2],
            t.clone(),
        )
        .unwrap();
        let out = collect(Box::new(agg)).unwrap();
        assert_eq!(out.rows(), 4);
        // Keys 10,11 flushed first (partition 0), then 20,21.
        assert_eq!(out.columns[0].as_i64().unwrap(), &[10, 11, 20, 21]);
        assert_eq!(out.columns[1].as_i64().unwrap(), &[4, 2, 10, 5]);
    }

    #[test]
    fn group_key_hash_matches_shared_codec() {
        // The table's GroupKey hash (via FxHasher) and the radix routing
        // hash (hash_group_row) must be the *same* codec, whatever mix
        // and interleaving of int/float/string group columns.
        use crate::hash::hash_group_row;
        use std::hash::BuildHasher;
        let a = Column::from_i64(vec![5, -3, i64::MAX]);
        let s = Column::from_strings(vec!["x".into(), String::new(), "abc".into()]);
        let f = Column::from_f64(vec![1.5, -0.0, f64::NAN]);
        let d = Column::from_dates(vec![9131, 0, -1]);
        let cols: Vec<&Column> = vec![&a, &s, &f, &d];
        for row in 0..3 {
            // The key exactly as consume_rows builds it: integer-backed
            // values (and float bits) in column order, strings in column
            // order.
            let key = GroupKey {
                ints: vec![
                    a.as_i64().unwrap()[row],
                    f.as_f64().unwrap()[row].to_bits() as i64,
                    d.as_i64().unwrap()[row],
                ],
                strs: vec![s.as_str().unwrap()[row].clone()],
            };
            assert_eq!(
                FxBuildHasher::default().hash_one(&key),
                hash_group_row(&cols, row),
                "row {row}"
            );
        }
    }

    #[test]
    fn sandwich_agg_uses_less_memory_than_hash() {
        // 1000 distinct keys spread over 100 partitions.
        let n = 1000;
        let k: Vec<i64> = (0..n).collect();
        let gk: Vec<i64> = (0..n).map(|i| i / 10).collect();
        let v: Vec<i64> = vec![1; n as usize];
        let mk = |t: Arc<MemoryTracker>, sandwich: bool| -> u64 {
            let src = Source::new(
                vec![
                    ("k", Column::from_i64(k.clone())),
                    ("v", Column::from_i64(v.clone())),
                    ("__gk", Column::from_i64(gk.clone())),
                ],
                128,
            );
            let aggs = vec![AggSpec::new(AggFunc::Sum, Expr::col("v"), "s")];
            let op: BoxedOp = if sandwich {
                Box::new(
                    SandwichAggregate::new(Box::new(src), &["k"], aggs, vec![2], t.clone())
                        .unwrap(),
                )
            } else {
                Box::new(HashAggregate::new(Box::new(src), &["k"], aggs, t.clone()).unwrap())
            };
            let out = collect(op).unwrap();
            assert_eq!(out.rows(), 1000);
            t.peak()
        };
        let sandwich_peak = mk(MemoryTracker::new(), true);
        let hash_peak = mk(MemoryTracker::new(), false);
        assert!(sandwich_peak * 10 < hash_peak, "sandwich {sandwich_peak} vs hash {hash_peak}");
    }
}
