//! Sort, top-N and limit.

use std::sync::Arc;

use bdcc_storage::{Column, Datum};

use crate::batch::{Batch, OpSchema};
use crate::error::{ExecError, Result};
use crate::memory::MemoryTracker;
use crate::ops::{BoxedOp, Operator};

/// A sort key: column name and direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortKey {
    pub column: String,
    pub ascending: bool,
}

impl SortKey {
    pub fn asc(column: &str) -> SortKey {
        SortKey { column: column.to_string(), ascending: true }
    }
    pub fn desc(column: &str) -> SortKey {
        SortKey { column: column.to_string(), ascending: false }
    }
}

/// Full materializing sort (with optional limit → top-N).
pub struct Sort {
    input: Option<BoxedOp>,
    keys: Vec<(usize, bool)>,
    limit: Option<usize>,
    schema: OpSchema,
    tracker: Arc<MemoryTracker>,
    output: Option<Batch>,
    done: bool,
}

impl Sort {
    pub fn new(
        input: BoxedOp,
        keys: &[SortKey],
        limit: Option<usize>,
        tracker: Arc<MemoryTracker>,
    ) -> Result<Sort> {
        let schema = input.schema().clone();
        let mut resolved = Vec::with_capacity(keys.len());
        for k in keys {
            let idx = crate::batch::schema_index(&schema, &k.column)
                .ok_or_else(|| ExecError::UnknownColumn(k.column.clone()))?;
            resolved.push((idx, k.ascending));
        }
        Ok(Sort {
            input: Some(input),
            keys: resolved,
            limit,
            schema,
            tracker,
            output: None,
            done: false,
        })
    }
}

impl Operator for Sort {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        if self.output.is_none() {
            let mut input = self.input.take().expect("sort input consumed once");
            let mut cols: Vec<Column> =
                self.schema.iter().map(|m| Column::empty(m.data_type)).collect();
            while let Some(b) = input.next()? {
                for (d, s) in cols.iter_mut().zip(&b.columns) {
                    d.append(s)?;
                }
            }
            let all = Batch::new(cols);
            let _mem = self.tracker.register(all.estimated_bytes());
            let n = all.rows();
            let mut perm: Vec<usize> = (0..n).collect();
            perm.sort_by(|&a, &b| cmp_rows(&self.keys, &all, a, &all, b));
            if let Some(l) = self.limit {
                perm.truncate(l);
            }
            self.output = Some(all.gather(&perm));
        }
        self.done = true;
        Ok(self.output.take())
    }
}

/// Compare row `a` of batch `ba` with row `b` of batch `bb` under the
/// resolved sort keys `(column index, ascending)` — **the** sort order of
/// this engine. The serial sort, the parallel per-run sorts and the
/// parallel k-way merge all call this one function, which is what keeps
/// serial and parallel sort orders byte-identical by construction.
pub(crate) fn cmp_rows(
    keys: &[(usize, bool)],
    ba: &Batch,
    a: usize,
    bb: &Batch,
    b: usize,
) -> std::cmp::Ordering {
    for &(c, asc) in keys {
        let ord = cmp_between(&ba.columns[c], a, &bb.columns[c], b);
        let ord = if asc { ord } else { ord.reverse() };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Compare row `a` of `ca` with row `b` of `cb` (same type) without
/// allocating datums.
fn cmp_between(ca: &Column, a: usize, cb: &Column, b: usize) -> std::cmp::Ordering {
    match (ca, cb) {
        (Column::I64 { values: va, .. }, Column::I64 { values: vb, .. }) => va[a].cmp(&vb[b]),
        (Column::F64(va), Column::F64(vb)) => va[a].total_cmp(&vb[b]),
        (Column::Str(va), Column::Str(vb)) => va[a].cmp(&vb[b]),
        _ => unreachable!("sort keys compare columns of one type"),
    }
}

/// Row-count limit without ordering.
pub struct Limit {
    input: BoxedOp,
    remaining: usize,
    schema: OpSchema,
}

impl Limit {
    pub fn new(input: BoxedOp, n: usize) -> Limit {
        let schema = input.schema().clone();
        Limit { input, remaining: n, schema }
    }
}

impl Operator for Limit {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next()? {
            None => Ok(None),
            Some(b) => {
                if b.rows() <= self.remaining {
                    self.remaining -= b.rows();
                    Ok(Some(b))
                } else {
                    let take = self.remaining;
                    self.remaining = 0;
                    Ok(Some(Batch::new(b.columns.iter().map(|c| c.slice(0, take)).collect())))
                }
            }
        }
    }
}

/// Render a batch as sorted result rows (testing/diagnostics helper):
/// each row a `Vec<Datum>`.
pub fn batch_to_rows(b: &Batch) -> Vec<Vec<Datum>> {
    (0..b.rows()).map(|r| b.row(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::ColMeta;
    use crate::ops::collect;
    use bdcc_storage::DataType;

    struct Source {
        schema: OpSchema,
        batches: std::vec::IntoIter<Batch>,
    }

    impl Source {
        fn ints(vals: Vec<i64>, chunk: usize) -> Source {
            let schema = vec![ColMeta::new("v", DataType::Int)];
            let batches: Vec<Batch> = vals
                .chunks(chunk)
                .map(|c| Batch::new(vec![Column::from_i64(c.to_vec())]))
                .collect();
            Source { schema, batches: batches.into_iter() }
        }
    }

    impl Operator for Source {
        fn schema(&self) -> &OpSchema {
            &self.schema
        }
        fn next(&mut self) -> Result<Option<Batch>> {
            Ok(self.batches.next())
        }
    }

    #[test]
    fn sort_ascending_and_descending() {
        let t = MemoryTracker::new();
        let s = Sort::new(
            Box::new(Source::ints(vec![3, 1, 2], 2)),
            &[SortKey::asc("v")],
            None,
            t.clone(),
        )
        .unwrap();
        let out = collect(Box::new(s)).unwrap();
        assert_eq!(out.columns[0].as_i64().unwrap(), &[1, 2, 3]);

        let s = Sort::new(Box::new(Source::ints(vec![3, 1, 2], 2)), &[SortKey::desc("v")], None, t)
            .unwrap();
        let out = collect(Box::new(s)).unwrap();
        assert_eq!(out.columns[0].as_i64().unwrap(), &[3, 2, 1]);
    }

    #[test]
    fn top_n() {
        let t = MemoryTracker::new();
        let s = Sort::new(
            Box::new(Source::ints(vec![5, 9, 1, 7, 3], 2)),
            &[SortKey::desc("v")],
            Some(2),
            t,
        )
        .unwrap();
        let out = collect(Box::new(s)).unwrap();
        assert_eq!(out.columns[0].as_i64().unwrap(), &[9, 7]);
    }

    #[test]
    fn limit_truncates_mid_batch() {
        let l = Limit::new(Box::new(Source::ints((0..10).collect(), 4)), 6);
        let out = collect(Box::new(l)).unwrap();
        assert_eq!(out.rows(), 6);
    }

    #[test]
    fn multi_key_sort() {
        let schema = vec![ColMeta::new("a", DataType::Int), ColMeta::new("b", DataType::Str)];
        let batch = Batch::new(vec![
            Column::from_i64(vec![1, 2, 1]),
            Column::from_strings(vec!["x".into(), "y".into(), "a".into()]),
        ]);
        let src = Source { schema, batches: vec![batch].into_iter() };
        let t = MemoryTracker::new();
        let s =
            Sort::new(Box::new(src), &[SortKey::asc("a"), SortKey::desc("b")], None, t).unwrap();
        let out = collect(Box::new(s)).unwrap();
        assert_eq!(out.columns[0].as_i64().unwrap(), &[1, 1, 2]);
        assert_eq!(
            out.columns[1].as_str().unwrap(),
            &["x".to_string(), "a".to_string(), "y".to_string()]
        );
    }
}
