//! Sandwich hash join (ref [3]): group-at-a-time join over co-clustered
//! inputs.
//!
//! Both inputs arrive *pre-grouped* on the shared dimension bits (the
//! group-key columns appended by the BDCC scatter-scan, in the same
//! negotiated major order on both sides). The join then merges group
//! streams: groups with equal keys are hash-joined against each other
//! through the flat allocation-free [`JoinIndex`]; the table only ever
//! holds **one group** of the build side, so memory is bounded by the
//! largest co-cluster instead of the whole input — the effect Figure 3
//! measures. The group merge *is* the partition-wise short-circuit of the
//! parallel join design: both sides are already co-partitioned on the
//! dimension bits, so each group joins only against its peer group, and
//! under a [`ParallelConfig`] it decides *per group* which work fans out:
//! skipped groups cost nothing, small groups stay serial, and only
//! oversized groups split their build into hash partitions and their
//! probe into row-range morsels (byte-identical to the serial pass).

use std::sync::Arc;

use bdcc_obs::OpMetrics;
use bdcc_storage::Column;

use crate::batch::{Batch, OpSchema};
use crate::error::{ExecError, Result};
use crate::expr::Expr;
use crate::govern::Governor;
use crate::hash::JoinIndex;
use crate::kernel::{PairFilter, SelVec};
use crate::memory::{MemoryGuard, MemoryTracker};
use crate::ops::{BoxedOp, Operator};
use crate::parallel::ParallelConfig;

/// Streams `(group key tuple, group rows)` from an operator whose output is
/// grouped by the given key columns (consecutive equal-key rows form a
/// group; groups may span batches, batches may contain several groups).
pub struct GroupReader {
    input: BoxedOp,
    key_cols: Vec<usize>,
    /// Held-back batch remainder that starts the next group.
    pending: Option<Batch>,
}

impl GroupReader {
    pub fn new(input: BoxedOp, key_cols: Vec<usize>) -> GroupReader {
        GroupReader { input, key_cols, pending: None }
    }

    pub fn schema(&self) -> &OpSchema {
        self.input.schema()
    }

    fn key_of(&self, batch: &Batch, row: usize) -> Result<Vec<i64>> {
        self.key_cols.iter().map(|&c| Ok(batch.columns[c].as_i64()?[row])).collect()
    }

    /// Next group: its key and all its rows.
    pub fn next_group(&mut self) -> Result<Option<(Vec<i64>, Batch)>> {
        // Seed with pending or a fresh batch.
        let mut acc = match self.pending.take() {
            Some(b) => b,
            None => match self.input.next()? {
                Some(b) => b,
                None => return Ok(None),
            },
        };
        let key = self.key_of(&acc, 0)?;
        // If the seed batch contains a key change, split it.
        if let Some(split) = self.find_split(&acc, &key)? {
            let head = slice_batch(&acc, 0, split);
            self.pending = Some(slice_batch(&acc, split, acc.rows()));
            return Ok(Some((key, head)));
        }
        // Otherwise keep accumulating batches until the key changes.
        loop {
            match self.input.next()? {
                None => return Ok(Some((key, acc))),
                Some(b) => {
                    if self.key_of(&b, 0)? != key {
                        self.pending = Some(b);
                        return Ok(Some((key, acc)));
                    }
                    match self.find_split(&b, &key)? {
                        Some(split) => {
                            append_batch(&mut acc, &slice_batch(&b, 0, split))?;
                            self.pending = Some(slice_batch(&b, split, b.rows()));
                            return Ok(Some((key, acc)));
                        }
                        None => append_batch(&mut acc, &b)?,
                    }
                }
            }
        }
    }

    /// First row index whose key differs from `key`, if any.
    fn find_split(&self, batch: &Batch, key: &[i64]) -> Result<Option<usize>> {
        let cols: Vec<&[i64]> = self
            .key_cols
            .iter()
            .map(|&c| batch.columns[c].as_i64())
            .collect::<std::result::Result<_, _>>()?;
        'rows: for row in 0..batch.rows() {
            for (c, col) in cols.iter().enumerate() {
                if col[row] != key[c] {
                    return Ok(Some(row));
                }
            }
            continue 'rows;
        }
        Ok(None)
    }
}

fn slice_batch(b: &Batch, start: usize, end: usize) -> Batch {
    Batch::new(b.columns.iter().map(|c| c.slice(start, end)).collect())
}

fn append_batch(dst: &mut Batch, src: &Batch) -> Result<()> {
    for (d, s) in dst.columns.iter_mut().zip(&src.columns) {
        d.append(s)?;
    }
    Ok(())
}

/// Inner sandwich hash join.
///
/// Output schema: left columns ++ right columns *minus the right group-key
/// columns* (they duplicate the left's). Output remains grouped by the left
/// group-key columns, enabling further sandwiches on key prefixes.
pub struct SandwichHashJoin {
    left: GroupReader,
    right: GroupReader,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    residual: Option<Expr>,
    /// Kernel-compiled residual (see [`crate::kernel`]): shrinks the pair
    /// match lists before the output gathers, touching only referenced
    /// columns. `None` when the gate is off or there is no residual.
    pair_filter: Option<PairFilter>,
    schema: OpSchema,
    /// Right column indices kept in the output (group keys dropped).
    right_kept: Vec<usize>,
    tracker: Arc<MemoryTracker>,
    /// When set (threads > 1), oversized groups build their index
    /// hash-partitioned and probe in row-range morsels.
    parallel: Option<ParallelConfig>,
    mem: Option<MemoryGuard>,
    /// Largest per-group build size seen (diagnostics).
    pub max_group_build_rows: usize,
    lgroup: Option<(Vec<i64>, Batch)>,
    rgroup: Option<(Vec<i64>, Batch)>,
    started: bool,
    done: bool,
    /// Profiling hook (planner-installed): group-merge outcomes — joined
    /// groups vs one-sided short-circuits — flushed as annotations when
    /// the merge ends (or the operator drops early under a `Limit`).
    metrics: Option<Arc<OpMetrics>>,
    groups_joined: u64,
    groups_left_only: u64,
    groups_right_only: u64,
    /// Per-query governance checkpoint, polled once per merged group
    /// (inert by default).
    governor: Governor,
}

impl SandwichHashJoin {
    /// `on`: equi-join columns (in addition to group alignment).
    /// `left_group_cols` / `right_group_cols`: the aligned group-key column
    /// indices, same length, same negotiated order.
    pub fn new(
        left: BoxedOp,
        right: BoxedOp,
        on: &[(&str, &str)],
        left_group_cols: Vec<usize>,
        right_group_cols: Vec<usize>,
        residual: Option<Expr>,
        tracker: Arc<MemoryTracker>,
    ) -> Result<SandwichHashJoin> {
        if left_group_cols.len() != right_group_cols.len() || left_group_cols.is_empty() {
            return Err(ExecError::Plan("sandwich join needs aligned group keys".into()));
        }
        let lschema = left.schema().clone();
        let rschema = right.schema().clone();
        let mut left_keys = Vec::with_capacity(on.len());
        let mut right_keys = Vec::with_capacity(on.len());
        for (l, r) in on {
            left_keys.push(
                crate::batch::schema_index(&lschema, l)
                    .ok_or_else(|| ExecError::UnknownColumn((*l).to_string()))?,
            );
            right_keys.push(
                crate::batch::schema_index(&rschema, r)
                    .ok_or_else(|| ExecError::UnknownColumn((*r).to_string()))?,
            );
        }
        let right_kept: Vec<usize> =
            (0..rschema.len()).filter(|i| !right_group_cols.contains(i)).collect();
        let mut schema = lschema.clone();
        for &i in &right_kept {
            schema.push(rschema[i].clone());
        }
        // Residual sees left ++ kept right columns.
        let residual = match residual {
            Some(e) => Some(e.bind(&schema)?),
            None => None,
        };
        let pair_filter = match (&residual, crate::kernel::kernel_enabled()) {
            (Some(e), true) => Some(PairFilter::new(e, &schema)),
            _ => None,
        };
        Ok(SandwichHashJoin {
            left: GroupReader::new(left, left_group_cols),
            right: GroupReader::new(right, right_group_cols),
            left_keys,
            right_keys,
            residual,
            pair_filter,
            schema,
            right_kept,
            tracker,
            parallel: None,
            mem: None,
            max_group_build_rows: 0,
            lgroup: None,
            rgroup: None,
            started: false,
            done: false,
            metrics: None,
            groups_joined: 0,
            groups_left_only: 0,
            groups_right_only: 0,
            governor: Governor::none(),
        })
    }

    /// Enable per-group parallel build and probe for oversized groups
    /// (planner-installed under a [`ParallelConfig`]; results stay
    /// byte-identical).
    pub fn with_parallel(mut self, cfg: Option<ParallelConfig>) -> SandwichHashJoin {
        self.parallel = cfg;
        self
    }

    /// Force the residual kernel on or off, overriding the `BDCC_KERNEL`
    /// default picked up by [`SandwichHashJoin::new`].
    pub fn with_kernel(mut self, on: bool) -> SandwichHashJoin {
        self.pair_filter = match (&self.residual, on) {
            (Some(e), true) => Some(PairFilter::new(e, &self.schema)),
            _ => None,
        };
        self
    }

    /// Attach the profiling metric block (planner-installed).
    pub fn with_metrics(mut self, metrics: Option<Arc<OpMetrics>>) -> SandwichHashJoin {
        self.metrics = metrics;
        self
    }

    /// Attach the per-query governor (planner-installed); every merged
    /// group becomes a cancellation/deadline/budget checkpoint.
    pub fn with_governor(mut self, governor: Governor) -> SandwichHashJoin {
        self.governor = governor;
        self
    }

    /// Write the group-merge tallies as annotations. Idempotent
    /// (`annotate` replaces), called when the merge exhausts and again
    /// from `Drop` so an early-terminated query (a `Limit` upstream)
    /// still reports the groups it actually processed.
    fn flush_annotations(&self) {
        if let Some(m) = &self.metrics {
            m.annotate("groups_joined", self.groups_joined.to_string());
            m.annotate("groups_left_only", self.groups_left_only.to_string());
            m.annotate("groups_right_only", self.groups_right_only.to_string());
            m.annotate("max_group_build_rows", self.max_group_build_rows.to_string());
            if let Some(pf) = &self.pair_filter {
                pf.annotate(m);
            }
        }
    }
}

impl Drop for SandwichHashJoin {
    fn drop(&mut self) {
        self.flush_annotations();
    }
}

impl Operator for SandwichHashJoin {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        if !self.started {
            self.started = true;
            self.lgroup = self.left.next_group()?;
            self.rgroup = self.right.next_group()?;
        }
        // Merge group streams; the *right* side is the build side.
        loop {
            self.governor.check("sandwich-group")?;
            let cmp = match (&self.lgroup, &self.rgroup) {
                (Some((lk, _)), Some((rk, _))) => lk.cmp(rk),
                _ => {
                    self.done = true;
                    self.mem = None;
                    self.flush_annotations();
                    return Ok(None);
                }
            };
            match cmp {
                std::cmp::Ordering::Less => {
                    self.groups_left_only += 1;
                    self.lgroup = self.left.next_group()?;
                }
                std::cmp::Ordering::Greater => {
                    self.groups_right_only += 1;
                    self.rgroup = self.right.next_group()?;
                }
                std::cmp::Ordering::Equal => {
                    self.groups_joined += 1;
                    let (_, lrows) = self.lgroup.as_ref().expect("checked");
                    let (_, rrows) = self.rgroup.as_ref().expect("checked");
                    // Build on the right group only — the sandwich. Charge
                    // the group payload plus the flat table join_groups is
                    // about to build (same cost model as HashJoin's).
                    let bytes = rrows.estimated_bytes()
                        + crate::hash::estimated_table_bytes(rrows.rows(), self.right_keys.len());
                    match &mut self.mem {
                        Some(m) => m.resize(bytes),
                        None => self.mem = Some(self.tracker.register(bytes)),
                    }
                    self.max_group_build_rows = self.max_group_build_rows.max(rrows.rows());
                    let out = join_groups(
                        lrows,
                        rrows,
                        &self.left_keys,
                        &self.right_keys,
                        &self.right_kept,
                        self.residual.as_ref(),
                        self.pair_filter.as_ref(),
                        self.parallel.as_ref(),
                    )?;
                    self.lgroup = self.left.next_group()?;
                    self.rgroup = self.right.next_group()?;
                    if out.rows() > 0 {
                        return Ok(Some(out));
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn join_groups(
    left: &Batch,
    right: &Batch,
    left_keys: &[usize],
    right_keys: &[usize],
    right_kept: &[usize],
    residual: Option<&Expr>,
    pair_filter: Option<&PairFilter>,
    parallel: Option<&ParallelConfig>,
) -> Result<Batch> {
    let rkey_cols: Vec<&[i64]> = right_keys
        .iter()
        .map(|&k| right.columns[k].as_i64())
        .collect::<std::result::Result<_, _>>()?;
    // One group at a time: most groups are far below a morsel and build
    // serially; `JoinIndex::build` partitions only an oversized group.
    let index = JoinIndex::build(&rkey_cols, parallel)?;
    let lkey_cols: Vec<&[i64]> = left_keys
        .iter()
        .map(|&k| left.columns[k].as_i64())
        .collect::<std::result::Result<_, _>>()?;
    // Same per-group gate on the probe side: only a probe group bigger
    // than a morsel fans out to row-range probe morsels.
    let (mut lidx, mut ridx) = index.probe_pairs_parallel(&lkey_cols, left.rows(), parallel)?;
    if let Some(pf) = pair_filter {
        // Kernel path: the residual runs on the pair selection, gathering
        // only its referenced columns; the match lists shrink before the
        // full output gathers below.
        let left_arity = left.arity();
        let sel = pf.select_pairs(lidx.len(), |c| {
            Ok(if c < left_arity {
                left.columns[c].gather(&lidx)
            } else {
                right.columns[right_kept[c - left_arity]].gather_u32(&ridx)
            })
        })?;
        if let SelVec::Rows(rows) = sel {
            lidx = rows.iter().map(|&i| lidx[i as usize]).collect();
            ridx = rows.iter().map(|&i| ridx[i as usize]).collect();
        }
    }
    let mut cols: Vec<Column> = left.columns.iter().map(|c| c.gather(&lidx)).collect();
    for &i in right_kept {
        cols.push(right.columns[i].gather_u32(&ridx));
    }
    let out = Batch::new(cols);
    match residual {
        Some(f) if pair_filter.is_none() => {
            let keep = f.eval_bool(&out)?;
            Ok(out.filter(&keep))
        }
        _ => Ok(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::ColMeta;
    use crate::ops::collect;
    use bdcc_storage::DataType;

    struct Source {
        schema: OpSchema,
        batches: std::vec::IntoIter<Batch>,
    }

    impl Source {
        /// Columns: key, value, gk — pre-grouped by gk.
        fn grouped(names: (&str, &str, &str), rows: Vec<(i64, i64, i64)>, chunk: usize) -> Source {
            let schema = vec![
                ColMeta::new(names.0, DataType::Int),
                ColMeta::new(names.1, DataType::Int),
                ColMeta::new(names.2, DataType::Int),
            ];
            let batches: Vec<Batch> = rows
                .chunks(chunk)
                .map(|c| {
                    Batch::new(vec![
                        Column::from_i64(c.iter().map(|r| r.0).collect()),
                        Column::from_i64(c.iter().map(|r| r.1).collect()),
                        Column::from_i64(c.iter().map(|r| r.2).collect()),
                    ])
                })
                .collect();
            Source { schema, batches: batches.into_iter() }
        }
    }

    impl Operator for Source {
        fn schema(&self) -> &OpSchema {
            &self.schema
        }
        fn next(&mut self) -> Result<Option<Batch>> {
            Ok(self.batches.next())
        }
    }

    #[test]
    fn group_reader_splits_and_accumulates() {
        let src = Source::grouped(
            ("k", "v", "g"),
            vec![(1, 10, 0), (2, 20, 0), (3, 30, 1), (4, 40, 1), (5, 50, 2)],
            2, // batches of 2 rows: groups span and split batches
        );
        let mut r = GroupReader::new(Box::new(src), vec![2]);
        let (k, b) = r.next_group().unwrap().unwrap();
        assert_eq!(k, vec![0]);
        assert_eq!(b.rows(), 2);
        let (k, b) = r.next_group().unwrap().unwrap();
        assert_eq!(k, vec![1]);
        assert_eq!(b.columns[0].as_i64().unwrap(), &[3, 4]);
        let (k, b) = r.next_group().unwrap().unwrap();
        assert_eq!(k, vec![2]);
        assert_eq!(b.rows(), 1);
        assert!(r.next_group().unwrap().is_none());
    }

    #[test]
    fn sandwich_join_matches_within_groups() {
        // Left: orders (orderkey, custkey, gk=nation bits).
        let left = Source::grouped(
            ("o_key", "o_cust", "__gk0"),
            vec![(100, 1, 0), (101, 2, 0), (102, 3, 1), (103, 4, 2)],
            4,
        );
        // Right: customers (custkey, nationkey, gk).
        let right = Source::grouped(
            ("c_cust", "c_nat", "__gk0r"),
            vec![(1, 7, 0), (2, 8, 0), (3, 9, 1), (5, 5, 2)],
            4,
        );
        let t = MemoryTracker::new();
        let j = SandwichHashJoin::new(
            Box::new(left),
            Box::new(right),
            &[("o_cust", "c_cust")],
            vec![2],
            vec![2],
            None,
            t.clone(),
        )
        .unwrap();
        let out = collect(Box::new(j)).unwrap();
        // Orders 100,101 (group 0) and 102 (group 1) match; 103's customer 4
        // is absent.
        assert_eq!(out.columns[0].as_i64().unwrap(), &[100, 101, 102]);
        // Right gk column dropped: schema = o_key,o_cust,__gk0,c_cust,c_nat.
        assert_eq!(out.arity(), 5);
        // Peak memory = largest group (2 rows), far below total (4 rows).
        assert!(t.peak() > 0);
    }

    #[test]
    fn memory_is_bounded_by_largest_group() {
        // One big left group, many small right groups.
        let rows_r: Vec<(i64, i64, i64)> = (0..100).map(|i| (i, i, i / 10)).collect();
        let rows_l: Vec<(i64, i64, i64)> = (0..100).map(|i| (1000 + i, i, i / 10)).collect();
        let left = Source::grouped(("lk", "lc", "g"), rows_l, 7);
        let right = Source::grouped(("rc", "rv", "g"), rows_r.clone(), 7);
        let t_sandwich = MemoryTracker::new();
        let j = SandwichHashJoin::new(
            Box::new(left),
            Box::new(right),
            &[("lc", "rc")],
            vec![2],
            vec![2],
            None,
            t_sandwich.clone(),
        )
        .unwrap();
        let out = collect(Box::new(j)).unwrap();
        assert_eq!(out.rows(), 100);

        // Compare with a full hash join of the same data.
        let left = Source::grouped(
            ("lk", "lc", "g"),
            (0..100).map(|i| (1000 + i, i, i / 10)).collect(),
            7,
        );
        let right = Source::grouped(("rc", "rv", "g"), rows_r, 7);
        let t_hash = MemoryTracker::new();
        let j = crate::ops::join::HashJoin::new(
            Box::new(left),
            Box::new(right),
            &[("lc", "rc")],
            crate::ops::join::JoinType::Inner,
            None,
            t_hash.clone(),
        )
        .unwrap();
        let out = collect(Box::new(j)).unwrap();
        assert_eq!(out.rows(), 100);
        assert!(
            t_sandwich.peak() * 5 < t_hash.peak(),
            "sandwich peak {} should be far below hash peak {}",
            t_sandwich.peak(),
            t_hash.peak()
        );
    }

    #[test]
    fn skew_between_group_streams() {
        // Left has groups 0,2; right has 1,2 → only group 2 joins.
        let left = Source::grouped(("lk", "lc", "g"), vec![(1, 1, 0), (2, 2, 2)], 4);
        let right = Source::grouped(("rc", "rv", "g"), vec![(1, 9, 1), (2, 9, 2)], 4);
        let t = MemoryTracker::new();
        let j = SandwichHashJoin::new(
            Box::new(left),
            Box::new(right),
            &[("lc", "rc")],
            vec![2],
            vec![2],
            None,
            t,
        )
        .unwrap();
        let out = collect(Box::new(j)).unwrap();
        assert_eq!(out.columns[0].as_i64().unwrap(), &[2]);
    }

    #[test]
    fn residual_kernel_matches_interpreter() {
        // Sargable and non-sargable residuals, kernel on vs. off.
        let rows_l: Vec<(i64, i64, i64)> = (0..120).map(|i| (1000 + i, i % 17, i / 12)).collect();
        let rows_r: Vec<(i64, i64, i64)> = (0..90).map(|i| (i % 17, 2000 + i, i / 9)).collect();
        let residuals: Vec<Expr> = vec![
            Expr::col("rv").ge(Expr::lit(2030)),
            Expr::col("lk").ge(Expr::col("rv").sub(Expr::lit(1020))),
        ];
        for res in &residuals {
            let run = |kernel: bool| {
                let left = Source::grouped(("lk", "lc", "g"), rows_l.clone(), 7);
                let right = Source::grouped(("rc", "rv", "g"), rows_r.clone(), 7);
                collect(Box::new(
                    SandwichHashJoin::new(
                        Box::new(left),
                        Box::new(right),
                        &[("lc", "rc")],
                        vec![2],
                        vec![2],
                        Some(res.clone()),
                        MemoryTracker::new(),
                    )
                    .unwrap()
                    .with_kernel(kernel),
                ))
                .unwrap()
            };
            assert_eq!(run(true), run(false), "{res:?}");
        }
    }

    #[test]
    fn residual_applies_per_pair() {
        let left = Source::grouped(("lk", "lc", "g"), vec![(1, 1, 0), (2, 1, 0)], 4);
        let right = Source::grouped(("rc", "rv", "g"), vec![(1, 9, 0)], 4);
        let t = MemoryTracker::new();
        let j = SandwichHashJoin::new(
            Box::new(left),
            Box::new(right),
            &[("lc", "rc")],
            vec![2],
            vec![2],
            Some(Expr::col("lk").ge(Expr::lit(2))),
            t,
        )
        .unwrap();
        let out = collect(Box::new(j)).unwrap();
        assert_eq!(out.columns[0].as_i64().unwrap(), &[2]);
    }
}
