//! Hash join (inner, left-outer, semi, anti) with optional residual
//! predicate.
//!
//! The build side is the **right** child, fully materialized and indexed
//! by an allocation-free flat [`JoinIndex`] keyed on the integer join
//! columns; its size is registered with the memory tracker — this is the
//! memory the sandwich variant saves (Figure 3). Under a
//! [`ParallelConfig`] the index build is hash-partitioned across workers
//! (see [`crate::parallel::partition`]) and the **probe** fans out too:
//! rounds of left batches split into row-range probe morsels, workers run
//! the probe kernel over the shared immutable index, and per-morsel match
//! lists concatenate in morsel order — both byte-identical to serial.
//! Semi/Anti probes without a residual use a first-hit existence probe
//! and never gather pair columns.
//! Left-outer joins emit unmatched left rows with defaulted right columns
//! plus a `__matched` 0/1 column (the engine has no NULLs;
//! `COUNT(right.col)` compiles to `SUM(__matched)`).

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::{Arc, Mutex};

use bdcc_obs::{OpMetrics, SpanTimer};
use bdcc_storage::{Column, DataType, IoTracker};

use crate::batch::{Batch, ColMeta, OpSchema};
use crate::broker::MemoryBroker;
use crate::error::{ExecError, Result};
use crate::expr::Expr;
use crate::govern::Governor;
use crate::hash::JoinIndex;
use crate::kernel::{PairFilter, SelVec};
use crate::memory::{MemoryGuard, MemoryTracker};
use crate::ops::{BoxedOp, Operator};
use crate::parallel::morsel::split_rows;
use crate::parallel::{merge, pool, ParallelConfig};

#[path = "join_spill.rs"]
mod spill;

use spill::Build;

/// Join flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    Inner,
    /// Left outer with defaulted right columns and a `__matched` flag.
    LeftOuter,
    /// Emit left rows with at least one (residual-passing) match.
    Semi,
    /// Emit left rows with no (residual-passing) match.
    Anti,
}

/// The `__matched` column name appended by left-outer joins.
pub const MATCHED_COLUMN: &str = "__matched";

/// Materialized build side.
struct BuildSide {
    columns: Vec<Column>,
    index: JoinIndex,
    _mem: MemoryGuard,
}

/// Hash join operator.
pub struct HashJoin {
    left: BoxedOp,
    right: Option<BoxedOp>,
    join_type: JoinType,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    /// Residual over (left ++ right) columns, pre-bound.
    residual: Option<Expr>,
    /// Kernel-compiled residual (see [`crate::kernel`]): evaluates on the
    /// candidate pair selection, gathering only referenced columns, and
    /// shrinks the match lists *before* the output gathers. `None` when
    /// the kernel gate is off or there is no residual — the interpreter
    /// path is used instead (byte-identical results either way).
    pair_filter: Option<PairFilter>,
    schema: OpSchema,
    right_arity: usize,
    /// Build-side column types (for spilled-leaf decoding and left-outer
    /// defaults when the build side lives on disk).
    right_types: Vec<DataType>,
    build: Option<Build>,
    tracker: Arc<MemoryTracker>,
    /// Memory broker (planner-installed). When active, an over-budget
    /// build side freezes its largest hash partitions to spill files and
    /// probes them one restored leaf at a time — see [`crate::broker`].
    broker: MemoryBroker,
    /// Meters spill file writes/reads (planner-installed with the broker;
    /// inert stand-alone tracker by default).
    spill_io: IoTracker,
    /// When set (threads > 1), big build sides are indexed with the
    /// hash-partitioned parallel build and big probe rounds fan out as
    /// probe morsels across workers.
    parallel: Option<ParallelConfig>,
    /// Probed-but-unemitted output batches (a parallel probe round
    /// produces one output batch per probed left batch).
    out: VecDeque<Batch>,
    /// Profiling hook (planner-installed): build-side size and
    /// partitioned-vs-single annotation, probe-morsel counts/latencies.
    /// `None` costs nothing.
    metrics: Option<Arc<OpMetrics>>,
    /// Per-query governance checkpoint, polled once per probe round
    /// (inert by default).
    governor: Governor,
}

impl HashJoin {
    /// Join `left` and `right` on equality of the named key columns.
    pub fn new(
        left: BoxedOp,
        right: BoxedOp,
        on: &[(&str, &str)],
        join_type: JoinType,
        residual: Option<Expr>,
        tracker: Arc<MemoryTracker>,
    ) -> Result<HashJoin> {
        let lschema = left.schema().clone();
        let rschema = right.schema().clone();
        let mut left_keys = Vec::with_capacity(on.len());
        let mut right_keys = Vec::with_capacity(on.len());
        for (l, r) in on {
            left_keys.push(
                crate::batch::schema_index(&lschema, l)
                    .ok_or_else(|| ExecError::UnknownColumn((*l).to_string()))?,
            );
            right_keys.push(
                crate::batch::schema_index(&rschema, r)
                    .ok_or_else(|| ExecError::UnknownColumn((*r).to_string()))?,
            );
        }
        let mut combined = lschema.clone();
        combined.extend(rschema.iter().cloned());
        let residual = match residual {
            Some(e) => Some(e.bind(&combined)?),
            None => None,
        };
        let pair_filter = match (&residual, crate::kernel::kernel_enabled()) {
            (Some(e), true) => Some(PairFilter::new(e, &combined)),
            _ => None,
        };
        let schema = match join_type {
            JoinType::Inner => combined,
            JoinType::LeftOuter => {
                let mut s = combined;
                s.push(ColMeta::new(MATCHED_COLUMN, DataType::Int));
                s
            }
            JoinType::Semi | JoinType::Anti => lschema,
        };
        let right_arity = rschema.len();
        let right_types = rschema.iter().map(|m| m.data_type).collect();
        Ok(HashJoin {
            left,
            right: Some(right),
            join_type,
            left_keys,
            right_keys,
            residual,
            pair_filter,
            schema,
            right_arity,
            right_types,
            build: None,
            tracker,
            broker: MemoryBroker::none(),
            spill_io: IoTracker::new(),
            parallel: None,
            out: VecDeque::new(),
            metrics: None,
            governor: Governor::none(),
        })
    }

    /// Enable the hash-partitioned parallel index build and the
    /// morsel-parallel probe (planner-installed under a
    /// [`ParallelConfig`]; results stay byte-identical).
    pub fn with_parallel(mut self, cfg: Option<ParallelConfig>) -> HashJoin {
        self.parallel = cfg;
        self
    }

    /// Force the residual kernel on or off, overriding the `BDCC_KERNEL`
    /// default picked up by [`HashJoin::new`]. Must be called before the
    /// build side is consumed (i.e. while still building the operator).
    pub fn with_kernel(mut self, on: bool) -> HashJoin {
        self.pair_filter = match (&self.residual, on, &self.right) {
            (Some(e), true, Some(right)) => {
                let mut combined = self.left.schema().clone();
                combined.extend(right.schema().iter().cloned());
                Some(PairFilter::new(e, &combined))
            }
            _ => None,
        };
        self
    }

    /// Attach the profiling metric block (planner-installed).
    pub fn with_metrics(mut self, metrics: Option<Arc<OpMetrics>>) -> HashJoin {
        self.metrics = metrics;
        self
    }

    /// Attach the per-query governor (planner-installed); probe rounds
    /// become cancellation/deadline/budget checkpoints.
    pub fn with_governor(mut self, governor: Governor) -> HashJoin {
        self.governor = governor;
        self
    }

    /// Attach the memory broker and the spill I/O meter
    /// (planner-installed). Under an active broker an over-budget build
    /// side spills — results stay byte-identical.
    pub fn with_broker(mut self, broker: MemoryBroker, io: IoTracker) -> HashJoin {
        self.broker = broker;
        self.spill_io = io;
        self
    }

    fn build_side(&mut self) -> Result<()> {
        if self.build.is_some() {
            return Ok(());
        }
        let mut right = self.right.take().expect("build side consumed once");
        let mut columns: Vec<Column> =
            self.right_types.iter().map(|&dt| Column::empty(dt)).collect();
        // Under an active broker the accumulating payload is registered as
        // it drains so pressure is visible; the moment a pending batch
        // would push tracked memory past the high-water mark, the build
        // switches to the partitioned spill drain (`join_spill`). An
        // inactive broker never fires and this loop is the unchanged
        // in-memory drain.
        let mut drain_mem = self.broker.is_active().then(|| self.tracker.register(0));
        let mut pending = None;
        while let Some(batch) = right.next()? {
            let bytes = spill::est_cols(&batch.columns);
            if self.broker.should_spill(bytes) {
                pending = Some(batch);
                break;
            }
            for (dst, src) in columns.iter_mut().zip(&batch.columns) {
                dst.append(src)?;
            }
            if let Some(g) = &mut drain_mem {
                g.resize(spill::est_cols(&columns));
            }
        }
        if let Some(first) = pending {
            let guard = drain_mem.take().expect("spill fires only under an active broker");
            let spilled = self.build_spilled(right, columns, guard, first)?;
            self.build = Some(Build::Spilled(spilled));
            return Ok(());
        }
        drop(drain_mem);
        let key_cols: Vec<&[i64]> = self
            .right_keys
            .iter()
            .map(|&k| columns[k].as_i64())
            .collect::<std::result::Result<_, _>>()?;
        let index = JoinIndex::build(&key_cols, self.parallel.as_ref())?;
        if let Some(m) = &self.metrics {
            let rows = columns.first().map_or(0, |c| c.len());
            m.annotate("build_rows", rows.to_string());
            m.annotate(
                "build",
                match index.partition_count() {
                    1 => "single".to_string(),
                    n => format!("partitioned({n})"),
                },
            );
        }
        // Hash-table memory: materialized payload + the index's flat
        // arrays (buckets, chains, packed keys, partition row ids).
        let payload: u64 = spill::est_cols(&columns);
        let mem = self.tracker.register(payload + index.estimated_bytes());
        self.build = Some(Build::Mem(BuildSide { columns, index, _mem: mem }));
        Ok(())
    }
}

impl HashJoin {
    /// Pull the next round of probe batches from the left child: exactly
    /// one batch for a serial probe (the unchanged one-batch-at-a-time
    /// pipeline), or roughly `threads × morsel_rows` rows for a parallel
    /// probe — enough work for the fan-out while keeping probe-side
    /// buffering O(threads × morsel).
    fn fill_round(&mut self) -> Result<Vec<Batch>> {
        let mut target = match &self.parallel {
            Some(cfg) if cfg.threads > 1 => cfg.threads * cfg.morsel_rows,
            _ => 0,
        };
        if matches!(self.build, Some(Build::Spilled(_))) {
            // A spilled build restores every file leaf once per round:
            // bigger rounds amortize the restores while probe-side
            // buffering stays bounded.
            target = target.max(8192);
        }
        let mut round = Vec::new();
        let mut rows = 0usize;
        while let Some(b) = self.left.next()? {
            rows += b.rows();
            round.push(b);
            if rows >= target.max(1) {
                break;
            }
        }
        Ok(round)
    }

    /// Probe one round — serially batch-at-a-time, or (for a big-enough
    /// round under a parallel config) fanned out as `(batch, row range)`
    /// probe morsels. Per-morsel match lists concatenate in morsel order,
    /// and the per-batch output assembly (the column gathers) fans out as
    /// pool tasks as well, appending outputs in batch order — so each
    /// batch's output is byte-identical to the serial probe's.
    fn probe_round(&self, round: &[Batch]) -> Result<Vec<Batch>> {
        self.governor.check("probe-round")?;
        let build = match self.build.as_ref().expect("built") {
            Build::Mem(b) => b,
            Build::Spilled(s) => return self.probe_round_spilled(s, round),
        };
        let total: usize = round.iter().map(|b| b.rows()).sum();
        let fan_out = match &self.parallel {
            Some(cfg) if cfg.worth_splitting(total) => Some(cfg),
            _ => None,
        };
        let Some(cfg) = fan_out else {
            return round
                .iter()
                .map(|batch| {
                    let (lidx, ridx) = probe_range(
                        batch,
                        build,
                        &self.left_keys,
                        self.join_type,
                        self.residual.as_ref(),
                        self.pair_filter.as_ref(),
                        0..batch.rows(),
                    )?;
                    finish_batch(batch, build, self.join_type, self.right_arity, &lidx, &ridx)
                })
                .collect();
        };
        // Batch-major (batch, row range) probe pieces, coalesced into
        // tasks of roughly one morsel of rows: a run of tiny batches (a
        // selective filter upstream) shares one task instead of paying a
        // queue op and a fan-out slot per batch.
        let mut tasks: Vec<Vec<(usize, Range<usize>)>> = Vec::new();
        let mut cur: Vec<(usize, Range<usize>)> = Vec::new();
        let mut cur_rows = 0usize;
        for (bi, batch) in round.iter().enumerate() {
            for r in split_rows(batch.rows(), cfg.morsel_rows) {
                cur_rows += r.len();
                cur.push((bi, r));
                if cur_rows >= cfg.morsel_rows {
                    tasks.push(std::mem::take(&mut cur));
                    cur_rows = 0;
                }
            }
        }
        if !cur.is_empty() {
            tasks.push(cur);
        }
        // Capture only `Sync` plan data, not `self` (the child operators
        // are not shareable).
        let (left_keys, join_type) = (&self.left_keys, self.join_type);
        let residual = self.residual.as_ref();
        let pair_filter = self.pair_filter.as_ref();
        let metrics = self.metrics.as_ref();
        let per: Vec<Vec<ProbePiece>> =
            pool::run_tasks_labeled(cfg.threads, tasks.len(), "join-probe", |t| {
                let span = metrics.map(|_| SpanTimer::start());
                let pieces: Result<Vec<ProbePiece>> = tasks[t]
                    .iter()
                    .map(|(bi, range)| {
                        let lists = probe_range(
                            &round[*bi],
                            build,
                            left_keys,
                            join_type,
                            residual,
                            pair_filter,
                            range.clone(),
                        )?;
                        Ok((*bi, lists))
                    })
                    .collect();
                if let (Some(m), Some(span)) = (metrics, span) {
                    m.morsels.add(1);
                    m.morsel_rows.add(tasks[t].iter().map(|(_, r)| r.len() as u64).sum());
                    m.morsel_nanos.record(span.elapsed_nanos());
                }
                pieces
            })?;
        // Pieces flatten back in batch-major, range-ascending order
        // whatever the task boundaries were; group them per batch, then
        // fan the per-batch output assembly (match-list concat + column
        // gathers) out as pool tasks too — the gathers are the dominant
        // cost of a residual-free inner join round, and each batch's
        // assembly is independent. `run_tasks` returns in batch order, so
        // the appended outputs are byte-identical to the serial probe's.
        let mut pieces = per.into_iter().flatten().peekable();
        let mut grouped: Vec<Mutex<Vec<MatchLists>>> = Vec::with_capacity(round.len());
        for bi in 0..round.len() {
            let mut lists = Vec::new();
            while pieces.peek().is_some_and(|(pbi, _)| *pbi == bi) {
                lists.push(pieces.next().expect("peeked").1);
            }
            grouped.push(Mutex::new(lists));
        }
        let (right_arity, join_type) = (self.right_arity, self.join_type);
        pool::run_tasks_labeled(cfg.threads, round.len(), "join-assemble", |bi| {
            // Each gather task *takes* its batch's match lists (tasks are
            // per-batch, so the one lock is uncontended and the lists are
            // never copied).
            let lists = std::mem::take(&mut *grouped[bi].lock().expect("match lists poisoned"));
            let (lidx, ridx) = merge::concat_match_lists(lists);
            finish_batch(&round[bi], build, join_type, right_arity, &lidx, &ridx)
        })
    }
}

impl Operator for HashJoin {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        self.build_side()?;
        loop {
            while let Some(b) = self.out.pop_front() {
                if b.rows() > 0 {
                    return Ok(Some(b));
                }
            }
            let round = self.fill_round()?;
            if round.is_empty() {
                if let (Some(pf), Some(m)) = (&self.pair_filter, &self.metrics) {
                    pf.annotate(m);
                }
                return Ok(None);
            }
            let outs = self.probe_round(&round)?;
            self.out.extend(outs);
        }
    }
}

/// Match lists of one probe piece or batch: `(left rows, build rows)`,
/// post-residual, in probe order.
type MatchLists = (Vec<usize>, Vec<u32>);

/// One probe piece: the originating batch index in the round plus the
/// piece's (post-residual) match lists.
type ProbePiece = (usize, MatchLists);

/// Do we need full `(left, right)` pair lists, or only per-row existence?
/// Semi/Anti without a residual only ask *whether* a row matches.
fn needs_pairs(join_type: JoinType, residual: Option<&Expr>) -> bool {
    !matches!(join_type, JoinType::Semi | JoinType::Anti) || residual.is_some()
}

/// Probe rows `range` of `left` against the build index and return the
/// match lists with the residual already applied — the per-morsel probe
/// kernel (also the whole-batch kernel when `range` spans the batch).
///
/// Semi/Anti without a residual take the existence fast path: a first-hit
/// [`JoinIndex::has_match`] per row, no pair lists and **no column
/// gathers** — `ridx` comes back empty and `lidx` lists the matched rows.
fn probe_range(
    left: &Batch,
    build: &BuildSide,
    left_keys: &[usize],
    join_type: JoinType,
    residual: Option<&Expr>,
    pair_filter: Option<&PairFilter>,
    range: Range<usize>,
) -> Result<(Vec<usize>, Vec<u32>)> {
    let key_cols: Vec<&[i64]> = left_keys
        .iter()
        .map(|&k| left.columns[k].as_i64())
        .collect::<std::result::Result<_, _>>()?;
    if !needs_pairs(join_type, residual) {
        let mut lidx = Vec::new();
        build.index.probe_exists(&key_cols, range, &mut lidx);
        return Ok((lidx, Vec::new()));
    }
    let mut lidx: Vec<usize> = Vec::new();
    let mut ridx: Vec<u32> = Vec::new();
    build.index.probe_pairs(&key_cols, range, &mut lidx, &mut ridx);
    if let Some(pf) = pair_filter {
        // Kernel path: only the residual's referenced columns are
        // gathered for the candidate pairs, and the match lists shrink
        // before the output gathers. Survivors keep probe order.
        let left_arity = left.arity();
        let sel = pf.select_pairs(lidx.len(), |c| {
            Ok(if c < left_arity {
                left.columns[c].gather(&lidx)
            } else {
                build.columns[c - left_arity].gather_u32(&ridx)
            })
        })?;
        if let SelVec::Rows(rows) = sel {
            lidx = rows.iter().map(|&i| lidx[i as usize]).collect();
            ridx = rows.iter().map(|&i| ridx[i as usize]).collect();
        }
    } else if let Some(filter) = residual {
        // Evaluate the residual over the candidate pairs of this morsel
        // only; survivors keep their (ascending) probe order.
        let mut cols: Vec<Column> = left.columns.iter().map(|c| c.gather(&lidx)).collect();
        for rc in &build.columns {
            cols.push(rc.gather_u32(&ridx));
        }
        let keep = filter.eval_bool(&Batch::new(cols))?;
        let mut k = 0;
        lidx.retain(|_| {
            let r = keep[k];
            k += 1;
            r
        });
        let mut k = 0;
        ridx.retain(|_| {
            let r = keep[k];
            k += 1;
            r
        });
    }
    Ok((lidx, ridx))
}

/// Assemble a left batch's output from its (post-residual) match lists.
/// Semi/Anti never gather pair columns — the match list alone decides
/// which left rows survive.
fn finish_batch(
    left: &Batch,
    build: &BuildSide,
    join_type: JoinType,
    right_arity: usize,
    lidx: &[usize],
    ridx: &[u32],
) -> Result<Batch> {
    let rows = left.rows();
    let pair_cols = |lidx: &[usize], ridx: &[u32]| -> Vec<Column> {
        let mut cols: Vec<Column> = left.columns.iter().map(|c| c.gather(lidx)).collect();
        for rc in &build.columns {
            cols.push(rc.gather_u32(ridx));
        }
        cols
    };
    match join_type {
        JoinType::Inner => Ok(Batch::new(pair_cols(lidx, ridx))),
        JoinType::Semi | JoinType::Anti => {
            let mut matched = vec![false; rows];
            for &l in lidx {
                matched[l] = true;
            }
            let keep: Vec<bool> = match join_type {
                JoinType::Semi => matched,
                _ => matched.iter().map(|&m| !m).collect(),
            };
            Ok(left.filter(&keep))
        }
        JoinType::LeftOuter => {
            // Matched pairs with flag 1.
            let mut cols = pair_cols(lidx, ridx);
            cols.push(Column::from_i64(vec![1; lidx.len()]));
            let mut out = Batch::new(cols);
            let mut matched = vec![false; rows];
            for &l in lidx {
                matched[l] = true;
            }
            let unmatched: Vec<usize> = (0..rows).filter(|&r| !matched[r]).collect();
            // Unmatched left rows with defaulted right columns and flag 0.
            if !unmatched.is_empty() {
                let mut ucols: Vec<Column> =
                    left.columns.iter().map(|c| c.gather(&unmatched)).collect();
                for rc in build.columns.iter().take(right_arity) {
                    ucols.push(default_column(rc.data_type(), unmatched.len()));
                }
                ucols.push(Column::from_i64(vec![0; unmatched.len()]));
                let ub = Batch::new(ucols);
                for (dst, src) in out.columns.iter_mut().zip(&ub.columns) {
                    dst.append(src)?;
                }
            }
            Ok(out)
        }
    }
}

fn default_column(dt: DataType, n: usize) -> Column {
    match dt {
        DataType::Int => Column::from_i64(vec![0; n]),
        DataType::Date => Column::from_dates(vec![0; n]),
        DataType::Float => Column::from_f64(vec![0.0; n]),
        DataType::Str => Column::from_strings(vec![String::new(); n]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::collect;

    struct Source {
        schema: OpSchema,
        batches: Vec<Batch>,
    }

    impl Source {
        fn new(cols: Vec<(&str, Column)>) -> Source {
            let schema = cols.iter().map(|(n, c)| ColMeta::new(*n, c.data_type())).collect();
            let batch = Batch::new(cols.into_iter().map(|(_, c)| c).collect());
            Source { schema, batches: vec![batch] }
        }
    }

    impl Operator for Source {
        fn schema(&self) -> &OpSchema {
            &self.schema
        }
        fn next(&mut self) -> Result<Option<Batch>> {
            Ok(self.batches.pop())
        }
    }

    fn orders() -> Source {
        Source::new(vec![
            ("o_orderkey", Column::from_i64(vec![1, 2, 3, 4])),
            ("o_custkey", Column::from_i64(vec![10, 20, 10, 30])),
        ])
    }

    fn customers() -> Source {
        Source::new(vec![
            ("c_custkey", Column::from_i64(vec![10, 20])),
            ("c_name", Column::from_strings(vec!["alice".into(), "bob".into()])),
        ])
    }

    #[test]
    fn inner_join_matches_pairs() {
        let t = MemoryTracker::new();
        let j = HashJoin::new(
            Box::new(orders()),
            Box::new(customers()),
            &[("o_custkey", "c_custkey")],
            JoinType::Inner,
            None,
            t.clone(),
        )
        .unwrap();
        let out = collect(Box::new(j)).unwrap();
        assert_eq!(out.rows(), 3); // orders 1,2,3 match; 4 has no customer
        let keys = out.columns[0].as_i64().unwrap();
        assert_eq!(keys, &[1, 2, 3]);
        assert_eq!(out.columns[3].as_str().unwrap()[0], "alice");
        assert!(t.peak() > 0, "build side must be tracked");
        assert_eq!(t.current(), 0, "memory released after drop");
    }

    #[test]
    fn semi_and_anti() {
        let t = MemoryTracker::new();
        let j = HashJoin::new(
            Box::new(orders()),
            Box::new(customers()),
            &[("o_custkey", "c_custkey")],
            JoinType::Semi,
            None,
            t.clone(),
        )
        .unwrap();
        let out = collect(Box::new(j)).unwrap();
        assert_eq!(out.columns[0].as_i64().unwrap(), &[1, 2, 3]);
        assert_eq!(out.arity(), 2); // left columns only

        let j = HashJoin::new(
            Box::new(orders()),
            Box::new(customers()),
            &[("o_custkey", "c_custkey")],
            JoinType::Anti,
            None,
            t,
        )
        .unwrap();
        let out = collect(Box::new(j)).unwrap();
        assert_eq!(out.columns[0].as_i64().unwrap(), &[4]);
    }

    #[test]
    fn left_outer_flags_unmatched() {
        let t = MemoryTracker::new();
        let j = HashJoin::new(
            Box::new(customers()),
            Box::new(Source::new(vec![
                ("o_custkey", Column::from_i64(vec![10, 10])),
                ("o_orderkey", Column::from_i64(vec![100, 101])),
            ])),
            &[("c_custkey", "o_custkey")],
            JoinType::LeftOuter,
            None,
            t,
        )
        .unwrap();
        let out = collect(Box::new(j)).unwrap();
        // alice matches twice, bob zero times (defaulted + flag 0).
        assert_eq!(out.rows(), 3);
        let matched = out.columns.last().unwrap().as_i64().unwrap();
        assert_eq!(matched.iter().sum::<i64>(), 2);
    }

    #[test]
    fn residual_restricts_matches() {
        let t = MemoryTracker::new();
        // Join orders to customers but require o_orderkey >= 3.
        let j = HashJoin::new(
            Box::new(orders()),
            Box::new(customers()),
            &[("o_custkey", "c_custkey")],
            JoinType::Inner,
            Some(Expr::col("o_orderkey").ge(Expr::lit(3))),
            t,
        )
        .unwrap();
        let out = collect(Box::new(j)).unwrap();
        assert_eq!(out.columns[0].as_i64().unwrap(), &[3]);
    }

    #[test]
    fn anti_with_residual_is_not_exists() {
        let t = MemoryTracker::new();
        // NOT EXISTS (customer with same key and name 'alice').
        let j = HashJoin::new(
            Box::new(orders()),
            Box::new(customers()),
            &[("o_custkey", "c_custkey")],
            JoinType::Anti,
            Some(Expr::col("c_name").eq(Expr::lit("alice"))),
            t,
        )
        .unwrap();
        let out = collect(Box::new(j)).unwrap();
        // Orders 2 (bob) and 4 (no customer) survive.
        assert_eq!(out.columns[0].as_i64().unwrap(), &[2, 4]);
    }

    #[test]
    fn parallel_build_is_byte_identical() {
        // Tiny morsel budget forces the partitioned build even at this
        // scale; every join flavor must match the serial output exactly.
        let cfg = ParallelConfig { threads: 4, morsel_rows: 1, agg_radix: None };
        for jt in [JoinType::Inner, JoinType::LeftOuter, JoinType::Semi, JoinType::Anti] {
            let serial = collect(Box::new(
                HashJoin::new(
                    Box::new(orders()),
                    Box::new(customers()),
                    &[("o_custkey", "c_custkey")],
                    jt,
                    None,
                    MemoryTracker::new(),
                )
                .unwrap(),
            ))
            .unwrap();
            let parallel = collect(Box::new(
                HashJoin::new(
                    Box::new(orders()),
                    Box::new(customers()),
                    &[("o_custkey", "c_custkey")],
                    jt,
                    None,
                    MemoryTracker::new(),
                )
                .unwrap()
                .with_parallel(Some(cfg.clone())),
            ))
            .unwrap();
            assert_eq!(serial, parallel, "{jt:?}");
        }
    }

    /// Multi-batch chunked source for probe-round tests.
    struct Chunked {
        schema: OpSchema,
        batches: std::vec::IntoIter<Batch>,
    }

    impl Chunked {
        fn new(rows: &[(i64, i64)], names: (&str, &str), chunk: usize) -> Chunked {
            let schema =
                vec![ColMeta::new(names.0, DataType::Int), ColMeta::new(names.1, DataType::Int)];
            let batches: Vec<Batch> = rows
                .chunks(chunk)
                .map(|c| {
                    Batch::new(vec![
                        Column::from_i64(c.iter().map(|r| r.0).collect()),
                        Column::from_i64(c.iter().map(|r| r.1).collect()),
                    ])
                })
                .collect();
            Chunked { schema, batches: batches.into_iter() }
        }
    }

    impl Operator for Chunked {
        fn schema(&self) -> &OpSchema {
            &self.schema
        }
        fn next(&mut self) -> Result<Option<Batch>> {
            Ok(self.batches.next())
        }
    }

    #[test]
    fn parallel_probe_rounds_are_byte_identical() {
        // Many small left batches force multi-batch probe rounds, and
        // morsel_rows 8 splits batches into several probe morsels; with
        // and without a residual, every flavor must equal serial exactly.
        let left: Vec<(i64, i64)> = (0..200).map(|i| (i % 23, i)).collect();
        let right: Vec<(i64, i64)> = (0..60).map(|i| (i % 31, 1000 + i)).collect();
        let cfg = ParallelConfig { threads: 4, morsel_rows: 8, agg_radix: None };
        for jt in [JoinType::Inner, JoinType::LeftOuter, JoinType::Semi, JoinType::Anti] {
            for residual in [false, true] {
                let res =
                    residual.then(|| Expr::col("lv").ge(Expr::col("rv").sub(Expr::lit(1020))));
                let serial = collect(Box::new(
                    HashJoin::new(
                        Box::new(Chunked::new(&left, ("lk", "lv"), 13)),
                        Box::new(Chunked::new(&right, ("rk", "rv"), 7)),
                        &[("lk", "rk")],
                        jt,
                        res.clone(),
                        MemoryTracker::new(),
                    )
                    .unwrap(),
                ))
                .unwrap();
                let parallel = collect(Box::new(
                    HashJoin::new(
                        Box::new(Chunked::new(&left, ("lk", "lv"), 13)),
                        Box::new(Chunked::new(&right, ("rk", "rv"), 7)),
                        &[("lk", "rk")],
                        jt,
                        res,
                        MemoryTracker::new(),
                    )
                    .unwrap()
                    .with_parallel(Some(cfg.clone())),
                ))
                .unwrap();
                assert_eq!(serial, parallel, "{jt:?} residual={residual}");
            }
        }
    }

    #[test]
    fn residual_kernel_matches_interpreter() {
        // Sargable residual (kernel leaf) and non-sargable residual
        // (fallback over the pair selection): kernel on vs. off must be
        // byte-identical for every flavor, serial and parallel.
        let left: Vec<(i64, i64)> = (0..200).map(|i| (i % 23, i)).collect();
        let right: Vec<(i64, i64)> = (0..60).map(|i| (i % 31, 1000 + i)).collect();
        let residuals: Vec<Expr> = vec![
            Expr::col("rv").ge(Expr::lit(1030)),
            Expr::col("lv").ge(Expr::col("rv").sub(Expr::lit(1020))),
        ];
        let cfg = ParallelConfig { threads: 4, morsel_rows: 8, agg_radix: None };
        for jt in [JoinType::Inner, JoinType::LeftOuter, JoinType::Semi, JoinType::Anti] {
            for res in &residuals {
                for parallel in [None, Some(cfg.clone())] {
                    let run = |kernel: bool| {
                        collect(Box::new(
                            HashJoin::new(
                                Box::new(Chunked::new(&left, ("lk", "lv"), 13)),
                                Box::new(Chunked::new(&right, ("rk", "rv"), 7)),
                                &[("lk", "rk")],
                                jt,
                                Some(res.clone()),
                                MemoryTracker::new(),
                            )
                            .unwrap()
                            .with_kernel(kernel)
                            .with_parallel(parallel.clone()),
                        ))
                        .unwrap()
                    };
                    assert_eq!(run(true), run(false), "{jt:?} {res:?}");
                }
            }
        }
    }

    #[test]
    fn spilled_build_is_byte_identical_for_every_flavor() {
        use crate::broker::SpillMode;
        use bdcc_storage::live_spill_files;
        // Build side big enough to scatter across many partitions; left
        // side chunked so multiple probe rounds hit the restored leaves.
        let left: Vec<(i64, i64)> = (0..400).map(|i| (i % 37, i)).collect();
        let right: Vec<(i64, i64)> = (0..300).map(|i| (i % 53, 1000 + i)).collect();
        let base = live_spill_files();
        for jt in [JoinType::Inner, JoinType::LeftOuter, JoinType::Semi, JoinType::Anti] {
            for residual in [false, true] {
                let res =
                    residual.then(|| Expr::col("lv").ge(Expr::col("rv").sub(Expr::lit(1150))));
                let serial = collect(Box::new(
                    HashJoin::new(
                        Box::new(Chunked::new(&left, ("lk", "lv"), 13)),
                        Box::new(Chunked::new(&right, ("rk", "rv"), 7)),
                        &[("lk", "rk")],
                        jt,
                        res.clone(),
                        MemoryTracker::new(),
                    )
                    .unwrap(),
                ))
                .unwrap();
                // Force: everything freezes. Tiny auto budget: freeze +
                // recursive split on restore (4 KB budget → 2 KB leaves).
                let brokers: Vec<(&str, SpillMode, Option<u64>)> = vec![
                    ("force", SpillMode::Force, None),
                    ("tiny-auto", SpillMode::Auto, Some(4096)),
                ];
                for (name, mode, budget) in brokers {
                    let tracker = MemoryTracker::new();
                    let io = IoTracker::new();
                    let spilled = collect(Box::new(
                        HashJoin::new(
                            Box::new(Chunked::new(&left, ("lk", "lv"), 13)),
                            Box::new(Chunked::new(&right, ("rk", "rv"), 7)),
                            &[("lk", "rk")],
                            jt,
                            res.clone(),
                            Arc::clone(&tracker),
                        )
                        .unwrap()
                        .with_broker(MemoryBroker::with_mode(mode, &tracker, budget), io.clone()),
                    ))
                    .unwrap();
                    assert_eq!(serial, spilled, "{jt:?} residual={residual} {name}");
                    assert_eq!(
                        live_spill_files(),
                        base,
                        "{jt:?} residual={residual} {name}: temp files must unlink"
                    );
                    assert_eq!(tracker.current(), 0, "{name}: memory must release");
                    assert!(
                        io.stats().bytes_read > 0,
                        "{jt:?} {name}: spill traffic must be metered"
                    );
                }
            }
        }
    }

    #[test]
    fn spilled_build_under_parallel_probe_matches() {
        use crate::broker::SpillMode;
        // Broker + parallel config: the spilled probe path is serial but
        // must still be byte-identical to the parallel in-memory one.
        let left: Vec<(i64, i64)> = (0..200).map(|i| (i % 23, i)).collect();
        let right: Vec<(i64, i64)> = (0..60).map(|i| (i % 31, 1000 + i)).collect();
        let cfg = ParallelConfig { threads: 4, morsel_rows: 8, agg_radix: None };
        let serial = collect(Box::new(
            HashJoin::new(
                Box::new(Chunked::new(&left, ("lk", "lv"), 13)),
                Box::new(Chunked::new(&right, ("rk", "rv"), 7)),
                &[("lk", "rk")],
                JoinType::Inner,
                None,
                MemoryTracker::new(),
            )
            .unwrap(),
        ))
        .unwrap();
        let tracker = MemoryTracker::new();
        let spilled = collect(Box::new(
            HashJoin::new(
                Box::new(Chunked::new(&left, ("lk", "lv"), 13)),
                Box::new(Chunked::new(&right, ("rk", "rv"), 7)),
                &[("lk", "rk")],
                JoinType::Inner,
                None,
                Arc::clone(&tracker),
            )
            .unwrap()
            .with_parallel(Some(cfg))
            .with_broker(
                MemoryBroker::with_mode(SpillMode::Force, &tracker, None),
                IoTracker::new(),
            ),
        ))
        .unwrap();
        assert_eq!(serial, spilled);
    }

    #[test]
    fn roomy_auto_budget_never_spills() {
        use crate::broker::SpillMode;
        use bdcc_storage::live_spill_files;
        let tracker = MemoryTracker::new();
        let io = IoTracker::new();
        let base = live_spill_files();
        let j = HashJoin::new(
            Box::new(orders()),
            Box::new(customers()),
            &[("o_custkey", "c_custkey")],
            JoinType::Inner,
            None,
            Arc::clone(&tracker),
        )
        .unwrap()
        .with_broker(MemoryBroker::with_mode(SpillMode::Auto, &tracker, Some(1 << 30)), io.clone());
        let out = collect(Box::new(j)).unwrap();
        assert_eq!(out.rows(), 3);
        assert_eq!(live_spill_files(), base);
        assert_eq!(io.stats().bytes_read, 0, "no spill traffic under a roomy budget");
    }

    #[test]
    fn unknown_key_rejected() {
        let t = MemoryTracker::new();
        assert!(HashJoin::new(
            Box::new(orders()),
            Box::new(customers()),
            &[("nope", "c_custkey")],
            JoinType::Inner,
            None,
            t,
        )
        .is_err());
    }
}
