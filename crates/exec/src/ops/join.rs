//! Hash join (inner, left-outer, semi, anti) with optional residual
//! predicate.
//!
//! The build side is the **right** child, fully materialized and indexed
//! by an allocation-free flat [`JoinIndex`] keyed on the integer join
//! columns; its size is registered with the memory tracker — this is the
//! memory the sandwich variant saves (Figure 3). Under a
//! [`ParallelConfig`] the index build is hash-partitioned across workers
//! (see [`crate::parallel::partition`]) with byte-identical results.
//! Left-outer joins emit unmatched left rows with defaulted right columns
//! plus a `__matched` 0/1 column (the engine has no NULLs;
//! `COUNT(right.col)` compiles to `SUM(__matched)`).

use std::sync::Arc;

use bdcc_storage::{Column, DataType};

use crate::batch::{Batch, ColMeta, OpSchema};
use crate::error::{ExecError, Result};
use crate::expr::Expr;
use crate::hash::JoinIndex;
use crate::memory::{MemoryGuard, MemoryTracker};
use crate::ops::{BoxedOp, Operator};
use crate::parallel::ParallelConfig;

/// Join flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    Inner,
    /// Left outer with defaulted right columns and a `__matched` flag.
    LeftOuter,
    /// Emit left rows with at least one (residual-passing) match.
    Semi,
    /// Emit left rows with no (residual-passing) match.
    Anti,
}

/// The `__matched` column name appended by left-outer joins.
pub const MATCHED_COLUMN: &str = "__matched";

/// Materialized build side.
struct BuildSide {
    columns: Vec<Column>,
    index: JoinIndex,
    _mem: MemoryGuard,
}

/// Hash join operator.
pub struct HashJoin {
    left: BoxedOp,
    right: Option<BoxedOp>,
    join_type: JoinType,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    /// Residual over (left ++ right) columns, pre-bound.
    residual: Option<Expr>,
    schema: OpSchema,
    right_arity: usize,
    build: Option<BuildSide>,
    tracker: Arc<MemoryTracker>,
    /// When set (threads > 1), big build sides are indexed with the
    /// hash-partitioned parallel build.
    parallel: Option<ParallelConfig>,
}

impl HashJoin {
    /// Join `left` and `right` on equality of the named key columns.
    pub fn new(
        left: BoxedOp,
        right: BoxedOp,
        on: &[(&str, &str)],
        join_type: JoinType,
        residual: Option<Expr>,
        tracker: Arc<MemoryTracker>,
    ) -> Result<HashJoin> {
        let lschema = left.schema().clone();
        let rschema = right.schema().clone();
        let mut left_keys = Vec::with_capacity(on.len());
        let mut right_keys = Vec::with_capacity(on.len());
        for (l, r) in on {
            left_keys.push(
                crate::batch::schema_index(&lschema, l)
                    .ok_or_else(|| ExecError::UnknownColumn((*l).to_string()))?,
            );
            right_keys.push(
                crate::batch::schema_index(&rschema, r)
                    .ok_or_else(|| ExecError::UnknownColumn((*r).to_string()))?,
            );
        }
        let mut combined = lschema.clone();
        combined.extend(rschema.iter().cloned());
        let residual = match residual {
            Some(e) => Some(e.bind(&combined)?),
            None => None,
        };
        let schema = match join_type {
            JoinType::Inner => combined,
            JoinType::LeftOuter => {
                let mut s = combined;
                s.push(ColMeta::new(MATCHED_COLUMN, DataType::Int));
                s
            }
            JoinType::Semi | JoinType::Anti => lschema,
        };
        let right_arity = rschema.len();
        Ok(HashJoin {
            left,
            right: Some(right),
            join_type,
            left_keys,
            right_keys,
            residual,
            schema,
            right_arity,
            build: None,
            tracker,
            parallel: None,
        })
    }

    /// Enable the hash-partitioned parallel index build (planner-installed
    /// under a [`ParallelConfig`]; results stay byte-identical).
    pub fn with_parallel(mut self, cfg: Option<ParallelConfig>) -> HashJoin {
        self.parallel = cfg;
        self
    }

    fn build_side(&mut self) -> Result<&BuildSide> {
        if self.build.is_none() {
            let mut right = self.right.take().expect("build side consumed once");
            let rschema = right.schema().clone();
            let mut columns: Vec<Column> =
                rschema.iter().map(|m| Column::empty(m.data_type)).collect();
            while let Some(batch) = right.next()? {
                for (dst, src) in columns.iter_mut().zip(&batch.columns) {
                    dst.append(src)?;
                }
            }
            let key_cols: Vec<&[i64]> = self
                .right_keys
                .iter()
                .map(|&k| columns[k].as_i64())
                .collect::<std::result::Result<_, _>>()?;
            let index = JoinIndex::build(&key_cols, self.parallel.as_ref())?;
            // Hash-table memory: materialized payload + the index's flat
            // arrays (buckets, chains, packed keys, partition row ids).
            let payload: u64 =
                columns.iter().map(|c| (c.len() as f64 * c.avg_width()) as u64).sum();
            let mem = self.tracker.register(payload + index.estimated_bytes());
            self.build = Some(BuildSide { columns, index, _mem: mem });
        }
        Ok(self.build.as_ref().expect("just built"))
    }
}

impl Operator for HashJoin {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        self.build_side()?;
        while let Some(batch) = self.left.next()? {
            let build = self.build.as_ref().expect("built");
            let key_cols: Vec<&[i64]> = self
                .left_keys
                .iter()
                .map(|&k| batch.columns[k].as_i64())
                .collect::<std::result::Result<_, _>>()?;
            let out = join_batch(
                &batch,
                build,
                &key_cols,
                self.join_type,
                self.residual.as_ref(),
                self.right_arity,
            )?;
            if let Some(out) = out {
                if out.rows() > 0 {
                    return Ok(Some(out));
                }
            }
        }
        Ok(None)
    }
}

fn join_batch(
    left: &Batch,
    build: &BuildSide,
    left_key_cols: &[&[i64]],
    join_type: JoinType,
    residual: Option<&Expr>,
    right_arity: usize,
) -> Result<Option<Batch>> {
    let rows = left.rows();
    // Candidate pairs (probe reuses one key buffer — no per-row allocs).
    let mut lidx: Vec<usize> = Vec::new();
    let mut ridx: Vec<u32> = Vec::new();
    let mut key = Vec::with_capacity(left_key_cols.len());
    for row in 0..rows {
        key.clear();
        key.extend(left_key_cols.iter().map(|c| c[row]));
        build.index.for_each_match(&key, |m| {
            lidx.push(row);
            ridx.push(m);
        });
    }
    // Assemble candidate pair batch (left ++ right) and apply residual.
    let pass = |lidx: &mut Vec<usize>, ridx: &mut Vec<u32>| -> Result<Option<Batch>> {
        let mut cols: Vec<Column> = left.columns.iter().map(|c| c.gather(lidx)).collect();
        for rc in &build.columns {
            cols.push(rc.gather_u32(ridx));
        }
        let pairs = Batch::new(cols);
        match residual {
            None => Ok(Some(pairs)),
            Some(filter) => {
                let keep = filter.eval_bool(&pairs)?;
                let mut k = 0;
                lidx.retain(|_| {
                    let r = keep[k];
                    k += 1;
                    r
                });
                let mut k = 0;
                ridx.retain(|_| {
                    let r = keep[k];
                    k += 1;
                    r
                });
                Ok(Some(pairs.filter(&keep)))
            }
        }
    };
    match join_type {
        JoinType::Inner => pass(&mut lidx, &mut ridx),
        JoinType::Semi | JoinType::Anti => {
            pass(&mut lidx, &mut ridx)?;
            let mut matched = vec![false; rows];
            for &l in &lidx {
                matched[l] = true;
            }
            let keep: Vec<bool> = match join_type {
                JoinType::Semi => matched,
                _ => matched.iter().map(|&m| !m).collect(),
            };
            Ok(Some(left.filter(&keep)))
        }
        JoinType::LeftOuter => {
            let inner = pass(&mut lidx, &mut ridx)?.expect("inner pairs");
            let mut matched = vec![false; rows];
            for &l in &lidx {
                matched[l] = true;
            }
            let unmatched: Vec<usize> = (0..rows).filter(|&r| !matched[r]).collect();
            // Matched pairs with flag 1.
            let mut cols = inner.columns;
            let matched_rows = cols.first().map(|c| c.len()).unwrap_or(0);
            cols.push(Column::from_i64(vec![1; matched_rows]));
            let mut out = Batch::new(cols);
            // Unmatched left rows with defaulted right columns and flag 0.
            if !unmatched.is_empty() {
                let mut ucols: Vec<Column> =
                    left.columns.iter().map(|c| c.gather(&unmatched)).collect();
                for rc in build.columns.iter().take(right_arity) {
                    ucols.push(default_column(rc.data_type(), unmatched.len()));
                }
                ucols.push(Column::from_i64(vec![0; unmatched.len()]));
                let ub = Batch::new(ucols);
                for (dst, src) in out.columns.iter_mut().zip(&ub.columns) {
                    dst.append(src)?;
                }
            }
            Ok(Some(out))
        }
    }
}

fn default_column(dt: DataType, n: usize) -> Column {
    match dt {
        DataType::Int => Column::from_i64(vec![0; n]),
        DataType::Date => Column::from_dates(vec![0; n]),
        DataType::Float => Column::from_f64(vec![0.0; n]),
        DataType::Str => Column::from_strings(vec![String::new(); n]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::collect;

    struct Source {
        schema: OpSchema,
        batches: Vec<Batch>,
    }

    impl Source {
        fn new(cols: Vec<(&str, Column)>) -> Source {
            let schema = cols.iter().map(|(n, c)| ColMeta::new(*n, c.data_type())).collect();
            let batch = Batch::new(cols.into_iter().map(|(_, c)| c).collect());
            Source { schema, batches: vec![batch] }
        }
    }

    impl Operator for Source {
        fn schema(&self) -> &OpSchema {
            &self.schema
        }
        fn next(&mut self) -> Result<Option<Batch>> {
            Ok(self.batches.pop())
        }
    }

    fn orders() -> Source {
        Source::new(vec![
            ("o_orderkey", Column::from_i64(vec![1, 2, 3, 4])),
            ("o_custkey", Column::from_i64(vec![10, 20, 10, 30])),
        ])
    }

    fn customers() -> Source {
        Source::new(vec![
            ("c_custkey", Column::from_i64(vec![10, 20])),
            ("c_name", Column::from_strings(vec!["alice".into(), "bob".into()])),
        ])
    }

    #[test]
    fn inner_join_matches_pairs() {
        let t = MemoryTracker::new();
        let j = HashJoin::new(
            Box::new(orders()),
            Box::new(customers()),
            &[("o_custkey", "c_custkey")],
            JoinType::Inner,
            None,
            t.clone(),
        )
        .unwrap();
        let out = collect(Box::new(j)).unwrap();
        assert_eq!(out.rows(), 3); // orders 1,2,3 match; 4 has no customer
        let keys = out.columns[0].as_i64().unwrap();
        assert_eq!(keys, &[1, 2, 3]);
        assert_eq!(out.columns[3].as_str().unwrap()[0], "alice");
        assert!(t.peak() > 0, "build side must be tracked");
        assert_eq!(t.current(), 0, "memory released after drop");
    }

    #[test]
    fn semi_and_anti() {
        let t = MemoryTracker::new();
        let j = HashJoin::new(
            Box::new(orders()),
            Box::new(customers()),
            &[("o_custkey", "c_custkey")],
            JoinType::Semi,
            None,
            t.clone(),
        )
        .unwrap();
        let out = collect(Box::new(j)).unwrap();
        assert_eq!(out.columns[0].as_i64().unwrap(), &[1, 2, 3]);
        assert_eq!(out.arity(), 2); // left columns only

        let j = HashJoin::new(
            Box::new(orders()),
            Box::new(customers()),
            &[("o_custkey", "c_custkey")],
            JoinType::Anti,
            None,
            t,
        )
        .unwrap();
        let out = collect(Box::new(j)).unwrap();
        assert_eq!(out.columns[0].as_i64().unwrap(), &[4]);
    }

    #[test]
    fn left_outer_flags_unmatched() {
        let t = MemoryTracker::new();
        let j = HashJoin::new(
            Box::new(customers()),
            Box::new(Source::new(vec![
                ("o_custkey", Column::from_i64(vec![10, 10])),
                ("o_orderkey", Column::from_i64(vec![100, 101])),
            ])),
            &[("c_custkey", "o_custkey")],
            JoinType::LeftOuter,
            None,
            t,
        )
        .unwrap();
        let out = collect(Box::new(j)).unwrap();
        // alice matches twice, bob zero times (defaulted + flag 0).
        assert_eq!(out.rows(), 3);
        let matched = out.columns.last().unwrap().as_i64().unwrap();
        assert_eq!(matched.iter().sum::<i64>(), 2);
    }

    #[test]
    fn residual_restricts_matches() {
        let t = MemoryTracker::new();
        // Join orders to customers but require o_orderkey >= 3.
        let j = HashJoin::new(
            Box::new(orders()),
            Box::new(customers()),
            &[("o_custkey", "c_custkey")],
            JoinType::Inner,
            Some(Expr::col("o_orderkey").ge(Expr::lit(3))),
            t,
        )
        .unwrap();
        let out = collect(Box::new(j)).unwrap();
        assert_eq!(out.columns[0].as_i64().unwrap(), &[3]);
    }

    #[test]
    fn anti_with_residual_is_not_exists() {
        let t = MemoryTracker::new();
        // NOT EXISTS (customer with same key and name 'alice').
        let j = HashJoin::new(
            Box::new(orders()),
            Box::new(customers()),
            &[("o_custkey", "c_custkey")],
            JoinType::Anti,
            Some(Expr::col("c_name").eq(Expr::lit("alice"))),
            t,
        )
        .unwrap();
        let out = collect(Box::new(j)).unwrap();
        // Orders 2 (bob) and 4 (no customer) survive.
        assert_eq!(out.columns[0].as_i64().unwrap(), &[2, 4]);
    }

    #[test]
    fn parallel_build_is_byte_identical() {
        // Tiny morsel budget forces the partitioned build even at this
        // scale; every join flavor must match the serial output exactly.
        let cfg = ParallelConfig { threads: 4, morsel_rows: 1 };
        for jt in [JoinType::Inner, JoinType::LeftOuter, JoinType::Semi, JoinType::Anti] {
            let serial = collect(Box::new(
                HashJoin::new(
                    Box::new(orders()),
                    Box::new(customers()),
                    &[("o_custkey", "c_custkey")],
                    jt,
                    None,
                    MemoryTracker::new(),
                )
                .unwrap(),
            ))
            .unwrap();
            let parallel = collect(Box::new(
                HashJoin::new(
                    Box::new(orders()),
                    Box::new(customers()),
                    &[("o_custkey", "c_custkey")],
                    jt,
                    None,
                    MemoryTracker::new(),
                )
                .unwrap()
                .with_parallel(Some(cfg.clone())),
            ))
            .unwrap();
            assert_eq!(serial, parallel, "{jt:?}");
        }
    }

    #[test]
    fn unknown_key_rejected() {
        let t = MemoryTracker::new();
        assert!(HashJoin::new(
            Box::new(orders()),
            Box::new(customers()),
            &[("nope", "c_custkey")],
            JoinType::Inner,
            None,
            t,
        )
        .is_err());
    }
}
