//! Row-wise transformations: filter and project.

use std::sync::Arc;

use bdcc_obs::OpMetrics;

use crate::batch::{Batch, ColMeta, OpSchema};
use crate::error::Result;
use crate::expr::Expr;
use crate::kernel::{kernel_enabled, FilterProgram};
use crate::ops::{BoxedOp, Operator};

/// Row-wise filter over an arbitrary boolean expression.
///
/// With the selection-vector kernels enabled (see [`crate::kernel`]) the
/// bound predicate is compiled once into a [`FilterProgram`]; batches
/// where every row survives pass through without copying a column.
pub struct Filter {
    input: BoxedOp,
    predicate: Expr,
    program: Option<FilterProgram>,
    schema: OpSchema,
    metrics: Option<Arc<OpMetrics>>,
    annotated: bool,
}

impl Filter {
    /// `predicate` is bound against the input schema here.
    pub fn new(input: BoxedOp, predicate: Expr) -> Result<Filter> {
        Self::with_kernel(input, predicate, kernel_enabled())
    }

    /// Like [`new`](Self::new) with an explicit kernel toggle; `false`
    /// keeps the seed interpreter (the differential-testing oracle).
    pub fn with_kernel(input: BoxedOp, predicate: Expr, kernel: bool) -> Result<Filter> {
        let schema = input.schema().clone();
        let predicate = predicate.bind(&schema)?;
        let program = kernel.then(|| FilterProgram::compile(&predicate, &schema));
        Ok(Filter { input, predicate, program, schema, metrics: None, annotated: false })
    }

    /// Attach the operator's profile metrics (kernel annotations land
    /// there at stream end).
    pub fn with_metrics(mut self, metrics: Option<Arc<OpMetrics>>) -> Filter {
        self.metrics = metrics;
        self
    }

    fn flush_annotations(&mut self) {
        if self.annotated {
            return;
        }
        self.annotated = true;
        if let (Some(m), Some(p)) = (&self.metrics, &self.program) {
            p.annotate(m);
        }
    }
}

impl Operator for Filter {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        while let Some(batch) = self.input.next()? {
            if let Some(program) = &self.program {
                let sel = program.select(&batch)?;
                if !sel.is_empty() {
                    return Ok(Some(sel.take(batch)));
                }
            } else {
                let keep = self.predicate.eval_bool(&batch)?;
                if keep.iter().all(|&k| k) {
                    // All rows pass: hand the batch through unchanged
                    // instead of cloning every column.
                    return Ok(Some(batch));
                }
                if keep.iter().any(|&k| k) {
                    return Ok(Some(batch.filter(&keep)));
                }
            }
        }
        self.flush_annotations();
        Ok(None)
    }
}

impl Drop for Filter {
    fn drop(&mut self) {
        // Limit queries can drop the operator before exhaustion; make
        // sure the annotations still reach the profile.
        self.flush_annotations();
    }
}

/// Projection: compute named expressions over the input.
pub struct Project {
    input: BoxedOp,
    exprs: Vec<Expr>,
    schema: OpSchema,
}

impl Project {
    /// `exprs` are `(expression, output name)` pairs, bound here.
    pub fn new(input: BoxedOp, exprs: Vec<(Expr, String)>) -> Result<Project> {
        let in_schema = input.schema().clone();
        let mut bound = Vec::with_capacity(exprs.len());
        let mut schema = Vec::with_capacity(exprs.len());
        for (e, name) in exprs {
            let dt = e.data_type(&in_schema)?;
            bound.push(e.bind(&in_schema)?);
            schema.push(ColMeta::new(name, dt));
        }
        Ok(Project { input, exprs: bound, schema })
    }

    /// Keep a subset of input columns by name (common case).
    pub fn columns(input: BoxedOp, names: &[&str]) -> Result<Project> {
        let exprs = names.iter().map(|&n| (Expr::col(n), n.to_string())).collect();
        Project::new(input, exprs)
    }
}

impl Operator for Project {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        match self.input.next()? {
            Some(batch) => {
                let columns =
                    self.exprs.iter().map(|e| e.eval(&batch)).collect::<Result<Vec<_>>>()?;
                Ok(Some(Batch::new(columns)))
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::collect;
    use bdcc_storage::{Column, DataType};

    struct Source {
        schema: OpSchema,
        batches: Vec<Batch>,
    }

    impl Source {
        fn new(cols: Vec<(&str, Column)>) -> Source {
            let schema = cols.iter().map(|(n, c)| ColMeta::new(*n, c.data_type())).collect();
            let batch = Batch::new(cols.into_iter().map(|(_, c)| c).collect());
            Source { schema, batches: vec![batch] }
        }
    }

    impl Operator for Source {
        fn schema(&self) -> &OpSchema {
            &self.schema
        }
        fn next(&mut self) -> Result<Option<Batch>> {
            Ok(self.batches.pop())
        }
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let src = Source::new(vec![("a", Column::from_i64(vec![1, 2, 3, 4]))]);
        let f = Filter::new(Box::new(src), Expr::col("a").gt(Expr::lit(2))).unwrap();
        let out = collect(Box::new(f)).unwrap();
        assert_eq!(out.columns[0].as_i64().unwrap(), &[3, 4]);
    }

    #[test]
    fn project_computes_expressions() {
        let src = Source::new(vec![
            ("a", Column::from_i64(vec![1, 2])),
            ("b", Column::from_f64(vec![10.0, 20.0])),
        ]);
        let p = Project::new(
            Box::new(src),
            vec![(Expr::col("b").mul(Expr::col("a")), "prod".to_string())],
        )
        .unwrap();
        assert_eq!(p.schema()[0], ColMeta::new("prod", DataType::Float));
        let out = collect(Box::new(p)).unwrap();
        assert_eq!(out.columns[0].as_f64().unwrap(), &[10.0, 40.0]);
    }

    #[test]
    fn project_columns_subset() {
        let src =
            Source::new(vec![("a", Column::from_i64(vec![1])), ("b", Column::from_i64(vec![2]))]);
        let p = Project::columns(Box::new(src), &["b"]).unwrap();
        let out = collect(Box::new(p)).unwrap();
        assert_eq!(out.arity(), 1);
        assert_eq!(out.columns[0].as_i64().unwrap(), &[2]);
    }
}
