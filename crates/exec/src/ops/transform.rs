//! Row-wise transformations: filter and project.

use crate::batch::{Batch, ColMeta, OpSchema};
use crate::error::Result;
use crate::expr::Expr;
use crate::ops::{BoxedOp, Operator};

/// Row-wise filter over an arbitrary boolean expression.
pub struct Filter {
    input: BoxedOp,
    predicate: Expr,
    schema: OpSchema,
}

impl Filter {
    /// `predicate` is bound against the input schema here.
    pub fn new(input: BoxedOp, predicate: Expr) -> Result<Filter> {
        let schema = input.schema().clone();
        let predicate = predicate.bind(&schema)?;
        Ok(Filter { input, predicate, schema })
    }
}

impl Operator for Filter {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        while let Some(batch) = self.input.next()? {
            let keep = self.predicate.eval_bool(&batch)?;
            if keep.iter().any(|&k| k) {
                return Ok(Some(batch.filter(&keep)));
            }
        }
        Ok(None)
    }
}

/// Projection: compute named expressions over the input.
pub struct Project {
    input: BoxedOp,
    exprs: Vec<Expr>,
    schema: OpSchema,
}

impl Project {
    /// `exprs` are `(expression, output name)` pairs, bound here.
    pub fn new(input: BoxedOp, exprs: Vec<(Expr, String)>) -> Result<Project> {
        let in_schema = input.schema().clone();
        let mut bound = Vec::with_capacity(exprs.len());
        let mut schema = Vec::with_capacity(exprs.len());
        for (e, name) in exprs {
            let dt = e.data_type(&in_schema)?;
            bound.push(e.bind(&in_schema)?);
            schema.push(ColMeta::new(name, dt));
        }
        Ok(Project { input, exprs: bound, schema })
    }

    /// Keep a subset of input columns by name (common case).
    pub fn columns(input: BoxedOp, names: &[&str]) -> Result<Project> {
        let exprs = names.iter().map(|&n| (Expr::col(n), n.to_string())).collect();
        Project::new(input, exprs)
    }
}

impl Operator for Project {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        match self.input.next()? {
            Some(batch) => {
                let columns =
                    self.exprs.iter().map(|e| e.eval(&batch)).collect::<Result<Vec<_>>>()?;
                Ok(Some(Batch::new(columns)))
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::collect;
    use bdcc_storage::{Column, DataType};

    struct Source {
        schema: OpSchema,
        batches: Vec<Batch>,
    }

    impl Source {
        fn new(cols: Vec<(&str, Column)>) -> Source {
            let schema = cols.iter().map(|(n, c)| ColMeta::new(*n, c.data_type())).collect();
            let batch = Batch::new(cols.into_iter().map(|(_, c)| c).collect());
            Source { schema, batches: vec![batch] }
        }
    }

    impl Operator for Source {
        fn schema(&self) -> &OpSchema {
            &self.schema
        }
        fn next(&mut self) -> Result<Option<Batch>> {
            Ok(self.batches.pop())
        }
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let src = Source::new(vec![("a", Column::from_i64(vec![1, 2, 3, 4]))]);
        let f = Filter::new(Box::new(src), Expr::col("a").gt(Expr::lit(2))).unwrap();
        let out = collect(Box::new(f)).unwrap();
        assert_eq!(out.columns[0].as_i64().unwrap(), &[3, 4]);
    }

    #[test]
    fn project_computes_expressions() {
        let src = Source::new(vec![
            ("a", Column::from_i64(vec![1, 2])),
            ("b", Column::from_f64(vec![10.0, 20.0])),
        ]);
        let p = Project::new(
            Box::new(src),
            vec![(Expr::col("b").mul(Expr::col("a")), "prod".to_string())],
        )
        .unwrap();
        assert_eq!(p.schema()[0], ColMeta::new("prod", DataType::Float));
        let out = collect(Box::new(p)).unwrap();
        assert_eq!(out.columns[0].as_f64().unwrap(), &[10.0, 40.0]);
    }

    #[test]
    fn project_columns_subset() {
        let src =
            Source::new(vec![("a", Column::from_i64(vec![1])), ("b", Column::from_i64(vec![2]))]);
        let p = Project::columns(Box::new(src), &["b"]).unwrap();
        let out = collect(Box::new(p)).unwrap();
        assert_eq!(out.arity(), 1);
        assert_eq!(out.columns[0].as_i64().unwrap(), &[2]);
    }
}
