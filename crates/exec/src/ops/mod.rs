//! Physical operators.
//!
//! Pull-based, vectorized: `next()` yields [`Batch`]es until `None`. The
//! operator set mirrors what the paper's evaluation exercises in
//! Vectorwise: plain scans with MinMax block skipping, the BDCC
//! scatter-scan, hash / merge joins, the *sandwich* variants of join and
//! aggregation (group-at-a-time execution over co-clustered inputs, ref
//! [3]), plus the usual filter / project / sort / limit plumbing.

pub mod agg;
pub mod bdcc_scan;
pub mod join;
pub mod merge_join;
pub mod sandwich_join;
pub mod scan;
pub mod sort;
pub mod transform;

use crate::batch::{Batch, OpSchema};
use crate::error::Result;

/// A pull-based physical operator.
pub trait Operator: Send {
    /// Output schema (stable across the operator's lifetime).
    fn schema(&self) -> &OpSchema;
    /// The next batch, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Batch>>;
}

/// Boxed operator, the unit the planner composes.
pub type BoxedOp = Box<dyn Operator>;

/// Drain an operator into a single materialized batch (tests/harness).
pub fn collect(mut op: BoxedOp) -> Result<Batch> {
    use bdcc_storage::Column;
    let mut cols: Vec<Column> = op.schema().iter().map(|m| Column::empty(m.data_type)).collect();
    while let Some(batch) = op.next()? {
        for (dst, src) in cols.iter_mut().zip(&batch.columns) {
            dst.append(src)?;
        }
    }
    Ok(Batch::new(cols))
}
