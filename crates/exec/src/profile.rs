//! Per-operator execution profiling (`EXPLAIN ANALYZE`).
//!
//! The planner builds an [`OpProf`] tree alongside the physical operator
//! tree when the context carries a [`Profiler`] (opt-in via
//! [`QueryContext::with_profiling`] or `BDCC_PROFILE=1`). Each plan
//! operator gets:
//!
//! * a live [`OpMetrics`] block (relaxed atomics, per-thread histogram
//!   shards — see `bdcc-obs` for the overhead contract);
//! * a [`MemoryTracker::child_of`] tracker, so the operator's peak is
//!   visible while every byte still forwards to the query-level total;
//! * for leaves that read storage, an [`IoTracker::child`] that
//!   attributes I/O to the scan while forwarding spans to (and taking
//!   its access classification from) the query-level tracker.
//!
//! Row/batch/time observation happens at the *edges* of the tree: the
//! planner boxes every parent→child edge in a [`ProfiledOp`] whose
//! `next` wraps the child's with a monotonic span and books the returned
//! batch as the child's output and the parent's input. Operators stay
//! oblivious to their own wall time; what they contribute directly are
//! morsel counts and strategy annotations at the decision points that
//! were previously silent (radix vs partial-merge aggregation,
//! partitioned vs single join build, sandwich group short-circuits,
//! streaming-scan path and buffer occupancy).
//!
//! Profiling never changes results: trackers forward to the same roots,
//! wrappers pass batches through untouched, and a disabled profiler
//! allocates nothing and wraps nothing — `tests/profile_invariants.rs`
//! pins both properties.
//!
//! [`QueryContext::with_profiling`]: crate::planner::QueryContext::with_profiling

use std::sync::{Arc, Mutex};

use bdcc_obs::{OpMetrics, ProfileNode, QueryProfile, SpanTimer};
use bdcc_storage::{IoStats, IoTracker};

use crate::batch::{Batch, OpSchema};
use crate::error::Result;
use crate::memory::MemoryTracker;
use crate::ops::{BoxedOp, Operator};

/// Live profile node for one plan operator: its metric block, its child
/// memory tracker, its I/O attribution (leaves only), and the child
/// nodes — the tree the planner mirrors off the physical plan.
#[derive(Debug)]
pub struct OpProf {
    /// Operator label, e.g. `Aggregate(parallel)` or `Scan(lineitem)`.
    pub label: String,
    pub metrics: Arc<OpMetrics>,
    /// Child of the query tracker: operator peak, forwarded to the query
    /// total (so per-operator peak ≤ query peak holds structurally).
    pub tracker: Arc<MemoryTracker>,
    /// Child of the query I/O tracker (scan leaves and fragment-fused
    /// aggregates; `None` for operators that never touch storage).
    pub io: Option<IoTracker>,
    pub children: Vec<Arc<OpProf>>,
}

impl OpProf {
    /// Freeze the live readings into a [`ProfileNode`] subtree.
    pub fn freeze(&self) -> ProfileNode {
        let children = self.children.iter().map(|c| c.freeze()).collect();
        let mut node = ProfileNode::from_metrics(self.label.clone(), &self.metrics, children);
        node.peak_memory = self.tracker.peak();
        if let Some(io) = &self.io {
            let stats = io.stats();
            node.io_bytes = stats.bytes_read;
            node.io_random_seeks = stats.random_seeks;
            node.io_sequential = stats.sequential_accesses;
        }
        node
    }
}

/// The per-query profile collector: a shared slot the planner stores the
/// root [`OpProf`] into and the runner harvests after execution.
/// `Clone` shares the slot (it rides inside the cloneable `QueryContext`).
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    root: Arc<Mutex<Option<Arc<OpProf>>>>,
}

impl Profiler {
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Install the root node (called by `plan_query` once the tree is
    /// built; replanning with the same context replaces it).
    pub fn set_root(&self, root: Arc<OpProf>) {
        *self.root.lock().expect("profiler root poisoned") = Some(root);
    }

    pub fn root(&self) -> Option<Arc<OpProf>> {
        self.root.lock().expect("profiler root poisoned").clone()
    }

    /// Harvest the finished query into a [`QueryProfile`]. The caller
    /// supplies the query-level roll-ups (wall time, tracker peak, I/O
    /// stats, pool-counter deltas) — the profiler only owns the tree.
    /// `None` when no plan was profiled.
    pub fn finalize(
        &self,
        wall_nanos: u64,
        peak_memory: u64,
        io: &IoStats,
        pool: Vec<(String, u64)>,
    ) -> Option<QueryProfile> {
        let root = self.root()?;
        Some(QueryProfile {
            root: root.freeze(),
            wall_nanos,
            peak_memory,
            io_bytes: io.bytes_read,
            io_random_seeks: io.random_seeks,
            io_sequential: io.sequential_accesses,
            pool,
        })
    }
}

/// The parent→child edge wrapper: times the child's `next` calls and
/// books every returned batch as the child's output and the parent's
/// input (the root edge has no parent). Batches pass through untouched.
pub struct ProfiledOp {
    inner: BoxedOp,
    own: Arc<OpMetrics>,
    parent: Option<Arc<OpMetrics>>,
}

impl ProfiledOp {
    /// Wrap `inner`, boxed and ready to splice into the operator tree.
    pub fn boxed(inner: BoxedOp, own: Arc<OpMetrics>, parent: Option<Arc<OpMetrics>>) -> BoxedOp {
        Box::new(ProfiledOp { inner, own, parent })
    }
}

impl Operator for ProfiledOp {
    fn schema(&self) -> &OpSchema {
        self.inner.schema()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        let span = SpanTimer::start();
        let out = self.inner.next();
        let nanos = span.elapsed_nanos();
        self.own.wall_nanos.add(nanos);
        self.own.next_nanos.record(nanos);
        if let Ok(Some(batch)) = &out {
            let rows = batch.rows() as u64;
            self.own.batches_out.add(1);
            self.own.rows_out.add(rows);
            if let Some(parent) = &self.parent {
                parent.batches_in.add(1);
                parent.rows_in.add(rows);
            }
        }
        out
    }
}

/// Box `op` in the [`ProfiledOp`] edge between `child` and `parent`
/// profile nodes; identity when the subtree is unprofiled.
pub fn wrap_edge(
    op: BoxedOp,
    child: &Option<Arc<OpProf>>,
    parent: &Option<Arc<OpProf>>,
) -> BoxedOp {
    match child {
        Some(c) => ProfiledOp::boxed(
            op,
            Arc::clone(&c.metrics),
            parent.as_ref().map(|p| Arc::clone(&p.metrics)),
        ),
        None => op,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::collect;
    use bdcc_storage::Column;

    struct TwoBatches {
        schema: OpSchema,
        left: usize,
    }

    impl Operator for TwoBatches {
        fn schema(&self) -> &OpSchema {
            &self.schema
        }
        fn next(&mut self) -> Result<Option<Batch>> {
            if self.left == 0 {
                return Ok(None);
            }
            self.left -= 1;
            Ok(Some(Batch::new(vec![Column::from_i64(vec![1, 2, 3])])))
        }
    }

    fn two_batches() -> BoxedOp {
        let schema = vec![crate::batch::ColMeta::new("x", bdcc_storage::DataType::Int)];
        Box::new(TwoBatches { schema, left: 2 })
    }

    #[test]
    fn edge_books_child_out_and_parent_in() {
        let child = OpMetrics::new();
        let parent = OpMetrics::new();
        let wrapped =
            ProfiledOp::boxed(two_batches(), Arc::clone(&child), Some(Arc::clone(&parent)));
        let out = collect(wrapped).unwrap();
        assert_eq!(out.rows(), 6);
        assert_eq!(child.batches_out.get(), 2);
        assert_eq!(child.rows_out.get(), 6);
        assert_eq!(parent.batches_in.get(), 2);
        assert_eq!(parent.rows_in.get(), 6);
        // Three next() calls (two batches + the terminal None) were timed.
        assert_eq!(child.next_nanos.count(), 3);
    }

    #[test]
    fn freeze_copies_tracker_and_io_readings() {
        let query_tracker = MemoryTracker::new();
        let query_io = IoTracker::new();
        let prof = OpProf {
            label: "Scan(t)".into(),
            metrics: OpMetrics::new(),
            tracker: MemoryTracker::child_of(&query_tracker),
            io: Some(query_io.child()),
            children: vec![],
        };
        let _g = prof.tracker.register(512);
        prof.io.as_ref().unwrap().record_span(1, 0, 4095);
        let node = prof.freeze();
        assert_eq!(node.peak_memory, 512);
        assert_eq!(node.io_bytes, 4096);
        // Both readings forwarded to the query-level roots too.
        assert_eq!(query_tracker.peak(), 512);
        assert_eq!(query_io.stats().bytes_read, 4096);
    }

    #[test]
    fn finalize_requires_a_root() {
        let p = Profiler::new();
        assert!(p.finalize(1, 2, &IoStats::default(), vec![]).is_none());
        p.set_root(Arc::new(OpProf {
            label: "Limit".into(),
            metrics: OpMetrics::new(),
            tracker: MemoryTracker::new(),
            io: None,
            children: vec![],
        }));
        let q = p.finalize(7, 9, &IoStats::default(), vec![("jobs".into(), 3)]).unwrap();
        assert_eq!(q.wall_nanos, 7);
        assert_eq!(q.peak_memory, 9);
        assert_eq!(q.pool, vec![("jobs".to_string(), 3)]);
        assert_eq!(q.root.label, "Limit");
    }
}
