//! Per-query governance: cooperative cancellation, deadlines, memory
//! budgets, and fault injection.
//!
//! A [`Governor`] is the query-side counterpart of the serving layer's
//! admission control. It is carried by
//! [`QueryContext`](crate::planner::QueryContext) and consulted at every
//! morsel-grained checkpoint — streaming-scan producers, probe rounds,
//! aggregation tasks, sandwich group merges, and (via [`GovernedOp`])
//! each batch pulled through the plan root. One `check` call decides,
//! in priority order:
//!
//! 1. **cancellation** — the shared [`CancelToken`] was tripped (by a
//!    client, the deadline, or the budget — the token remembers which);
//! 2. **deadline** — `Instant::now()` passed the query's deadline;
//! 3. **budget** — the query's [`MemoryTracker`] current usage exceeds
//!    its byte budget;
//! 4. **injection** — an installed [`FaultInjector`] rolled a fault at
//!    this site (delay → sleep, error → `ExecError::Injected`, panic →
//!    a real panic exercising the pool's unwind machinery).
//!
//! Deadline and budget violations also trip the token, so every worker
//! of the fan-out unwinds with the *same* typed reason no matter which
//! checkpoint it reaches first. The default `Governor` is inert
//! (`None` inside) and costs one branch per checkpoint, keeping
//! ungoverned execution byte-identical to the pre-serving code path.

use std::sync::Arc;
use std::time::Instant;

use bdcc_pool::{CancelReason, CancelToken, Fault, FaultInjector};

use crate::batch::{Batch, OpSchema};
use crate::error::{ExecError, Result};
use crate::memory::MemoryTracker;
use crate::ops::{BoxedOp, Operator};

/// The limits of one governed query. Cloned on write (`Arc::make_mut`)
/// by the `QueryContext` builder methods.
#[derive(Debug, Clone)]
struct GovInner {
    token: CancelToken,
    deadline: Option<Instant>,
    budget: Option<u64>,
    /// The tracker whose `current()` the budget is checked against —
    /// the query-level root, so every operator byte counts.
    tracker: Arc<MemoryTracker>,
    injector: Option<Arc<FaultInjector>>,
}

/// Cheap cloneable handle to a query's limits; inert by default. See
/// the [module docs](self) for the checkpoint contract.
#[derive(Debug, Clone, Default)]
pub struct Governor {
    inner: Option<Arc<GovInner>>,
}

impl Governor {
    /// An inert governor (every check passes; one branch of overhead).
    pub fn none() -> Governor {
        Governor::default()
    }

    /// Does this governor impose any limit? Planner wrapping and
    /// operator checkpoints are installed only when this is true, so
    /// ungoverned plans are structurally unchanged.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// The query's cancel token, if governed.
    pub fn token(&self) -> Option<CancelToken> {
        self.inner.as_ref().map(|i| i.token.clone())
    }

    /// The query's memory budget in bytes, if one is set (what the
    /// [`MemoryBroker`](crate::broker::MemoryBroker) derives its
    /// pressure thresholds from).
    pub fn budget(&self) -> Option<u64> {
        self.inner.as_ref().and_then(|i| i.budget)
    }

    fn materialize(&mut self, tracker: &Arc<MemoryTracker>) -> &mut GovInner {
        let inner = self.inner.get_or_insert_with(|| {
            Arc::new(GovInner {
                token: CancelToken::new(),
                deadline: None,
                budget: None,
                tracker: Arc::clone(tracker),
                injector: None,
            })
        });
        Arc::make_mut(inner)
    }

    /// Attach an externally held cancel token.
    pub fn set_cancel(&mut self, token: CancelToken, tracker: &Arc<MemoryTracker>) {
        self.materialize(tracker).token = token;
    }

    /// Set an absolute deadline.
    pub fn set_deadline(&mut self, at: Instant, tracker: &Arc<MemoryTracker>) {
        self.materialize(tracker).deadline = Some(at);
    }

    /// Set a tracked-memory budget in bytes.
    pub fn set_budget(&mut self, bytes: u64, tracker: &Arc<MemoryTracker>) {
        self.materialize(tracker).budget = Some(bytes);
    }

    /// Attach a fault injector consulted at every checkpoint.
    pub fn set_injector(&mut self, injector: Arc<FaultInjector>, tracker: &Arc<MemoryTracker>) {
        self.materialize(tracker).injector = Some(injector);
    }

    /// One checkpoint: cancellation, deadline, budget, then injection —
    /// see the [module docs](self). `site` names the call site in
    /// injected-fault messages.
    pub fn check(&self, site: &'static str) -> Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if let Some(reason) = inner.token.reason() {
            return Err(reason_error(reason, inner));
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                inner.token.cancel_with(CancelReason::DeadlineExceeded);
                return Err(ExecError::DeadlineExceeded);
            }
        }
        if let Some(budget) = inner.budget {
            let used = inner.tracker.current();
            if used > budget {
                inner.token.cancel_with(CancelReason::BudgetExceeded);
                return Err(ExecError::BudgetExceeded { used, budget });
            }
        }
        if let Some(injector) = &inner.injector {
            match injector.fault_at(site, true) {
                Some(Fault::Delay(d)) => std::thread::sleep(d),
                Some(Fault::Error(msg)) => return Err(ExecError::Injected(msg)),
                Some(Fault::Panic(msg)) => panic!("{msg}"),
                None => {}
            }
        }
        Ok(())
    }
}

/// The typed error for a tripped token. Budget trips re-read the
/// tracker: the number is a best-effort snapshot for the message, the
/// *decision* was made by whichever checkpoint tripped the token.
fn reason_error(reason: CancelReason, inner: &GovInner) -> ExecError {
    match reason {
        CancelReason::Cancelled => ExecError::Cancelled,
        CancelReason::DeadlineExceeded => ExecError::DeadlineExceeded,
        CancelReason::BudgetExceeded => ExecError::BudgetExceeded {
            used: inner.tracker.current(),
            budget: inner.budget.unwrap_or(0),
        },
    }
}

/// Checkpoint wrapper installed by the planner at the plan root (and on
/// serial leaf scans) of governed queries only: polls the governor
/// before every batch, so even an all-serial plan observes cancellation
/// at batch granularity.
pub struct GovernedOp {
    input: BoxedOp,
    governor: Governor,
    site: &'static str,
}

impl GovernedOp {
    pub fn new(input: BoxedOp, governor: Governor, site: &'static str) -> GovernedOp {
        GovernedOp { input, governor, site }
    }
}

impl Operator for GovernedOp {
    fn schema(&self) -> &OpSchema {
        self.input.schema()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        self.governor.check(self.site)?;
        self.input.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn governed(
        f: impl FnOnce(&mut Governor, &Arc<MemoryTracker>),
    ) -> (Governor, Arc<MemoryTracker>) {
        let tracker = MemoryTracker::new();
        let mut g = Governor::none();
        f(&mut g, &tracker);
        (g, tracker)
    }

    #[test]
    fn inert_governor_always_passes() {
        let g = Governor::none();
        assert!(!g.is_active());
        assert_eq!(g.check("x"), Ok(()));
    }

    #[test]
    fn cancel_token_trips_checkpoints() {
        let token = CancelToken::new();
        let (g, _t) = governed(|g, t| g.set_cancel(token.clone(), t));
        assert_eq!(g.check("x"), Ok(()));
        token.cancel();
        assert_eq!(g.check("x"), Err(ExecError::Cancelled));
    }

    #[test]
    fn expired_deadline_trips_and_cancels_the_token() {
        let (g, _t) = governed(|g, t| g.set_deadline(Instant::now() - Duration::from_millis(1), t));
        assert_eq!(g.check("x"), Err(ExecError::DeadlineExceeded));
        // The trip is sticky: the token now reports the same reason.
        assert_eq!(g.check("x"), Err(ExecError::DeadlineExceeded));
        assert_eq!(g.token().unwrap().reason(), Some(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn over_budget_trips_with_usage_numbers() {
        let (g, tracker) = governed(|g, t| g.set_budget(100, t));
        tracker.grow(60);
        assert_eq!(g.check("x"), Ok(()));
        tracker.grow(60);
        assert_eq!(g.check("x"), Err(ExecError::BudgetExceeded { used: 120, budget: 100 }));
        tracker.shrink(120);
    }

    #[test]
    fn injected_error_surfaces_typed() {
        let plan = bdcc_pool::FaultPlan::parse("err=1.0,seed=9").unwrap();
        let inj = Arc::new(FaultInjector::new(plan));
        let (g, _t) = governed(|g, t| g.set_injector(inj, t));
        match g.check("probe-round") {
            Err(ExecError::Injected(msg)) => assert!(msg.contains("probe-round")),
            other => panic!("expected injected error, got {other:?}"),
        }
    }
}
