//! Robust concurrent query serving: admission control, deadlines,
//! cooperative cancellation, and per-query memory budgets over the
//! shared execution engine.
//!
//! A [`Server`] owns `max_concurrent` session threads that execute
//! queries against one shared [`SchemeDb`], all fan-out riding the same
//! process-wide persistent [`WorkerPool`](crate::parallel::pool::WorkerPool).
//! Clients call [`Server::submit`] from any thread and get a
//! [`QueryHandle`] to wait on (or cancel). The contract:
//!
//! * **Admission control.** At most `max_concurrent` queries execute at
//!   once; at most `queue_depth` more wait in the admission queue. A
//!   submission past both bounds is bounced *immediately* with
//!   [`ServeError::Overloaded`] — overload produces typed backpressure,
//!   never unbounded queueing or process death.
//! * **Deadlines charge queue wait.** A deadline is fixed at *submit*
//!   time (`Instant::now() + deadline`), so time spent waiting for
//!   admission counts against it; an expired query fails with
//!   [`ExecError::DeadlineExceeded`] at its first checkpoint instead of
//!   occupying a session.
//! * **Cooperative cancellation.** Every handle carries a
//!   [`CancelToken`] threaded through the query's
//!   [`Governor`](crate::govern::Governor). [`QueryHandle::cancel`]
//!   trips it; every morsel loop, probe round, streaming-scan producer
//!   and root-batch pull checks it, so the query unwinds mid-fan-out
//!   within one morsel and the pool's cancel-on-drop machinery reclaims
//!   in-flight work. RAII [`MemoryGuard`](crate::memory::MemoryGuard)s
//!   release every tracked byte on the way out.
//! * **Memory budgets are per-query.** Each query runs on a tracker
//!   that is a [`MemoryTracker::child_of`] the server's root, so the
//!   server can observe aggregate pressure while a budget violation
//!   fails *only* the over-budget query
//!   ([`ExecError::BudgetExceeded`]) — its peers and the process keep
//!   running.
//! * **Panics are contained.** A worker panic (real or injected)
//!   unwinds the one query, is caught at the session boundary, and
//!   surfaces as [`ServeError::Panicked`] with the pool's labeled
//!   payload; the session thread and the worker pool stay live for the
//!   next query.
//!
//! Fault injection (see [`bdcc_pool::inject`]) plugs in via
//! [`ServerConfig::injector`]: the injector is consulted at every
//! governor checkpoint (delays, typed simulated errors, panics), which
//! is how the stress suite proves the guarantees above hold under fire.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bdcc_obs::ServeMetrics;
use bdcc_pool::{CancelToken, FaultInjector};
use bdcc_storage::IoTracker;

use crate::batch::Batch;
use crate::error::{ExecError, Result};
use crate::govern::Governor;
use crate::memory::MemoryTracker;
use crate::parallel::ParallelConfig;
use crate::plan::Node;
use crate::planner::QueryContext;
use crate::run::run_plan;
use crate::scheme::SchemeDb;

/// A unit of server work: any closure from the per-query context to a
/// result batch (a raw plan via [`Server::submit_plan`], a TPC-H query
/// function, ...). The closure must route execution through the given
/// context so governance checkpoints see the query.
pub type QueryJob = Box<dyn FnOnce(&QueryContext) -> Result<Batch> + Send + 'static>;

/// Serving limits. `Default` is a small interactive endpoint: 4
/// sessions, 16 queued, no deadline, no budget, serial plans.
#[derive(Clone)]
pub struct ServerConfig {
    /// Session threads — queries executing at once.
    pub max_concurrent: usize,
    /// Bound on the admission queue; submissions past it are bounced
    /// with [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Deadline applied to every query that does not override it.
    pub default_deadline: Option<Duration>,
    /// Memory budget (bytes of tracked operator state) applied to every
    /// query that does not override it.
    pub default_budget: Option<u64>,
    /// Parallel config installed on every query context (`None` plans
    /// serially; fan-out still shares the process-wide pool).
    pub parallel: Option<ParallelConfig>,
    /// Fault injector consulted at every governance checkpoint of every
    /// query (the stress harness; `None` in production).
    pub injector: Option<Arc<FaultInjector>>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_concurrent: 4,
            queue_depth: 16,
            default_deadline: None,
            default_budget: None,
            parallel: None,
            injector: None,
        }
    }
}

/// Per-submission overrides of the server defaults.
#[derive(Clone, Default)]
pub struct QueryOptions {
    /// Deadline relative to submission (overrides the server default).
    pub deadline: Option<Duration>,
    /// Memory budget in bytes (overrides the server default).
    pub budget: Option<u64>,
}

/// Typed serving failures. Execution failures (including cancellation,
/// deadline, budget and injected faults) arrive as `Exec`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission queue at capacity; resubmit later.
    Overloaded { running: usize, queued: usize, depth: usize },
    /// The server is draining; no new work is accepted.
    ShuttingDown,
    /// The query failed with a typed execution error.
    Exec(ExecError),
    /// The query's execution panicked; the panic was contained to this
    /// query (payload carries the pool's labeled message when the panic
    /// happened inside a labeled pool job).
    Panicked(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { running, queued, depth } => {
                write!(f, "server overloaded: {running} running, {queued}/{depth} queued")
            }
            ServeError::ShuttingDown => write!(f, "server shutting down"),
            ServeError::Exec(e) => write!(f, "query failed: {e}"),
            ServeError::Panicked(m) => write!(f, "query panicked: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A completed query: its result plus serving measurements.
#[derive(Debug, PartialEq)]
pub struct QueryOutcome {
    pub batch: Batch,
    /// Time between admission and execution start.
    pub queue_wait: Duration,
    /// Execution wall time.
    pub exec: Duration,
    /// Peak tracked operator memory of this query alone.
    pub peak_memory: u64,
}

/// What a session publishes when a query reaches a terminal state.
type TicketResult = std::result::Result<QueryOutcome, ServeError>;

/// Client ↔ session rendezvous for one query.
struct TicketShared {
    state: Mutex<Option<TicketResult>>,
    cond: Condvar,
    cancel: CancelToken,
}

impl TicketShared {
    fn complete(&self, result: TicketResult) {
        let mut state = self.state.lock().expect("ticket state poisoned");
        *state = Some(result);
        self.cond.notify_all();
    }
}

/// Client-side handle to a submitted query: wait for the outcome or
/// cancel it (from any thread, at any point — queued or mid-fan-out).
pub struct QueryHandle {
    shared: Arc<TicketShared>,
}

impl QueryHandle {
    /// Trip the query's cancel token. Idempotent; if the query already
    /// reached a terminal state this is a no-op. A queued query fails at
    /// its first checkpoint without doing work; a running query unwinds
    /// at the next morsel boundary.
    pub fn cancel(&self) {
        self.shared.cancel.cancel();
    }

    /// A clone of the query's cancel token (e.g. to hand to a watchdog).
    pub fn cancel_token(&self) -> CancelToken {
        self.shared.cancel.clone()
    }

    /// Block until the query reaches a terminal state.
    pub fn wait(self) -> TicketResult {
        let mut state = self.shared.state.lock().expect("ticket state poisoned");
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            state = self.shared.cond.wait(state).expect("ticket state poisoned");
        }
    }
}

/// One admitted query waiting for a session.
struct Ticket {
    job: QueryJob,
    shared: Arc<TicketShared>,
    deadline: Option<Instant>,
    budget: Option<u64>,
    enqueued: Instant,
}

struct ServeState {
    queue: VecDeque<Ticket>,
    running: usize,
    shutdown: bool,
}

struct ServerShared {
    sdb: Arc<SchemeDb>,
    cfg: ServerConfig,
    /// Parent of every query's tracker: aggregate memory pressure.
    mem_root: Arc<MemoryTracker>,
    metrics: Arc<ServeMetrics>,
    state: Mutex<ServeState>,
    cond: Condvar,
}

/// Concurrent query endpoint; see the [module docs](self) for the
/// admission/cancellation/budget contract.
pub struct Server {
    shared: Arc<ServerShared>,
    sessions: Vec<JoinHandle<()>>,
}

impl Server {
    /// Start a server with `cfg.max_concurrent` session threads over the
    /// shared database.
    pub fn new(sdb: Arc<SchemeDb>, cfg: ServerConfig) -> Server {
        let max_concurrent = cfg.max_concurrent.max(1);
        if let Some(par) = &cfg.parallel {
            if par.threads > 1 {
                crate::parallel::pool::WorkerPool::shared().ensure_workers(par.threads);
            }
        }
        let shared = Arc::new(ServerShared {
            sdb,
            cfg,
            mem_root: MemoryTracker::new(),
            metrics: Arc::new(ServeMetrics::new()),
            state: Mutex::new(ServeState { queue: VecDeque::new(), running: 0, shutdown: false }),
            cond: Condvar::new(),
        });
        let sessions = (0..max_concurrent)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bdcc-session-{i}"))
                    .spawn(move || session_loop(&shared))
                    .expect("spawn session thread")
            })
            .collect();
        Server { shared, sessions }
    }

    /// Submit a query job with the server's default limits.
    pub fn submit<F>(&self, job: F) -> std::result::Result<QueryHandle, ServeError>
    where
        F: FnOnce(&QueryContext) -> Result<Batch> + Send + 'static,
    {
        self.submit_with(QueryOptions::default(), job)
    }

    /// Submit a logical plan (convenience over [`submit`](Self::submit)).
    pub fn submit_plan(&self, plan: Node) -> std::result::Result<QueryHandle, ServeError> {
        self.submit(move |ctx| run_plan(ctx, &plan))
    }

    /// Submit with per-query deadline/budget overrides. Admission is
    /// decided under the state lock: either the query enters the bounded
    /// queue or the caller gets `Overloaded` *now* — submission never
    /// blocks on execution.
    pub fn submit_with<F>(
        &self,
        opts: QueryOptions,
        job: F,
    ) -> std::result::Result<QueryHandle, ServeError>
    where
        F: FnOnce(&QueryContext) -> Result<Batch> + Send + 'static,
    {
        let m = &self.shared.metrics;
        m.submitted.add(1);
        let deadline =
            opts.deadline.or(self.shared.cfg.default_deadline).map(|d| Instant::now() + d);
        let budget = opts.budget.or(self.shared.cfg.default_budget);
        let shared = Arc::new(TicketShared {
            state: Mutex::new(None),
            cond: Condvar::new(),
            cancel: CancelToken::new(),
        });
        let ticket = Ticket {
            job: Box::new(job),
            shared: Arc::clone(&shared),
            deadline,
            budget,
            enqueued: Instant::now(),
        };
        {
            let mut st = self.shared.state.lock().expect("server state poisoned");
            if st.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if st.queue.len() >= self.shared.cfg.queue_depth {
                m.rejected.add(1);
                return Err(ServeError::Overloaded {
                    running: st.running,
                    queued: st.queue.len(),
                    depth: self.shared.cfg.queue_depth,
                });
            }
            st.queue.push_back(ticket);
        }
        m.admitted.add(1);
        self.shared.cond.notify_one();
        Ok(QueryHandle { shared })
    }

    /// Serving telemetry (monotone counters; safe to read any time).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// Aggregate tracked memory across all in-flight queries.
    pub fn memory(&self) -> &Arc<MemoryTracker> {
        &self.shared.mem_root
    }

    /// `(running, queued)` snapshot.
    pub fn load(&self) -> (usize, usize) {
        let st = self.shared.state.lock().expect("server state poisoned");
        (st.running, st.queue.len())
    }
}

impl Drop for Server {
    /// Drain: stop admitting, bounce queued queries with `ShuttingDown`,
    /// let running queries finish, join every session thread.
    fn drop(&mut self) {
        let drained: Vec<Ticket> = {
            let mut st = self.shared.state.lock().expect("server state poisoned");
            st.shutdown = true;
            st.queue.drain(..).collect()
        };
        for t in drained {
            t.shared.complete(Err(ServeError::ShuttingDown));
        }
        self.shared.cond.notify_all();
        for s in self.sessions.drain(..) {
            let _ = s.join();
        }
    }
}

/// One session thread: pop tickets until shutdown.
fn session_loop(shared: &ServerShared) {
    let mut st = shared.state.lock().expect("server state poisoned");
    loop {
        if let Some(ticket) = st.queue.pop_front() {
            st.running += 1;
            drop(st);
            run_ticket(shared, ticket);
            st = shared.state.lock().expect("server state poisoned");
            st.running -= 1;
            continue;
        }
        if st.shutdown {
            return;
        }
        st = shared.cond.wait(st).expect("server state poisoned");
    }
}

/// Execute one admitted query and publish its terminal state. Panics are
/// contained here: the catch_unwind boundary drops the whole operator
/// tree (releasing tracked memory and cancelling in-flight pool work via
/// the PR 5 drop machinery) before the session takes its next ticket.
fn run_ticket(shared: &ServerShared, ticket: Ticket) {
    let m = &shared.metrics;
    let queue_wait = ticket.enqueued.elapsed();
    m.queue_wait_nanos.record(queue_wait.as_nanos() as u64);
    let tracker = MemoryTracker::child_of(&shared.mem_root);
    let mut ctx = QueryContext {
        sdb: Arc::clone(&shared.sdb),
        broker: crate::broker::MemoryBroker::from_env(&tracker, None),
        tracker,
        io: IoTracker::new(),
        parallel: shared.cfg.parallel.clone(),
        profiler: None,
        governor: Governor::none(),
        kernel: crate::kernel::kernel_enabled(),
    }
    .with_cancel(ticket.shared.cancel.clone());
    if let Some(at) = ticket.deadline {
        ctx = ctx.with_deadline_at(at);
    }
    if let Some(bytes) = ticket.budget {
        ctx = ctx.with_memory_budget(bytes);
    }
    if let Some(inj) = &shared.cfg.injector {
        ctx = ctx.with_fault_injector(Arc::clone(inj));
    }
    let start = Instant::now();
    let executed = catch_unwind(AssertUnwindSafe(|| (ticket.job)(&ctx)));
    let exec = start.elapsed();
    m.exec_nanos.record(exec.as_nanos() as u64);
    let peak_memory = ctx.tracker.peak();
    debug_assert_eq!(
        ctx.tracker.current(),
        0,
        "query finished with tracked bytes still registered"
    );
    let result = match executed {
        Ok(Ok(batch)) => {
            m.completed.add(1);
            Ok(QueryOutcome { batch, queue_wait, exec, peak_memory })
        }
        Ok(Err(e)) => {
            match &e {
                ExecError::Cancelled => m.cancelled.add(1),
                ExecError::DeadlineExceeded => m.deadline_exceeded.add(1),
                ExecError::BudgetExceeded { .. } => m.budget_exceeded.add(1),
                ExecError::Injected(_) => m.injected.add(1),
                _ => m.failed.add(1),
            }
            Err(ServeError::Exec(e))
        }
        Err(payload) => {
            m.panicked.add(1);
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(ServeError::Panicked(msg))
        }
    };
    ticket.shared.complete(result);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanBuilder;
    use crate::scheme::plain_scheme;
    use bdcc_catalog::{Catalog, ColumnDef, Database, TableDef};
    use bdcc_storage::{Column, DataType, TableBuilder};

    /// A one-table database big enough that a scan does real work.
    fn tiny_db(rows: i64) -> Arc<SchemeDb> {
        let mut cat = Catalog::new();
        let t = cat
            .create_table(TableDef {
                name: "t".into(),
                columns: vec![
                    ColumnDef { name: "k".into(), data_type: DataType::Int },
                    ColumnDef { name: "v".into(), data_type: DataType::Int },
                ],
                primary_key: vec!["k".into()],
            })
            .unwrap();
        let mut db = Database::new(cat);
        db.attach(
            t,
            Arc::new(
                TableBuilder::new("t")
                    .column("k", Column::from_i64((0..rows).collect()))
                    .column("v", Column::from_i64((0..rows).map(|i| i * 2).collect()))
                    .build()
                    .unwrap(),
            ),
        );
        Arc::new(plain_scheme(&db))
    }

    fn scan_plan() -> Node {
        PlanBuilder::new().scan("t", &["k", "v"], Vec::new())
    }

    #[test]
    fn serves_a_query_to_completion() {
        let server = Server::new(tiny_db(100), ServerConfig::default());
        let out = server.submit_plan(scan_plan()).unwrap().wait().unwrap();
        assert_eq!(out.batch.rows(), 100);
        assert_eq!(server.metrics().completed.get(), 1);
        assert_eq!(server.memory().current(), 0);
    }

    #[test]
    fn overload_is_bounced_typed() {
        // One session blocked on a slow job, depth-1 queue: the third
        // submission must bounce immediately with Overloaded.
        let cfg = ServerConfig { max_concurrent: 1, queue_depth: 1, ..ServerConfig::default() };
        let server = Server::new(tiny_db(10), cfg);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g2 = Arc::clone(&gate);
        let running = server
            .submit(move |_ctx| {
                let (lock, cond) = &*g2;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cond.wait(open).unwrap();
                }
                Ok(Batch::new(vec![Column::from_i64(vec![1])]))
            })
            .unwrap();
        // Wait until the slow job occupies the one session.
        while server.load().0 == 0 {
            std::thread::yield_now();
        }
        let queued = server.submit_plan(scan_plan()).unwrap();
        match server.submit_plan(scan_plan()) {
            Err(ServeError::Overloaded { queued: q, depth, .. }) => {
                assert_eq!((q, depth), (1, 1));
            }
            other => panic!("expected Overloaded, got {:?}", other.map(|_| ())),
        }
        assert_eq!(server.metrics().rejected.get(), 1);
        *gate.0.lock().unwrap() = true;
        gate.1.notify_all();
        running.wait().unwrap();
        queued.wait().unwrap();
    }

    #[test]
    fn cancelled_while_queued_never_runs() {
        let cfg = ServerConfig { max_concurrent: 1, queue_depth: 4, ..ServerConfig::default() };
        let server = Server::new(tiny_db(10), cfg);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g2 = Arc::clone(&gate);
        let running = server
            .submit(move |_ctx| {
                let (lock, cond) = &*g2;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cond.wait(open).unwrap();
                }
                Ok(Batch::new(vec![Column::from_i64(vec![1])]))
            })
            .unwrap();
        while server.load().0 == 0 {
            std::thread::yield_now();
        }
        let victim = server.submit_plan(scan_plan()).unwrap();
        victim.cancel();
        *gate.0.lock().unwrap() = true;
        gate.1.notify_all();
        assert_eq!(victim.wait(), Err(ServeError::Exec(ExecError::Cancelled)));
        running.wait().unwrap();
        assert_eq!(server.metrics().cancelled.get(), 1);
    }

    #[test]
    fn expired_deadline_fails_typed() {
        let server = Server::new(tiny_db(100), ServerConfig::default());
        let opts = QueryOptions { deadline: Some(Duration::ZERO), budget: None };
        let h = server.submit_with(opts, |ctx| run_plan(ctx, &scan_plan())).unwrap();
        assert_eq!(h.wait(), Err(ServeError::Exec(ExecError::DeadlineExceeded)));
        assert_eq!(server.metrics().deadline_exceeded.get(), 1);
    }

    #[test]
    fn panic_is_contained_to_one_query() {
        let server = Server::new(tiny_db(100), ServerConfig::default());
        let boom = server.submit(|_ctx| -> Result<Batch> { panic!("session goes boom") });
        match boom.unwrap().wait() {
            Err(ServeError::Panicked(m)) => assert!(m.contains("boom")),
            other => panic!("expected Panicked, got {:?}", other.map(|_| ())),
        }
        // The session survives and serves the next query.
        let out = server.submit_plan(scan_plan()).unwrap().wait().unwrap();
        assert_eq!(out.batch.rows(), 100);
        assert_eq!(server.metrics().panicked.get(), 1);
    }

    #[test]
    fn shutdown_bounces_queued_queries() {
        let cfg = ServerConfig { max_concurrent: 1, queue_depth: 4, ..ServerConfig::default() };
        let server = Server::new(tiny_db(10), cfg);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g2 = Arc::clone(&gate);
        let running = server
            .submit(move |_ctx| {
                let (lock, cond) = &*g2;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cond.wait(open).unwrap();
                }
                Ok(Batch::new(vec![Column::from_i64(vec![1])]))
            })
            .unwrap();
        while server.load().0 == 0 {
            std::thread::yield_now();
        }
        let queued = server.submit_plan(scan_plan()).unwrap();
        // Drop drains the queue *before* joining sessions, so the queued
        // query is bounced while the running one still blocks the only
        // session; the checker then opens the gate so the join finishes.
        let g3 = Arc::clone(&gate);
        let checker = std::thread::spawn(move || {
            assert_eq!(queued.wait(), Err(ServeError::ShuttingDown));
            *g3.0.lock().unwrap() = true;
            g3.1.notify_all();
        });
        drop(server);
        running.wait().unwrap();
        checker.join().unwrap();
    }
}
