//! Executor error type.

use std::fmt;

/// Errors raised during planning or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    UnknownColumn(String),
    Type(String),
    Plan(String),
    Internal(String),
    /// The query's [`CancelToken`](bdcc_pool::CancelToken) was cancelled
    /// (by a client or the serving layer); workers unwind at the next
    /// morsel boundary.
    Cancelled,
    /// The query ran past its deadline.
    DeadlineExceeded,
    /// The query's tracked memory exceeded its budget; only this query
    /// fails, the process and its peers keep running.
    BudgetExceeded {
        used: u64,
        budget: u64,
    },
    /// A simulated failure from the fault-injection harness.
    Injected(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            ExecError::Type(m) => write!(f, "type error: {m}"),
            ExecError::Plan(m) => write!(f, "planning error: {m}"),
            ExecError::Internal(m) => write!(f, "internal error: {m}"),
            ExecError::Cancelled => write!(f, "query cancelled"),
            ExecError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            ExecError::BudgetExceeded { used, budget } => {
                write!(f, "memory budget exceeded: {used} bytes used, budget {budget}")
            }
            ExecError::Injected(m) => write!(f, "injected fault: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<bdcc_storage::StorageError> for ExecError {
    fn from(e: bdcc_storage::StorageError) -> Self {
        ExecError::Internal(e.to_string())
    }
}

impl From<bdcc_pool::PoolFailure> for ExecError {
    fn from(e: bdcc_pool::PoolFailure) -> Self {
        ExecError::Internal(e.to_string())
    }
}

impl From<bdcc_catalog::CatalogError> for ExecError {
    fn from(e: bdcc_catalog::CatalogError) -> Self {
        ExecError::Plan(e.to_string())
    }
}

impl From<bdcc_core::BdccError> for ExecError {
    fn from(e: bdcc_core::BdccError) -> Self {
        ExecError::Plan(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ExecError>;
