//! Executor error type.

use std::fmt;

/// Errors raised during planning or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    UnknownColumn(String),
    Type(String),
    Plan(String),
    Internal(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            ExecError::Type(m) => write!(f, "type error: {m}"),
            ExecError::Plan(m) => write!(f, "planning error: {m}"),
            ExecError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<bdcc_storage::StorageError> for ExecError {
    fn from(e: bdcc_storage::StorageError) -> Self {
        ExecError::Internal(e.to_string())
    }
}

impl From<bdcc_pool::PoolFailure> for ExecError {
    fn from(e: bdcc_pool::PoolFailure) -> Self {
        ExecError::Internal(e.to_string())
    }
}

impl From<bdcc_catalog::CatalogError> for ExecError {
    fn from(e: bdcc_catalog::CatalogError) -> Self {
        ExecError::Plan(e.to_string())
    }
}

impl From<bdcc_core::BdccError> for ExecError {
    fn from(e: bdcc_core::BdccError) -> Self {
        ExecError::Plan(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ExecError>;
