//! Logical query plans.
//!
//! Queries are hand-lowered into this small algebra (TPC-H needs no SQL
//! parser); the per-scheme physical planner then chooses access paths and
//! join/aggregation strategies. Join nodes carry the *foreign key* they
//! follow (by name) — the same declaration Algorithm 2 consumed — which is
//! what lets the BDCC planner recognize co-clustered joins and propagate
//! selections along dimension paths.

use crate::expr::Expr;
use crate::ops::agg::AggSpec;
use crate::ops::join::JoinType;
use crate::ops::sort::SortKey;
use crate::pred::ColPredicate;

/// Which side of a join holds the *referencing* table of its foreign key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FkSide {
    Left,
    Right,
}

/// A logical plan node.
#[derive(Debug, Clone)]
pub enum Node {
    /// Base-table access. `alias` replaces the column-name prefix (the part
    /// up to the first `_`), e.g. alias `l2` turns `l_orderkey` into
    /// `l2_orderkey` — used by self joins.
    Scan {
        scan_id: usize,
        table: String,
        columns: Vec<String>,
        predicates: Vec<ColPredicate>,
        alias: Option<String>,
    },
    Filter {
        input: Box<Node>,
        predicate: Expr,
    },
    Project {
        input: Box<Node>,
        exprs: Vec<(Expr, String)>,
    },
    Join {
        left: Box<Node>,
        right: Box<Node>,
        on: Vec<(String, String)>,
        join_type: JoinType,
        /// The declared foreign key this join follows, if any, and which
        /// side references.
        fk: Option<(String, FkSide)>,
        residual: Option<Expr>,
    },
    Aggregate {
        input: Box<Node>,
        group_by: Vec<String>,
        aggs: Vec<AggSpec>,
    },
    Sort {
        input: Box<Node>,
        keys: Vec<SortKey>,
        limit: Option<usize>,
    },
    Limit {
        input: Box<Node>,
        n: usize,
    },
}

impl Node {
    /// All scan ids in this subtree.
    pub fn scan_ids(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit_scans(&mut |scan_id, _, _| out.push(scan_id));
        out
    }

    /// Visit every scan: `(scan_id, table name, alias)`.
    pub fn visit_scans(&self, f: &mut impl FnMut(usize, &str, Option<&str>)) {
        match self {
            Node::Scan { scan_id, table, alias, .. } => f(*scan_id, table, alias.as_deref()),
            Node::Filter { input, .. }
            | Node::Project { input, .. }
            | Node::Aggregate { input, .. }
            | Node::Sort { input, .. }
            | Node::Limit { input, .. } => input.visit_scans(f),
            Node::Join { left, right, .. } => {
                left.visit_scans(f);
                right.visit_scans(f);
            }
        }
    }
}

/// Fluent builder over [`Node`]; assigns unique scan ids.
#[derive(Debug, Default)]
pub struct PlanBuilder {
    next_scan: std::cell::Cell<usize>,
}

impl PlanBuilder {
    pub fn new() -> PlanBuilder {
        PlanBuilder::default()
    }

    /// Scan `table`, reading `columns` under `predicates`.
    pub fn scan(&self, table: &str, columns: &[&str], predicates: Vec<ColPredicate>) -> Node {
        let id = self.next_scan.get();
        self.next_scan.set(id + 1);
        Node::Scan {
            scan_id: id,
            table: table.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            predicates,
            alias: None,
        }
    }

    /// Scan with a column-prefix alias (self joins).
    pub fn scan_as(
        &self,
        table: &str,
        alias: &str,
        columns: &[&str],
        predicates: Vec<ColPredicate>,
    ) -> Node {
        match self.scan(table, columns, predicates) {
            Node::Scan { scan_id, table, columns, predicates, .. } => {
                Node::Scan { scan_id, table, columns, predicates, alias: Some(alias.to_string()) }
            }
            _ => unreachable!(),
        }
    }
}

/// Join helper: `left ⋈ right` on equal columns, following `fk`.
pub fn join(left: Node, right: Node, on: &[(&str, &str)], fk: Option<(&str, FkSide)>) -> Node {
    join_full(left, right, on, JoinType::Inner, fk, None)
}

/// Fully general join.
pub fn join_full(
    left: Node,
    right: Node,
    on: &[(&str, &str)],
    join_type: JoinType,
    fk: Option<(&str, FkSide)>,
    residual: Option<Expr>,
) -> Node {
    Node::Join {
        left: Box::new(left),
        right: Box::new(right),
        on: on.iter().map(|(l, r)| (l.to_string(), r.to_string())).collect(),
        join_type,
        fk: fk.map(|(n, s)| (n.to_string(), s)),
        residual,
    }
}

/// Filter helper.
pub fn filter(input: Node, predicate: Expr) -> Node {
    Node::Filter { input: Box::new(input), predicate }
}

/// Projection helper.
pub fn project(input: Node, exprs: Vec<(Expr, &str)>) -> Node {
    Node::Project {
        input: Box::new(input),
        exprs: exprs.into_iter().map(|(e, n)| (e, n.to_string())).collect(),
    }
}

/// Aggregation helper.
pub fn aggregate(input: Node, group_by: &[&str], aggs: Vec<AggSpec>) -> Node {
    Node::Aggregate {
        input: Box::new(input),
        group_by: group_by.iter().map(|s| s.to_string()).collect(),
        aggs,
    }
}

/// Sort (with optional limit = top-N) helper.
pub fn sort(input: Node, keys: Vec<SortKey>, limit: Option<usize>) -> Node {
    Node::Sort { input: Box::new(input), keys, limit }
}

/// Rename a column name under a scan alias: the prefix before the first
/// `_` is replaced (`l_orderkey` + `l2` → `l2_orderkey`).
pub fn alias_column(alias: &str, column: &str) -> String {
    match column.find('_') {
        Some(i) => format!("{alias}{}", &column[i..]),
        None => format!("{alias}_{column}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_unique_scan_ids() {
        let b = PlanBuilder::new();
        let s1 = b.scan("t", &["a"], vec![]);
        let s2 = b.scan("t", &["a"], vec![]);
        let j = join(s1, s2, &[("a", "a")], None);
        assert_eq!(j.scan_ids(), vec![0, 1]);
    }

    #[test]
    fn alias_renaming() {
        assert_eq!(alias_column("l2", "l_orderkey"), "l2_orderkey");
        assert_eq!(alias_column("x", "plain"), "x_plain");
    }

    #[test]
    fn visit_scans_reaches_all_leaves() {
        let b = PlanBuilder::new();
        let plan = aggregate(
            join(
                b.scan("a", &["x"], vec![]),
                filter(b.scan_as("b", "bb", &["y"], vec![]), Expr::lit(1)),
                &[("x", "bb_y")],
                None,
            ),
            &["x"],
            vec![],
        );
        let mut seen = Vec::new();
        plan.visit_scans(&mut |id, t, a| seen.push((id, t.to_string(), a.map(String::from))));
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[1].2, Some("bb".to_string()));
    }
}
