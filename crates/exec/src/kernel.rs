//! Selection-vector expression kernels for predicate evaluation.
//!
//! The seed interpreter ([`Expr::eval`]) materializes a full intermediate
//! [`Column`] per tree node and a `Vec<bool>` per conjunct, and `And`/`Or`
//! eagerly evaluate both sides over every row. For the scan/filter/join
//! hot loops this module compiles a *bound* predicate tree once into a
//! [`FilterProgram`]: a chain of type-specialized conjunct kernels that
//! shrink a [`SelVec`] (a vector of surviving row indexes) in tight
//! branch-predictable loops, so later conjuncts only visit survivors and
//! nothing boolean is ever materialized.
//!
//! # The SelVec / ordering / fallback contract
//!
//! * **Selections, not masks.** A [`SelVec`] is either `All(n)` — every
//!   row of an `n`-row batch survives, represented without allocating —
//!   or `Rows(v)` with `v` strictly increasing. `All` is what makes the
//!   all-rows-pass fast path zero-copy: [`SelVec::take`] returns the
//!   input batch unchanged.
//! * **Conjunct chaining.** A top-level `And` chain becomes a sequence of
//!   conjunct kernels; each shrinks the selection in turn and the chain
//!   stops early once it is empty. Supported leaf shapes compile to
//!   typed kernels reusing the scalar tests of [`crate::enc`] (the PR 7
//!   encoded-block machinery): `i64`/date compare-to-literal and
//!   between-ranges, `IN` via sorted-slice binary search, string
//!   compares / `IN` / `LIKE` over `&str` without cloning, float
//!   compares with the interpreter's exact `f64::total_cmp` promotion,
//!   and int-column-vs-int-column compares (`l_commitdate <
//!   l_receiptdate`). `Or` unions and `Not` complements sub-program
//!   selections *within* the incoming selection.
//! * **Fallback.** Any non-sargable conjunct (arithmetic, `CASE`,
//!   `YEAR(..)`, type mismatches that must error) falls back to the
//!   interpreter — evaluated only over the surviving selection by
//!   gathering the conjunct's referenced columns into a mini-batch — so
//!   a program always compiles and results are **byte-identical to the
//!   interpreter by construction** for well-typed predicates. The one
//!   deliberate divergence: once a selection is empty (or an `Or`
//!   already covers it) remaining conjuncts are skipped, so a type
//!   *error* that the eager interpreter would raise in a later conjunct
//!   is not raised here.
//! * **Adaptive ordering.** Each conjunct tracks observed rows-in /
//!   rows-out with relaxed atomics (programs are shared across probe
//!   morsel workers). After [`WARMUP_ROWS`] rows the chain is permuted
//!   once, greatest observed drop-rate-per-unit-cost first — commutative
//!   by the pointwise `And` semantics — so a cheap `l_shipdate` range
//!   runs before `LIKE '%green%'` regardless of authoring order. The
//!   permutation never changes results, only evaluation order.
//! * **Gating.** `BDCC_KERNEL=0|false|off` (or
//!   [`set_kernel_enabled`]`(Some(false))`, or
//!   `QueryContext::with_kernel(false)`) keeps every call site on the
//!   seed interpreter verbatim, which remains the differential-testing
//!   oracle (`tests/kernel_equivalence.rs`).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

use bdcc_obs::OpMetrics;
use bdcc_storage::{Column, DataType, Datum};

use crate::batch::{Batch, ColMeta};
use crate::enc::{compile_int, compile_str, int_test, str_test, IntTest, StrTest};
use crate::error::{ExecError, Result};
use crate::expr::{CmpOp, Expr};
use crate::pred::PredKind;

/// Rows a program observes before permuting its conjunct chain.
pub const WARMUP_ROWS: u64 = 1024;

// ---------------------------------------------------------------------------
// Process-wide gate (same shape as `bdcc_storage::set_encode_enabled`).

/// 0 = follow `BDCC_KERNEL` (default on), 1 = forced off, 2 = forced on.
static KERNEL_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Test/bench override for the kernel gate; `None` restores the
/// environment default. Process-wide, like the `BDCC_ENCODE` gate.
pub fn set_kernel_enabled(enabled: Option<bool>) {
    let v = match enabled {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    KERNEL_OVERRIDE.store(v, Ordering::SeqCst);
}

/// Whether new operators compile selection-vector programs (default yes).
/// `BDCC_KERNEL=0|false|off` disables; [`set_kernel_enabled`] overrides.
pub fn kernel_enabled() -> bool {
    match KERNEL_OVERRIDE.load(Ordering::SeqCst) {
        1 => false,
        2 => true,
        _ => !matches!(
            std::env::var("BDCC_KERNEL").ok().as_deref(),
            Some("0") | Some("false") | Some("off")
        ),
    }
}

// ---------------------------------------------------------------------------
// Selection vectors.

/// Surviving rows of a batch: the whole batch, or sorted row indexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelVec {
    /// Every row of an `n`-row batch survives (no allocation).
    All(usize),
    /// Surviving row indexes, strictly increasing.
    Rows(Vec<u32>),
}

impl SelVec {
    /// Number of surviving rows.
    pub fn len(&self) -> usize {
        match self {
            SelVec::All(n) => *n,
            SelVec::Rows(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Does this selection keep every input row without materializing?
    pub fn keeps_all(&self) -> bool {
        matches!(self, SelVec::All(_))
    }

    /// Materialize the surviving rows of `batch`. `All` returns the input
    /// batch unchanged — the zero-copy fast path.
    pub fn take(&self, batch: Batch) -> Batch {
        match self {
            SelVec::All(_) => batch,
            SelVec::Rows(v) => batch.gather_u32(v),
        }
    }

    /// The surviving indexes as a fresh `Vec<u32>` (`All` enumerates).
    pub fn to_rows(&self) -> Vec<u32> {
        match self {
            SelVec::All(n) => (0..*n as u32).collect(),
            SelVec::Rows(v) => v.clone(),
        }
    }
}

/// `keep` as a selection; an all-true mask becomes `All` (zero-copy).
pub fn sel_from_bools(keep: &[bool]) -> SelVec {
    if keep.iter().all(|&k| k) {
        SelVec::All(keep.len())
    } else {
        SelVec::Rows(keep.iter().enumerate().filter_map(|(i, &k)| k.then_some(i as u32)).collect())
    }
}

/// Union of two selections over the same batch (inputs sorted, output
/// sorted).
fn union(a: SelVec, b: SelVec) -> SelVec {
    match (a, b) {
        (SelVec::All(n), _) | (_, SelVec::All(n)) => SelVec::All(n),
        (SelVec::Rows(x), SelVec::Rows(y)) => {
            let mut out = Vec::with_capacity(x.len().max(y.len()));
            let (mut i, mut j) = (0, 0);
            while i < x.len() && j < y.len() {
                match x[i].cmp(&y[j]) {
                    std::cmp::Ordering::Less => {
                        out.push(x[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        out.push(y[j]);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        out.push(x[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            out.extend_from_slice(&x[i..]);
            out.extend_from_slice(&y[j..]);
            SelVec::Rows(out)
        }
    }
}

/// Rows of `sel` *not* in `inner` (`inner` ⊆ `sel`, both sorted).
fn complement(sel: SelVec, inner: SelVec) -> SelVec {
    match (sel, inner) {
        (_, SelVec::All(_)) => SelVec::Rows(Vec::new()),
        (SelVec::All(n), SelVec::Rows(r)) => {
            let mut out = Vec::with_capacity(n - r.len());
            let mut j = 0;
            for i in 0..n as u32 {
                if j < r.len() && r[j] == i {
                    j += 1;
                } else {
                    out.push(i);
                }
            }
            SelVec::Rows(out)
        }
        (SelVec::Rows(v), SelVec::Rows(r)) => {
            let mut out = Vec::with_capacity(v.len() - r.len());
            let mut j = 0;
            for &i in &v {
                if j < r.len() && r[j] == i {
                    j += 1;
                } else {
                    out.push(i);
                }
            }
            SelVec::Rows(out)
        }
    }
}

/// Shrink `sel` by a per-row predicate. The `All` arm scans for the first
/// failing row before allocating anything, so an all-pass conjunct stays
/// allocation-free.
fn shrink(sel: SelVec, mut pass: impl FnMut(usize) -> bool) -> SelVec {
    match sel {
        SelVec::All(n) => {
            let mut i = 0;
            while i < n && pass(i) {
                i += 1;
            }
            if i == n {
                return SelVec::All(n);
            }
            let mut rows: Vec<u32> = (0..i as u32).collect();
            for j in i + 1..n {
                if pass(j) {
                    rows.push(j as u32);
                }
            }
            SelVec::Rows(rows)
        }
        SelVec::Rows(mut v) => {
            v.retain(|&i| pass(i as usize));
            SelVec::Rows(v)
        }
    }
}

// ---------------------------------------------------------------------------
// Expression utilities.

/// Column indexes a bound expression references, sorted and deduplicated.
pub fn referenced_columns(e: &Expr) -> Vec<usize> {
    fn walk(e: &Expr, out: &mut Vec<usize>) {
        match e {
            Expr::Col(_) | Expr::Lit(_) => {}
            Expr::ColIdx(i) => out.push(*i),
            Expr::Arith(_, a, b) | Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Expr::Not(a)
            | Expr::Like(a, _)
            | Expr::NotLike(a, _)
            | Expr::InList(a, _)
            | Expr::Year(a)
            | Expr::Prefix(a, _) => walk(a, out),
            Expr::If(c, t, f) => {
                walk(c, out);
                walk(t, out);
                walk(f, out);
            }
        }
    }
    let mut v = Vec::new();
    walk(e, &mut v);
    v.sort_unstable();
    v.dedup();
    v
}

/// Rewrite `ColIdx(i)` to the position of `i` in `cols` (which must
/// contain every referenced index).
fn remap_columns(e: &Expr, cols: &[usize]) -> Expr {
    let map = |i: &usize| cols.binary_search(i).expect("referenced column in map");
    match e {
        Expr::Col(n) => Expr::Col(n.clone()),
        Expr::ColIdx(i) => Expr::ColIdx(map(i)),
        Expr::Lit(d) => Expr::Lit(d.clone()),
        Expr::Arith(op, a, b) => {
            Expr::Arith(*op, Box::new(remap_columns(a, cols)), Box::new(remap_columns(b, cols)))
        }
        Expr::Cmp(op, a, b) => {
            Expr::Cmp(*op, Box::new(remap_columns(a, cols)), Box::new(remap_columns(b, cols)))
        }
        Expr::And(a, b) => {
            Expr::And(Box::new(remap_columns(a, cols)), Box::new(remap_columns(b, cols)))
        }
        Expr::Or(a, b) => {
            Expr::Or(Box::new(remap_columns(a, cols)), Box::new(remap_columns(b, cols)))
        }
        Expr::Not(a) => Expr::Not(Box::new(remap_columns(a, cols))),
        Expr::If(c, t, f) => Expr::If(
            Box::new(remap_columns(c, cols)),
            Box::new(remap_columns(t, cols)),
            Box::new(remap_columns(f, cols)),
        ),
        Expr::Like(a, p) => Expr::Like(Box::new(remap_columns(a, cols)), p.clone()),
        Expr::NotLike(a, p) => Expr::NotLike(Box::new(remap_columns(a, cols)), p.clone()),
        Expr::InList(a, vals) => Expr::InList(Box::new(remap_columns(a, cols)), vals.clone()),
        Expr::Year(a) => Expr::Year(Box::new(remap_columns(a, cols))),
        Expr::Prefix(a, n) => Expr::Prefix(Box::new(remap_columns(a, cols)), *n),
    }
}

fn split_and<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    match e {
        Expr::And(a, b) => {
            split_and(a, out);
            split_and(b, out);
        }
        _ => out.push(e),
    }
}

fn split_or<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    match e {
        Expr::Or(a, b) => {
            split_or(a, out);
            split_or(b, out);
        }
        _ => out.push(e),
    }
}

// ---------------------------------------------------------------------------
// Conjunct kernels.

enum ConjKind {
    /// Constant predicate (a literal conjunct): keep everything or nothing.
    Const(bool),
    /// Integer-backed column vs compiled scalar test (compare-to-literal,
    /// between-range, `IN` by binary search) — reuses `enc::IntTest`.
    Int { col: usize, test: IntTest },
    /// String column vs compiled test (`&str` compares, no cloning).
    Str { col: usize, test: StrTest },
    /// Float-promoted compare-to-literal with the interpreter's exact
    /// `f64::total_cmp` semantics (covers Float columns and Int-vs-Float
    /// literal promotions).
    Float { col: usize, op: CmpOp, lit: f64 },
    /// Integer-backed column vs column (`l_commitdate < l_receiptdate`).
    IntCols { a: usize, b: usize, op: CmpOp },
    /// Disjunction: union of sub-program selections over the input
    /// selection.
    Or(Vec<FilterProgram>),
    /// Complement of the sub-program's selection within the input.
    Not(Box<FilterProgram>),
    /// Non-sargable leftover: interpreter over the selection only (its
    /// referenced columns gathered into a mini-batch).
    Fallback { orig: Expr, remapped: Expr, cols: Vec<usize> },
}

struct Conjunct {
    kind: ConjKind,
    /// Static cost weight for the adaptive reorderer.
    cost: f64,
    /// Observed rows entering / surviving this conjunct (relaxed; shared
    /// across probe-morsel workers).
    rows_in: AtomicU64,
    rows_out: AtomicU64,
}

fn cmp_pass(op: CmpOp) -> impl Fn(std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    move |o| match op {
        CmpOp::Eq => o == Equal,
        CmpOp::Ne => o != Equal,
        CmpOp::Lt => o == Less,
        CmpOp::Le => o != Greater,
        CmpOp::Gt => o == Greater,
        CmpOp::Ge => o != Less,
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

fn pred_kind_of(op: CmpOp, d: &Datum) -> PredKind {
    match op {
        CmpOp::Eq => PredKind::Eq(d.clone()),
        CmpOp::Ne => PredKind::Ne(d.clone()),
        CmpOp::Lt => PredKind::Range {
            lo: None,
            lo_inclusive: false,
            hi: Some(d.clone()),
            hi_inclusive: false,
        },
        CmpOp::Le => PredKind::Range {
            lo: None,
            lo_inclusive: false,
            hi: Some(d.clone()),
            hi_inclusive: true,
        },
        CmpOp::Gt => PredKind::Range {
            lo: Some(d.clone()),
            lo_inclusive: false,
            hi: None,
            hi_inclusive: false,
        },
        CmpOp::Ge => PredKind::Range {
            lo: Some(d.clone()),
            lo_inclusive: true,
            hi: None,
            hi_inclusive: false,
        },
    }
}

fn is_int_backed(dt: DataType) -> bool {
    matches!(dt, DataType::Int | DataType::Date)
}

/// Compile a `col <op> literal` leaf; `None` → fall back (including every
/// shape whose interpreter evaluation errors, so the error still
/// surfaces).
fn compile_cmp_leaf(op: CmpOp, col: usize, lit: &Datum, schema: &[ColMeta]) -> Option<ConjKind> {
    let dt = schema.get(col)?.data_type;
    match (dt, lit) {
        (DataType::Int | DataType::Date, Datum::Int(_) | Datum::Date(_)) => {
            compile_int(&pred_kind_of(op, lit)).map(|test| ConjKind::Int { col, test })
        }
        (DataType::Str, Datum::Str(_)) => {
            compile_str(&pred_kind_of(op, lit)).map(|test| ConjKind::Str { col, test })
        }
        // Any numeric pairing involving a float promotes both sides to
        // f64 and compares via `total_cmp` — exactly `expr::eval_cmp`.
        (DataType::Float, Datum::Int(v) | Datum::Date(v)) => {
            Some(ConjKind::Float { col, op, lit: *v as f64 })
        }
        (DataType::Int | DataType::Date | DataType::Float, Datum::Float(f)) => {
            Some(ConjKind::Float { col, op, lit: *f })
        }
        // String/numeric mixes error in the interpreter (`to_f64` over a
        // string column): fall back so the error surfaces.
        _ => None,
    }
}

impl Conjunct {
    fn compile(e: &Expr, schema: &[ColMeta]) -> Conjunct {
        let kind = Self::compile_kind(e, schema);
        let cost = Self::cost_of(&kind);
        Conjunct { kind, cost, rows_in: AtomicU64::new(0), rows_out: AtomicU64::new(0) }
    }

    fn compile_kind(e: &Expr, schema: &[ColMeta]) -> ConjKind {
        let kernel = match e {
            Expr::Lit(d) => d.as_int().map(|v| ConjKind::Const(v != 0)),
            // A bare column as a predicate is `col != 0` in `eval_bool`.
            Expr::ColIdx(i) if schema.get(*i).is_some_and(|m| is_int_backed(m.data_type)) => {
                Some(ConjKind::Int { col: *i, test: IntTest::Ne(0) })
            }
            Expr::Cmp(op, a, b) => match (a.as_ref(), b.as_ref()) {
                (Expr::ColIdx(i), Expr::Lit(d)) => compile_cmp_leaf(*op, *i, d, schema),
                (Expr::Lit(d), Expr::ColIdx(i)) => compile_cmp_leaf(flip(*op), *i, d, schema),
                (Expr::ColIdx(i), Expr::ColIdx(j)) => {
                    let (ti, tj) =
                        (schema.get(*i).map(|m| m.data_type), schema.get(*j).map(|m| m.data_type));
                    match (ti, tj) {
                        (Some(x), Some(y)) if is_int_backed(x) && is_int_backed(y) => {
                            Some(ConjKind::IntCols { a: *i, b: *j, op: *op })
                        }
                        _ => None,
                    }
                }
                _ => None,
            },
            Expr::InList(a, list) => match a.as_ref() {
                Expr::ColIdx(i) => match schema.get(*i).map(|m| m.data_type) {
                    Some(DataType::Int) | Some(DataType::Date) => {
                        compile_int(&PredKind::In(list.clone()))
                            .map(|test| ConjKind::Int { col: *i, test })
                    }
                    Some(DataType::Str) => compile_str(&PredKind::In(list.clone()))
                        .map(|test| ConjKind::Str { col: *i, test }),
                    // IN over a float column errors in the interpreter.
                    _ => None,
                },
                _ => None,
            },
            Expr::Like(a, p) => match a.as_ref() {
                Expr::ColIdx(i) if schema.get(*i).map(|m| m.data_type) == Some(DataType::Str) => {
                    Some(ConjKind::Str { col: *i, test: StrTest::Like(p.clone()) })
                }
                _ => None,
            },
            Expr::NotLike(a, p) => match a.as_ref() {
                Expr::ColIdx(i) if schema.get(*i).map(|m| m.data_type) == Some(DataType::Str) => {
                    Some(ConjKind::Str { col: *i, test: StrTest::NotLike(p.clone()) })
                }
                _ => None,
            },
            Expr::Not(inner) => {
                Some(ConjKind::Not(Box::new(FilterProgram::compile(inner, schema))))
            }
            Expr::Or(..) => {
                let mut arms = Vec::new();
                split_or(e, &mut arms);
                Some(ConjKind::Or(arms.iter().map(|a| FilterProgram::compile(a, schema)).collect()))
            }
            _ => None,
        };
        kernel.unwrap_or_else(|| {
            let cols = referenced_columns(e);
            let remapped = remap_columns(e, &cols);
            ConjKind::Fallback { orig: e.clone(), remapped, cols }
        })
    }

    fn cost_of(kind: &ConjKind) -> f64 {
        match kind {
            ConjKind::Const(_) => 0.25,
            ConjKind::Int { test: IntTest::In(_), .. } => 2.0,
            ConjKind::Int { .. } => 1.0,
            ConjKind::IntCols { .. } => 1.2,
            ConjKind::Float { .. } => 1.5,
            ConjKind::Str { test, .. } => match test {
                StrTest::Like(_) | StrTest::NotLike(_) => 8.0,
                StrTest::In(_) => 5.0,
                _ => 4.0,
            },
            ConjKind::Or(arms) => 1.0 + arms.iter().map(FilterProgram::total_cost).sum::<f64>(),
            ConjKind::Not(p) => 0.5 + p.total_cost(),
            ConjKind::Fallback { .. } => 16.0,
        }
    }

    /// `(kernel leaves, fallback leaves)` under this conjunct.
    fn leaf_counts(&self) -> (usize, usize) {
        match &self.kind {
            ConjKind::Or(arms) => arms.iter().fold((0, 0), |(k, f), p| {
                let (pk, pf) = p.leaf_counts();
                (k + pk, f + pf)
            }),
            ConjKind::Not(p) => p.leaf_counts(),
            ConjKind::Fallback { .. } => (0, 1),
            _ => (1, 0),
        }
    }

    fn apply(&self, batch: &Batch, sel: SelVec) -> Result<SelVec> {
        match &self.kind {
            ConjKind::Const(true) => Ok(sel),
            ConjKind::Const(false) => Ok(SelVec::Rows(Vec::new())),
            ConjKind::Int { col, test } => {
                let vals = batch.columns[*col].as_i64()?;
                Ok(shrink(sel, |i| int_test(test, vals[i])))
            }
            ConjKind::Str { col, test } => {
                let vals = batch.columns[*col].as_str()?;
                Ok(shrink(sel, |i| str_test(test, vals[i].as_str())))
            }
            ConjKind::Float { col, op, lit } => {
                let pass = cmp_pass(*op);
                match &batch.columns[*col] {
                    Column::F64(vals) => Ok(shrink(sel, |i| pass(vals[i].total_cmp(lit)))),
                    Column::I64 { values, .. } => {
                        Ok(shrink(sel, |i| pass((values[i] as f64).total_cmp(lit))))
                    }
                    Column::Str(_) => {
                        Err(ExecError::Internal("float kernel over a string column".into()))
                    }
                }
            }
            ConjKind::IntCols { a, b, op } => {
                let x = batch.columns[*a].as_i64()?;
                let y = batch.columns[*b].as_i64()?;
                let pass = cmp_pass(*op);
                Ok(shrink(sel, |i| pass(x[i].cmp(&y[i]))))
            }
            ConjKind::Or(arms) => {
                let mut acc: Option<SelVec> = None;
                for p in arms {
                    let covered = acc.as_ref().is_some_and(|a| a.len() == sel.len());
                    if covered {
                        break; // the union already covers the input
                    }
                    let r = p.run(batch, sel.clone())?;
                    acc = Some(match acc {
                        None => r,
                        Some(a) => union(a, r),
                    });
                }
                Ok(acc.unwrap_or_else(|| SelVec::Rows(Vec::new())))
            }
            ConjKind::Not(p) => {
                let inner = p.run(batch, sel.clone())?;
                Ok(complement(sel, inner))
            }
            ConjKind::Fallback { orig, remapped, cols } => match sel {
                // Over the whole batch the interpreter references the
                // batch columns directly — no gather needed.
                SelVec::All(_) => Ok(sel_from_bools(&orig.eval_bool(batch)?)),
                SelVec::Rows(mut v) => {
                    if v.is_empty() {
                        return Ok(SelVec::Rows(v));
                    }
                    if cols.is_empty() {
                        // Constant-valued (but non-literal) conjunct:
                        // evaluate over the batch once and intersect.
                        let keep = orig.eval_bool(batch)?;
                        v.retain(|&i| keep[i as usize]);
                        return Ok(SelVec::Rows(v));
                    }
                    let mini =
                        Batch::new(cols.iter().map(|&c| batch.columns[c].gather_u32(&v)).collect());
                    let keep = remapped.eval_bool(&mini)?;
                    let rows = v.iter().zip(&keep).filter_map(|(&i, &k)| k.then_some(i)).collect();
                    Ok(SelVec::Rows(rows))
                }
            },
        }
    }
}

// ---------------------------------------------------------------------------
// The compiled program.

/// A bound predicate compiled into a chain of selection-shrinking
/// conjunct kernels with adaptive ordering. See the module docs for the
/// contract. Cheap to build (once per operator), `Sync` (shared across
/// probe-morsel workers).
pub struct FilterProgram {
    conjuncts: Vec<Conjunct>,
    /// Evaluation order (indexes into `conjuncts`); permuted once after
    /// warmup by observed drop-rate-per-cost, descending.
    order: Mutex<Vec<u32>>,
    warmed: AtomicBool,
    rows_seen: AtomicU64,
}

impl FilterProgram {
    /// Compile a *bound* predicate. Never fails: unsupported conjuncts
    /// become interpreter fallbacks.
    pub fn compile(expr: &Expr, schema: &[ColMeta]) -> FilterProgram {
        let mut leaves = Vec::new();
        split_and(expr, &mut leaves);
        let conjuncts: Vec<Conjunct> =
            leaves.iter().map(|e| Conjunct::compile(e, schema)).collect();
        let order = (0..conjuncts.len() as u32).collect();
        FilterProgram {
            conjuncts,
            order: Mutex::new(order),
            warmed: AtomicBool::new(false),
            rows_seen: AtomicU64::new(0),
        }
    }

    /// Surviving rows of `batch` (counts `batch.rows()` toward warmup).
    pub fn select(&self, batch: &Batch) -> Result<SelVec> {
        self.run(batch, SelVec::All(batch.rows()))
    }

    /// [`select`](Self::select) with an explicit row count, for batches
    /// that may have zero columns (a residual referencing none).
    pub fn select_rows(&self, batch: &Batch, rows: usize) -> Result<SelVec> {
        self.run(batch, SelVec::All(rows))
    }

    fn run(&self, batch: &Batch, mut sel: SelVec) -> Result<SelVec> {
        let n0 = sel.len() as u64;
        let order = self.order.lock().expect("order lock").clone();
        for &ci in &order {
            if sel.is_empty() {
                break;
            }
            let c = &self.conjuncts[ci as usize];
            let rows_in = sel.len() as u64;
            sel = c.apply(batch, sel)?;
            c.rows_in.fetch_add(rows_in, Ordering::Relaxed);
            c.rows_out.fetch_add(sel.len() as u64, Ordering::Relaxed);
        }
        self.maybe_reorder(n0);
        Ok(sel)
    }

    /// Permute the chain once after warmup: greatest observed
    /// drop-rate-per-unit-cost first, original order breaking ties (so
    /// the permutation is deterministic for a given workload).
    fn maybe_reorder(&self, rows: u64) {
        if self.conjuncts.len() < 2 {
            return;
        }
        let seen = self.rows_seen.fetch_add(rows, Ordering::Relaxed) + rows;
        if seen < WARMUP_ROWS || self.warmed.swap(true, Ordering::Relaxed) {
            return;
        }
        let rank = |i: u32| -> f64 {
            let c = &self.conjuncts[i as usize];
            let rin = c.rows_in.load(Ordering::Relaxed);
            let sel =
                if rin == 0 { 1.0 } else { c.rows_out.load(Ordering::Relaxed) as f64 / rin as f64 };
            (1.0 - sel) / c.cost
        };
        let mut order: Vec<u32> = (0..self.conjuncts.len() as u32).collect();
        order.sort_by(|&a, &b| {
            rank(b).partial_cmp(&rank(a)).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
        });
        *self.order.lock().expect("order lock") = order;
    }

    fn total_cost(&self) -> f64 {
        self.conjuncts.iter().map(|c| c.cost).sum()
    }

    /// `(kernel leaves, fallback leaves)` across the whole program.
    pub fn leaf_counts(&self) -> (usize, usize) {
        self.conjuncts.iter().fold((0, 0), |(k, f), c| {
            let (ck, cf) = c.leaf_counts();
            (k + ck, f + cf)
        })
    }

    /// EXPLAIN ANALYZE annotations: kernel-vs-fallback leaf counts, the
    /// chosen conjunct order, and per-conjunct observed selectivity (in
    /// authored order). Idempotent (`annotate` replaces).
    pub fn annotate(&self, m: &OpMetrics) {
        let (k, f) = self.leaf_counts();
        m.annotate("kernel", format!("{k}k+{f}f"));
        if self.conjuncts.len() > 1 {
            let order = self.order.lock().expect("order lock").clone();
            m.annotate(
                "kernel_order",
                order.iter().map(u32::to_string).collect::<Vec<_>>().join(","),
            );
        }
        let sels: Vec<String> = self
            .conjuncts
            .iter()
            .map(|c| {
                let rin = c.rows_in.load(Ordering::Relaxed);
                if rin == 0 {
                    "-".to_string()
                } else {
                    format!("{:.3}", c.rows_out.load(Ordering::Relaxed) as f64 / rin as f64)
                }
            })
            .collect();
        m.annotate("kernel_sel", sels.join(","));
    }
}

// ---------------------------------------------------------------------------
// Join-residual programs: evaluate on the pair selection *before*
// gathering output columns.

/// A residual filter over join match pairs. Only the residual's
/// *referenced* columns are gathered (for candidate pairs), the program
/// shrinks the pair selection, and only surviving pairs ever gather the
/// full output — late materialization extended to joins.
pub struct PairFilter {
    /// Referenced pair-schema column indexes, sorted.
    cols: Vec<usize>,
    program: FilterProgram,
}

impl PairFilter {
    /// `expr` must be bound against the pair schema.
    pub fn new(expr: &Expr, schema: &[ColMeta]) -> PairFilter {
        let cols = referenced_columns(expr);
        let remapped = remap_columns(expr, &cols);
        let mini_schema: Vec<ColMeta> = cols.iter().map(|&c| schema[c].clone()).collect();
        PairFilter { program: FilterProgram::compile(&remapped, &mini_schema), cols }
    }

    /// Surviving pairs out of `pairs` candidates; `gather(c)` materializes
    /// pair-schema column `c` for all candidates (called only for the
    /// residual's referenced columns).
    pub fn select_pairs(
        &self,
        pairs: usize,
        mut gather: impl FnMut(usize) -> Result<Column>,
    ) -> Result<SelVec> {
        if pairs == 0 {
            return Ok(SelVec::All(0));
        }
        let cols = self.cols.iter().map(|&c| gather(c)).collect::<Result<Vec<_>>>()?;
        self.program.select_rows(&Batch::new(cols), pairs)
    }

    /// See [`FilterProgram::annotate`].
    pub fn annotate(&self, m: &OpMetrics) {
        self.program.annotate(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LikePattern;
    use bdcc_storage::parse_date;

    fn schema() -> Vec<ColMeta> {
        vec![
            ColMeta::new("a", DataType::Int),
            ColMeta::new("f", DataType::Float),
            ColMeta::new("s", DataType::Str),
            ColMeta::new("d", DataType::Date),
            ColMeta::new("b", DataType::Int),
        ]
    }

    fn batch() -> Batch {
        Batch::new(vec![
            Column::from_i64(vec![1, 2, 3, 4, 5, 6]),
            Column::from_f64(vec![0.5, 1.5, f64::NAN, -0.0, 2.5, 100.0]),
            Column::from_strings(vec![
                "PROMO anodized".into(),
                "small BRASS".into(),
                "green".into(),
                "".into(),
                "dark green".into(),
                "PROMO green".into(),
            ]),
            Column::from_dates(vec![
                parse_date("1994-01-01").unwrap(),
                parse_date("1994-06-15").unwrap(),
                parse_date("1995-01-01").unwrap(),
                parse_date("1995-06-15").unwrap(),
                parse_date("1996-01-01").unwrap(),
                parse_date("1996-06-15").unwrap(),
            ]),
            Column::from_i64(vec![0, 1, 0, 1, 0, 1]),
        ])
    }

    fn check(e: Expr) {
        let bound = e.bind(&schema()).unwrap();
        let b = batch();
        let keep = bound.eval_bool(&b).unwrap();
        let program = FilterProgram::compile(&bound, &schema());
        let sel = program.select(&b).unwrap();
        assert_eq!(sel, sel_from_bools(&keep), "kernel != interpreter for {bound:?}");
        // The selected batch must equal the mask-filtered batch
        // (bit-compare via Debug: NaN == NaN must hold here).
        assert_eq!(format!("{:?}", sel.take(b.clone())), format!("{:?}", b.filter(&keep)));
    }

    #[test]
    fn kernels_match_interpreter() {
        use Expr as E;
        check(E::col("a").ge(E::lit(3)));
        check(E::lit(3).ge(E::col("a"))); // mirrored literal
        check(E::col("a").ge(E::lit(2)).and(E::col("a").lt(E::lit(5))));
        check(E::col("d").ge(E::lit(Datum::Date(parse_date("1995-01-01").unwrap()))));
        check(E::col("f").gt(E::lit(1.0)));
        check(E::col("f").le(E::lit(1.0))); // NaN: total_cmp order
        check(E::col("a").lt(E::lit(2.5))); // int col vs float literal
        check(E::col("s").eq(E::lit("green")));
        check(E::col("s").like(LikePattern::Contains("green".into())));
        check(E::col("s").not_like(LikePattern::StartsWith("PROMO".into())));
        check(E::col("a").in_list(vec![Datum::Int(1), Datum::Int(5), Datum::Int(9)]));
        check(E::col("s").in_list(vec![Datum::Str("green".into()), Datum::Str("x".into())]));
        check(E::col("a").lt(E::col("b"))); // col vs col
        check(E::col("b")); // bare 0/1 column
        check(E::lit(1).and(E::col("a").gt(E::lit(2))));
        check(E::lit(0).or(E::col("a").gt(E::lit(2))));
        check(E::col("a").le(E::lit(2)).or(E::col("s").eq(E::lit("green"))));
        check(E::col("a").gt(E::lit(3)).not());
        check(
            E::col("a")
                .gt(E::lit(1))
                .and(E::col("s").like(LikePattern::Contains("green".into())))
                .and(E::col("f").lt(E::lit(50.0))),
        );
        // Non-sargable fallbacks.
        check(E::col("a").add(E::lit(1)).gt(E::lit(4)));
        check(E::col("d").year().eq(E::lit(1995)));
        check(E::col("a").gt(E::lit(2)).and(E::col("a").mul(E::lit(2)).le(E::lit(10))));
    }

    #[test]
    fn empty_batch_and_degenerate_selections() {
        let empty = Batch::new(vec![
            Column::from_i64(vec![]),
            Column::from_f64(vec![]),
            Column::from_strings(vec![]),
            Column::from_dates(vec![]),
            Column::from_i64(vec![]),
        ]);
        let e = Expr::col("a").gt(Expr::lit(0)).bind(&schema()).unwrap();
        let p = FilterProgram::compile(&e, &schema());
        assert_eq!(p.select(&empty).unwrap(), SelVec::All(0));
        // All-false first conjunct short-circuits the chain.
        let e = Expr::lit(0).and(Expr::col("a").gt(Expr::lit(0))).bind(&schema()).unwrap();
        let p = FilterProgram::compile(&e, &schema());
        assert_eq!(p.select(&batch()).unwrap(), SelVec::Rows(vec![]));
    }

    #[test]
    fn all_pass_stays_zero_copy() {
        let e = Expr::col("a").ge(Expr::lit(0)).bind(&schema()).unwrap();
        let p = FilterProgram::compile(&e, &schema());
        let sel = p.select(&batch()).unwrap();
        assert!(sel.keeps_all());
    }

    #[test]
    fn adaptive_reorder_moves_selective_conjunct_first() {
        // Expensive-but-unselective LIKE authored before a selective int
        // range: after warmup the order must flip — and results must not
        // change.
        let e = Expr::col("s")
            .like(LikePattern::Contains("e".into()))
            .and(Expr::col("a").gt(Expr::lit(5)))
            .bind(&schema())
            .unwrap();
        let p = FilterProgram::compile(&e, &schema());
        let b = batch();
        let before = p.select(&b).unwrap();
        // Push past warmup.
        for _ in 0..((WARMUP_ROWS as usize / b.rows()) + 1) {
            p.select(&b).unwrap();
        }
        let order = p.order.lock().unwrap().clone();
        assert_eq!(order, vec![1, 0], "selective int conjunct should run first");
        assert_eq!(p.select(&b).unwrap(), before);
    }

    #[test]
    fn union_and_complement_algebra() {
        let u = union(SelVec::Rows(vec![0, 2, 4]), SelVec::Rows(vec![1, 2, 5]));
        assert_eq!(u, SelVec::Rows(vec![0, 1, 2, 4, 5]));
        assert_eq!(union(SelVec::All(6), SelVec::Rows(vec![1])), SelVec::All(6));
        let c = complement(SelVec::All(5), SelVec::Rows(vec![1, 3]));
        assert_eq!(c, SelVec::Rows(vec![0, 2, 4]));
        let c = complement(SelVec::Rows(vec![1, 3, 4]), SelVec::Rows(vec![3]));
        assert_eq!(c, SelVec::Rows(vec![1, 4]));
        assert_eq!(complement(SelVec::All(4), SelVec::All(4)), SelVec::Rows(vec![]));
    }

    #[test]
    fn pair_filter_gathers_only_referenced_columns() {
        let e = Expr::col("a").gt(Expr::lit(2)).bind(&schema()).unwrap();
        let pf = PairFilter::new(&e, &schema());
        let mut gathered = Vec::new();
        let sel = pf
            .select_pairs(6, |c| {
                gathered.push(c);
                Ok(batch().columns[c].clone())
            })
            .unwrap();
        assert_eq!(gathered, vec![0], "only column 0 is referenced");
        assert_eq!(sel, SelVec::Rows(vec![2, 3, 4, 5]));
    }

    #[test]
    fn gate_override() {
        set_kernel_enabled(Some(false));
        assert!(!kernel_enabled());
        set_kernel_enabled(Some(true));
        assert!(kernel_enabled());
        set_kernel_enabled(None);
    }
}
