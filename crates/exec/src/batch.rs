//! Column batches exchanged between operators.
//!
//! The executor is vectorized: operators pull [`Batch`]es of up to
//! [`BATCH_ROWS`] rows. A batch is a set of equally long [`Column`]s whose
//! names and types are described once per operator by its [`OpSchema`].

use bdcc_storage::{Column, DataType, Datum};

/// Target rows per batch.
pub const BATCH_ROWS: usize = 4096;

/// Description of one output column of an operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColMeta {
    pub name: String,
    pub data_type: DataType,
}

impl ColMeta {
    pub fn new(name: impl Into<String>, data_type: DataType) -> ColMeta {
        ColMeta { name: name.into(), data_type }
    }
}

/// An operator's output schema.
pub type OpSchema = Vec<ColMeta>;

/// Index of a named column in a schema.
pub fn schema_index(schema: &[ColMeta], name: &str) -> Option<usize> {
    schema.iter().position(|c| c.name == name)
}

/// A set of equally long columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    pub columns: Vec<Column>,
}

impl Batch {
    /// A batch from columns (all must have the same length).
    pub fn new(columns: Vec<Column>) -> Batch {
        debug_assert!(columns.windows(2).all(|w| w[0].len() == w[1].len()));
        Batch { columns }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.columns.first().map(|c| c.len()).unwrap_or(0)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Keep only flagged rows.
    pub fn filter(&self, keep: &[bool]) -> Batch {
        Batch { columns: self.columns.iter().map(|c| c.filter(keep)).collect() }
    }

    /// Gather rows by index.
    pub fn gather(&self, indices: &[usize]) -> Batch {
        Batch { columns: self.columns.iter().map(|c| c.gather(indices)).collect() }
    }

    /// Gather rows by `u32` index — the selection-vector entry point
    /// ([`crate::kernel::SelVec::take`] uses this for partial selections;
    /// an all-rows selection returns the batch without copying).
    pub fn gather_u32(&self, indices: &[u32]) -> Batch {
        Batch { columns: self.columns.iter().map(|c| c.gather_u32(indices)).collect() }
    }

    /// One row as datums (diagnostics/tests).
    pub fn row(&self, r: usize) -> Vec<Datum> {
        self.columns.iter().map(|c| c.datum(r)).collect()
    }

    /// Rough in-memory size of the batch payload in bytes.
    pub fn estimated_bytes(&self) -> u64 {
        self.columns.iter().map(|c| (c.len() as f64 * c.avg_width()) as u64).sum()
    }
}

/// Accumulates rows and re-chunks them into `BATCH_ROWS`-sized batches.
/// Used by operators whose natural output granularity differs from the
/// input batching (joins, group flushes).
#[derive(Debug)]
pub struct BatchAssembler {
    schema_types: Vec<DataType>,
    pending: Vec<Column>,
}

impl BatchAssembler {
    /// An assembler producing batches with the given column types.
    pub fn new(schema_types: Vec<DataType>) -> BatchAssembler {
        let pending = schema_types.iter().map(|&dt| Column::empty(dt)).collect();
        BatchAssembler { schema_types, pending }
    }

    /// Append a batch of rows.
    pub fn push(&mut self, batch: &Batch) {
        for (dst, src) in self.pending.iter_mut().zip(&batch.columns) {
            dst.append(src).expect("assembler column types match");
        }
    }

    /// Rows currently buffered.
    pub fn pending_rows(&self) -> usize {
        self.pending.first().map(|c| c.len()).unwrap_or(0)
    }

    /// Take a full batch if at least `BATCH_ROWS` rows are buffered.
    pub fn take_full(&mut self) -> Option<Batch> {
        if self.pending_rows() >= BATCH_ROWS {
            Some(self.take_up_to(BATCH_ROWS))
        } else {
            None
        }
    }

    /// Drain whatever is left (the final, possibly short, batch).
    pub fn take_rest(&mut self) -> Option<Batch> {
        if self.pending_rows() == 0 {
            None
        } else {
            let n = self.pending_rows();
            Some(self.take_up_to(n))
        }
    }

    fn take_up_to(&mut self, n: usize) -> Batch {
        let mut out = Vec::with_capacity(self.pending.len());
        for (i, col) in self.pending.iter_mut().enumerate() {
            let taken = col.slice(0, n);
            let rest = col.slice(n, col.len());
            out.push(taken);
            *col = rest;
            debug_assert_eq!(out[i].data_type(), self.schema_types[i]);
        }
        Batch::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_basics() {
        let b = Batch::new(vec![
            Column::from_i64(vec![1, 2, 3]),
            Column::from_strings(vec!["a".into(), "b".into(), "c".into()]),
        ]);
        assert_eq!(b.rows(), 3);
        assert_eq!(b.arity(), 2);
        let f = b.filter(&[true, false, true]);
        assert_eq!(f.rows(), 2);
        assert_eq!(f.row(1), vec![Datum::Int(3), Datum::Str("c".into())]);
        let g = b.gather(&[2, 2]);
        assert_eq!(g.columns[0].as_i64().unwrap(), &[3, 3]);
    }

    #[test]
    fn assembler_rechunks() {
        let mut a = BatchAssembler::new(vec![DataType::Int]);
        let small = Batch::new(vec![Column::from_i64((0..100).collect())]);
        for _ in 0..50 {
            a.push(&small);
        }
        // 5000 rows buffered → one full batch of BATCH_ROWS.
        let full = a.take_full().unwrap();
        assert_eq!(full.rows(), BATCH_ROWS);
        assert!(a.take_full().is_none());
        let rest = a.take_rest().unwrap();
        assert_eq!(rest.rows(), 5000 - BATCH_ROWS);
        assert!(a.take_rest().is_none());
        // Values survive in order.
        assert_eq!(full.columns[0].as_i64().unwrap()[0], 0);
        assert_eq!(full.columns[0].as_i64().unwrap()[100], 0);
    }

    #[test]
    fn schema_index_lookup() {
        let s = vec![ColMeta::new("a", DataType::Int), ColMeta::new("b", DataType::Str)];
        assert_eq!(schema_index(&s, "b"), Some(1));
        assert_eq!(schema_index(&s, "z"), None);
    }
}
