//! Out-of-core radix aggregation: the grace-hash side of the
//! [`MemoryBroker`](crate::broker::MemoryBroker) contract.
//!
//! The in-memory radix path ([`ParallelAggregate::run_radix`]) holds the
//! whole partitioned input resident between phase 1 and phase 2. This
//! module is the broker-governed variant: phase 1 runs in *chunks* of
//! morsels (parallel within a chunk, chunks in morsel order), and after
//! every chunk the broker is consulted — under pressure the largest
//! resident partitions **freeze**: their `(sub-batch, global row ids)`
//! entries serialize to a temp file via [`bdcc_storage::spill`] (ids ride
//! along as a trailing `i64` column) and the memory releases. A frozen
//! partition's later entries append straight to its file, so every
//! partition's entry sequence — resident or spilled — stays in global
//! morsel order.
//!
//! Phase 2 then works partition-at-a-time: resident partitions fold
//! exactly like the in-memory path; frozen partitions **restore** by
//! streaming their file back entry-by-entry into the partition's table.
//! A frozen partition whose estimated in-memory footprint exceeds the
//! broker's [`restore_limit`](crate::broker::MemoryBroker::restore_limit)
//! is never loaded whole: it *recurses* — its entries re-scatter on the
//! next [`RECURSE_BITS`] of the same group hash into sub-files (one
//! streamed entry resident at a time), and each sub-partition restores
//! (or recurses) independently.
//!
//! Byte-identity with serial execution holds for the same reason it does
//! in-memory: every group lives in exactly one (sub-)partition, rows
//! carry their global stream position, each partition consumes its rows
//! in ascending global order (morsel order, preserved by freeze files and
//! by the stable recursion scatter), and the disjoint outputs reorder by
//! first-seen rank ([`merge::concat_radix_partitions`]).

use std::collections::HashMap;
use std::sync::Mutex;

use bdcc_storage::{Column, SpillHandle, SpillWriter};

use crate::batch::Batch;
use crate::error::Result;
use crate::hash::hash_group_row;
use crate::memory::MemoryGuard;
use crate::parallel::{
    partition, partition_morsel_stream, pool, Morsel, ParallelAggregate, PartitionedBatches,
};

/// Extra hash bits per recursion level (16 sub-partitions per split).
const RECURSE_BITS: u32 = 4;

/// Deepest total bit budget for recursion. At 32 bits a "partition" is a
/// 1-in-4-billion hash slice; if it still exceeds the restore limit the
/// data is one giant group (recursion cannot split it further) and the
/// leaf consumes it anyway — the governor's budget check stays the
/// backstop for truly irreducible state.
const MAX_TOTAL_BITS: u32 = 32;

/// One partition's accumulation state during chunked phase 1.
enum PartState {
    /// Entries held in memory (`bytes` = estimated footprint).
    Resident { entries: Vec<(Batch, Vec<u64>)>, bytes: u64 },
    /// Frozen to a temp file; later entries append to the writer.
    /// `mem_bytes` estimates what the file would occupy restored.
    Frozen { writer: SpillWriter, mem_bytes: u64 },
}

/// Serialize one entry: the gathered sub-batch's columns plus the rows'
/// global stream positions as a trailing integer column.
fn entry_columns(batch: Batch, ids: &[u64]) -> Vec<Column> {
    let mut cols = batch.columns;
    cols.push(Column::from_i64(ids.iter().map(|&v| v as i64).collect()));
    cols
}

/// Inverse of [`entry_columns`].
fn decode_entry(mut cols: Vec<Column>) -> Result<(Batch, Vec<u64>)> {
    let ids_col = cols.pop().expect("spill entry has an ids column");
    let ids: Vec<u64> = ids_col.as_i64()?.iter().map(|&v| v as u64).collect();
    Ok((Batch::new(cols), ids))
}

/// The sub-partition of hash `h` at recursion depth `used_bits`: the
/// [`RECURSE_BITS`] bits immediately below the bits already consumed.
/// Equal keys share a hash, so they always land in one sub-partition.
#[inline]
fn sub_partition_of(h: u64, used_bits: u32) -> usize {
    ((h << used_bits) >> (64 - RECURSE_BITS)) as usize
}

impl ParallelAggregate {
    /// Record spill traffic on the operator's metric block (no-op
    /// unprofiled).
    fn note_spill(&self, frozen_parts: u64, written: u64, restored: u64) {
        if let Some(m) = &self.metrics {
            m.spill_partitions.add(frozen_parts);
            m.spill_bytes.add(written);
            m.spill_restore_bytes.add(restored);
        }
    }

    /// Append one globalized entry to its partition, spilling directly if
    /// the partition is already frozen. `resident` tracks the total
    /// resident estimate mirrored into `guard`.
    fn append_entry(
        &self,
        part: &mut PartState,
        batch: Batch,
        ids: Vec<u64>,
        resident: &mut u64,
        guard: &mut MemoryGuard,
    ) -> Result<()> {
        let est = batch.estimated_bytes() + ids.len() as u64 * 8;
        match part {
            PartState::Resident { entries, bytes } => {
                entries.push((batch, ids));
                *bytes += est;
                *resident += est;
                guard.grow(est);
            }
            PartState::Frozen { writer, mem_bytes } => {
                let written = writer.write_columns(&entry_columns(batch, &ids))?;
                *mem_bytes += est;
                self.note_spill(0, written, 0);
            }
        }
        Ok(())
    }

    /// Freeze resident partitions, largest first, until at least
    /// `target` estimated bytes are released (or nothing resident is
    /// left). Returns the bytes actually released.
    fn freeze_partitions(
        &self,
        parts: &mut [PartState],
        target: u64,
        resident: &mut u64,
        guard: &mut MemoryGuard,
    ) -> Result<u64> {
        let mut order: Vec<(u64, usize)> = parts
            .iter()
            .enumerate()
            .filter_map(|(i, p)| match p {
                PartState::Resident { entries, bytes } if !entries.is_empty() => Some((*bytes, i)),
                _ => None,
            })
            .collect();
        order.sort_unstable_by(|a, b| b.cmp(a));
        let mut released = 0u64;
        for (bytes, i) in order {
            if released >= target {
                break;
            }
            let PartState::Resident { entries, .. } = &mut parts[i] else {
                unreachable!("selected above")
            };
            let mut writer = SpillWriter::create("agg", &self.io)?;
            let mut written = 0u64;
            for (batch, ids) in entries.drain(..) {
                written += writer.write_columns(&entry_columns(batch, &ids))?;
            }
            parts[i] = PartState::Frozen { writer, mem_bytes: bytes };
            self.note_spill(1, written, 0);
            released += bytes;
            *resident = resident.saturating_sub(bytes);
            guard.resize(*resident);
        }
        Ok(released)
    }

    /// The broker-governed radix execution (see the [module docs](self)).
    /// Chosen over [`run_radix`](Self::run_radix) only when the broker is
    /// active, so ungoverned queries keep the structurally unchanged
    /// in-memory path.
    pub(super) fn run_radix_spill(
        &self,
        morsels: &[Morsel],
        cached: HashMap<usize, Vec<Batch>>,
    ) -> Result<Batch> {
        // Two extra bits over the thread-derived count: smaller
        // partitions mean more freeze granularity and less recursion,
        // for a fixed per-chunk scatter cost.
        let bits = (partition::partition_bits_for(self.cfg.threads) + 2).min(8);
        let nparts = partition::partition_count(bits);
        let group_cols = self.group_col_indices()?;
        if let Some(m) = &self.metrics {
            m.annotate("spill_mode", "radix-broker");
        }

        // Chunked phase 1. Chunks complete in morsel order, so the
        // running `base` globalizes every morsel-local row id and frozen
        // files receive entries in global stream order.
        let mut parts: Vec<PartState> =
            (0..nparts).map(|_| PartState::Resident { entries: Vec::new(), bytes: 0 }).collect();
        let mut resident = 0u64;
        let mut guard = self.tracker.register(0);
        let mut base = 0u64;
        let cached = Mutex::new(cached);
        let chunk = self.cfg.threads.max(1) * 2;
        let mut avg_chunk_bytes = 0u64;
        let mut mi = 0usize;
        while mi < morsels.len() {
            let hi = (mi + chunk).min(morsels.len());
            // Make room for the incoming chunk *before* scattering it,
            // using the running average as the pending estimate (the
            // first chunk estimates 0 — nothing is resident yet either).
            if self.broker.should_spill(avg_chunk_bytes) {
                self.freeze_partitions(
                    &mut parts,
                    self.broker.release_target(),
                    &mut resident,
                    &mut guard,
                )?;
            }
            let chunk_parts: Vec<(PartitionedBatches, u64, u64)> =
                pool::run_tasks_labeled(self.cfg.threads, hi - mi, "agg-radix-p1", |k| {
                    let i = mi + k;
                    self.governor.check("agg-radix-p1")?;
                    let hit = cached.lock().expect("probe cache poisoned").remove(&i);
                    match hit {
                        Some(batches) => {
                            let mut it = batches.into_iter();
                            partition_morsel_stream(&group_cols, bits, || Ok(it.next()))
                        }
                        None => {
                            let mut op = self.fragment.build(&self.io, Some(&morsels[i]))?;
                            partition_morsel_stream(&group_cols, bits, || op.next())
                        }
                    }
                })?;
            let mut chunk_bytes = 0u64;
            for (mparts, rows, bytes) in chunk_parts {
                chunk_bytes += bytes;
                for (p, entries) in mparts.into_iter().enumerate() {
                    for (batch, local_ids) in entries {
                        let ids: Vec<u64> = local_ids.iter().map(|v| v + base).collect();
                        self.append_entry(&mut parts[p], batch, ids, &mut resident, &mut guard)?;
                    }
                }
                base += rows;
            }
            avg_chunk_bytes = avg_chunk_bytes.max(chunk_bytes);
            mi = hi;
        }

        // Phase 2 — partition at a time, keeping at most one partition's
        // input plus its table resident (the spill path trades fan-out
        // parallelism here for the bounded-memory guarantee; phase 1
        // above still runs fully parallel).
        let mut outs: Vec<(Batch, Vec<u64>)> = Vec::new();
        for state in parts {
            self.governor.check("agg-radix-p2")?;
            match state {
                PartState::Resident { entries, bytes } => {
                    if entries.is_empty() {
                        continue;
                    }
                    let mut part = self.fresh_partial()?;
                    for (batch, ids) in &entries {
                        part.consume_indexed(batch, ids, 0)?;
                    }
                    let _mem = self.tracker.register(part.estimated_bytes());
                    outs.push(part.finish_ordered()?);
                    resident = resident.saturating_sub(bytes);
                    guard.resize(resident);
                }
                PartState::Frozen { writer, mem_bytes } => {
                    let handle = writer.finish()?;
                    self.restore_partition(&group_cols, handle, mem_bytes, bits, &mut outs)?;
                }
            }
        }
        if outs.is_empty() {
            // Zero input rows: a grouped aggregate yields zero groups.
            let empty = self.fresh_partial()?;
            outs.push(empty.finish_ordered()?);
        }
        super::merge::concat_radix_partitions(outs)
    }

    /// Restore one frozen partition: recurse on deeper hash bits while
    /// its estimated footprint exceeds the broker's restore limit,
    /// otherwise stream its entries into the partition table. The parent
    /// temp file unlinks (RAII) as soon as its entries are re-scattered.
    fn restore_partition(
        &self,
        group_cols: &[usize],
        handle: SpillHandle,
        mem_bytes: u64,
        used_bits: u32,
        outs: &mut Vec<(Batch, Vec<u64>)>,
    ) -> Result<()> {
        self.governor.check("agg-spill-restore")?;
        let file_bytes = handle.bytes();
        if mem_bytes > self.broker.restore_limit() && used_bits + RECURSE_BITS <= MAX_TOTAL_BITS {
            // Too big to sit in memory whole: re-scatter on the next
            // RECURSE_BITS of the group hash, one streamed entry
            // resident at a time.
            let mut subs: Vec<Option<(SpillWriter, u64)>> =
                (0..partition::partition_count(RECURSE_BITS)).map(|_| None).collect();
            let mut reader = handle.open()?;
            while let Some(cols) = reader.next_columns()? {
                let (batch, ids) = decode_entry(cols)?;
                let gcols: Vec<&Column> = group_cols.iter().map(|&c| &batch.columns[c]).collect();
                let mut routed: Vec<Vec<usize>> = vec![Vec::new(); subs.len()];
                for r in 0..batch.rows() {
                    routed[sub_partition_of(hash_group_row(&gcols, r), used_bits)].push(r);
                }
                for (s, rows) in routed.into_iter().enumerate() {
                    if rows.is_empty() {
                        continue;
                    }
                    let sub_ids: Vec<u64> = rows.iter().map(|&r| ids[r]).collect();
                    let gathered =
                        Batch::new(batch.columns.iter().map(|c| c.gather(&rows)).collect());
                    let est = gathered.estimated_bytes() + sub_ids.len() as u64 * 8;
                    if subs[s].is_none() {
                        subs[s] = Some((SpillWriter::create("agg-rec", &self.io)?, 0));
                    }
                    let (writer, sub_mem) = subs[s].as_mut().expect("just created");
                    let written = writer.write_columns(&entry_columns(gathered, &sub_ids))?;
                    *sub_mem += est;
                    self.note_spill(0, written, 0);
                }
            }
            drop(reader);
            drop(handle); // parent file unlinks before children restore
            self.note_spill(1, 0, file_bytes);
            for sub in subs.into_iter().flatten() {
                let (writer, sub_mem) = sub;
                let sub_handle = writer.finish()?;
                self.restore_partition(
                    group_cols,
                    sub_handle,
                    sub_mem,
                    used_bits + RECURSE_BITS,
                    outs,
                )?;
            }
            return Ok(());
        }
        // Leaf: stream the file's entries — global stream order — into
        // this partition's one table.
        let mut part = self.fresh_partial()?;
        let mut reader = handle.open()?;
        let mut mem = self.tracker.register(0);
        while let Some(cols) = reader.next_columns()? {
            let (batch, ids) = decode_entry(cols)?;
            part.consume_indexed(&batch, &ids, 0)?;
            mem.resize(part.estimated_bytes());
        }
        self.note_spill(0, 0, file_bytes);
        if part.estimated_bytes() > 0 || handle.rows() > 0 {
            outs.push(part.finish_ordered()?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use bdcc_storage::{live_spill_files, Column, IoTracker, StoredTable};

    use crate::broker::{MemoryBroker, SpillMode};
    use crate::expr::Expr;
    use crate::memory::MemoryTracker;
    use crate::ops::agg::{AggFunc, AggSpec, HashAggregate};
    use crate::ops::scan::PlainScan;
    use crate::ops::{collect, BoxedOp};
    use crate::parallel::{
        FragmentBlueprint, ParallelAggregate, ParallelConfig, ScanBlueprint, ScanKind,
    };

    fn table(rows: usize) -> Arc<StoredTable> {
        let k: Vec<i64> = (0..rows as i64).map(|i| (i * 13) % 977).collect();
        let f: Vec<f64> = (0..rows).map(|i| (i as f64) * 0.37 - 100.0).collect();
        let s: Vec<String> = (0..rows).map(|i| format!("tag{}", i % 11)).collect();
        Arc::new(
            StoredTable::from_columns_with_block_rows(
                "t",
                vec![
                    ("k".into(), Column::from_i64(k)),
                    ("f".into(), Column::from_f64(f)),
                    ("s".into(), Column::from_strings(s)),
                ],
                32,
            )
            .unwrap(),
        )
    }

    fn aggs() -> Vec<AggSpec> {
        vec![
            AggSpec::new(AggFunc::Sum, Expr::col("f"), "sf"),
            AggSpec::new(AggFunc::Avg, Expr::col("f"), "af"),
            AggSpec::new(AggFunc::Min, Expr::col("f"), "mn"),
            AggSpec::new(AggFunc::Count, Expr::lit(1), "n"),
            AggSpec::new(AggFunc::CountDistinct, Expr::col("k"), "nd"),
        ]
    }

    fn serial(t: &Arc<StoredTable>) -> crate::batch::Batch {
        let io = IoTracker::new();
        let op: BoxedOp =
            Box::new(PlainScan::new(Arc::clone(t), io, &["k", "f", "s"], vec![]).unwrap());
        collect(Box::new(
            HashAggregate::new(op, &["k", "s"], aggs(), MemoryTracker::new()).unwrap(),
        ))
        .unwrap()
    }

    fn spilled(t: &Arc<StoredTable>, broker_of: impl Fn(&Arc<MemoryTracker>) -> MemoryBroker) {
        let want = serial(t);
        let base = live_spill_files();
        for threads in [2, 4] {
            let io = IoTracker::new();
            let tracker = MemoryTracker::new();
            let cfg = ParallelConfig { threads, morsel_rows: 64, agg_radix: Some(true) };
            let bp = ScanBlueprint {
                table: Arc::clone(t),
                columns: vec!["k".into(), "f".into(), "s".into()],
                predicates: vec![],
                kind: ScanKind::Plain,
                filter_kernel: crate::kernel::kernel_enabled(),
            };
            let agg = ParallelAggregate::new(
                FragmentBlueprint { scan: bp, steps: vec![] },
                &["k", "s"],
                aggs(),
                io,
                cfg,
                Arc::clone(&tracker),
            )
            .unwrap()
            .with_broker(broker_of(&tracker));
            let got = collect(Box::new(agg)).unwrap();
            assert_eq!(want, got, "threads={threads}: spilled agg must be bit-identical");
            assert_eq!(live_spill_files(), base, "threads={threads}: temp files must unlink");
            assert_eq!(tracker.current(), 0, "threads={threads}: memory must release");
        }
    }

    #[test]
    fn forced_spill_is_bit_identical_to_serial() {
        spilled(&table(3000), |t| MemoryBroker::with_mode(SpillMode::Force, t, None));
    }

    #[test]
    fn tiny_budget_recursion_is_bit_identical_to_serial() {
        // A 4 KB budget forces pressure after nearly every chunk and a
        // 2 KB restore limit forces recursion on restore (no governor is
        // attached, so nothing trips — this exercises pure broker
        // mechanics at maximum stress).
        spilled(&table(3000), |t| MemoryBroker::with_mode(SpillMode::Auto, t, Some(4096)));
    }

    #[test]
    fn auto_under_roomy_budget_stays_resident_and_identical() {
        spilled(&table(2000), |t| MemoryBroker::with_mode(SpillMode::Auto, t, Some(1 << 30)));
    }
}
