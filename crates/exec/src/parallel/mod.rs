//! # Morsel-driven parallel execution
//!
//! The paper's host system, Vectorwise, is a parallel vectorized engine;
//! this subsystem gives the reproduction the same property without any
//! dependency beyond `std` threads. The design follows the morsel-driven
//! model (Leis et al., SIGMOD 2014) specialized to BDCC storage:
//!
//! ## The morsel model
//!
//! Leaf scans are split into **morsels** — contiguous slices aligned with
//! the serial scan's natural batch boundaries:
//!
//! * **Plain/PK scans** split on MinMax *block* ranges
//!   ([`morsel::split_blocks`]), because the serial [`PlainScan`] emits
//!   one batch per surviving block.
//! * **BDCC scatter-scans** split on ranges of selected count-table
//!   *groups* in the planner's scatter order ([`morsel::split_groups`]),
//!   because the serial [`BdccScan`] emits one batch per group and never
//!   lets a batch cross a group boundary. `T_COUNT` group ranges are
//!   disjoint row ranges, making them the natural parallelism unit of the
//!   paper's storage layout.
//!
//! One **persistent, process-wide [work-stealing pool](pool)** of `std`
//! threads executes per-morsel operator fragments — scan, then any
//! filter/project steps, then (when the plan shape allows) a per-worker
//! *partial aggregate*. The pool's workers are created once (warmed by
//! [`QueryContext::with_parallel`]) and parked between fan-outs, so a
//! probe round, a radix phase or a sort-run batch costs queue operations,
//! not thread create/join; nested fan-outs are deadlock-free because a
//! blocked fan-out lends its calling thread to the pool ([`pool`]
//! documents the lending rule). Leaf scans additionally stream:
//! [`ParallelScan`] submits its morsels to the same pool through a
//! **bounded reorder buffer** ([`pool::OrderedStream`]), so downstream
//! operators consume batches while workers are still scanning and peak
//! memory stays O(threads × morsel) instead of O(table).
//!
//! Probe-heavy operators morselize *rows* rather than blocks or groups:
//! the join probe splits each round of probe batches into contiguous row
//! ranges ([`morsel::split_rows`]), workers probe the shared immutable
//! [`JoinIndex`](crate::hash::JoinIndex) concurrently, and per-morsel
//! match lists concatenate in morsel order
//! ([`merge::concat_match_lists`]).
//!
//! ## Merge contracts
//!
//! Partial results are merged **in morsel order**, never in completion
//! order ([`merge`]):
//!
//! * leaf streams concatenate ordered, reproducing the serial batch
//!   stream *exactly* — every downstream serial operator therefore
//!   behaves identically to serial execution;
//! * partial hash-aggregation states fold left-to-right, reproducing the
//!   serial first-seen group order and exact integer aggregates;
//!   float Sum/Avg use Neumaier-compensated accumulation on both the
//!   serial and parallel paths, so both land within ~1 ulp of the true
//!   sum and agree after [`canonical_rows`](crate::run::canonical_rows)
//!   rounding;
//! * radix-partitioned aggregation (fine-grained group-bys) scatters rows
//!   by group-key hash so each group lives in exactly one worker-local
//!   table; partitions consume their rows in morsel order and the
//!   disjoint outputs reorder by recorded first-seen position
//!   ([`merge::concat_radix_partitions`]) — byte-identical to serial,
//!   floats included;
//! * sorted per-morsel streams merge stably with morsel-index
//!   tie-breaking ([`merge::merge_sorted`]) — the contract [`ParallelSort`]
//!   uses to reproduce a serial stable sort of the concatenated input;
//! * hash-join build rows partition by key hash in chunk order
//!   ([`partition`]), so every partition's chains stay in ascending
//!   build-row order and partitioned probes ([`crate::hash::JoinIndex`])
//!   match the serial probe order exactly.
//!
//! The result: for every plan, parallel execution returns results
//! identical to serial execution (verified for all 22 TPC-H queries under
//! all three schemes by `tests/parallel_equivalence.rs`).
//!
//! ## Opting in
//!
//! Parallelism is off by default — [`QueryContext::new`] plans exactly as
//! before. [`QueryContext::with_parallel`] installs a [`ParallelConfig`];
//! the planner then swaps eligible leaves for [`ParallelScan`], eligible
//! aggregates for [`ParallelAggregate`], sorts for [`ParallelSort`], and
//! hands the config to both hash-join variants so big build sides use the
//! hash-partitioned parallel build and big probe rounds fan out to
//! probe-morsel workers, leaving the rest of the operator tree serial.
//!
//! [`PlainScan`]: crate::ops::scan::PlainScan
//! [`BdccScan`]: crate::ops::bdcc_scan::BdccScan
//! [`QueryContext::new`]: crate::planner::QueryContext::new
//! [`QueryContext::with_parallel`]: crate::planner::QueryContext::with_parallel

pub mod merge;
pub mod morsel;
pub mod partition;
pub mod pool;
pub mod sort;
mod spill;

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use bdcc_obs::{OpMetrics, SpanTimer};
use bdcc_storage::{Column, IoTracker};

use crate::batch::{Batch, OpSchema};
use crate::broker::MemoryBroker;
use crate::error::Result;
use crate::expr::Expr;
use crate::govern::Governor;
use crate::memory::{MemoryGuard, MemoryTracker};
use crate::ops::agg::{AggSpec, PartialAgg};
use crate::ops::transform::{Filter, Project};
use crate::ops::{BoxedOp, Operator};

pub use morsel::{Morsel, ScanBlueprint, ScanKind};
pub use sort::ParallelSort;

/// Default morsel size in rows (two MinMax blocks): small enough that a
/// laptop-scale table yields many times more morsels than workers (the
/// slack work stealing needs), large enough that per-morsel setup is
/// noise.
pub const DEFAULT_MORSEL_ROWS: usize = 8192;

/// Parallel execution parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads (1 = serial execution, the planner changes nothing).
    pub threads: usize,
    /// Target rows per morsel.
    pub morsel_rows: usize,
    /// [`ParallelAggregate`] strategy override: `Some(true)` forces the
    /// radix-partitioned path, `Some(false)` forces the partial-merge
    /// path, `None` lets the operator's group-cardinality probe decide
    /// per query. [`with_threads`](Self::with_threads) and `default()`
    /// seed this from `BDCC_AGG_RADIX`
    /// ([`agg_radix_from_env`](Self::agg_radix_from_env)) so a CI matrix
    /// can pin either path.
    pub agg_radix: Option<bool>,
}

impl ParallelConfig {
    /// `threads` workers with the default morsel size.
    pub fn with_threads(threads: usize) -> ParallelConfig {
        ParallelConfig {
            threads: threads.max(1),
            morsel_rows: DEFAULT_MORSEL_ROWS,
            agg_radix: ParallelConfig::agg_radix_from_env(),
        }
    }

    /// The `BDCC_AGG_RADIX` override: `1`/`true`/`on`/`force` pin the
    /// radix-partitioned aggregation path, `0`/`false`/`off` pin the
    /// partial-merge path, anything else (or unset) defers to the
    /// group-cardinality heuristic.
    pub fn agg_radix_from_env() -> Option<bool> {
        match std::env::var("BDCC_AGG_RADIX").ok().as_deref() {
            Some("1") | Some("true") | Some("on") | Some("force") => Some(true),
            Some("0") | Some("false") | Some("off") => Some(false),
            _ => None,
        }
    }

    /// Is splitting a `rows`-row leaf worth the fan-out?
    pub(crate) fn worth_splitting(&self, rows: usize) -> bool {
        self.threads > 1 && rows > self.morsel_rows
    }
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        ParallelConfig {
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            morsel_rows: DEFAULT_MORSEL_ROWS,
            agg_radix: ParallelConfig::agg_radix_from_env(),
        }
    }
}

/// A serial operator step applied on top of a leaf scan inside a parallel
/// fragment (each worker replays the steps over its morsel's stream).
pub enum FragmentStep {
    Filter(Expr),
    Project(Vec<(Expr, String)>),
}

/// A leaf scan plus the filter/project steps between it and the fragment
/// boundary — everything a worker needs to rebuild its slice of the plan.
pub struct FragmentBlueprint {
    pub scan: ScanBlueprint,
    pub steps: Vec<FragmentStep>,
}

impl FragmentBlueprint {
    /// Build the fragment operator over one morsel (or the whole leaf).
    pub fn build(&self, io: &IoTracker, morsel: Option<&Morsel>) -> Result<BoxedOp> {
        self.build_with_metrics(io, morsel, None)
    }

    /// [`build`](Self::build) with operator metrics attached to the leaf
    /// scan, so block-skip counters aggregate across the fragment's morsels.
    pub fn build_with_metrics(
        &self,
        io: &IoTracker,
        morsel: Option<&Morsel>,
        metrics: Option<Arc<OpMetrics>>,
    ) -> Result<BoxedOp> {
        let mut op = self.scan.build_with_metrics(io, morsel, metrics)?;
        for step in &self.steps {
            op = match step {
                FragmentStep::Filter(e) => {
                    Box::new(Filter::with_kernel(op, e.clone(), self.scan.filter_kernel)?)
                }
                FragmentStep::Project(exprs) => Box::new(Project::new(op, exprs.clone())?),
            };
        }
        Ok(op)
    }
}

/// In-flight morsel budget of a streaming scan, in units of `threads`:
/// enough slack that workers rarely park on the reorder buffer, small
/// enough that peak memory stays O(threads × morsel).
const STREAM_CAP_PER_THREAD: usize = 2;

/// How a [`ParallelScan`] is executing.
enum ScanExec {
    /// First `next()` not called yet.
    Idle,
    /// One worker's worth of work (threads == 1 or a single morsel): the
    /// whole-leaf serial operator, streamed batch by batch.
    Serial(BoxedOp),
    /// Streaming fan-out: workers push `(morsel, batches)` through the
    /// bounded reorder buffer; `current` drains the released morsel's
    /// batches while `mem` keeps them registered.
    Streaming {
        stream: pool::OrderedStream<(Vec<Batch>, MemoryGuard)>,
        current: std::vec::IntoIter<Batch>,
        mem: Option<MemoryGuard>,
    },
}

/// Morsel-parallel leaf scan: workers scan disjoint morsels, and the
/// operator releases the per-morsel batch lists in morsel order — an exact
/// reproduction of the serial scan's batch stream, so it can stand in for
/// a [`PlainScan`]/[`BdccScan`] under *any* serial operator tree.
///
/// Execution is **streaming**: pool workers publish finished morsels into
/// a bounded reorder buffer ([`pool::OrderedStream`]) that never has more
/// than O(`threads`) morsels in flight (backpressure by submission
/// gating — a stalled consumer parks no worker), so downstream operators
/// start consuming while the scan is still running and peak tracked
/// memory is O(threads × morsel) instead of O(table). Each in-flight
/// morsel's batches are registered with the memory tracker by the worker
/// that produced them and released when the consumer moves past the
/// morsel.
///
/// [`PlainScan`]: crate::ops::scan::PlainScan
/// [`BdccScan`]: crate::ops::bdcc_scan::BdccScan
pub struct ParallelScan {
    fragment: Arc<FragmentBlueprint>,
    io: IoTracker,
    cfg: ParallelConfig,
    tracker: Arc<MemoryTracker>,
    schema: OpSchema,
    exec: ScanExec,
    /// Profiling hook (planner-installed): morsel counts/latencies from
    /// the workers, reorder-buffer occupancy from the consumer, and the
    /// chosen execution path as an annotation. `None` costs nothing.
    metrics: Option<Arc<OpMetrics>>,
    /// Per-query limits checked by every producer before it scans its
    /// morsel, so cancellation stops a streaming fan-out within one
    /// morsel. Inert by default.
    governor: Governor,
}

impl ParallelScan {
    pub fn new(
        scan: ScanBlueprint,
        io: IoTracker,
        cfg: ParallelConfig,
        tracker: Arc<MemoryTracker>,
    ) -> Result<ParallelScan> {
        let fragment = Arc::new(FragmentBlueprint { scan, steps: Vec::new() });
        // Building (not running) the whole-leaf operator is cheap and
        // yields the schema.
        let schema = fragment.build(&io, None)?.schema().clone();
        Ok(ParallelScan {
            fragment,
            io,
            cfg,
            tracker,
            schema,
            exec: ScanExec::Idle,
            metrics: None,
            governor: Governor::none(),
        })
    }

    /// Attach the profiling metric block (planner-installed).
    pub fn with_metrics(mut self, metrics: Option<Arc<OpMetrics>>) -> ParallelScan {
        self.metrics = metrics;
        self
    }

    /// Attach the query's governor (planner-installed).
    pub fn with_governor(mut self, governor: Governor) -> ParallelScan {
        self.governor = governor;
        self
    }

    /// Start executing: fan out to the streaming workers, or fall back to
    /// the serial whole-leaf operator when there is nothing to fan out.
    fn start(&mut self) -> Result<()> {
        let morsels = self.fragment.scan.morsels(self.cfg.morsel_rows);
        if self.cfg.threads <= 1 || morsels.len() <= 1 {
            if let Some(m) = &self.metrics {
                m.annotate("path", "serial");
            }
            self.exec = ScanExec::Serial(self.fragment.build_with_metrics(
                &self.io,
                None,
                self.metrics.clone(),
            )?);
            return Ok(());
        }
        if let Some(m) = &self.metrics {
            m.annotate("path", "streaming");
        }
        let fragment = Arc::clone(&self.fragment);
        let io = self.io.clone();
        let tracker = Arc::clone(&self.tracker);
        let metrics = self.metrics.clone();
        let governor = self.governor.clone();
        let ntasks = morsels.len();
        let cap = self.cfg.threads * STREAM_CAP_PER_THREAD;
        let stream = pool::OrderedStream::spawn_labeled(
            self.cfg.threads,
            ntasks,
            cap,
            Some("scan-morsel"),
            move |i| {
                // One governor poll per morsel: a cancelled/over-deadline
                // query stops this producer before it scans another morsel.
                governor.check("scan-morsel")?;
                let span = metrics.as_ref().map(|_| SpanTimer::start());
                let mut op =
                    fragment.build_with_metrics(&io, Some(&morsels[i]), metrics.clone())?;
                let mut out = Vec::new();
                let mut rows = 0u64;
                while let Some(b) = op.next()? {
                    rows += b.rows() as u64;
                    out.push(b);
                }
                if let (Some(m), Some(span)) = (&metrics, span) {
                    m.morsels.add(1);
                    m.morsel_rows.add(rows);
                    m.morsel_nanos.record(span.elapsed_nanos());
                }
                // Charge the morsel while it sits in the reorder buffer (and
                // until the consumer finishes draining it); with the in-flight
                // cap this is what keeps peak O(threads × morsel).
                let bytes: u64 = out.iter().map(|b| b.estimated_bytes()).sum();
                Ok((out, tracker.register(bytes)))
            },
        );
        self.exec = ScanExec::Streaming { stream, current: Vec::new().into_iter(), mem: None };
        Ok(())
    }
}

impl Operator for ParallelScan {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        loop {
            match &mut self.exec {
                ScanExec::Idle => self.start()?,
                ScanExec::Serial(op) => return op.next(),
                ScanExec::Streaming { stream, current, mem } => {
                    if let Some(b) = current.next() {
                        return Ok(Some(b));
                    }
                    *mem = None; // previous morsel fully drained
                    if let Some(m) = &self.metrics {
                        m.occupancy_hwm.record(stream.buffered() as u64);
                    }
                    match stream.recv()? {
                        Some((batches, guard)) => {
                            *current = batches.into_iter();
                            *mem = Some(guard);
                        }
                        None => return Ok(None),
                    }
                }
            }
        }
    }
}

/// How many input rows per distinct group (measured on the sample
/// morsels) still favour the partial-merge path: below one group per
/// `RADIX_GROUP_RATIO` rows, per-worker partial tables stay small and
/// partitioning the input is pure overhead; at or above it, groups are
/// fine-grained enough that radix partitioning *can* pay (subject to the
/// duplication test below).
const RADIX_GROUP_RATIO: u64 = 8;

/// Minimum estimated cross-morsel duplication factor (×10: 20 = 2.0) for
/// the radix path. Duplication — how many morsels the average group
/// appears in — is what partials actually pay for (each appearance is
/// one more partial-table entry plus one more single-threaded merge
/// fold); a clustered input (keys confined to adjacent morsels) or a
/// per-row-unique key has duplication ≈ 1, and there partials hold
/// ~O(groups) total with a trivial merge while radix would still copy
/// the whole input — so radix must see real duplication to win.
const RADIX_MIN_DUPLICATION_X10: u64 = 20;

/// Morsel-parallel aggregation over a scan fragment, with two execution
/// strategies:
///
/// * **Partial-merge** — each worker runs scan→filter→project over its
///   morsels and accumulates a [`PartialAgg`]; partials fold in morsel
///   order and flush once ([`merge`] explains why this reproduces serial
///   results). Ideal for coarse group-bys (Q1's four groups), where every
///   partial stays tiny.
/// * **Radix-partitioned** — for fine-grained group-bys (Q18-style
///   `GROUP BY o_orderkey`), partial tables are the problem: every
///   morsel's partial re-materializes the groups it sees, so the fold
///   holds up to O(groups × morsels-sharing-a-group) states and merges
///   them all single-threaded. Instead, workers hash-partition each
///   morsel's rows by group key (the top bits of the shared key codec —
///   [`partition`] documents the routing contract) and one aggregation
///   task per partition consumes its rows *in morsel order*; every group
///   then lives in exactly one worker-local table (peak table memory
///   O(groups) total, not per worker), and the cross-worker merge
///   disappears — disjoint partition outputs reorder by recorded
///   first-seen position ([`merge::concat_radix_partitions`]),
///   **byte-identical** to serial execution, floats included.
///
/// The strategy comes from [`ParallelConfig::agg_radix`] when pinned
/// (`BDCC_AGG_RADIX`), otherwise from a two-sample probe
/// ([`choose_radix`](Self::choose_radix)): radix needs fine-grained
/// density (≥ 1 group per [`RADIX_GROUP_RATIO`] rows), a fan-out worth
/// partitioning (≥ 2× threads morsels), *and* real cross-morsel
/// duplication (capture–recapture estimate ≥
/// [`RADIX_MIN_DUPLICATION_X10`]/10 — clustered or per-row-unique keys
/// stay on partials, which already hold ~O(groups) there). The probe's
/// sampled morsels are cached and reused by whichever strategy wins, so
/// nothing is scanned twice.
pub struct ParallelAggregate {
    fragment: FragmentBlueprint,
    group_by: Vec<String>,
    aggs: Vec<AggSpec>,
    io: IoTracker,
    cfg: ParallelConfig,
    tracker: Arc<MemoryTracker>,
    child_schema: OpSchema,
    schema: OpSchema,
    done: bool,
    /// Profiling hook (planner-installed): morsel counts/latencies from
    /// the fan-out workers plus the strategy decision (and the probe's
    /// estimates) as annotations. `None` costs nothing.
    metrics: Option<Arc<OpMetrics>>,
    /// Per-query limits, polled once per fan-out task. Inert by default.
    governor: Governor,
    /// Pressure oracle for out-of-core execution: when active, the radix
    /// path runs its broker-governed variant ([`spill`]) that freezes
    /// partitions to temp files under pressure. Inert by default, which
    /// keeps the in-memory paths structurally unchanged.
    broker: MemoryBroker,
}

/// One morsel's radix-partitioned input: per partition, the gathered
/// sub-batches plus each row's pre-gather position within the morsel
/// (made global by adding the morsel's base offset in phase 2). The
/// memory guard keeps the partitioned rows charged to the tracker until
/// every partition task has consumed them.
struct MorselPartitions {
    parts: PartitionedBatches,
    rows: u64,
    _mem: MemoryGuard,
}

/// Per-partition lists of `(gathered sub-batch, morsel-local row ids)`.
type PartitionedBatches = Vec<Vec<(Batch, Vec<u64>)>>;

/// Outcome of the strategy choice: the decision, plus the batches of any
/// morsels the cardinality heuristic already scanned (keyed by morsel
/// index), so the winning strategy consumes them instead of scanning
/// those morsels twice.
struct Probe {
    radix: bool,
    cached: HashMap<usize, Vec<Batch>>,
    /// Keeps the cached sample batches charged to the memory tracker
    /// (like every other materialization in this subsystem) until the
    /// winning strategy has consumed them.
    cache_mem: Option<MemoryGuard>,
}

impl Probe {
    fn decided(radix: bool) -> Probe {
        Probe { radix, cached: HashMap::new(), cache_mem: None }
    }
}

/// The phase-1 worker kernel: scatter one morsel's batch stream into
/// per-partition gathered sub-batches plus each row's morsel-local
/// position. Returns `(per-partition batches, morsel rows, byte
/// estimate)`.
fn partition_morsel_stream(
    group_cols: &[usize],
    bits: u32,
    mut next: impl FnMut() -> Result<Option<Batch>>,
) -> Result<(PartitionedBatches, u64, u64)> {
    let mut parts: PartitionedBatches = vec![Vec::new(); partition::partition_count(bits)];
    let mut local = 0u64;
    let mut bytes = 0u64;
    while let Some(b) = next()? {
        let cols: Vec<&Column> = group_cols.iter().map(|&c| &b.columns[c]).collect();
        let routed = partition::partition_rows_of_batch(&cols, b.rows(), bits);
        for (p, rows) in routed.into_iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let ids: Vec<u64> = rows.iter().map(|&r| local + r as u64).collect();
            let gathered = Batch::new(b.columns.iter().map(|c| c.gather(&rows)).collect());
            bytes += gathered.estimated_bytes() + ids.len() as u64 * 8;
            parts[p].push((gathered, ids));
        }
        local += b.rows() as u64;
    }
    Ok((parts, local, bytes))
}

impl ParallelAggregate {
    pub fn new(
        fragment: FragmentBlueprint,
        group_by: &[&str],
        aggs: Vec<AggSpec>,
        io: IoTracker,
        cfg: ParallelConfig,
        tracker: Arc<MemoryTracker>,
    ) -> Result<ParallelAggregate> {
        let child_schema = fragment.build(&io, None)?.schema().clone();
        let schema = PartialAgg::new(&child_schema, group_by, &aggs)?.schema().clone();
        Ok(ParallelAggregate {
            fragment,
            group_by: group_by.iter().map(|s| s.to_string()).collect(),
            aggs,
            io,
            cfg,
            tracker,
            child_schema,
            schema,
            done: false,
            metrics: None,
            governor: Governor::none(),
            broker: MemoryBroker::none(),
        })
    }

    /// Attach the profiling metric block (planner-installed).
    pub fn with_metrics(mut self, metrics: Option<Arc<OpMetrics>>) -> ParallelAggregate {
        self.metrics = metrics;
        self
    }

    /// Attach the query's governor (planner-installed).
    pub fn with_governor(mut self, governor: Governor) -> ParallelAggregate {
        self.governor = governor;
        self
    }

    /// Attach the query's memory broker (planner-installed); an active
    /// broker routes fine-grained aggregations through the spill-capable
    /// radix variant.
    pub fn with_broker(mut self, broker: MemoryBroker) -> ParallelAggregate {
        self.broker = broker;
        self
    }

    fn fresh_partial(&self) -> Result<PartialAgg> {
        let gb: Vec<&str> = self.group_by.iter().map(|s| s.as_str()).collect();
        PartialAgg::new(&self.child_schema, &gb, &self.aggs)
    }

    /// Column indices of the group-by keys in the fragment's output.
    fn group_col_indices(&self) -> Result<Vec<usize>> {
        self.group_by
            .iter()
            .map(|g| {
                crate::batch::schema_index(&self.child_schema, g)
                    .ok_or_else(|| crate::error::ExecError::UnknownColumn(g.clone()))
            })
            .collect()
    }

    /// Aggregate one morsel into a fresh partial (the partial-merge
    /// worker body). Also returns the morsel's row count (profiling).
    fn morsel_partial(&self, morsel: &Morsel) -> Result<(PartialAgg, u64)> {
        let mut op = self.fragment.build(&self.io, Some(morsel))?;
        let mut p = self.fresh_partial()?;
        let mut rows = 0u64;
        while let Some(b) = op.next()? {
            rows += b.rows() as u64;
            p.consume(&b)?;
        }
        Ok((p, rows))
    }

    /// Scan one morsel, returning its batches, the set of distinct
    /// group-key hashes, and the row count (the heuristic's sample
    /// kernel; batches are cached for reuse, so the sample is never
    /// scanned or I/O-charged twice).
    fn scan_morsel_keyed(
        &self,
        morsel: &Morsel,
        group_cols: &[usize],
    ) -> Result<(Vec<Batch>, HashSet<u64, crate::hash::FxBuildHasher>, u64)> {
        let mut op = self.fragment.build(&self.io, Some(morsel))?;
        let mut batches = Vec::new();
        let mut rows = 0u64;
        let mut distinct: HashSet<u64, crate::hash::FxBuildHasher> = HashSet::default();
        while let Some(b) = op.next()? {
            let cols: Vec<&Column> = group_cols.iter().map(|&c| &b.columns[c]).collect();
            for r in 0..b.rows() {
                distinct.insert(crate::hash::hash_group_row(&cols, r));
            }
            rows += b.rows() as u64;
            batches.push(b);
        }
        Ok((batches, distinct, rows))
    }

    /// Pick the strategy. When the heuristic runs it scans two sample
    /// morsels (the first and a middle one) exactly once each — their
    /// batches ride along in `Probe::cached` for the winning strategy —
    /// and goes radix only when both tests pass:
    ///
    /// * **density** — at least one distinct group per
    ///   [`RADIX_GROUP_RATIO`] sampled rows (coarse group-bys keep tiny
    ///   partials; partitioning them is pure overhead);
    /// * **duplication** — the average group must appear in ≥
    ///   [`RADIX_MIN_DUPLICATION_X10`]/10 morsels, estimated by
    ///   capture–recapture over the two samples (global groups ≈
    ///   |A|·|B| / |A∩B|; duplication ≈ morsels × avg sample distinct /
    ///   global). Clustered inputs (keys confined to adjacent morsels —
    ///   zero overlap between distant samples) and per-row-unique keys
    ///   both estimate duplication ≈ 1: partials already hold ~O(groups)
    ///   total there and radix's partitioned input copy would only add
    ///   memory, so both stay on the partial-merge path.
    fn choose_radix(&self, morsels: &[Morsel]) -> Result<Probe> {
        let decided_by = |why: &str| {
            if let Some(m) = &self.metrics {
                m.annotate("strategy_source", why);
            }
        };
        // A global aggregate has one group — nothing to partition — and a
        // single morsel has no fan-out to route.
        if self.group_by.is_empty() || morsels.len() <= 1 {
            decided_by("shape");
            return Ok(Probe::decided(false));
        }
        if let Some(force) = self.cfg.agg_radix {
            decided_by("pinned");
            return Ok(Probe::decided(force));
        }
        // An active broker prefers radix outright: only the radix path
        // can freeze state to temp files, while a partial-merge fold of
        // fine-grained groups has nothing sheddable and would ride
        // straight into BudgetExceeded. The per-query cost of routing a
        // coarse group-by through radix is the partitioned input copy —
        // which the broker can spill — so under a budget the spillable
        // shape wins (the `BDCC_AGG_RADIX` pin above still overrides).
        if self.broker.is_active() {
            decided_by("broker");
            return Ok(Probe::decided(true));
        }
        // Radix trades a partitioned copy of the input for
        // exactly-one-table-per-group state; with only a handful of
        // morsels the partial path duplicates little, so the copy cannot
        // pay for itself whatever the cardinality — stay on partials.
        if morsels.len() < self.cfg.threads.max(2) * 2 {
            decided_by("shape");
            return Ok(Probe::decided(false));
        }
        decided_by("probe");
        let group_cols = self.group_col_indices()?;
        let mid = morsels.len() / 2;
        let (b0, h0, r0) = self.scan_morsel_keyed(&morsels[0], &group_cols)?;
        let (bm, hm, rm) = self.scan_morsel_keyed(&morsels[mid], &group_cols)?;
        let rows = r0 + rm;
        let overlap = h0.intersection(&hm).count() as u64;
        let union = (h0.len() + hm.len()) as u64 - overlap;
        let fine = rows > 0 && union * RADIX_GROUP_RATIO >= rows;
        // Capture–recapture (Lincoln–Petersen): zero overlap means the
        // samples share no groups — clustered or unique keys — and the
        // estimate degenerates to "no duplication".
        let duplicated = overlap > 0 && {
            let est_global = (h0.len() as u64 * hm.len() as u64) / overlap;
            let avg_sample = (h0.len() + hm.len()) as u64 / 2;
            if let Some(m) = &self.metrics {
                m.annotate("probe_est_groups", est_global.max(1).to_string());
            }
            morsels.len() as u64 * avg_sample * 10 >= est_global.max(1) * RADIX_MIN_DUPLICATION_X10
        };
        if let Some(m) = &self.metrics {
            m.annotate("probe_rows", rows.to_string());
            m.annotate("probe_sample_groups", union.to_string());
            m.annotate("probe_overlap", overlap.to_string());
        }
        let bytes: u64 = b0.iter().chain(&bm).map(|b| b.estimated_bytes()).sum();
        let cached = HashMap::from([(0, b0), (mid, bm)]);
        Ok(Probe {
            radix: fine && duplicated,
            cached,
            cache_mem: Some(self.tracker.register(bytes)),
        })
    }

    /// The radix-partitioned execution. Phase 1: workers scan morsels and
    /// scatter each batch's rows into `2^bits` partitions by group-key
    /// hash, remembering every row's position in its morsel (`cached`
    /// holds morsels the probe already scanned). Phase 2: one task per
    /// partition folds that partition's sub-batches **in morsel order**
    /// into a single table, recording each group's global first-row
    /// position. The disjoint partition outputs then reorder by those
    /// positions — the serial output, byte for byte.
    fn run_radix(&self, morsels: &[Morsel], cached: HashMap<usize, Vec<Batch>>) -> Result<Batch> {
        let bits = partition::partition_bits_for(self.cfg.threads);
        let nparts = partition::partition_count(bits);
        let group_cols = self.group_col_indices()?;

        // Phase 1 — partition the input. The gathered sub-batches are the
        // radix trade-off: the needed columns materialize once (charged
        // to the tracker per morsel), in exchange for per-group state
        // existing exactly once in phase 2.
        let cached = std::sync::Mutex::new(cached);
        let phase1: Vec<MorselPartitions> =
            pool::run_tasks_labeled(self.cfg.threads, morsels.len(), "agg-radix-p1", |i| {
                self.governor.check("agg-radix-p1")?;
                let span = self.metrics.as_ref().map(|_| SpanTimer::start());
                let hit = cached.lock().expect("probe cache poisoned").remove(&i);
                let (parts, rows, bytes) = match hit {
                    Some(batches) => {
                        let mut it = batches.into_iter();
                        partition_morsel_stream(&group_cols, bits, || Ok(it.next()))?
                    }
                    None => {
                        let mut op = self.fragment.build(&self.io, Some(&morsels[i]))?;
                        partition_morsel_stream(&group_cols, bits, || op.next())?
                    }
                };
                if let (Some(m), Some(span)) = (&self.metrics, span) {
                    m.morsels.add(1);
                    m.morsel_rows.add(rows);
                    m.morsel_nanos.record(span.elapsed_nanos());
                }
                Ok(MorselPartitions { parts, rows, _mem: self.tracker.register(bytes) })
            })?;

        // Morsel base offsets: `run_tasks` returned in morsel order, so
        // prefix sums place every morsel-local row id in the one global
        // stream-position space the first-seen ranks live in.
        let mut bases = Vec::with_capacity(phase1.len());
        let mut acc = 0u64;
        for m in &phase1 {
            bases.push(acc);
            acc += m.rows;
        }

        // Phase 2 — one aggregation task per partition, each charging its
        // table to the tracker while it exists.
        let finished = pool::run_tasks_labeled(self.cfg.threads, nparts, "agg-radix-p2", |p| {
            self.governor.check("agg-radix-p2")?;
            let mut part = self.fresh_partial()?;
            for (m, mp) in phase1.iter().enumerate() {
                for (batch, ids) in &mp.parts[p] {
                    part.consume_indexed(batch, ids, bases[m])?;
                }
            }
            let mem = self.tracker.register(part.estimated_bytes());
            Ok((part.finish_ordered()?, mem))
        })?;
        drop(phase1);
        let (outs, _mems): (Vec<_>, Vec<_>) = finished.into_iter().unzip();
        merge::concat_radix_partitions(outs)
    }
}

impl Operator for ParallelAggregate {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let morsels = self.fragment.scan.morsels(self.cfg.morsel_rows);
        let mut probe =
            if morsels.is_empty() { Probe::decided(false) } else { self.choose_radix(&morsels)? };
        if let Some(m) = &self.metrics {
            m.annotate("strategy", if probe.radix { "radix" } else { "partial-merge" });
        }
        // Held across the fan-out: the cached sample batches stay charged
        // until consumed (dropping at scope end slightly over-reports the
        // tail, never under-reports).
        let _cache_mem = probe.cache_mem.take();
        if probe.radix {
            // The broker-governed variant freezes/restores partitions
            // under pressure; without a broker the in-memory path runs
            // untouched.
            if self.broker.is_active() {
                return Ok(Some(self.run_radix_spill(&morsels, probe.cached)?));
            }
            return Ok(Some(self.run_radix(&morsels, probe.cached)?));
        }
        // Partial-merge fan-out; morsels the probe already scanned are
        // aggregated from their cached batches (the results are
        // identical — a partial is a pure fold of the morsel's stream).
        let cached = std::sync::Mutex::new(probe.cached);
        let mut partials =
            pool::run_tasks_labeled(self.cfg.threads, morsels.len(), "agg-partial", |i| {
                self.governor.check("agg-partial")?;
                let span = self.metrics.as_ref().map(|_| SpanTimer::start());
                // Bind the cache hit outside the match: a scrutinee temporary
                // would hold the lock across the whole aggregation arm.
                let hit = cached.lock().expect("probe cache poisoned").remove(&i);
                let (p, rows) = match hit {
                    Some(batches) => {
                        let mut p = self.fresh_partial()?;
                        let mut rows = 0u64;
                        for b in &batches {
                            rows += b.rows() as u64;
                            p.consume(b)?;
                        }
                        (p, rows)
                    }
                    None => self.morsel_partial(&morsels[i])?,
                };
                if let (Some(m), Some(span)) = (&self.metrics, span) {
                    m.morsels.add(1);
                    m.morsel_rows.add(rows);
                    m.morsel_nanos.record(span.elapsed_nanos());
                }
                Ok(p)
            })?;
        if partials.is_empty() {
            partials.push(self.fresh_partial()?);
        }
        let bytes: u64 = partials.iter().map(|p| p.estimated_bytes()).sum();
        let _mem = self.tracker.register(bytes);
        let out = merge::merge_partial_aggs(partials)?;
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::agg::{AggFunc, HashAggregate};
    use crate::ops::collect;
    use crate::ops::scan::PlainScan;
    use crate::pred::ColPredicate;
    use bdcc_storage::{Column, StoredTable};

    fn table(rows: usize) -> Arc<StoredTable> {
        let k: Vec<i64> = (0..rows as i64).collect();
        let g: Vec<i64> = (0..rows as i64).map(|i| i % 7).collect();
        let f: Vec<f64> = (0..rows).map(|i| (i as f64) * 0.37).collect();
        Arc::new(
            StoredTable::from_columns_with_block_rows(
                "t",
                vec![
                    ("k".into(), Column::from_i64(k)),
                    ("g".into(), Column::from_i64(g)),
                    ("f".into(), Column::from_f64(f)),
                ],
                16,
            )
            .unwrap(),
        )
    }

    fn blueprint(t: &Arc<StoredTable>, preds: Vec<ColPredicate>) -> ScanBlueprint {
        ScanBlueprint {
            table: Arc::clone(t),
            columns: vec!["k".into(), "g".into(), "f".into()],
            predicates: preds,
            kind: ScanKind::Plain,
            filter_kernel: crate::kernel::kernel_enabled(),
        }
    }

    #[test]
    fn parallel_scan_replays_serial_stream() {
        let t = table(1000);
        let io = IoTracker::new();
        let serial = collect(Box::new(
            PlainScan::new(Arc::clone(&t), io.clone(), &["k", "g", "f"], vec![]).unwrap(),
        ))
        .unwrap();
        let cfg = ParallelConfig { threads: 3, morsel_rows: 64, agg_radix: None };
        let par = collect(Box::new(
            ParallelScan::new(blueprint(&t, vec![]), io, cfg, MemoryTracker::new()).unwrap(),
        ))
        .unwrap();
        assert_eq!(serial, par);
    }

    #[test]
    fn parallel_scan_with_predicates_matches() {
        let t = table(500);
        let io = IoTracker::new();
        let preds = vec![ColPredicate::ge("k", 100i64), ColPredicate::le("k", 399i64)];
        let serial = collect(Box::new(
            PlainScan::new(Arc::clone(&t), io.clone(), &["k", "f"], preds.clone()).unwrap(),
        ))
        .unwrap();
        let cfg = ParallelConfig { threads: 4, morsel_rows: 32, agg_radix: None };
        let bp = ScanBlueprint {
            table: Arc::clone(&t),
            columns: vec!["k".into(), "f".into()],
            predicates: preds,
            kind: ScanKind::Plain,
            filter_kernel: crate::kernel::kernel_enabled(),
        };
        let par = collect(Box::new(ParallelScan::new(bp, io, cfg, MemoryTracker::new()).unwrap()))
            .unwrap();
        assert_eq!(serial, par);
    }

    #[test]
    fn parallel_aggregate_matches_hash_aggregate() {
        let t = table(2000);
        let io = IoTracker::new();
        let aggs = vec![
            AggSpec::new(AggFunc::Sum, Expr::col("k"), "sk"),
            AggSpec::new(AggFunc::Sum, Expr::col("f"), "sf"),
            AggSpec::new(AggFunc::Avg, Expr::col("f"), "af"),
            AggSpec::new(AggFunc::Min, Expr::col("k"), "mn"),
            AggSpec::new(AggFunc::Max, Expr::col("k"), "mx"),
            AggSpec::new(AggFunc::Count, Expr::lit(1), "n"),
            AggSpec::new(AggFunc::CountDistinct, Expr::col("g"), "nd"),
        ];
        let serial_in: BoxedOp =
            Box::new(PlainScan::new(Arc::clone(&t), io.clone(), &["k", "g", "f"], vec![]).unwrap());
        let serial = collect(Box::new(
            HashAggregate::new(serial_in, &["g"], aggs.clone(), MemoryTracker::new()).unwrap(),
        ))
        .unwrap();
        let cfg = ParallelConfig { threads: 4, morsel_rows: 48, agg_radix: None };
        let par = collect(Box::new(
            ParallelAggregate::new(
                FragmentBlueprint { scan: blueprint(&t, vec![]), steps: vec![] },
                &["g"],
                aggs,
                io,
                cfg,
                MemoryTracker::new(),
            )
            .unwrap(),
        ))
        .unwrap();
        // Integer aggregates, group keys and group order are exact; float
        // Sum/Avg are only promised to ~1 ulp (different accumulation
        // association), so compare through the canonical rounding the
        // cross-scheme tests use rather than bitwise.
        assert_eq!(crate::run::canonical_rows(&serial), crate::run::canonical_rows(&par));
        assert_eq!(serial.rows(), par.rows());
        assert_eq!(serial.columns[0], par.columns[0], "group keys and order must be exact");
    }

    #[test]
    fn radix_aggregate_is_bit_identical_to_serial() {
        // Forced radix path vs the serial HashAggregate: *bit*-identical,
        // floats included — each group's rows fold in serial stream order
        // inside its one partition, so even compensated float sums see
        // the exact serial accumulation sequence (a stronger promise than
        // the partial-merge path's ~1 ulp).
        let t = table(3000);
        let io = IoTracker::new();
        let aggs = vec![
            AggSpec::new(AggFunc::Sum, Expr::col("f"), "sf"),
            AggSpec::new(AggFunc::Avg, Expr::col("f"), "af"),
            AggSpec::new(AggFunc::Sum, Expr::col("g"), "sg"),
            AggSpec::new(AggFunc::Min, Expr::col("f"), "mn"),
            AggSpec::new(AggFunc::Max, Expr::col("k"), "mx"),
            AggSpec::new(AggFunc::Count, Expr::lit(1), "n"),
        ];
        let serial_in: BoxedOp =
            Box::new(PlainScan::new(Arc::clone(&t), io.clone(), &["k", "g", "f"], vec![]).unwrap());
        // Group by "k": every row its own group — the radix sweet spot.
        let serial = collect(Box::new(
            HashAggregate::new(serial_in, &["k"], aggs.clone(), MemoryTracker::new()).unwrap(),
        ))
        .unwrap();
        for threads in [2, 3, 4] {
            let cfg = ParallelConfig { threads, morsel_rows: 64, agg_radix: Some(true) };
            let par = collect(Box::new(
                ParallelAggregate::new(
                    FragmentBlueprint { scan: blueprint(&t, vec![]), steps: vec![] },
                    &["k"],
                    aggs.clone(),
                    io.clone(),
                    cfg,
                    MemoryTracker::new(),
                )
                .unwrap(),
            ))
            .unwrap();
            assert_eq!(serial, par, "threads={threads}: radix must be bit-identical");
        }
    }

    #[test]
    fn heuristic_routes_by_density_and_cross_morsel_duplication() {
        // Four key shapes over one 2000-row table (16-row blocks):
        //  * "scat"  — 250 groups, 8 scattered occurrences each: fine AND
        //    duplicated → radix;
        //  * "g"     — 7 groups: duplicated but coarse → partials;
        //  * "uniq"  — per-row-unique keys: fine but zero duplication
        //    (partials already hold O(groups) total) → partials;
        //  * "clus"  — per-4-row groups in clustered order: fine density
        //    but keys never span distant morsels → partials.
        let rows = 2000usize;
        let mk_col = |f: &dyn Fn(i64) -> i64| (0..rows as i64).map(f).collect::<Vec<_>>();
        let t = Arc::new(
            StoredTable::from_columns_with_block_rows(
                "t",
                vec![
                    ("scat".into(), Column::from_i64(mk_col(&|i| (i * 13) % 250))),
                    ("g".into(), Column::from_i64(mk_col(&|i| i % 7))),
                    ("uniq".into(), Column::from_i64(mk_col(&|i| i))),
                    ("clus".into(), Column::from_i64(mk_col(&|i| i / 4))),
                ],
                16,
            )
            .unwrap(),
        );
        let io = IoTracker::new();
        let cfg = ParallelConfig { threads: 4, morsel_rows: 64, agg_radix: None };
        let mk = |group: &str, cfg: &ParallelConfig| {
            let bp = ScanBlueprint {
                table: Arc::clone(&t),
                columns: vec!["scat".into(), "g".into(), "uniq".into(), "clus".into()],
                predicates: vec![],
                kind: ScanKind::Plain,
                filter_kernel: crate::kernel::kernel_enabled(),
            };
            ParallelAggregate::new(
                FragmentBlueprint { scan: bp, steps: vec![] },
                &[group],
                vec![AggSpec::new(AggFunc::Count, Expr::lit(1), "n")],
                io.clone(),
                cfg.clone(),
                MemoryTracker::new(),
            )
            .unwrap()
        };
        let probe_of = |group: &str, cfg: &ParallelConfig| {
            let agg = mk(group, cfg);
            let morsels = agg.fragment.scan.morsels(cfg.morsel_rows);
            agg.choose_radix(&morsels).unwrap()
        };
        let probe = probe_of("scat", &cfg);
        assert!(probe.radix, "scattered fine-grained groups must go radix");
        assert_eq!(probe.cached.len(), 2, "both sampled morsels must be reused");
        assert!(!probe_of("g", &cfg).radix, "coarse groups must stay on partials");
        assert!(!probe_of("uniq", &cfg).radix, "unique keys duplicate nothing — partials");
        assert!(!probe_of("clus", &cfg).radix, "clustered keys duplicate nothing — partials");
        // A handful of morsels (< 2× threads) cannot amortize the radix
        // input copy, whatever the cardinality: 512-row morsels split the
        // table into ~4 morsels and the probe keeps partials.
        let few = ParallelConfig { threads: 4, morsel_rows: 512, agg_radix: None };
        assert!(!probe_of("scat", &few).radix, "too few morsels must keep partials");
        // And the auto paths still answer correctly.
        assert_eq!(collect(Box::new(mk("scat", &cfg))).unwrap().rows(), 250);
        assert_eq!(collect(Box::new(mk("g", &cfg))).unwrap().rows(), 7);
        assert_eq!(collect(Box::new(mk("uniq", &cfg))).unwrap().rows(), 2000);
    }

    #[test]
    fn radix_aggregate_with_string_and_float_group_keys() {
        // Mixed-type group keys route through the shared codec; radix
        // must stay bit-identical to serial with strings and float keys.
        let rows = 1200usize;
        let s: Vec<String> = (0..rows).map(|i| format!("c{}", i % 97)).collect();
        let f: Vec<f64> = (0..rows).map(|i| ((i % 89) as f64) * 0.5).collect();
        let v: Vec<i64> = (0..rows as i64).collect();
        let t = Arc::new(
            StoredTable::from_columns_with_block_rows(
                "t",
                vec![
                    ("s".into(), Column::from_strings(s)),
                    ("f".into(), Column::from_f64(f)),
                    ("v".into(), Column::from_i64(v)),
                ],
                32,
            )
            .unwrap(),
        );
        let io = IoTracker::new();
        let aggs = vec![
            AggSpec::new(AggFunc::Sum, Expr::col("v"), "sv"),
            AggSpec::new(AggFunc::Count, Expr::lit(1), "n"),
        ];
        let serial_in: BoxedOp =
            Box::new(PlainScan::new(Arc::clone(&t), io.clone(), &["s", "f", "v"], vec![]).unwrap());
        let serial = collect(Box::new(
            HashAggregate::new(serial_in, &["s", "f"], aggs.clone(), MemoryTracker::new()).unwrap(),
        ))
        .unwrap();
        let bp = ScanBlueprint {
            table: Arc::clone(&t),
            columns: vec!["s".into(), "f".into(), "v".into()],
            predicates: vec![],
            kind: ScanKind::Plain,
            filter_kernel: crate::kernel::kernel_enabled(),
        };
        let cfg = ParallelConfig { threads: 4, morsel_rows: 64, agg_radix: Some(true) };
        let par = collect(Box::new(
            ParallelAggregate::new(
                FragmentBlueprint { scan: bp, steps: vec![] },
                &["s", "f"],
                aggs,
                io,
                cfg,
                MemoryTracker::new(),
            )
            .unwrap(),
        ))
        .unwrap();
        assert_eq!(serial, par);
    }

    #[test]
    fn parallel_global_aggregate_over_empty_selection_yields_zero_row() {
        let t = table(100);
        let io = IoTracker::new();
        let aggs = vec![AggSpec::new(AggFunc::Count, Expr::lit(1), "n")];
        let cfg = ParallelConfig { threads: 2, morsel_rows: 16, agg_radix: None };
        let bp = blueprint(&t, vec![ColPredicate::eq("k", 1_000_000i64)]);
        let par = collect(Box::new(
            ParallelAggregate::new(
                FragmentBlueprint { scan: bp, steps: vec![] },
                &[],
                aggs,
                io,
                cfg,
                MemoryTracker::new(),
            )
            .unwrap(),
        ))
        .unwrap();
        assert_eq!(par.rows(), 1);
        assert_eq!(par.columns[0].as_i64().unwrap(), &[0]);
    }

    #[test]
    fn fragment_steps_apply_per_worker() {
        let t = table(600);
        let io = IoTracker::new();
        let steps = vec![
            FragmentStep::Filter(Expr::col("k").lt(Expr::lit(300))),
            FragmentStep::Project(vec![(Expr::col("g"), "g".into())]),
        ];
        let cfg = ParallelConfig { threads: 3, morsel_rows: 32, agg_radix: None };
        let par = collect(Box::new(
            ParallelAggregate::new(
                FragmentBlueprint { scan: blueprint(&t, vec![]), steps },
                &["g"],
                vec![AggSpec::new(AggFunc::Count, Expr::lit(1), "n")],
                io,
                cfg,
                MemoryTracker::new(),
            )
            .unwrap(),
        ))
        .unwrap();
        // 300 rows over 7 groups: sizes 43 except g ∈ {0,1,2} get 43 and
        // the count sums to 300.
        let total: i64 = par.columns[1].as_i64().unwrap().iter().sum();
        assert_eq!(total, 300);
        assert_eq!(par.rows(), 7);
    }
}
