//! # Morsel-driven parallel execution
//!
//! The paper's host system, Vectorwise, is a parallel vectorized engine;
//! this subsystem gives the reproduction the same property without any
//! dependency beyond `std` threads. The design follows the morsel-driven
//! model (Leis et al., SIGMOD 2014) specialized to BDCC storage:
//!
//! ## The morsel model
//!
//! Leaf scans are split into **morsels** — contiguous slices aligned with
//! the serial scan's natural batch boundaries:
//!
//! * **Plain/PK scans** split on MinMax *block* ranges
//!   ([`morsel::split_blocks`]), because the serial [`PlainScan`] emits
//!   one batch per surviving block.
//! * **BDCC scatter-scans** split on ranges of selected count-table
//!   *groups* in the planner's scatter order ([`morsel::split_groups`]),
//!   because the serial [`BdccScan`] emits one batch per group and never
//!   lets a batch cross a group boundary. `T_COUNT` group ranges are
//!   disjoint row ranges, making them the natural parallelism unit of the
//!   paper's storage layout.
//!
//! A [work-stealing pool](pool) of `std` threads executes per-morsel
//! operator fragments — scan, then any filter/project steps, then
//! (when the plan shape allows) a per-worker *partial aggregate*. Leaf
//! scans additionally stream: [`ParallelScan`] runs its morsels on a
//! detached producer pool whose results flow through a **bounded reorder
//! buffer** ([`pool::OrderedStream`]), so downstream operators consume
//! batches while workers are still scanning and peak memory stays
//! O(threads × morsel) instead of O(table).
//!
//! Probe-heavy operators morselize *rows* rather than blocks or groups:
//! the join probe splits each round of probe batches into contiguous row
//! ranges ([`morsel::split_rows`]), workers probe the shared immutable
//! [`JoinIndex`](crate::hash::JoinIndex) concurrently, and per-morsel
//! match lists concatenate in morsel order
//! ([`merge::concat_match_lists`]).
//!
//! ## Merge contracts
//!
//! Partial results are merged **in morsel order**, never in completion
//! order ([`merge`]):
//!
//! * leaf streams concatenate ordered, reproducing the serial batch
//!   stream *exactly* — every downstream serial operator therefore
//!   behaves identically to serial execution;
//! * partial hash-aggregation states fold left-to-right, reproducing the
//!   serial first-seen group order and exact integer aggregates;
//!   float Sum/Avg use Neumaier-compensated accumulation on both the
//!   serial and parallel paths, so both land within ~1 ulp of the true
//!   sum and agree after [`canonical_rows`](crate::run::canonical_rows)
//!   rounding;
//! * sorted per-morsel streams merge stably with morsel-index
//!   tie-breaking ([`merge::merge_sorted`]) — the contract [`ParallelSort`]
//!   uses to reproduce a serial stable sort of the concatenated input;
//! * hash-join build rows partition by key hash in chunk order
//!   ([`partition`]), so every partition's chains stay in ascending
//!   build-row order and partitioned probes ([`crate::hash::JoinIndex`])
//!   match the serial probe order exactly.
//!
//! The result: for every plan, parallel execution returns results
//! identical to serial execution (verified for all 22 TPC-H queries under
//! all three schemes by `tests/parallel_equivalence.rs`).
//!
//! ## Opting in
//!
//! Parallelism is off by default — [`QueryContext::new`] plans exactly as
//! before. [`QueryContext::with_parallel`] installs a [`ParallelConfig`];
//! the planner then swaps eligible leaves for [`ParallelScan`], eligible
//! aggregates for [`ParallelAggregate`], sorts for [`ParallelSort`], and
//! hands the config to both hash-join variants so big build sides use the
//! hash-partitioned parallel build and big probe rounds fan out to
//! probe-morsel workers, leaving the rest of the operator tree serial.
//!
//! [`PlainScan`]: crate::ops::scan::PlainScan
//! [`BdccScan`]: crate::ops::bdcc_scan::BdccScan
//! [`QueryContext::new`]: crate::planner::QueryContext::new
//! [`QueryContext::with_parallel`]: crate::planner::QueryContext::with_parallel

pub mod merge;
pub mod morsel;
pub mod partition;
pub mod pool;
pub mod sort;

use std::sync::Arc;

use bdcc_storage::IoTracker;

use crate::batch::{Batch, OpSchema};
use crate::error::Result;
use crate::expr::Expr;
use crate::memory::{MemoryGuard, MemoryTracker};
use crate::ops::agg::{AggSpec, PartialAgg};
use crate::ops::transform::{Filter, Project};
use crate::ops::{BoxedOp, Operator};

pub use morsel::{Morsel, ScanBlueprint, ScanKind};
pub use sort::ParallelSort;

/// Default morsel size in rows (two MinMax blocks): small enough that a
/// laptop-scale table yields many times more morsels than workers (the
/// slack work stealing needs), large enough that per-morsel setup is
/// noise.
pub const DEFAULT_MORSEL_ROWS: usize = 8192;

/// Parallel execution parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads (1 = serial execution, the planner changes nothing).
    pub threads: usize,
    /// Target rows per morsel.
    pub morsel_rows: usize,
}

impl ParallelConfig {
    /// `threads` workers with the default morsel size.
    pub fn with_threads(threads: usize) -> ParallelConfig {
        ParallelConfig { threads: threads.max(1), morsel_rows: DEFAULT_MORSEL_ROWS }
    }

    /// Is splitting a `rows`-row leaf worth the fan-out?
    pub(crate) fn worth_splitting(&self, rows: usize) -> bool {
        self.threads > 1 && rows > self.morsel_rows
    }
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        ParallelConfig {
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            morsel_rows: DEFAULT_MORSEL_ROWS,
        }
    }
}

/// A serial operator step applied on top of a leaf scan inside a parallel
/// fragment (each worker replays the steps over its morsel's stream).
pub enum FragmentStep {
    Filter(Expr),
    Project(Vec<(Expr, String)>),
}

/// A leaf scan plus the filter/project steps between it and the fragment
/// boundary — everything a worker needs to rebuild its slice of the plan.
pub struct FragmentBlueprint {
    pub scan: ScanBlueprint,
    pub steps: Vec<FragmentStep>,
}

impl FragmentBlueprint {
    /// Build the fragment operator over one morsel (or the whole leaf).
    pub fn build(&self, io: &IoTracker, morsel: Option<&Morsel>) -> Result<BoxedOp> {
        let mut op = self.scan.build(io, morsel)?;
        for step in &self.steps {
            op = match step {
                FragmentStep::Filter(e) => Box::new(Filter::new(op, e.clone())?),
                FragmentStep::Project(exprs) => Box::new(Project::new(op, exprs.clone())?),
            };
        }
        Ok(op)
    }
}

/// In-flight morsel budget of a streaming scan, in units of `threads`:
/// enough slack that workers rarely park on the reorder buffer, small
/// enough that peak memory stays O(threads × morsel).
const STREAM_CAP_PER_THREAD: usize = 2;

/// How a [`ParallelScan`] is executing.
enum ScanExec {
    /// First `next()` not called yet.
    Idle,
    /// One worker's worth of work (threads == 1 or a single morsel): the
    /// whole-leaf serial operator, streamed batch by batch.
    Serial(BoxedOp),
    /// Streaming fan-out: workers push `(morsel, batches)` through the
    /// bounded reorder buffer; `current` drains the released morsel's
    /// batches while `mem` keeps them registered.
    Streaming {
        stream: pool::OrderedStream<(Vec<Batch>, MemoryGuard)>,
        current: std::vec::IntoIter<Batch>,
        mem: Option<MemoryGuard>,
    },
}

/// Morsel-parallel leaf scan: workers scan disjoint morsels, and the
/// operator releases the per-morsel batch lists in morsel order — an exact
/// reproduction of the serial scan's batch stream, so it can stand in for
/// a [`PlainScan`]/[`BdccScan`] under *any* serial operator tree.
///
/// Execution is **streaming**: workers publish finished morsels into a
/// bounded reorder buffer ([`pool::OrderedStream`]) and park once more
/// than O(`threads`) morsels are in flight, so downstream operators start
/// consuming while the scan is still running and peak tracked memory is
/// O(threads × morsel) instead of O(table). Each in-flight morsel's
/// batches are registered with the memory tracker by the worker that
/// produced them and released when the consumer moves past the morsel.
///
/// [`PlainScan`]: crate::ops::scan::PlainScan
/// [`BdccScan`]: crate::ops::bdcc_scan::BdccScan
pub struct ParallelScan {
    fragment: Arc<FragmentBlueprint>,
    io: IoTracker,
    cfg: ParallelConfig,
    tracker: Arc<MemoryTracker>,
    schema: OpSchema,
    exec: ScanExec,
}

impl ParallelScan {
    pub fn new(
        scan: ScanBlueprint,
        io: IoTracker,
        cfg: ParallelConfig,
        tracker: Arc<MemoryTracker>,
    ) -> Result<ParallelScan> {
        let fragment = Arc::new(FragmentBlueprint { scan, steps: Vec::new() });
        // Building (not running) the whole-leaf operator is cheap and
        // yields the schema.
        let schema = fragment.build(&io, None)?.schema().clone();
        Ok(ParallelScan { fragment, io, cfg, tracker, schema, exec: ScanExec::Idle })
    }

    /// Start executing: fan out to the streaming workers, or fall back to
    /// the serial whole-leaf operator when there is nothing to fan out.
    fn start(&mut self) -> Result<()> {
        let morsels = self.fragment.scan.morsels(self.cfg.morsel_rows);
        if self.cfg.threads <= 1 || morsels.len() <= 1 {
            self.exec = ScanExec::Serial(self.fragment.build(&self.io, None)?);
            return Ok(());
        }
        let fragment = Arc::clone(&self.fragment);
        let io = self.io.clone();
        let tracker = Arc::clone(&self.tracker);
        let ntasks = morsels.len();
        let cap = self.cfg.threads * STREAM_CAP_PER_THREAD;
        let stream = pool::OrderedStream::spawn(self.cfg.threads, ntasks, cap, move |i| {
            let mut op = fragment.build(&io, Some(&morsels[i]))?;
            let mut out = Vec::new();
            while let Some(b) = op.next()? {
                out.push(b);
            }
            // Charge the morsel while it sits in the reorder buffer (and
            // until the consumer finishes draining it); with the in-flight
            // cap this is what keeps peak O(threads × morsel).
            let bytes: u64 = out.iter().map(|b| b.estimated_bytes()).sum();
            Ok((out, tracker.register(bytes)))
        });
        self.exec = ScanExec::Streaming { stream, current: Vec::new().into_iter(), mem: None };
        Ok(())
    }
}

impl Operator for ParallelScan {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        loop {
            match &mut self.exec {
                ScanExec::Idle => self.start()?,
                ScanExec::Serial(op) => return op.next(),
                ScanExec::Streaming { stream, current, mem } => {
                    if let Some(b) = current.next() {
                        return Ok(Some(b));
                    }
                    *mem = None; // previous morsel fully drained
                    match stream.recv()? {
                        Some((batches, guard)) => {
                            *current = batches.into_iter();
                            *mem = Some(guard);
                        }
                        None => return Ok(None),
                    }
                }
            }
        }
    }
}

/// Morsel-parallel aggregation over a scan fragment: each worker runs
/// scan→filter→project over its morsels and accumulates a [`PartialAgg`];
/// partials fold in morsel order and flush once ([`merge`] explains why
/// this reproduces serial results).
pub struct ParallelAggregate {
    fragment: FragmentBlueprint,
    group_by: Vec<String>,
    aggs: Vec<AggSpec>,
    io: IoTracker,
    cfg: ParallelConfig,
    tracker: Arc<MemoryTracker>,
    child_schema: OpSchema,
    schema: OpSchema,
    done: bool,
}

impl ParallelAggregate {
    pub fn new(
        fragment: FragmentBlueprint,
        group_by: &[&str],
        aggs: Vec<AggSpec>,
        io: IoTracker,
        cfg: ParallelConfig,
        tracker: Arc<MemoryTracker>,
    ) -> Result<ParallelAggregate> {
        let child_schema = fragment.build(&io, None)?.schema().clone();
        let schema = PartialAgg::new(&child_schema, group_by, &aggs)?.schema().clone();
        Ok(ParallelAggregate {
            fragment,
            group_by: group_by.iter().map(|s| s.to_string()).collect(),
            aggs,
            io,
            cfg,
            tracker,
            child_schema,
            schema,
            done: false,
        })
    }

    fn fresh_partial(&self) -> Result<PartialAgg> {
        let gb: Vec<&str> = self.group_by.iter().map(|s| s.as_str()).collect();
        PartialAgg::new(&self.child_schema, &gb, &self.aggs)
    }
}

impl Operator for ParallelAggregate {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let morsels = self.fragment.scan.morsels(self.cfg.morsel_rows);
        let mut partials = if morsels.is_empty() {
            Vec::new()
        } else {
            pool::run_tasks(self.cfg.threads, morsels.len(), |i| {
                let mut op = self.fragment.build(&self.io, Some(&morsels[i]))?;
                let mut p = self.fresh_partial()?;
                while let Some(b) = op.next()? {
                    p.consume(&b)?;
                }
                Ok(p)
            })?
        };
        if partials.is_empty() {
            partials.push(self.fresh_partial()?);
        }
        let bytes: u64 = partials.iter().map(|p| p.estimated_bytes()).sum();
        let _mem = self.tracker.register(bytes);
        let out = merge::merge_partial_aggs(partials)?;
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::agg::{AggFunc, HashAggregate};
    use crate::ops::collect;
    use crate::ops::scan::PlainScan;
    use crate::pred::ColPredicate;
    use bdcc_storage::{Column, StoredTable};

    fn table(rows: usize) -> Arc<StoredTable> {
        let k: Vec<i64> = (0..rows as i64).collect();
        let g: Vec<i64> = (0..rows as i64).map(|i| i % 7).collect();
        let f: Vec<f64> = (0..rows).map(|i| (i as f64) * 0.37).collect();
        Arc::new(
            StoredTable::from_columns_with_block_rows(
                "t",
                vec![
                    ("k".into(), Column::from_i64(k)),
                    ("g".into(), Column::from_i64(g)),
                    ("f".into(), Column::from_f64(f)),
                ],
                16,
            )
            .unwrap(),
        )
    }

    fn blueprint(t: &Arc<StoredTable>, preds: Vec<ColPredicate>) -> ScanBlueprint {
        ScanBlueprint {
            table: Arc::clone(t),
            columns: vec!["k".into(), "g".into(), "f".into()],
            predicates: preds,
            kind: ScanKind::Plain,
        }
    }

    #[test]
    fn parallel_scan_replays_serial_stream() {
        let t = table(1000);
        let io = IoTracker::new();
        let serial = collect(Box::new(
            PlainScan::new(Arc::clone(&t), io.clone(), &["k", "g", "f"], vec![]).unwrap(),
        ))
        .unwrap();
        let cfg = ParallelConfig { threads: 3, morsel_rows: 64 };
        let par = collect(Box::new(
            ParallelScan::new(blueprint(&t, vec![]), io, cfg, MemoryTracker::new()).unwrap(),
        ))
        .unwrap();
        assert_eq!(serial, par);
    }

    #[test]
    fn parallel_scan_with_predicates_matches() {
        let t = table(500);
        let io = IoTracker::new();
        let preds = vec![ColPredicate::ge("k", 100i64), ColPredicate::le("k", 399i64)];
        let serial = collect(Box::new(
            PlainScan::new(Arc::clone(&t), io.clone(), &["k", "f"], preds.clone()).unwrap(),
        ))
        .unwrap();
        let cfg = ParallelConfig { threads: 4, morsel_rows: 32 };
        let bp = ScanBlueprint {
            table: Arc::clone(&t),
            columns: vec!["k".into(), "f".into()],
            predicates: preds,
            kind: ScanKind::Plain,
        };
        let par = collect(Box::new(ParallelScan::new(bp, io, cfg, MemoryTracker::new()).unwrap()))
            .unwrap();
        assert_eq!(serial, par);
    }

    #[test]
    fn parallel_aggregate_matches_hash_aggregate() {
        let t = table(2000);
        let io = IoTracker::new();
        let aggs = vec![
            AggSpec::new(AggFunc::Sum, Expr::col("k"), "sk"),
            AggSpec::new(AggFunc::Sum, Expr::col("f"), "sf"),
            AggSpec::new(AggFunc::Avg, Expr::col("f"), "af"),
            AggSpec::new(AggFunc::Min, Expr::col("k"), "mn"),
            AggSpec::new(AggFunc::Max, Expr::col("k"), "mx"),
            AggSpec::new(AggFunc::Count, Expr::lit(1), "n"),
            AggSpec::new(AggFunc::CountDistinct, Expr::col("g"), "nd"),
        ];
        let serial_in: BoxedOp =
            Box::new(PlainScan::new(Arc::clone(&t), io.clone(), &["k", "g", "f"], vec![]).unwrap());
        let serial = collect(Box::new(
            HashAggregate::new(serial_in, &["g"], aggs.clone(), MemoryTracker::new()).unwrap(),
        ))
        .unwrap();
        let cfg = ParallelConfig { threads: 4, morsel_rows: 48 };
        let par = collect(Box::new(
            ParallelAggregate::new(
                FragmentBlueprint { scan: blueprint(&t, vec![]), steps: vec![] },
                &["g"],
                aggs,
                io,
                cfg,
                MemoryTracker::new(),
            )
            .unwrap(),
        ))
        .unwrap();
        // Integer aggregates, group keys and group order are exact; float
        // Sum/Avg are only promised to ~1 ulp (different accumulation
        // association), so compare through the canonical rounding the
        // cross-scheme tests use rather than bitwise.
        assert_eq!(crate::run::canonical_rows(&serial), crate::run::canonical_rows(&par));
        assert_eq!(serial.rows(), par.rows());
        assert_eq!(serial.columns[0], par.columns[0], "group keys and order must be exact");
    }

    #[test]
    fn parallel_global_aggregate_over_empty_selection_yields_zero_row() {
        let t = table(100);
        let io = IoTracker::new();
        let aggs = vec![AggSpec::new(AggFunc::Count, Expr::lit(1), "n")];
        let cfg = ParallelConfig { threads: 2, morsel_rows: 16 };
        let bp = blueprint(&t, vec![ColPredicate::eq("k", 1_000_000i64)]);
        let par = collect(Box::new(
            ParallelAggregate::new(
                FragmentBlueprint { scan: bp, steps: vec![] },
                &[],
                aggs,
                io,
                cfg,
                MemoryTracker::new(),
            )
            .unwrap(),
        ))
        .unwrap();
        assert_eq!(par.rows(), 1);
        assert_eq!(par.columns[0].as_i64().unwrap(), &[0]);
    }

    #[test]
    fn fragment_steps_apply_per_worker() {
        let t = table(600);
        let io = IoTracker::new();
        let steps = vec![
            FragmentStep::Filter(Expr::col("k").lt(Expr::lit(300))),
            FragmentStep::Project(vec![(Expr::col("g"), "g".into())]),
        ];
        let cfg = ParallelConfig { threads: 3, morsel_rows: 32 };
        let par = collect(Box::new(
            ParallelAggregate::new(
                FragmentBlueprint { scan: blueprint(&t, vec![]), steps },
                &["g"],
                vec![AggSpec::new(AggFunc::Count, Expr::lit(1), "n")],
                io,
                cfg,
                MemoryTracker::new(),
            )
            .unwrap(),
        ))
        .unwrap();
        // 300 rows over 7 groups: sizes 43 except g ∈ {0,1,2} get 43 and
        // the count sums to 300.
        let total: i64 = par.columns[1].as_i64().unwrap().iter().sum();
        assert_eq!(total, 300);
        assert_eq!(par.rows(), 7);
    }
}
