//! The work-stealing worker pool.
//!
//! Plain `std::thread::scope` threads — no external dependencies. Tasks
//! are indices `0..ntasks`; each worker owns a deque seeded round-robin,
//! pops work from the *front* of its own deque, and when empty steals from
//! the *back* of a victim's deque (the classic Chase–Lev discipline,
//! implemented with mutexed deques, which is plenty at morsel granularity:
//! a morsel is thousands of rows, so queue operations are a rounding
//! error next to task bodies).
//!
//! Results are returned **in task order**, whatever order workers finished
//! in — the property every merge in this subsystem relies on for
//! determinism. The first task error stops workers from claiming further
//! jobs and is propagated after the scope joins; a panicking task
//! propagates the panic.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::error::{ExecError, Result};

/// Run `task(0..ntasks)` on up to `threads` workers, returning the results
/// in task order.
pub fn run_tasks<T, F>(threads: usize, ntasks: usize, task: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    let threads = threads.min(ntasks).max(1);
    if threads == 1 {
        return (0..ntasks).map(&task).collect();
    }
    // Seed the deques round-robin so neighbouring (usually similarly
    // sized) morsels spread across workers.
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for t in 0..ntasks {
        queues[t % threads].lock().expect("queue poisoned").push_back(t);
    }
    let slots: Vec<Mutex<Option<Result<T>>>> = (0..ntasks).map(|_| Mutex::new(None)).collect();
    // Short-circuit flag: once any task errs, workers stop claiming jobs
    // instead of finishing a fan-out whose query is already doomed.
    let failed = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for w in 0..threads {
            let queues = &queues;
            let slots = &slots;
            let task = &task;
            let failed = &failed;
            scope.spawn(move || loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                // Own work first, front-to-back.
                let mut job = queues[w].lock().expect("queue poisoned").pop_front();
                if job.is_none() {
                    // Steal from the back of the first victim with work.
                    for v in (0..queues.len()).filter(|&v| v != w) {
                        job = queues[v].lock().expect("queue poisoned").pop_back();
                        if job.is_some() {
                            break;
                        }
                    }
                }
                match job {
                    Some(j) => {
                        let r = task(j);
                        if r.is_err() {
                            failed.store(true, Ordering::Relaxed);
                        }
                        *slots[j].lock().expect("slot poisoned") = Some(r);
                    }
                    None => break,
                }
            });
        }
    });

    let mut results: Vec<Option<Result<T>>> =
        slots.into_iter().map(|s| s.into_inner().expect("slot poisoned")).collect();
    // Propagate the first *actual* error in task order; unexecuted slots
    // (skipped after the short-circuit) are not themselves the failure.
    if let Some(pos) = results.iter().position(|r| matches!(r, Some(Err(_)))) {
        match results.swap_remove(pos) {
            Some(Err(e)) => return Err(e),
            _ => unreachable!("position matched an error"),
        }
    }
    results
        .into_iter()
        .map(|r| match r {
            Some(Ok(v)) => Ok(v),
            Some(Err(_)) => unreachable!("first error already propagated"),
            None => Err(ExecError::Internal("worker pool dropped a task".into())),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_arrive_in_task_order() {
        let out = run_tasks(4, 17, |i| Ok(i * i)).unwrap();
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_tasks(8, 100, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            Ok(i)
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn zero_tasks_is_fine() {
        let out: Vec<usize> = run_tasks(4, 0, Ok).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_runs_inline() {
        let out = run_tasks(1, 5, |i| Ok(i + 1)).unwrap();
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn errors_propagate() {
        let r: Result<Vec<usize>> =
            run_tasks(
                3,
                10,
                |i| {
                    if i == 7 {
                        Err(ExecError::Internal("boom".into()))
                    } else {
                        Ok(i)
                    }
                },
            );
        assert!(r.is_err());
    }

    #[test]
    fn error_short_circuits_remaining_tasks() {
        // Task 0 fails instantly; the rest sleep. Workers must stop
        // claiming jobs once the failure is flagged, so far fewer than all
        // tasks execute (the flag is racy by a task or two, not by dozens).
        let executed = AtomicUsize::new(0);
        let r: Result<Vec<usize>> = run_tasks(2, 64, |i| {
            executed.fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                Err(ExecError::Internal("boom".into()))
            } else {
                std::thread::sleep(std::time::Duration::from_millis(1));
                Ok(i)
            }
        });
        assert!(matches!(r, Err(ExecError::Internal(ref m)) if m == "boom"));
        assert!(
            executed.load(Ordering::Relaxed) < 32,
            "short-circuit did not stop the fan-out: {} tasks ran",
            executed.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn uneven_task_durations_balance() {
        // Long tasks at the front of one queue; stealing must keep every
        // task accounted for.
        let out = run_tasks(4, 32, |i| {
            if i % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            Ok(i)
        })
        .unwrap();
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }
}
