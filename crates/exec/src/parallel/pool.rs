//! The execution subsystem's façade over the persistent worker pool.
//!
//! ## Ownership
//!
//! All parallel operator fragments run on **one process-wide, long-lived
//! [`WorkerPool`]** (re-exported from `bdcc-pool`, the bottom of the
//! workspace dependency graph — schema clustering shares the same pool).
//! Nothing in this crate ever spawns a thread: [`QueryContext::with_parallel`]
//! warms the shared pool to the configured width once, and every fan-out
//! after that — join build, probe rounds, probe output assembly, sandwich
//! oversized groups, both radix-aggregation phases, partial-merge
//! aggregation, sort runs, build-side partitioning, streaming scans —
//! reuses the same parked workers. The pool only ever grows to the widest
//! `ParallelConfig::threads` seen; after warm-up no OS thread is created
//! again (`WorkerPool::stats` pins this in tests), which removes the
//! ~tens-of-microseconds thread create/join every fan-out used to pay
//! (the `pool_overhead` bench bin measures the difference).
//!
//! ## The two execution shapes
//!
//! * [`run_tasks`] — the *blocking* fan-out: `task(0..ntasks)` across up
//!   to `threads` workers, results returned **in task order** whatever
//!   order workers finished in — the property every merge in this
//!   subsystem relies on for determinism. `threads == 1` or
//!   `ntasks <= 1` runs inline on the caller with zero pool interaction.
//!   The first task error (in task order) propagates after the fan-out
//!   drains, later tasks are skipped once one fails, and a panicking
//!   task re-raises on the caller — the exact contract of the
//!   spawn-per-fan-out implementation this façade replaced (kept as
//!   [`run_tasks_spawning`] for the benchmark baseline).
//!
//! * [`OrderedStream`] — the *streaming* fan-out with a **bounded reorder
//!   buffer**: at most `cap` tasks are submitted beyond the consumer's
//!   position, [`recv`](OrderedStream::recv) releases results strictly in
//!   task order, and backpressure works by *submission gating* (a stalled
//!   consumer parks no worker — the pool runs other queries' jobs
//!   instead). At most `cap` results are in flight, which is what bounds
//!   a streaming scan's memory at O(workers × morsel) instead of
//!   O(table). Dropping the stream cancels unstarted work, waits for
//!   in-flight task bodies to retire (no task code runs after drop
//!   returns — the guarantee memory accounting relies on), and leaves the
//!   pool ready for the next query.
//!
//! ## Lending, or why nested fan-outs cannot deadlock
//!
//! While [`run_tasks`] waits, the calling thread is **lent to the pool**:
//! it drains its own scope's unstarted tasks first, then any other queued
//! job, and parks only when nothing is runnable. A fan-out issued from
//! inside another fan-out — a probe round while a streaming scan's
//! producers are live, an oversized sandwich group inside a probe round,
//! radix phase 2 behind phase 1 — therefore always has at least its own
//! caller making progress, so the bottom-most scope finishes and unwinds
//! the waiters above it. The one rule operators must keep (and all
//! current ones do): [`OrderedStream::recv`] is a pure wait, so it must
//! be called from plan-driver threads, never from inside a pool task.
//!
//! [`QueryContext::with_parallel`]: crate::planner::QueryContext::with_parallel

use crate::error::Result;

pub use bdcc_pool::{PoolStats, WorkerPool};

/// Run `task(0..ntasks)` on up to `threads` shared-pool workers (plus the
/// lent calling thread), returning the results in task order. The thin
/// blocking façade over [`WorkerPool::scope_run`] — see the [module
/// docs](self) for the full contract.
pub fn run_tasks<T, F>(threads: usize, ntasks: usize, task: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    let width = threads.min(ntasks);
    if width <= 1 {
        // Serial fast path: inline on the caller, zero pool interaction.
        return (0..ntasks).map(&task).collect();
    }
    WorkerPool::shared().scope_run(width, ntasks, task)
}

/// [`run_tasks`] with a static label naming the fan-out site in
/// re-raised panic payloads (`pool job 'join-probe' panicked: ...`) —
/// what identifies the dead operator when a worker panics during a
/// many-client serving run.
pub fn run_tasks_labeled<T, F>(
    threads: usize,
    ntasks: usize,
    label: &'static str,
    task: F,
) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    let width = threads.min(ntasks);
    if width <= 1 {
        return (0..ntasks).map(&task).collect();
    }
    WorkerPool::shared().scope_run_labeled(width, ntasks, Some(label), task)
}

/// The spawn-per-fan-out `run_tasks` this façade replaced: a fresh
/// `std::thread::scope` per call, same ordering/short-circuit/panic
/// contract. Kept **only** as the measurable baseline for the
/// `pool_overhead` bench bin; operators must use [`run_tasks`].
pub fn run_tasks_spawning<T, F>(threads: usize, ntasks: usize, task: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    bdcc_pool::scope_run_spawning(threads, ntasks, task)
}

/// Streaming ordered fan-out on the shared pool, specialized to the
/// executor's error type. See the [module docs](self) and
/// [`bdcc_pool::OrderedStream`] for the contract.
pub type OrderedStream<T> = bdcc_pool::OrderedStream<T, crate::error::ExecError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ExecError;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn results_arrive_in_task_order() {
        let out = run_tasks(4, 17, |i| Ok(i * i)).unwrap();
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_tasks(8, 100, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            Ok(i)
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn zero_tasks_is_fine() {
        let out: Vec<usize> = run_tasks(4, 0, Ok).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_runs_inline() {
        let out = run_tasks(1, 5, |i| Ok(i + 1)).unwrap();
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn single_task_runs_inline_whatever_the_width() {
        // ntasks <= 1 must not touch the pool at all: before any warm-up
        // in this process it would otherwise spawn workers for nothing.
        let out = run_tasks(8, 1, |i| Ok(i + 41)).unwrap();
        assert_eq!(out, vec![41]);
    }

    #[test]
    fn errors_propagate() {
        let r: Result<Vec<usize>> =
            run_tasks(
                3,
                10,
                |i| {
                    if i == 7 {
                        Err(ExecError::Internal("boom".into()))
                    } else {
                        Ok(i)
                    }
                },
            );
        assert!(matches!(r, Err(ExecError::Internal(ref m)) if m == "boom"));
    }

    #[test]
    fn error_short_circuits_remaining_tasks() {
        // Task 0 fails instantly; the rest sleep. The scope must stop
        // starting jobs once the failure is flagged, so far fewer than all
        // tasks execute (racy by a worker's worth of tasks, not dozens).
        let executed = AtomicUsize::new(0);
        let r: Result<Vec<usize>> = run_tasks(2, 64, |i| {
            executed.fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                Err(ExecError::Internal("boom".into()))
            } else {
                std::thread::sleep(std::time::Duration::from_millis(1));
                Ok(i)
            }
        });
        assert!(matches!(r, Err(ExecError::Internal(ref m)) if m == "boom"));
        assert!(
            executed.load(Ordering::Relaxed) < 32,
            "short-circuit did not stop the fan-out: {} tasks ran",
            executed.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn panicking_task_propagates_to_the_caller() {
        let r = std::panic::catch_unwind(|| {
            let _ = run_tasks(4, 8, |i| {
                if i == 3 {
                    panic!("morsel exploded");
                }
                Ok(i)
            });
        });
        assert!(r.is_err(), "scope panic must re-raise on the caller");
        // The shared pool survives and stays usable.
        let out = run_tasks(4, 8, Ok).unwrap();
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn nested_fan_outs_do_not_deadlock() {
        // Every outer task issues an inner fan-out of the same width on
        // the same shared pool — the shape a probe round inside a
        // streaming scan produces. Lending the blocked callers is what
        // keeps this from deadlocking.
        let out = run_tasks(4, 8, |i| {
            let inner = run_tasks(4, 6, |j| Ok(i * 10 + j))?;
            Ok(inner.into_iter().sum::<usize>())
        })
        .unwrap();
        let expect: Vec<usize> =
            (0..8).map(|i| (0..6).map(|j| i * 10 + j).sum::<usize>()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn warm_pool_never_spawns_again() {
        // Warm to this test binary's widest fan-out, then hammer the pool
        // with mixed-width fan-outs: the spawn counter must not move.
        let _ = run_tasks(8, 16, Ok).unwrap();
        let warm = WorkerPool::shared().stats().threads_spawned_total;
        for round in 0..25 {
            let _ = run_tasks(4, 32, Ok).unwrap();
            let _ = run_tasks(2 + round % 7, 16, Ok).unwrap();
            let mut s: OrderedStream<usize> = OrderedStream::spawn(4, 12, 8, Ok);
            while s.recv().unwrap().is_some() {}
        }
        assert_eq!(
            WorkerPool::shared().stats().threads_spawned_total,
            warm,
            "a warm pool must not create OS threads"
        );
    }

    #[test]
    fn stream_yields_results_in_task_order() {
        let mut s: OrderedStream<usize> = OrderedStream::spawn(4, 23, 8, |i| Ok(i * 3));
        let mut got = Vec::new();
        while let Some(v) = s.recv().unwrap() {
            got.push(v);
        }
        assert_eq!(got, (0..23).map(|i| i * 3).collect::<Vec<_>>());
        assert!(s.recv().unwrap().is_none(), "exhausted stream stays exhausted");
    }

    #[test]
    fn stream_bounds_in_flight_results() {
        // Track how many results exist (produced - consumed) at once; with
        // cap 4 the high-water must stay at cap (+ nothing racing past the
        // submission gate) even though the consumer is slow.
        let outstanding = Arc::new(AtomicUsize::new(0));
        let high = Arc::new(AtomicUsize::new(0));
        let (o, h) = (Arc::clone(&outstanding), Arc::clone(&high));
        let mut s: OrderedStream<usize> = OrderedStream::spawn(4, 40, 4, move |i| {
            let now = o.fetch_add(1, Ordering::SeqCst) + 1;
            h.fetch_max(now, Ordering::SeqCst);
            Ok(i)
        });
        let mut n = 0;
        while let Some(_v) = s.recv().unwrap() {
            outstanding.fetch_sub(1, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(200));
            n += 1;
        }
        assert_eq!(n, 40);
        // +1 slack: the consumer's decrement happens after recv() returns,
        // so a task submitted by that very recv() can start (and count)
        // before the decrement lands — a measurement race, not a cap leak.
        assert!(
            high.load(Ordering::SeqCst) <= 5,
            "in-flight results exceeded the cap: {}",
            high.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn stream_propagates_error_at_its_index() {
        let mut s: OrderedStream<usize> = OrderedStream::spawn(3, 10, 4, |i| {
            if i == 5 {
                Err(ExecError::Internal("boom".into()))
            } else {
                Ok(i)
            }
        });
        for want in 0..5 {
            assert_eq!(s.recv().unwrap(), Some(want));
        }
        assert!(s.recv().is_err(), "task 5's error must surface at index 5");
        assert!(s.recv().unwrap().is_none(), "stream is terminal after an error");
    }

    #[test]
    fn stream_surfaces_worker_panics_as_errors() {
        // A panicking task must not hang the consumer: it publishes an
        // error at its index and the stream ends there.
        let mut s: OrderedStream<usize> = OrderedStream::spawn(3, 8, 4, |i| {
            if i == 4 {
                panic!("morsel exploded");
            }
            Ok(i)
        });
        for want in 0..4 {
            assert_eq!(s.recv().unwrap(), Some(want));
        }
        match s.recv() {
            Err(ExecError::Internal(m)) => {
                assert!(m.contains("panicked"), "unexpected message: {m}")
            }
            other => panic!("expected a panic-derived error, got {other:?}"),
        }
        assert!(s.recv().unwrap().is_none(), "stream is terminal after a panic");
    }

    #[test]
    fn dropping_a_stream_midway_cancels_outstanding_work() {
        // Consume a few results, then drop: unstarted tasks are cancelled,
        // in-flight task bodies retire before drop returns, and the pool
        // stays usable.
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        let mut s: OrderedStream<usize> = OrderedStream::spawn(4, 500, 4, move |i| {
            r.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(100));
            Ok(i)
        });
        assert_eq!(s.recv().unwrap(), Some(0));
        assert_eq!(s.recv().unwrap(), Some(1));
        drop(s);
        assert!(
            ran.load(Ordering::SeqCst) < 500,
            "drop must cancel the unstarted tail of the stream"
        );
        let out = run_tasks(4, 8, Ok).unwrap();
        assert_eq!(out.len(), 8, "pool must stay usable after a cancelled stream");
    }

    #[test]
    fn zero_task_stream_is_immediately_done() {
        let mut s: OrderedStream<usize> = OrderedStream::spawn(4, 0, 4, Ok);
        assert!(s.recv().unwrap().is_none());
    }

    #[test]
    fn uneven_task_durations_balance() {
        // Long tasks at the front of one deque; stealing must keep every
        // task accounted for.
        let out = run_tasks(4, 32, |i| {
            if i % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            Ok(i)
        })
        .unwrap();
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn stream_with_nested_blocking_fan_out_per_morsel() {
        // The full nested shape: a live streaming fan-out whose consumer
        // issues a blocking fan-out per released morsel (exactly what a
        // parallel probe over a streaming scan does).
        let mut s: OrderedStream<usize> = OrderedStream::spawn(4, 20, 8, Ok);
        let mut total = 0usize;
        while let Some(v) = s.recv().unwrap() {
            let part = run_tasks(4, 5, |j| Ok(v * 100 + j)).unwrap();
            total += part.into_iter().sum::<usize>();
        }
        let expect: usize = (0..20).map(|v| (0..5).map(|j| v * 100 + j).sum::<usize>()).sum();
        assert_eq!(total, expect);
    }
}
