//! The work-stealing worker pool and the streaming producer pool.
//!
//! Plain `std` threads — no external dependencies. Two execution shapes:
//!
//! * [`run_tasks`] — a *blocking* fan-out over `std::thread::scope`. Tasks
//!   are indices `0..ntasks`; each worker owns a deque seeded round-robin,
//!   pops work from the *front* of its own deque, and when empty steals
//!   from the *back* of a victim's deque (the classic Chase–Lev
//!   discipline, implemented with mutexed deques, which is plenty at
//!   morsel granularity: a morsel is thousands of rows, so queue
//!   operations are a rounding error next to task bodies). Results are
//!   returned **in task order**, whatever order workers finished in — the
//!   property every merge in this subsystem relies on for determinism.
//!   The first task error stops workers from claiming further jobs and is
//!   propagated after the scope joins; a panicking task propagates the
//!   panic.
//!
//! * [`OrderedStream`] — a *streaming* fan-out over detached threads with
//!   a **bounded reorder buffer**: workers claim task indices from an
//!   ascending counter, park before running a task more than `cap` ahead
//!   of the consumer, and publish results keyed by task index; the
//!   consumer's [`recv`](OrderedStream::recv) releases results strictly in
//!   task order. At most `cap` results are ever in flight (running or
//!   buffered), which is what bounds a streaming scan's memory at
//!   O(workers × morsel) instead of O(table). Dropping the stream cancels
//!   outstanding work and joins the workers.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::error::{ExecError, Result};

/// Run `task(0..ntasks)` on up to `threads` workers, returning the results
/// in task order.
///
/// Each call spawns and joins a scoped thread set, so multi-phase
/// operators pay the spawn cost per fan-out — radix-partitioned
/// aggregation, for instance, runs two back-to-back fan-outs (one over
/// morsels, one over partitions), and every join probe round is one more.
/// That recurring cost is the ROADMAP's "persistent worker pool" item.
pub fn run_tasks<T, F>(threads: usize, ntasks: usize, task: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    let threads = threads.min(ntasks).max(1);
    if threads == 1 {
        return (0..ntasks).map(&task).collect();
    }
    // Seed the deques round-robin so neighbouring (usually similarly
    // sized) morsels spread across workers.
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for t in 0..ntasks {
        queues[t % threads].lock().expect("queue poisoned").push_back(t);
    }
    let slots: Vec<Mutex<Option<Result<T>>>> = (0..ntasks).map(|_| Mutex::new(None)).collect();
    // Short-circuit flag: once any task errs, workers stop claiming jobs
    // instead of finishing a fan-out whose query is already doomed.
    let failed = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for w in 0..threads {
            let queues = &queues;
            let slots = &slots;
            let task = &task;
            let failed = &failed;
            scope.spawn(move || loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                // Own work first, front-to-back.
                let mut job = queues[w].lock().expect("queue poisoned").pop_front();
                if job.is_none() {
                    // Steal from the back of the first victim with work.
                    for v in (0..queues.len()).filter(|&v| v != w) {
                        job = queues[v].lock().expect("queue poisoned").pop_back();
                        if job.is_some() {
                            break;
                        }
                    }
                }
                match job {
                    Some(j) => {
                        let r = task(j);
                        if r.is_err() {
                            failed.store(true, Ordering::Relaxed);
                        }
                        *slots[j].lock().expect("slot poisoned") = Some(r);
                    }
                    None => break,
                }
            });
        }
    });

    let mut results: Vec<Option<Result<T>>> =
        slots.into_iter().map(|s| s.into_inner().expect("slot poisoned")).collect();
    // Propagate the first *actual* error in task order; unexecuted slots
    // (skipped after the short-circuit) are not themselves the failure.
    if let Some(pos) = results.iter().position(|r| matches!(r, Some(Err(_)))) {
        match results.swap_remove(pos) {
            Some(Err(e)) => return Err(e),
            _ => unreachable!("position matched an error"),
        }
    }
    results
        .into_iter()
        .map(|r| match r {
            Some(Ok(v)) => Ok(v),
            Some(Err(_)) => unreachable!("first error already propagated"),
            None => Err(ExecError::Internal("worker pool dropped a task".into())),
        })
        .collect()
}

/// Shared state of one streaming fan-out.
struct StreamState<T> {
    /// Next unclaimed task index (claims are an ascending prefix).
    next_claim: usize,
    /// The consumer's next task index — results below it are released.
    released: usize,
    /// Completed results awaiting release, keyed by task index. Occupancy
    /// is bounded by `cap`: a worker only *runs* task `i` once
    /// `i < released + cap`.
    buffer: HashMap<usize, Result<T>>,
    /// Consumer gone (drop) — workers abandon claimed-but-unstarted work.
    cancelled: bool,
    /// A task failed — workers stop claiming; the consumer hits the error
    /// at its index.
    failed: bool,
}

struct StreamShared<T> {
    state: Mutex<StreamState<T>>,
    cond: Condvar,
    ntasks: usize,
    cap: usize,
}

/// Streaming ordered fan-out: `threads` detached workers run
/// `task(0..ntasks)`, the consumer pulls results **in task order**, and at
/// most `cap` results are in flight at once (backpressure parks producers
/// that run too far ahead). See the module docs for the full contract.
pub struct OrderedStream<T> {
    shared: Arc<StreamShared<T>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Next task index to hand out; `ntasks` once exhausted or failed.
    next: usize,
}

impl<T: Send + 'static> OrderedStream<T> {
    /// Spawn the workers. `cap` is clamped to at least `threads` (a
    /// smaller cap would idle workers without shrinking the in-flight
    /// bound below one result per worker).
    pub fn spawn<F>(threads: usize, ntasks: usize, cap: usize, task: F) -> OrderedStream<T>
    where
        F: Fn(usize) -> Result<T> + Send + Sync + 'static,
    {
        let threads = threads.min(ntasks).max(1);
        let shared = Arc::new(StreamShared {
            state: Mutex::new(StreamState {
                next_claim: 0,
                released: 0,
                buffer: HashMap::new(),
                cancelled: false,
                failed: false,
            }),
            cond: Condvar::new(),
            ntasks,
            cap: cap.max(threads),
        });
        let task = Arc::new(task);
        let handles = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let task = Arc::clone(&task);
                std::thread::spawn(move || stream_worker(&shared, &*task))
            })
            .collect();
        OrderedStream { shared, handles, next: 0 }
    }

    /// The next task's result, in task order; blocks until a worker
    /// publishes it. `Ok(None)` after the last task; a task error is
    /// returned at its index and ends the stream. A *panicking* task is
    /// published as an [`ExecError::Internal`] at its index (unlike
    /// [`run_tasks`]' scoped threads, a detached worker dying silently
    /// would hang this call forever).
    pub fn recv(&mut self) -> Result<Option<T>> {
        if self.next >= self.shared.ntasks {
            return Ok(None);
        }
        let i = self.next;
        let mut st = self.shared.state.lock().expect("stream state poisoned");
        loop {
            if let Some(r) = st.buffer.remove(&i) {
                match r {
                    Ok(v) => {
                        self.next += 1;
                        st.released = self.next;
                        // Wake producers parked on the in-flight cap.
                        self.shared.cond.notify_all();
                        return Ok(Some(v));
                    }
                    Err(e) => {
                        self.next = self.shared.ntasks; // terminal
                        return Err(e);
                    }
                }
            }
            st = self.shared.cond.wait(st).expect("stream state poisoned");
        }
    }
}

impl<T> Drop for OrderedStream<T> {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("stream state poisoned");
            st.cancelled = true;
        }
        self.shared.cond.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn stream_worker<T, F>(shared: &StreamShared<T>, task: &F)
where
    F: Fn(usize) -> Result<T>,
{
    loop {
        let claim = {
            let mut st = shared.state.lock().expect("stream state poisoned");
            if st.cancelled || st.failed || st.next_claim >= shared.ntasks {
                return;
            }
            let claim = st.next_claim;
            st.next_claim += 1;
            // Backpressure: park until this task is within `cap` of the
            // consumer. Claims are an ascending prefix, so the consumer's
            // next task is always running or buffered, never parked here
            // (its index satisfies `claim < released + cap` trivially) —
            // no deadlock.
            while !st.cancelled && claim >= st.released + shared.cap {
                st = shared.cond.wait(st).expect("stream state poisoned");
            }
            if st.cancelled {
                return;
            }
            claim
        };
        // A panicking task must still publish *something*, or the consumer
        // would wait on its index forever (these are detached threads — a
        // silently dead worker is a hung query). Surface it as an error at
        // the task's index instead.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(claim)))
            .unwrap_or_else(|p| {
                let msg = p
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                Err(ExecError::Internal(format!("streaming worker panicked: {msg}")))
            });
        let mut st = shared.state.lock().expect("stream state poisoned");
        if r.is_err() {
            st.failed = true;
        }
        st.buffer.insert(claim, r);
        shared.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_arrive_in_task_order() {
        let out = run_tasks(4, 17, |i| Ok(i * i)).unwrap();
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_tasks(8, 100, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            Ok(i)
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn zero_tasks_is_fine() {
        let out: Vec<usize> = run_tasks(4, 0, Ok).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_runs_inline() {
        let out = run_tasks(1, 5, |i| Ok(i + 1)).unwrap();
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn errors_propagate() {
        let r: Result<Vec<usize>> =
            run_tasks(
                3,
                10,
                |i| {
                    if i == 7 {
                        Err(ExecError::Internal("boom".into()))
                    } else {
                        Ok(i)
                    }
                },
            );
        assert!(r.is_err());
    }

    #[test]
    fn error_short_circuits_remaining_tasks() {
        // Task 0 fails instantly; the rest sleep. Workers must stop
        // claiming jobs once the failure is flagged, so far fewer than all
        // tasks execute (the flag is racy by a task or two, not by dozens).
        let executed = AtomicUsize::new(0);
        let r: Result<Vec<usize>> = run_tasks(2, 64, |i| {
            executed.fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                Err(ExecError::Internal("boom".into()))
            } else {
                std::thread::sleep(std::time::Duration::from_millis(1));
                Ok(i)
            }
        });
        assert!(matches!(r, Err(ExecError::Internal(ref m)) if m == "boom"));
        assert!(
            executed.load(Ordering::Relaxed) < 32,
            "short-circuit did not stop the fan-out: {} tasks ran",
            executed.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn stream_yields_results_in_task_order() {
        let mut s = OrderedStream::spawn(4, 23, 8, |i| Ok(i * 3));
        let mut got = Vec::new();
        while let Some(v) = s.recv().unwrap() {
            got.push(v);
        }
        assert_eq!(got, (0..23).map(|i| i * 3).collect::<Vec<_>>());
        assert!(s.recv().unwrap().is_none(), "exhausted stream stays exhausted");
    }

    #[test]
    fn stream_bounds_in_flight_results() {
        // Track how many results exist (produced - consumed) at once; with
        // cap 4 the high-water must stay at cap (+ nothing racing past the
        // park) even though the consumer is slow.
        let outstanding = Arc::new(AtomicUsize::new(0));
        let high = Arc::new(AtomicUsize::new(0));
        let (o, h) = (Arc::clone(&outstanding), Arc::clone(&high));
        let mut s = OrderedStream::spawn(4, 40, 4, move |i| {
            let now = o.fetch_add(1, Ordering::SeqCst) + 1;
            h.fetch_max(now, Ordering::SeqCst);
            Ok(i)
        });
        let mut n = 0;
        while let Some(_v) = s.recv().unwrap() {
            outstanding.fetch_sub(1, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(200));
            n += 1;
        }
        assert_eq!(n, 40);
        // +1 slack: the consumer's decrement happens after next() returns,
        // so a worker released by that very next() can start (and count)
        // before the decrement lands — a measurement race, not a cap leak.
        assert!(
            high.load(Ordering::SeqCst) <= 5,
            "in-flight results exceeded the cap: {}",
            high.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn stream_propagates_error_at_its_index() {
        let mut s = OrderedStream::spawn(3, 10, 4, |i| {
            if i == 5 {
                Err(ExecError::Internal("boom".into()))
            } else {
                Ok(i)
            }
        });
        for want in 0..5 {
            assert_eq!(s.recv().unwrap(), Some(want));
        }
        assert!(s.recv().is_err(), "task 5's error must surface at index 5");
        assert!(s.recv().unwrap().is_none(), "stream is terminal after an error");
    }

    #[test]
    fn stream_surfaces_worker_panics_as_errors() {
        // A panicking task must not hang the consumer: it publishes an
        // Internal error at its index and the stream ends there.
        let mut s = OrderedStream::spawn(3, 8, 4, |i| {
            if i == 4 {
                panic!("morsel exploded");
            }
            Ok(i)
        });
        for want in 0..4 {
            assert_eq!(s.recv().unwrap(), Some(want));
        }
        match s.recv() {
            Err(ExecError::Internal(m)) => {
                assert!(m.contains("panicked"), "unexpected message: {m}")
            }
            other => panic!("expected a panic-derived error, got {other:?}"),
        }
        assert!(s.recv().unwrap().is_none(), "stream is terminal after a panic");
    }

    #[test]
    fn dropping_a_stream_midway_joins_workers() {
        // Consume a few results, then drop: Drop must cancel parked and
        // unclaimed work and join every worker without hanging.
        let mut s = OrderedStream::spawn(4, 100, 4, |i| {
            std::thread::sleep(std::time::Duration::from_micros(100));
            Ok(i)
        });
        assert_eq!(s.recv().unwrap(), Some(0));
        assert_eq!(s.recv().unwrap(), Some(1));
        drop(s);
    }

    #[test]
    fn zero_task_stream_is_immediately_done() {
        let mut s: OrderedStream<usize> = OrderedStream::spawn(4, 0, 4, Ok);
        assert!(s.recv().unwrap().is_none());
    }

    #[test]
    fn uneven_task_durations_balance() {
        // Long tasks at the front of one queue; stealing must keep every
        // task accounted for.
        let out = run_tasks(4, 32, |i| {
            if i % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            Ok(i)
        })
        .unwrap();
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }
}
