//! Merging per-morsel partial results back into one stream.
//!
//! Four merge contracts, all **order-deterministic**: given the same
//! morsel list, the merged output is identical whatever order workers
//! finished in, because every merge folds partials in *morsel order* (or,
//! for radix partitions, by recorded stream position).
//!
//! * [`concat_ordered`] — leaf streams: morsel batch lists concatenated in
//!   morsel order reproduce the serial scan's batch stream exactly (the
//!   alignment guarantee of [`crate::parallel::morsel`]).
//! * [`merge_partial_aggs`] — hash-aggregation: per-morsel
//!   [`PartialAgg`] states folded left-to-right; group *first-seen order*
//!   and every integer aggregate match serial execution exactly, and
//!   compensated float sums keep Sum/Avg within ~1 ulp of it.
//! * [`concat_radix_partitions`] — radix-partitioned aggregation:
//!   disjoint per-partition outputs reordered by each group's recorded
//!   global first-row position — byte-identical to the serial aggregate,
//!   floats included (each group folds its rows in serial stream order
//!   inside its one partition).
//! * [`merge_sorted`] — sort-merge: k per-morsel streams, each sorted by
//!   the same comparator, merged stably with ties broken by morsel index —
//!   the contract a parallel sort needs to reproduce a serial stable sort
//!   of the concatenated input.

use crate::batch::Batch;
use crate::error::Result;
use crate::ops::agg::PartialAgg;

/// Concatenate per-morsel batch lists in morsel order.
pub fn concat_ordered(per_morsel: Vec<Vec<Batch>>) -> Vec<Batch> {
    per_morsel.into_iter().flatten().collect()
}

/// Concatenate per-morsel join match lists (`(probe row, build row)`
/// pairs) in morsel order. Probe morsels are contiguous row ranges handed
/// out in ascending order ([`crate::parallel::morsel::split_rows`]), so
/// the concatenation lists pairs in exactly the order one serial probe
/// loop over all rows would — the contract that keeps the parallel join
/// probe byte-identical to the serial one. Existence-mode probes
/// (Semi/Anti without residual) carry matched probe rows in the first
/// list and leave the second empty.
pub fn concat_match_lists(per_morsel: Vec<(Vec<usize>, Vec<u32>)>) -> (Vec<usize>, Vec<u32>) {
    let pairs: usize = per_morsel.iter().map(|(l, _)| l.len()).sum();
    let mut lidx = Vec::with_capacity(pairs);
    let mut ridx = Vec::with_capacity(pairs);
    for (l, r) in per_morsel {
        lidx.extend(l);
        ridx.extend(r);
    }
    (lidx, ridx)
}

/// Fold per-morsel partial aggregation states (in morsel order) and finish
/// into the final output batch. An empty partial list is an error — a
/// zero-morsel fan-out must contribute one fresh (empty) partial so the
/// global-aggregation zero row can be produced (see
/// [`ParallelAggregate`](crate::parallel::ParallelAggregate)).
pub fn merge_partial_aggs(mut partials: Vec<PartialAgg>) -> Result<Batch> {
    if partials.is_empty() {
        return Err(crate::error::ExecError::Internal(
            "merge_partial_aggs needs at least one partial state".into(),
        ));
    }
    let mut acc = partials.remove(0);
    for p in partials {
        acc.merge(p);
    }
    acc.finish()
}

/// Reassemble radix-partitioned aggregation outputs into the serial
/// first-seen group order. Each partition contributes `(batch, ranks)` —
/// its groups in partition-local first-seen order plus each group's
/// **global** first-row position ([`PartialAgg::finish_ordered`]). Groups
/// are disjoint across partitions and ranks are distinct (a rank is the
/// position of a specific input row), so sorting the concatenation by
/// rank is a permutation with no ties — the output is exactly the batch a
/// serial [`HashAggregate`](crate::ops::agg::HashAggregate) over the
/// unpartitioned stream would emit, byte for byte (including float
/// aggregates: each group's rows fold in original stream order inside
/// its one partition, so even compensated sums see the serial
/// accumulation sequence).
pub fn concat_radix_partitions(parts: Vec<(Batch, Vec<u64>)>) -> Result<Batch> {
    let mut parts = parts.into_iter();
    let (mut all, mut ranks) = parts.next().ok_or_else(|| {
        crate::error::ExecError::Internal(
            "concat_radix_partitions needs at least one partition".into(),
        )
    })?;
    for (b, r) in parts {
        for (dst, src) in all.columns.iter_mut().zip(&b.columns) {
            dst.append(src)?;
        }
        ranks.extend(r);
    }
    let mut perm: Vec<usize> = (0..ranks.len()).collect();
    perm.sort_unstable_by_key(|&i| ranks[i]);
    Ok(Batch::new(all.columns.iter().map(|c| c.gather(&perm)).collect()))
}

/// Stable k-way merge of row streams that are already sorted by `cmp`
/// (ties keep lower-stream-index rows first). Returns `(stream, row)`
/// coordinates in output order.
///
/// A binary min-heap of stream cursors keeps each output row at
/// `O(log k)` — with many runs (large sorts at small morsel sizes) a
/// linear scan per row would make the merge quadratic-ish (`O(n·k)`) and
/// slower than the serial sort it replaces.
pub fn merge_sorted<C>(streams: &[Batch], cmp: C) -> Vec<(usize, usize)>
where
    C: Fn(&Batch, usize, &Batch, usize) -> std::cmp::Ordering,
{
    let mut cursors: Vec<usize> = vec![0; streams.len()];
    let total: usize = streams.iter().map(|b| b.rows()).sum();
    let mut out = Vec::with_capacity(total);
    // Heap order: current-row comparison, ties by stream index — the
    // stability contract.
    let less = |a: usize, b: usize, cursors: &[usize]| -> bool {
        match cmp(&streams[a], cursors[a], &streams[b], cursors[b]) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => a < b,
        }
    };
    let mut heap: Vec<usize> = (0..streams.len()).filter(|&s| streams[s].rows() > 0).collect();
    let sift_down = |heap: &mut Vec<usize>, cursors: &[usize], mut i: usize| loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut best = i;
        if l < heap.len() && less(heap[l], heap[best], cursors) {
            best = l;
        }
        if r < heap.len() && less(heap[r], heap[best], cursors) {
            best = r;
        }
        if best == i {
            break;
        }
        heap.swap(i, best);
        i = best;
    };
    for i in (0..heap.len() / 2).rev() {
        sift_down(&mut heap, &cursors, i);
    }
    while let Some(&s) = heap.first() {
        out.push((s, cursors[s]));
        cursors[s] += 1;
        if cursors[s] >= streams[s].rows() {
            let last = heap.pop().expect("non-empty");
            if heap.is_empty() {
                break;
            }
            heap[0] = last;
        }
        sift_down(&mut heap, &cursors, 0);
    }
    debug_assert_eq!(out.len(), total);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdcc_storage::Column;

    fn batch(vals: &[i64]) -> Batch {
        Batch::new(vec![Column::from_i64(vals.to_vec())])
    }

    #[test]
    fn concat_preserves_morsel_order() {
        let merged =
            concat_ordered(vec![vec![batch(&[1]), batch(&[2])], vec![], vec![batch(&[3])]]);
        let vals: Vec<i64> =
            merged.iter().flat_map(|b| b.columns[0].as_i64().unwrap().to_vec()).collect();
        assert_eq!(vals, vec![1, 2, 3]);
    }

    #[test]
    fn radix_concat_restores_global_first_seen_order() {
        // Partition 0 holds groups first seen at rows 4 and 0; partition
        // 1 at rows 2 and 1; partition 2 is empty. The concatenation must
        // interleave them back into 0, 1, 2, 4.
        let parts = vec![
            (batch(&[40, 10]), vec![4, 0]),
            (batch(&[20, 30]), vec![2, 1]),
            (batch(&[]), vec![]),
        ];
        let out = concat_radix_partitions(parts).unwrap();
        assert_eq!(out.columns[0].as_i64().unwrap(), &[10, 30, 20, 40]);
    }

    #[test]
    fn kway_merge_is_stable() {
        let a = batch(&[1, 3, 3, 9]);
        let b = batch(&[2, 3, 8]);
        let c = batch(&[]);
        let order = merge_sorted(&[a, b, c], |x, i, y, j| {
            x.columns[0].as_i64().unwrap()[i].cmp(&y.columns[0].as_i64().unwrap()[j])
        });
        // Equal keys (the 3s) come stream-0 first, then stream-1.
        assert_eq!(order, vec![(0, 0), (1, 0), (0, 1), (0, 2), (1, 1), (1, 2), (0, 3)]);
    }
}
