//! Morsel-parallel sort: per-run stable sorts on workers, stable k-way
//! merge.
//!
//! The input stream is chopped into runs of roughly `morsel_rows` rows
//! (batch-aligned); workers sort the runs concurrently with the same
//! comparator the serial [`Sort`] uses, and [`merge_sorted`] merges them
//! stably with run-index tie-breaking. A stable per-run sort + a stable
//! merge that prefers earlier runs is exactly a stable sort of the
//! concatenated input, so the output is **byte-identical** to the serial
//! operator's — the merge contract promised by [`crate::parallel::merge`].
//!
//! [`Sort`]: crate::ops::sort::Sort

use std::sync::Arc;

use bdcc_storage::Column;

use crate::batch::{Batch, OpSchema};
use crate::error::{ExecError, Result};
use crate::memory::MemoryTracker;
use crate::ops::sort::{cmp_rows, SortKey};
use crate::ops::{BoxedOp, Operator};
use crate::parallel::{merge::merge_sorted, pool, ParallelConfig};

/// Parallel materializing sort (with optional limit → top-N), the
/// [`ParallelConfig`]-gated replacement for [`Sort`].
///
/// [`Sort`]: crate::ops::sort::Sort
pub struct ParallelSort {
    input: Option<BoxedOp>,
    keys: Vec<(usize, bool)>,
    limit: Option<usize>,
    schema: OpSchema,
    cfg: ParallelConfig,
    tracker: Arc<MemoryTracker>,
    output: Option<Batch>,
    done: bool,
}

impl ParallelSort {
    pub fn new(
        input: BoxedOp,
        keys: &[SortKey],
        limit: Option<usize>,
        cfg: ParallelConfig,
        tracker: Arc<MemoryTracker>,
    ) -> Result<ParallelSort> {
        let schema = input.schema().clone();
        let mut resolved = Vec::with_capacity(keys.len());
        for k in keys {
            let idx = crate::batch::schema_index(&schema, &k.column)
                .ok_or_else(|| ExecError::UnknownColumn(k.column.clone()))?;
            resolved.push((idx, k.ascending));
        }
        Ok(ParallelSort {
            input: Some(input),
            keys: resolved,
            limit,
            schema,
            cfg,
            tracker,
            output: None,
            done: false,
        })
    }

    /// Drain the input into runs of at least `morsel_rows` rows (closing a
    /// run only on batch boundaries keeps runs contiguous input slices).
    fn collect_runs(&mut self) -> Result<Vec<Batch>> {
        let mut input = self.input.take().expect("sort input consumed once");
        let mut runs: Vec<Batch> = Vec::new();
        let mut acc: Option<Batch> = None;
        while let Some(b) = input.next()? {
            match &mut acc {
                None => acc = Some(b),
                Some(a) => {
                    for (d, s) in a.columns.iter_mut().zip(&b.columns) {
                        d.append(s)?;
                    }
                }
            }
            if acc.as_ref().map(|a| a.rows()).unwrap_or(0) >= self.cfg.morsel_rows {
                runs.push(acc.take().expect("just filled"));
            }
        }
        if let Some(a) = acc {
            runs.push(a);
        }
        Ok(runs)
    }
}

/// Stable sort of one run by the resolved keys (the serial [`Sort`]
/// comparator, [`cmp_rows`]). Free function so workers capture only the
/// keys, not the (non-`Sync`) operator.
///
/// [`Sort`]: crate::ops::sort::Sort
fn sort_run(run: &Batch, keys: &[(usize, bool)]) -> Batch {
    let mut perm: Vec<usize> = (0..run.rows()).collect();
    perm.sort_by(|&a, &b| cmp_rows(keys, run, a, run, b));
    run.gather(&perm)
}

impl Operator for ParallelSort {
    fn schema(&self) -> &OpSchema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        if self.output.is_none() {
            let runs = self.collect_runs()?;
            // Charge the materialized input up front (mirroring the serial
            // Sort, so serial/parallel peaks compare apples-to-apples)…
            let bytes: u64 = runs.iter().map(|b| b.estimated_bytes()).sum();
            let mut mem = self.tracker.register(bytes);
            let keys = &self.keys;
            let sorted: Vec<Batch> =
                pool::run_tasks_labeled(self.cfg.threads, runs.len(), "sort-run", |i| {
                    Ok(sort_run(&runs[i], keys))
                })?;
            // …then the unsorted runs are dead: drop them before the merge
            // so only the sorted copies stay resident, and resize the
            // charge to that live set (held through merge + gather).
            drop(runs);
            mem.resize(sorted.iter().map(|b| b.estimated_bytes()).sum());
            let mut coords = merge_sorted(&sorted, |x, i, y, j| cmp_rows(keys, x, i, y, j));
            if let Some(l) = self.limit {
                coords.truncate(l);
            }
            let cols: Vec<Column> = (0..self.schema.len())
                .map(|c| gather_streams(&sorted, &coords, c, &self.schema))
                .collect();
            self.output = Some(Batch::new(cols));
        }
        self.done = true;
        Ok(self.output.take())
    }
}

/// Gather column `col` across sorted streams at `(stream, row)`
/// coordinates — the cross-stream counterpart of [`Column::gather`].
fn gather_streams(
    streams: &[Batch],
    coords: &[(usize, usize)],
    col: usize,
    schema: &OpSchema,
) -> Column {
    let dt = schema[col].data_type;
    if streams.is_empty() {
        return Column::empty(dt);
    }
    match &streams[0].columns[col] {
        Column::I64 { logical, .. } => {
            let parts: Vec<&[i64]> =
                streams.iter().map(|b| b.columns[col].as_i64().expect("typed")).collect();
            Column::I64 {
                values: coords.iter().map(|&(s, r)| parts[s][r]).collect(),
                logical: *logical,
            }
        }
        Column::F64(_) => {
            let parts: Vec<&[f64]> =
                streams.iter().map(|b| b.columns[col].as_f64().expect("typed")).collect();
            Column::F64(coords.iter().map(|&(s, r)| parts[s][r]).collect())
        }
        Column::Str(_) => {
            let parts: Vec<&[String]> =
                streams.iter().map(|b| b.columns[col].as_str().expect("typed")).collect();
            Column::Str(coords.iter().map(|&(s, r)| parts[s][r].clone()).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::ColMeta;
    use crate::ops::collect;
    use crate::ops::sort::Sort;
    use bdcc_storage::DataType;

    struct Source {
        schema: OpSchema,
        batches: std::vec::IntoIter<Batch>,
    }

    impl Source {
        fn new(cols: Vec<(&str, Column)>, chunk: usize) -> Source {
            let schema: OpSchema =
                cols.iter().map(|(n, c)| ColMeta::new(*n, c.data_type())).collect();
            let n = cols[0].1.len();
            let mut batches = Vec::new();
            let mut start = 0;
            while start < n {
                let end = (start + chunk).min(n);
                batches.push(Batch::new(cols.iter().map(|(_, c)| c.slice(start, end)).collect()));
                start = end;
            }
            Source { schema, batches: batches.into_iter() }
        }
    }

    impl Operator for Source {
        fn schema(&self) -> &OpSchema {
            &self.schema
        }
        fn next(&mut self) -> Result<Option<Batch>> {
            Ok(self.batches.next())
        }
    }

    fn dataset(n: i64) -> Vec<(&'static str, Column)> {
        // Heavily tied sort key + distinct payload: stability is visible.
        let k: Vec<i64> = (0..n).map(|i| (i * 7919) % 13).collect();
        let f: Vec<f64> = (0..n).map(|i| ((i * 31) % 17) as f64 * 0.5).collect();
        let s: Vec<String> = (0..n).map(|i| format!("r{i:05}")).collect();
        vec![("k", Column::from_i64(k)), ("f", Column::from_f64(f)), ("s", Column::from_strings(s))]
    }

    fn both(
        keys: &[SortKey],
        limit: Option<usize>,
        n: i64,
        chunk: usize,
        cfg: ParallelConfig,
    ) -> (Batch, Batch) {
        let t = MemoryTracker::new();
        let serial = collect(Box::new(
            Sort::new(Box::new(Source::new(dataset(n), chunk)), keys, limit, t.clone()).unwrap(),
        ))
        .unwrap();
        let parallel = collect(Box::new(
            ParallelSort::new(Box::new(Source::new(dataset(n), chunk)), keys, limit, cfg, t)
                .unwrap(),
        ))
        .unwrap();
        (serial, parallel)
    }

    #[test]
    fn parallel_sort_is_byte_identical_to_serial() {
        let cfg = ParallelConfig { threads: 4, morsel_rows: 64, agg_radix: None };
        let (s, p) = both(&[SortKey::asc("k")], None, 1000, 37, cfg);
        assert_eq!(s, p);
    }

    #[test]
    fn multi_key_desc_and_limit_match() {
        let cfg = ParallelConfig { threads: 3, morsel_rows: 32, agg_radix: None };
        let (s, p) = both(&[SortKey::desc("k"), SortKey::asc("s")], Some(17), 500, 19, cfg);
        assert_eq!(s, p);
        assert_eq!(p.rows(), 17);
    }

    #[test]
    fn tie_heavy_input_keeps_stability() {
        // All keys equal: output must be the input order exactly.
        let cfg = ParallelConfig { threads: 4, morsel_rows: 16, agg_radix: None };
        let t = MemoryTracker::new();
        let cols = vec![
            ("k", Column::from_i64(vec![1; 200])),
            ("s", Column::from_strings((0..200).map(|i| format!("{i:03}")).collect())),
        ];
        let p = collect(Box::new(
            ParallelSort::new(Box::new(Source::new(cols, 7)), &[SortKey::asc("k")], None, cfg, t)
                .unwrap(),
        ))
        .unwrap();
        let s = p.columns[1].as_str().unwrap();
        assert!(s.windows(2).all(|w| w[0] < w[1]), "stable sort must keep input order on ties");
    }

    #[test]
    fn empty_input_yields_empty_typed_batch() {
        let cfg = ParallelConfig { threads: 2, morsel_rows: 16, agg_radix: None };
        let t = MemoryTracker::new();
        let src = Source {
            schema: vec![ColMeta::new("k", DataType::Int), ColMeta::new("s", DataType::Str)],
            batches: Vec::new().into_iter(),
        };
        let mut op = ParallelSort::new(Box::new(src), &[SortKey::asc("k")], None, cfg, t).unwrap();
        let out = op.next().unwrap().unwrap();
        assert_eq!(out.rows(), 0);
        assert_eq!(out.arity(), 2);
        assert_eq!(out.columns[1].data_type(), DataType::Str);
        assert!(op.next().unwrap().is_none());
    }

    #[test]
    fn date_columns_keep_logical_type() {
        let cfg = ParallelConfig { threads: 2, morsel_rows: 8, agg_radix: None };
        let t = MemoryTracker::new();
        let cols = vec![("d", Column::from_dates((0..40).rev().collect()))];
        let p = collect(Box::new(
            ParallelSort::new(Box::new(Source::new(cols, 5)), &[SortKey::asc("d")], None, cfg, t)
                .unwrap(),
        ))
        .unwrap();
        assert_eq!(p.columns[0].data_type(), DataType::Date);
        assert_eq!(p.columns[0].as_i64().unwrap()[0], 0);
    }
}
