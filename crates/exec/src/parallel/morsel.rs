//! Morsels: the work units of parallel execution.
//!
//! A morsel is a contiguous slice of a leaf scan — a range of MinMax
//! *blocks* for plain/PK scans, a range of selected count-table *groups*
//! for BDCC scatter-scans (groups are the paper's natural parallelism
//! unit: disjoint row ranges, pre-ordered by the planner's scatter
//! order). Both choices align morsel boundaries with the serial scan's
//! batch boundaries, which is what makes *ordered concatenation of
//! per-morsel streams reproduce the serial batch stream exactly* — the
//! correctness contract everything in [`crate::parallel`] rests on.

use std::ops::Range;
use std::sync::Arc;

use bdcc_obs::OpMetrics;
use bdcc_storage::{IoTracker, StoredTable};

use crate::error::Result;
use crate::ops::bdcc_scan::{BdccScan, GroupSpec};
use crate::ops::scan::PlainScan;
use crate::ops::BoxedOp;
use crate::pred::ColPredicate;

/// One unit of scan work: an index range into the leaf's blocks or groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Morsel {
    /// MinMax statistics blocks `[start, end)` of a plain scan.
    Blocks(Range<usize>),
    /// Selected-group indices `[start, end)` of a scatter-scan (indices
    /// into the planner's ordered group list, not group keys).
    Groups(Range<usize>),
}

/// Split `nblocks` blocks of `block_rows` rows into morsels of at least
/// `morsel_rows` rows (whole blocks only — morsel boundaries must coincide
/// with block boundaries). Empty input yields no morsels.
pub fn split_blocks(nblocks: usize, block_rows: usize, morsel_rows: usize) -> Vec<Morsel> {
    if nblocks == 0 {
        return Vec::new();
    }
    let per = morsel_rows.div_ceil(block_rows.max(1)).max(1);
    (0..nblocks).step_by(per).map(|lo| Morsel::Blocks(lo..(lo + per).min(nblocks))).collect()
}

/// Split `rows` already-materialized rows (a probe batch, a group's rows)
/// into contiguous ranges of at most `morsel_rows` rows — the probe-side
/// counterpart of [`split_blocks`]/[`split_groups`]: ranges tile `0..rows`
/// in order, so per-range results concatenated in range order reproduce a
/// serial row loop exactly.
pub fn split_rows(rows: usize, morsel_rows: usize) -> Vec<Range<usize>> {
    let step = morsel_rows.max(1);
    (0..rows).step_by(step).map(|lo| lo..(lo + step).min(rows)).collect()
}

/// Split an ordered group list into morsels of roughly `morsel_rows` rows.
/// Groups are indivisible (a batch never crosses a group boundary), so a
/// single over-sized group becomes its own morsel; tiny groups coalesce
/// until the row budget fills. Preserves order and tiles the list:
/// every group lands in exactly one morsel.
pub fn split_groups(groups: &[GroupSpec], morsel_rows: usize) -> Vec<Morsel> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut acc = 0usize;
    for (i, g) in groups.iter().enumerate() {
        acc += g.rows();
        if acc >= morsel_rows.max(1) {
            out.push(Morsel::Groups(start..i + 1));
            start = i + 1;
            acc = 0;
        }
    }
    if start < groups.len() {
        out.push(Morsel::Groups(start..groups.len()));
    }
    out
}

/// Everything needed to (re)build a leaf scan operator, either whole or
/// restricted to one morsel — the planner emits one blueprint per leaf,
/// and workers instantiate per-morsel scans from it concurrently (it is
/// `Sync`: an [`Arc<StoredTable>`] plus owned plan data).
pub struct ScanBlueprint {
    pub table: Arc<StoredTable>,
    pub columns: Vec<String>,
    pub predicates: Vec<ColPredicate>,
    pub kind: ScanKind,
    /// Residual filters compile to selection-vector kernel programs (the
    /// query context's `kernel` toggle; see [`crate::kernel`]).
    pub filter_kernel: bool,
}

/// The access-path-specific half of a [`ScanBlueprint`].
pub enum ScanKind {
    /// Plain scan (Plain and PK schemes): morsels are block ranges.
    Plain,
    /// BDCC scatter-scan: the planner's selected groups in scatter order,
    /// plus the emitted group-key column names; morsels are group ranges.
    Bdcc { group_key_names: Vec<String>, groups: Vec<GroupSpec> },
}

impl ScanBlueprint {
    /// Rows this scan would read if run whole (pre-pruning weight used to
    /// decide whether going parallel is worth it).
    pub fn total_rows(&self) -> usize {
        match &self.kind {
            ScanKind::Plain => self.table.rows(),
            ScanKind::Bdcc { groups, .. } => groups.iter().map(|g| g.rows()).sum(),
        }
    }

    /// Partition this scan into morsels of roughly `morsel_rows` rows.
    pub fn morsels(&self, morsel_rows: usize) -> Vec<Morsel> {
        match &self.kind {
            ScanKind::Plain => {
                split_blocks(self.table.block_count(), self.table.block_rows(), morsel_rows)
            }
            ScanKind::Bdcc { groups, .. } => split_groups(groups, morsel_rows),
        }
    }

    /// Build the scan operator for one morsel (or the whole scan when
    /// `morsel` is `None`). Workers call this concurrently.
    pub fn build(&self, io: &IoTracker, morsel: Option<&Morsel>) -> Result<BoxedOp> {
        self.build_with_metrics(io, morsel, None)
    }

    /// [`build`](Self::build) with operator metrics attached to the scan, so
    /// block-skip counters (MinMax pruning, encoded-path eliminations)
    /// aggregate across the morsels of one profiled leaf.
    pub fn build_with_metrics(
        &self,
        io: &IoTracker,
        morsel: Option<&Morsel>,
        metrics: Option<Arc<OpMetrics>>,
    ) -> Result<BoxedOp> {
        let cols: Vec<&str> = self.columns.iter().map(|s| s.as_str()).collect();
        match (&self.kind, morsel) {
            (ScanKind::Plain, None) => Ok(Box::new(
                PlainScan::new(
                    Arc::clone(&self.table),
                    io.clone(),
                    &cols,
                    self.predicates.clone(),
                )?
                .with_filter_kernel(self.filter_kernel)
                .with_metrics(metrics),
            )),
            (ScanKind::Plain, Some(Morsel::Blocks(r))) => Ok(Box::new(
                PlainScan::with_block_range(
                    Arc::clone(&self.table),
                    io.clone(),
                    &cols,
                    self.predicates.clone(),
                    r.clone(),
                )?
                .with_filter_kernel(self.filter_kernel)
                .with_metrics(metrics),
            )),
            (ScanKind::Bdcc { group_key_names, groups }, m) => {
                let subset = match m {
                    None => groups.clone(),
                    Some(Morsel::Groups(r)) => groups[r.clone()].to_vec(),
                    Some(Morsel::Blocks(_)) => {
                        return Err(crate::error::ExecError::Internal(
                            "block morsel on a scatter-scan".into(),
                        ))
                    }
                };
                Ok(Box::new(
                    BdccScan::new(
                        Arc::clone(&self.table),
                        io.clone(),
                        &cols,
                        self.predicates.clone(),
                        group_key_names,
                        subset,
                    )?
                    .with_filter_kernel(self.filter_kernel)
                    .with_metrics(metrics),
                ))
            }
            (ScanKind::Plain, Some(Morsel::Groups(_))) => {
                Err(crate::error::ExecError::Internal("group morsel on a plain scan".into()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(start: usize, count: usize) -> GroupSpec {
        GroupSpec { start, count, group_keys: vec![] }
    }

    #[test]
    fn blocks_split_into_aligned_ranges() {
        // 10 blocks of 4 rows, 8-row morsels → 2 blocks per morsel.
        let m = split_blocks(10, 4, 8);
        assert_eq!(m.len(), 5);
        assert_eq!(m[0], Morsel::Blocks(0..2));
        assert_eq!(m[4], Morsel::Blocks(8..10));
        // Morsel smaller than a block still takes whole blocks.
        let m = split_blocks(3, 4096, 100);
        assert_eq!(m.len(), 3);
        // Everything fits one morsel.
        assert_eq!(split_blocks(3, 4, 1000), vec![Morsel::Blocks(0..3)]);
    }

    #[test]
    fn empty_table_yields_no_morsels() {
        assert!(split_blocks(0, 4096, 1024).is_empty());
        assert!(split_groups(&[], 1024).is_empty());
    }

    #[test]
    fn uneven_groups_tile_without_splitting_any_group() {
        // Sizes 1, 7, 2, 100, 1, 1 with a 8-row budget: the 100-row group
        // must not be split, tiny neighbours coalesce.
        let groups: Vec<GroupSpec> = [1, 7, 2, 100, 1, 1]
            .iter()
            .scan(0, |s, &c| {
                let g = group(*s, c);
                *s += c;
                Some(g)
            })
            .collect();
        let m = split_groups(&groups, 8);
        assert_eq!(
            m,
            vec![
                Morsel::Groups(0..2), // 1 + 7 = 8
                Morsel::Groups(2..4), // 2 + 100 (oversized group closes the morsel)
                Morsel::Groups(4..6), // trailing remainder
            ]
        );
        // Every group appears exactly once, in order.
        let covered: Vec<usize> = m
            .iter()
            .flat_map(|m| match m {
                Morsel::Groups(r) => r.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(covered, (0..groups.len()).collect::<Vec<_>>());
    }

    #[test]
    fn one_row_table_is_one_morsel() {
        assert_eq!(split_blocks(1, 4096, 4096), vec![Morsel::Blocks(0..1)]);
        assert_eq!(split_groups(&[group(0, 1)], 4096), vec![Morsel::Groups(0..1)]);
    }

    #[test]
    fn zero_row_groups_coalesce() {
        let groups = vec![group(0, 0), group(0, 0), group(0, 5)];
        let m = split_groups(&groups, 4);
        assert_eq!(m, vec![Morsel::Groups(0..3)]);
    }
}
