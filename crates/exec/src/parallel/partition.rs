//! Hash-partitioning rows by key hash — the **shared routing contract**
//! of the parallel join build, the partitioned join probe, and
//! radix-partitioned aggregation.
//!
//! All three consumers split work into `2^bits` partitions selected by
//! the **top `bits` of one shared key hash** ([`partition_of`]), with the
//! bit count derived from the worker count by one shared helper
//! ([`partition_bits_for`] / [`bits_for_partition_count`] /
//! [`partition_count`]). Sharing the derivation and the routing function
//! is what makes the three paths composable:
//!
//! * **Join build** ([`crate::hash::JoinIndex::build`]): build rows
//!   scatter into per-partition [`JoinTable`]s by the top bits of the
//!   join-key hash ([`crate::hash::hash_row`]). Workers consume
//!   morsel-sized chunks of the build side and split each chunk's row ids
//!   ([`hash_partition_rows`]); per-chunk partition lists concatenate
//!   **in chunk order**, so every partition's row list is ascending — the
//!   order-deterministic merge contract of the rest of
//!   [`crate::parallel`], and the property that keeps partitioned probes
//!   byte-identical to serial ones (chains built from ascending rows stay
//!   ascending).
//! * **Join probe**: every probe computes the same key hash once and
//!   routes to the one owning partition through the same
//!   [`partition_of`]; a probe touches exactly one table, so concurrent
//!   probe morsels never contend, and `bits == 0` (an unpartitioned,
//!   serially built index) routes everything to the sole table.
//! * **Radix aggregation** ([`crate::parallel::ParallelAggregate`]):
//!   input rows scatter by the top bits of the *group-key* hash
//!   ([`crate::hash::hash_group_row`], [`partition_rows_of_batch`]) so
//!   each distinct group lands wholly in one partition and one worker's
//!   table — the group-side analogue of the build scatter, with the same
//!   guarantee (equal keys never split across partitions) carried by the
//!   same top-bit routing.
//!
//! [`JoinTable`]: crate::hash::JoinTable

use bdcc_storage::Column;

use crate::error::Result;
use crate::hash::{hash_group_row, hash_row};
use crate::parallel::{pool, ParallelConfig};

/// Partition count for a worker count: the next power of two at or above
/// `threads` (at least 2), so the top `bits` of the hash select a
/// partition with no modulo. The one `threads → bits` derivation shared
/// by the join build and radix aggregation (probes reuse the bit count
/// the build stored).
pub fn partition_bits_for(threads: usize) -> u32 {
    bits_for_partition_count(threads.max(2))
}

/// Bits needed for (at least) `nparts` partitions: non-powers-of-two
/// round **up** to the next power of two (a top-bits router cannot
/// address a non-power-of-two table count), and `nparts <= 1` is the
/// unpartitioned case (`bits == 0`, everything routes to partition 0).
pub fn bits_for_partition_count(nparts: usize) -> u32 {
    if nparts <= 1 {
        0
    } else {
        nparts.next_power_of_two().trailing_zeros()
    }
}

/// The number of partitions a `bits`-bit routing addresses (`2^bits`;
/// 1 when unpartitioned). Inverse of [`bits_for_partition_count`] on
/// powers of two.
pub fn partition_count(bits: u32) -> usize {
    1usize << bits
}

/// The partition owning hash `h` under a `2^bits` partitioning: the top
/// `bits` of the hash (partition 0 when unpartitioned, `bits == 0` — a
/// 64-bit shift would be UB-adjacent, not "whole hash"). Build and probe
/// must agree on this routing — the partitioned
/// [`crate::hash::JoinIndex`] probes through the same function the build
/// scattered with, so a probe touches exactly one partition and workers
/// probing disjoint morsels never contend on a table.
#[inline(always)]
pub fn partition_of(h: u64, bits: u32) -> usize {
    if bits == 0 {
        0
    } else {
        (h >> (64 - bits)) as usize
    }
}

/// Split all rows of `key_cols` into `2^bits` partitions by the top hash
/// bits of their key. Chunks of `cfg.morsel_rows` rows are partitioned by
/// workers concurrently; each returned partition lists its row ids in
/// ascending order.
pub fn hash_partition_rows(
    key_cols: &[&[i64]],
    bits: u32,
    cfg: &ParallelConfig,
) -> Result<Vec<Vec<u32>>> {
    let nparts = partition_count(bits);
    let rows = key_cols.first().map(|c| c.len()).unwrap_or(0);
    let chunk = cfg.morsel_rows.max(1);
    let starts: Vec<usize> = (0..rows).step_by(chunk).collect();
    let per_chunk: Vec<Vec<Vec<u32>>> =
        pool::run_tasks_labeled(cfg.threads, starts.len(), "build-partition", |i| {
            let lo = starts[i];
            let hi = (lo + chunk).min(rows);
            let mut parts: Vec<Vec<u32>> = vec![Vec::new(); nparts];
            for r in lo..hi {
                let p = partition_of(hash_row(key_cols, r), bits);
                parts[p].push(r as u32);
            }
            Ok(parts)
        })?;
    // Ordered merge: chunk order == ascending row order per partition.
    let mut merged: Vec<Vec<u32>> = vec![Vec::new(); nparts];
    for chunk_parts in per_chunk {
        for (p, ids) in chunk_parts.into_iter().enumerate() {
            merged[p].extend(ids);
        }
    }
    Ok(merged)
}

/// Split one batch's rows into `2^bits` partitions by the top bits of
/// their **group-key** hash ([`hash_group_row`] over `group_cols` —
/// the same codec the aggregation hash table hashes its keys with).
/// Returns per-partition row-index lists, each ascending, jointly tiling
/// `0..batch_rows`; rows with equal group keys always land in one
/// partition, which is what lets radix aggregation keep every group in
/// exactly one worker-local table.
pub fn partition_rows_of_batch(group_cols: &[&Column], rows: usize, bits: u32) -> Vec<Vec<usize>> {
    let mut parts: Vec<Vec<usize>> = vec![Vec::new(); partition_count(bits)];
    for r in 0..rows {
        parts[partition_of(hash_group_row(group_cols, r), bits)].push(r);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_tile_rows_in_ascending_order() {
        let keys: Vec<i64> = (0..5000).map(|i| i * 37 % 211).collect();
        let cfg = ParallelConfig { threads: 4, morsel_rows: 256, agg_radix: None };
        let bits = partition_bits_for(cfg.threads);
        let parts = hash_partition_rows(&[&keys], bits, &cfg).unwrap();
        assert_eq!(parts.len(), 4);
        let mut all: Vec<u32> = Vec::new();
        for p in &parts {
            assert!(p.windows(2).all(|w| w[0] < w[1]), "partition rows must ascend");
            all.extend(p);
        }
        all.sort_unstable();
        assert_eq!(all, (0..5000u32).collect::<Vec<_>>(), "partitions must tile all rows");
    }

    #[test]
    fn equal_keys_land_in_one_partition() {
        let keys: Vec<i64> = (0..1000).map(|i| i % 10).collect();
        let cfg = ParallelConfig { threads: 8, morsel_rows: 64, agg_radix: None };
        let bits = partition_bits_for(cfg.threads);
        let parts = hash_partition_rows(&[&keys], bits, &cfg).unwrap();
        for k in 0..10i64 {
            let holders: Vec<usize> = parts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.iter().any(|&r| keys[r as usize] == k))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(holders.len(), 1, "key {k} split across partitions {holders:?}");
        }
    }

    #[test]
    fn partition_of_handles_unpartitioned_and_tops_out() {
        assert_eq!(partition_of(u64::MAX, 0), 0, "bits = 0 routes to the sole table");
        assert_eq!(partition_of(0, 0), 0);
        assert_eq!(partition_of(u64::MAX, 2), 3);
        assert_eq!(partition_of(1u64 << 62, 2), 1);
        assert_eq!(partition_of(0, 2), 0);
    }

    #[test]
    fn partition_bits_round_up() {
        assert_eq!(partition_bits_for(1), 1);
        assert_eq!(partition_bits_for(2), 1);
        assert_eq!(partition_bits_for(3), 2);
        assert_eq!(partition_bits_for(4), 2);
        assert_eq!(partition_bits_for(5), 3);
        assert_eq!(partition_bits_for(8), 3);
    }

    #[test]
    fn count_and_bits_helpers_agree_on_edges() {
        // bits == 0: the unpartitioned case — one table, everything
        // routes to it.
        assert_eq!(partition_count(0), 1);
        assert_eq!(bits_for_partition_count(0), 0);
        assert_eq!(bits_for_partition_count(1), 0);
        // Non-powers-of-two round up, never down (a top-bits router
        // cannot address 3 or 6 tables).
        assert_eq!(bits_for_partition_count(3), 2);
        assert_eq!(bits_for_partition_count(5), 3);
        assert_eq!(bits_for_partition_count(6), 3);
        assert_eq!(bits_for_partition_count(7), 3);
        // Round trip on powers of two.
        for bits in 0..10u32 {
            assert_eq!(bits_for_partition_count(partition_count(bits)), bits);
        }
        // partition_of stays in range for every (bits, hash) combination
        // the helpers can produce.
        for threads in 1..12usize {
            let bits = partition_bits_for(threads);
            for h in [0u64, 1, u64::MAX, u64::MAX / 3] {
                assert!(partition_of(h, bits) < partition_count(bits));
            }
        }
    }

    #[test]
    fn batch_rows_partition_by_group_key() {
        // Mixed int + string group key: equal keys land in one partition,
        // per-partition lists ascend and jointly tile the batch.
        let ints = Column::from_i64((0..300).map(|i| i % 7).collect());
        let strs = Column::from_strings((0..300).map(|i| format!("s{}", i % 5)).collect());
        let cols: Vec<&Column> = vec![&ints, &strs];
        let bits = 2;
        let parts = partition_rows_of_batch(&cols, 300, bits);
        assert_eq!(parts.len(), 4);
        let mut all: Vec<usize> = Vec::new();
        for p in &parts {
            assert!(p.windows(2).all(|w| w[0] < w[1]), "partition rows must ascend");
            all.extend(p);
        }
        all.sort_unstable();
        assert_eq!(all, (0..300).collect::<Vec<_>>());
        // 35 distinct (int, str) keys; each must live in exactly one
        // partition.
        let key_of = |r: &usize| (r % 7, r % 5);
        for i in 0..7 {
            for s in 0..5 {
                let holders =
                    parts.iter().filter(|p| p.iter().any(|r| key_of(r) == (i, s))).count();
                assert_eq!(holders, 1, "key ({i},{s}) split across partitions");
            }
        }
        // bits == 0 degenerates to one partition holding everything.
        let one = partition_rows_of_batch(&cols, 300, 0);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].len(), 300);
    }

    #[test]
    fn empty_input_yields_empty_partitions() {
        let keys: Vec<i64> = vec![];
        let cfg = ParallelConfig { threads: 2, morsel_rows: 16, agg_radix: None };
        let parts = hash_partition_rows(&[&keys], 1, &cfg).unwrap();
        assert!(parts.iter().all(|p| p.is_empty()));
    }
}
