//! Hash-partitioning build rows for the parallel join build.
//!
//! Workers consume morsel-sized chunks of the materialized build side and
//! split each chunk's row ids by the key hash's top bits; the per-chunk
//! partition lists then concatenate **in chunk order**, so every
//! partition's row list is ascending — the same order-deterministic merge
//! contract as the rest of [`crate::parallel`], and the property that
//! keeps partitioned probes byte-identical to serial ones (chains built
//! from ascending rows stay ascending).

use crate::error::Result;
use crate::hash::hash_row;
use crate::parallel::{pool, ParallelConfig};

/// Partition count for a worker count: the next power of two at or above
/// `threads` (at least 2), so the top `bits` of the hash select a
/// partition with no modulo.
pub fn partition_bits_for(threads: usize) -> u32 {
    threads.max(2).next_power_of_two().trailing_zeros()
}

/// The partition owning hash `h` under a `2^bits` partitioning: the top
/// `bits` of the hash (partition 0 when unpartitioned, `bits == 0` — a
/// 64-bit shift would be UB-adjacent, not "whole hash"). Build and probe
/// must agree on this routing — the partitioned
/// [`crate::hash::JoinIndex`] probes through the same function the build
/// scattered with, so a probe touches exactly one partition and workers
/// probing disjoint morsels never contend on a table.
#[inline(always)]
pub fn partition_of(h: u64, bits: u32) -> usize {
    if bits == 0 {
        0
    } else {
        (h >> (64 - bits)) as usize
    }
}

/// Split all rows of `key_cols` into `2^bits` partitions by the top hash
/// bits of their key. Chunks of `cfg.morsel_rows` rows are partitioned by
/// workers concurrently; each returned partition lists its row ids in
/// ascending order.
pub fn hash_partition_rows(
    key_cols: &[&[i64]],
    bits: u32,
    cfg: &ParallelConfig,
) -> Result<Vec<Vec<u32>>> {
    let nparts = 1usize << bits;
    let rows = key_cols.first().map(|c| c.len()).unwrap_or(0);
    let chunk = cfg.morsel_rows.max(1);
    let starts: Vec<usize> = (0..rows).step_by(chunk).collect();
    let per_chunk: Vec<Vec<Vec<u32>>> = pool::run_tasks(cfg.threads, starts.len(), |i| {
        let lo = starts[i];
        let hi = (lo + chunk).min(rows);
        let mut parts: Vec<Vec<u32>> = vec![Vec::new(); nparts];
        for r in lo..hi {
            let p = partition_of(hash_row(key_cols, r), bits);
            parts[p].push(r as u32);
        }
        Ok(parts)
    })?;
    // Ordered merge: chunk order == ascending row order per partition.
    let mut merged: Vec<Vec<u32>> = vec![Vec::new(); nparts];
    for chunk_parts in per_chunk {
        for (p, ids) in chunk_parts.into_iter().enumerate() {
            merged[p].extend(ids);
        }
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_tile_rows_in_ascending_order() {
        let keys: Vec<i64> = (0..5000).map(|i| i * 37 % 211).collect();
        let cfg = ParallelConfig { threads: 4, morsel_rows: 256 };
        let bits = partition_bits_for(cfg.threads);
        let parts = hash_partition_rows(&[&keys], bits, &cfg).unwrap();
        assert_eq!(parts.len(), 4);
        let mut all: Vec<u32> = Vec::new();
        for p in &parts {
            assert!(p.windows(2).all(|w| w[0] < w[1]), "partition rows must ascend");
            all.extend(p);
        }
        all.sort_unstable();
        assert_eq!(all, (0..5000u32).collect::<Vec<_>>(), "partitions must tile all rows");
    }

    #[test]
    fn equal_keys_land_in_one_partition() {
        let keys: Vec<i64> = (0..1000).map(|i| i % 10).collect();
        let cfg = ParallelConfig { threads: 8, morsel_rows: 64 };
        let bits = partition_bits_for(cfg.threads);
        let parts = hash_partition_rows(&[&keys], bits, &cfg).unwrap();
        for k in 0..10i64 {
            let holders: Vec<usize> = parts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.iter().any(|&r| keys[r as usize] == k))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(holders.len(), 1, "key {k} split across partitions {holders:?}");
        }
    }

    #[test]
    fn partition_of_handles_unpartitioned_and_tops_out() {
        assert_eq!(partition_of(u64::MAX, 0), 0, "bits = 0 routes to the sole table");
        assert_eq!(partition_of(0, 0), 0);
        assert_eq!(partition_of(u64::MAX, 2), 3);
        assert_eq!(partition_of(1u64 << 62, 2), 1);
        assert_eq!(partition_of(0, 2), 0);
    }

    #[test]
    fn partition_bits_round_up() {
        assert_eq!(partition_bits_for(1), 1);
        assert_eq!(partition_bits_for(2), 1);
        assert_eq!(partition_bits_for(3), 2);
        assert_eq!(partition_bits_for(4), 2);
        assert_eq!(partition_bits_for(5), 3);
        assert_eq!(partition_bits_for(8), 3);
    }

    #[test]
    fn empty_input_yields_empty_partitions() {
        let keys: Vec<i64> = vec![];
        let cfg = ParallelConfig { threads: 2, morsel_rows: 16 };
        let parts = hash_partition_rows(&[&keys], 1, &cfg).unwrap();
        assert!(parts.iter().all(|p| p.is_empty()));
    }
}
