//! The three storage schemes of the paper's evaluation.
//!
//! * **Plain** — tables stored as generated, no ordering, MinMax only.
//! * **PK** — every table re-sorted on its declared primary key; the
//!   planner can then use merge joins (LINEITEM–ORDERS, PARTSUPP–PART) and
//!   streaming aggregation.
//! * **BDCC** — the automatic co-clustered design of Algorithm 2;
//!   scatter scans, bin-range pushdown/propagation and sandwich operators.

use std::sync::Arc;

use bdcc_catalog::Database;
use bdcc_core::{design_and_cluster, BdccSchema, DesignConfig};
use bdcc_storage::{apply_permutation, sort_permutation_multi, Column, StoredTable};

use crate::error::{ExecError, Result};

/// Storage scheme selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    Plain,
    Pk,
    Bdcc,
}

impl Scheme {
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Plain => "Plain",
            Scheme::Pk => "PK",
            Scheme::Bdcc => "BDCC",
        }
    }
}

/// A physical database under one scheme.
#[derive(Debug, Clone)]
pub struct SchemeDb {
    pub scheme: Scheme,
    pub db: Database,
    /// BDCC metadata (clustered tables, dimensions) for [`Scheme::Bdcc`].
    pub bdcc: Option<Arc<BdccSchema>>,
}

/// The Plain scheme: the generated database as-is.
pub fn plain_scheme(db: &Database) -> SchemeDb {
    SchemeDb { scheme: Scheme::Plain, db: db.clone(), bdcc: None }
}

/// The PK scheme: every table with a declared primary key re-sorted on it.
pub fn pk_scheme(db: &Database) -> Result<SchemeDb> {
    let mut out = Database::new(db.catalog().clone());
    for id in db.attached() {
        let stored = db.stored(id).expect("attached");
        let def = db.catalog().table(id);
        if def.primary_key.is_empty() {
            out.attach(id, Arc::clone(stored));
            continue;
        }
        let key_cols: Vec<&[i64]> = def
            .primary_key
            .iter()
            .map(|k| {
                stored
                    .column_by_name(k)
                    .map_err(ExecError::from)
                    .and_then(|c| c.as_i64().map_err(ExecError::from))
            })
            .collect::<Result<_>>()?;
        let perm = sort_permutation_multi(&key_cols);
        let columns: Vec<Column> =
            (0..stored.arity()).map(|i| (**stored.column(i).expect("arity")).clone()).collect();
        let permuted = apply_permutation(&columns, &perm);
        let named: Vec<(String, Column)> =
            stored.schema().columns.iter().map(|c| c.name.clone()).zip(permuted).collect();
        let rebuilt = StoredTable::from_columns(stored.name(), named)?;
        out.attach(id, Arc::new(rebuilt));
    }
    Ok(SchemeDb { scheme: Scheme::Pk, db: out, bdcc: None })
}

/// The BDCC scheme: run Algorithm 2 end to end and install the clustered
/// tables (tables without dimension uses keep their plain storage).
pub fn bdcc_scheme(db: &Database, cfg: &DesignConfig) -> Result<SchemeDb> {
    let schema = design_and_cluster(db, cfg)?;
    let mut out = Database::new(db.catalog().clone());
    for id in db.attached() {
        match schema.tables.get(&id) {
            Some(bt) => out.attach(id, Arc::clone(&bt.table)),
            None => out.attach(id, Arc::clone(db.stored(id).expect("attached"))),
        }
    }
    Ok(SchemeDb { scheme: Scheme::Bdcc, db: out, bdcc: Some(Arc::new(schema)) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdcc_catalog::{Catalog, ColumnDef, TableDef};
    use bdcc_storage::{DataType, TableBuilder};

    fn small_db() -> Database {
        let mut cat = Catalog::new();
        let t = cat
            .create_table(TableDef {
                name: "t".into(),
                columns: vec![
                    ColumnDef { name: "pk".into(), data_type: DataType::Int },
                    ColumnDef { name: "v".into(), data_type: DataType::Int },
                ],
                primary_key: vec!["pk".into()],
            })
            .unwrap();
        cat.create_index("v_idx", "t", &["v"]).unwrap();
        let mut db = Database::new(cat);
        db.attach(
            t,
            Arc::new(
                TableBuilder::new("t")
                    .column("pk", Column::from_i64(vec![3, 1, 2]))
                    .column("v", Column::from_i64(vec![30, 10, 20]))
                    .build()
                    .unwrap(),
            ),
        );
        db
    }

    #[test]
    fn pk_scheme_sorts_on_primary_key() {
        let db = small_db();
        let pk = pk_scheme(&db).unwrap();
        let t = pk.db.stored_by_name("t").unwrap();
        assert_eq!(t.column_by_name("pk").unwrap().as_i64().unwrap(), &[1, 2, 3]);
        assert_eq!(t.column_by_name("v").unwrap().as_i64().unwrap(), &[10, 20, 30]);
        // Plain untouched.
        let plain = plain_scheme(&db);
        assert_eq!(
            plain.db.stored_by_name("t").unwrap().column_by_name("pk").unwrap().as_i64().unwrap(),
            &[3, 1, 2]
        );
    }

    #[test]
    fn bdcc_scheme_installs_clustered_tables() {
        let db = small_db();
        let cfg = DesignConfig::default();
        let b = bdcc_scheme(&db, &cfg).unwrap();
        let t = b.db.stored_by_name("t").unwrap();
        // Clustered table carries the _bdcc_ column; the count table views
        // every logical row exactly once in group-key order (the small-
        // group consolidation may relocate rows physically).
        assert!(t.column_by_name(bdcc_core::BDCC_COLUMN).is_ok());
        let schema = b.bdcc.as_ref().unwrap();
        let tid = b.db.catalog().table_id("t").unwrap();
        let bt = schema.table(tid).unwrap();
        assert_eq!(bt.count.total_rows(), 3);
        assert!(bt.count.groups.windows(2).all(|w| w[0].key < w[1].key));
    }
}
