//! Sargable scan predicates.
//!
//! Predicates attached to scan nodes are simple enough to be analyzed for
//! *pushdown*: min/max block skipping (all schemes) and BDCC bin-range
//! restriction (BDCC scheme). Anything not expressible here goes into a
//! plain `Filter` node and is evaluated row-wise after the scan.

use bdcc_storage::{BlockStats, Datum};

use crate::expr::{CmpOp, Expr, LikePattern};

/// A predicate on a single column of a base table.
#[derive(Debug, Clone, PartialEq)]
pub struct ColPredicate {
    pub column: String,
    pub kind: PredKind,
}

/// The supported sargable forms.
#[derive(Debug, Clone, PartialEq)]
pub enum PredKind {
    /// `col = v`
    Eq(Datum),
    /// `lo ≤/< col ≤/< hi` (either bound optional).
    Range { lo: Option<Datum>, lo_inclusive: bool, hi: Option<Datum>, hi_inclusive: bool },
    /// `col IN (...)`.
    In(Vec<Datum>),
    /// `col LIKE pattern` (block skipping only for `StartsWith`).
    Like(LikePattern),
    /// `col NOT LIKE pattern` (no pushdown; residual only).
    NotLike(LikePattern),
    /// `col <> v` (no pushdown; residual only).
    Ne(Datum),
}

impl ColPredicate {
    /// `col = v`.
    pub fn eq(column: &str, v: impl Into<Datum>) -> ColPredicate {
        ColPredicate { column: column.to_string(), kind: PredKind::Eq(v.into()) }
    }

    /// `col >= v` / `col > v`.
    pub fn ge(column: &str, v: impl Into<Datum>) -> ColPredicate {
        ColPredicate {
            column: column.to_string(),
            kind: PredKind::Range {
                lo: Some(v.into()),
                lo_inclusive: true,
                hi: None,
                hi_inclusive: true,
            },
        }
    }
    pub fn gt(column: &str, v: impl Into<Datum>) -> ColPredicate {
        ColPredicate {
            column: column.to_string(),
            kind: PredKind::Range {
                lo: Some(v.into()),
                lo_inclusive: false,
                hi: None,
                hi_inclusive: true,
            },
        }
    }

    /// `col <= v` / `col < v`.
    pub fn le(column: &str, v: impl Into<Datum>) -> ColPredicate {
        ColPredicate {
            column: column.to_string(),
            kind: PredKind::Range {
                lo: None,
                lo_inclusive: true,
                hi: Some(v.into()),
                hi_inclusive: true,
            },
        }
    }
    pub fn lt(column: &str, v: impl Into<Datum>) -> ColPredicate {
        ColPredicate {
            column: column.to_string(),
            kind: PredKind::Range {
                lo: None,
                lo_inclusive: true,
                hi: Some(v.into()),
                hi_inclusive: false,
            },
        }
    }

    /// `lo <= col < hi` (TPC-H's ubiquitous date window).
    pub fn range(
        column: &str,
        lo: impl Into<Datum>,
        hi_exclusive: impl Into<Datum>,
    ) -> ColPredicate {
        ColPredicate {
            column: column.to_string(),
            kind: PredKind::Range {
                lo: Some(lo.into()),
                lo_inclusive: true,
                hi: Some(hi_exclusive.into()),
                hi_inclusive: false,
            },
        }
    }

    /// `lo <= col <= hi`.
    pub fn between(column: &str, lo: impl Into<Datum>, hi: impl Into<Datum>) -> ColPredicate {
        ColPredicate {
            column: column.to_string(),
            kind: PredKind::Range {
                lo: Some(lo.into()),
                lo_inclusive: true,
                hi: Some(hi.into()),
                hi_inclusive: true,
            },
        }
    }

    /// `col IN (...)`.
    pub fn in_list(column: &str, vals: Vec<Datum>) -> ColPredicate {
        ColPredicate { column: column.to_string(), kind: PredKind::In(vals) }
    }

    /// `col LIKE p`.
    pub fn like(column: &str, p: LikePattern) -> ColPredicate {
        ColPredicate { column: column.to_string(), kind: PredKind::Like(p) }
    }

    /// `col NOT LIKE p`.
    pub fn not_like(column: &str, p: LikePattern) -> ColPredicate {
        ColPredicate { column: column.to_string(), kind: PredKind::NotLike(p) }
    }

    /// `col <> v`.
    pub fn ne(column: &str, v: impl Into<Datum>) -> ColPredicate {
        ColPredicate { column: column.to_string(), kind: PredKind::Ne(v.into()) }
    }

    /// The value range `(lo, hi)` this predicate confines the column to,
    /// for conservative MinMax / bin pruning (bounds treated as inclusive).
    pub fn value_range(&self) -> (Option<Datum>, Option<Datum>) {
        match &self.kind {
            PredKind::Eq(v) => (Some(v.clone()), Some(v.clone())),
            PredKind::Range { lo, hi, .. } => (lo.clone(), hi.clone()),
            PredKind::In(vals) => {
                let lo = vals.iter().cloned().min_by(|a, b| a.total_cmp(b));
                let hi = vals.iter().cloned().max_by(|a, b| a.total_cmp(b));
                (lo, hi)
            }
            PredKind::Like(LikePattern::StartsWith(p)) => {
                // 'abc%' confines the string to ["abc", "abd") — we use the
                // inclusive envelope ["abc", "abc\u{10FFFF}"].
                let lo = Datum::Str(p.clone());
                let hi = Datum::Str(format!("{p}\u{10FFFF}"));
                (Some(lo), Some(hi))
            }
            PredKind::Like(_) | PredKind::NotLike(_) | PredKind::Ne(_) => (None, None),
        }
    }

    /// Can a block with these statistics contain matching rows?
    /// Conservative (`true` = cannot exclude).
    pub fn block_may_match(&self, stats: &BlockStats) -> bool {
        let (lo, hi) = self.value_range();
        stats.may_contain_range(lo.as_ref(), hi.as_ref())
    }

    /// The exact row-wise filter expression for this predicate.
    pub fn to_expr(&self) -> Expr {
        let col = Expr::col(&self.column);
        match &self.kind {
            PredKind::Eq(v) => col.eq(Expr::Lit(v.clone())),
            PredKind::Range { lo, lo_inclusive, hi, hi_inclusive } => {
                let mut e: Option<Expr> = None;
                if let Some(lo) = lo {
                    let op = if *lo_inclusive { CmpOp::Ge } else { CmpOp::Gt };
                    e = Some(Expr::cmp(op, Expr::col(&self.column), Expr::Lit(lo.clone())));
                }
                if let Some(hi) = hi {
                    let op = if *hi_inclusive { CmpOp::Le } else { CmpOp::Lt };
                    let h = Expr::cmp(op, Expr::col(&self.column), Expr::Lit(hi.clone()));
                    e = Some(match e {
                        Some(prev) => prev.and(h),
                        None => h,
                    });
                }
                e.unwrap_or_else(|| Expr::lit(1))
            }
            PredKind::In(vals) => col.in_list(vals.clone()),
            PredKind::Like(p) => col.like(p.clone()),
            PredKind::NotLike(p) => col.not_like(p.clone()),
            PredKind::Ne(v) => col.ne(Expr::Lit(v.clone())),
        }
    }
}

/// AND-combine the row-wise filters of several predicates.
pub fn predicates_to_expr(preds: &[ColPredicate]) -> Option<Expr> {
    let mut it = preds.iter().map(|p| p.to_expr());
    let first = it.next()?;
    Some(it.fold(first, |acc, e| acc.and(e)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdcc_storage::{parse_date, Column};

    #[test]
    fn value_ranges() {
        let p = ColPredicate::eq("a", 5i64);
        assert_eq!(p.value_range(), (Some(Datum::Int(5)), Some(Datum::Int(5))));
        let p = ColPredicate::range("d", Datum::Date(10), Datum::Date(20));
        assert_eq!(p.value_range().0, Some(Datum::Date(10)));
        let p = ColPredicate::in_list("a", vec![Datum::Int(9), Datum::Int(2), Datum::Int(5)]);
        assert_eq!(p.value_range(), (Some(Datum::Int(2)), Some(Datum::Int(9))));
        let p = ColPredicate::ne("a", 5i64);
        assert_eq!(p.value_range(), (None, None));
    }

    #[test]
    fn block_pruning() {
        let stats = BlockStats { min: Datum::Int(10), max: Datum::Int(20) };
        assert!(!ColPredicate::eq("a", 25i64).block_may_match(&stats));
        assert!(ColPredicate::eq("a", 15i64).block_may_match(&stats));
        assert!(!ColPredicate::ge("a", 21i64).block_may_match(&stats));
        assert!(!ColPredicate::le("a", 9i64).block_may_match(&stats));
        // Residual-only predicates never prune.
        assert!(ColPredicate::ne("a", 15i64).block_may_match(&stats));
    }

    #[test]
    fn starts_with_prunes_string_blocks() {
        let stats = BlockStats { min: Datum::Str("m".into()), max: Datum::Str("z".into()) };
        assert!(
            !ColPredicate::like("s", LikePattern::StartsWith("a".into())).block_may_match(&stats)
        );
        assert!(
            ColPredicate::like("s", LikePattern::StartsWith("p".into())).block_may_match(&stats)
        );
        // Contains cannot prune.
        assert!(ColPredicate::like("s", LikePattern::Contains("a".into())).block_may_match(&stats));
    }

    #[test]
    fn residual_expressions_match_exactly() {
        use crate::batch::{Batch, ColMeta};
        use bdcc_storage::DataType;
        let schema = vec![ColMeta::new("d", DataType::Date)];
        let batch = Batch::new(vec![Column::from_dates(vec![
            parse_date("1994-12-31").unwrap(),
            parse_date("1995-01-01").unwrap(),
            parse_date("1996-01-01").unwrap(),
        ])]);
        // [1995-01-01, 1996-01-01) keeps only the middle row.
        let p = ColPredicate::range(
            "d",
            Datum::Date(parse_date("1995-01-01").unwrap()),
            Datum::Date(parse_date("1996-01-01").unwrap()),
        );
        let keep = p.to_expr().bind(&schema).unwrap().eval_bool(&batch).unwrap();
        assert_eq!(keep, vec![false, true, false]);
    }

    #[test]
    fn combined_residual() {
        let preds = vec![
            ColPredicate::ge("a", 1i64),
            ColPredicate::lt("a", 5i64),
            ColPredicate::ne("a", 3i64),
        ];
        let e = predicates_to_expr(&preds).unwrap();
        use crate::batch::{Batch, ColMeta};
        use bdcc_storage::DataType;
        let schema = vec![ColMeta::new("a", DataType::Int)];
        let batch = Batch::new(vec![Column::from_i64(vec![0, 1, 3, 4, 5])]);
        let keep = e.bind(&schema).unwrap().eval_bool(&batch).unwrap();
        assert_eq!(keep, vec![false, true, false, true, false]);
    }
}
