//! # bdcc-exec — vectorized execution over BDCC schemas
//!
//! The query-processing substrate the paper's evaluation runs on, built
//! from scratch: a pull-based, batch-at-a-time executor with the three
//! access paths the Plain / PK / BDCC storage schemes need, the sandwich
//! operators of ref [3], and the plan-time analyses that turn predicates
//! into BDCC group restrictions (selection pushdown and propagation).

pub mod batch;
pub mod broker;
pub mod enc;
pub mod error;
pub mod expr;
pub mod govern;
pub mod hash;
pub mod kernel;
pub mod memory;
pub mod ops;
pub mod parallel;
pub mod plan;
pub mod planner;
pub mod pred;
pub mod profile;
pub mod restrict;
pub mod run;
pub mod scheme;
pub mod serve;

pub use batch::{Batch, BatchAssembler, ColMeta, OpSchema, BATCH_ROWS};
pub use bdcc_obs::{OpMetrics, ProfileNode, QueryProfile};
pub use bdcc_pool::{CancelReason, CancelToken, FaultInjector, FaultPlan};
pub use bdcc_storage::Datum;
pub use broker::{set_spill_mode, spill_mode, MemoryBroker, SpillMode};
pub use enc::{BlockVerdict, ScanKernel};
pub use error::{ExecError, Result};
pub use expr::{ArithOp, CmpOp, Expr, LikePattern};
pub use govern::{GovernedOp, Governor};
pub use hash::{FxBuildHasher, FxHasher, JoinIndex, JoinTable};
pub use kernel::{kernel_enabled, set_kernel_enabled, FilterProgram, PairFilter, SelVec};
pub use memory::{MemoryGuard, MemoryTracker};
pub use ops::agg::{AggFunc, AggSpec};
pub use ops::join::{JoinType, MATCHED_COLUMN};
pub use ops::sort::SortKey;
pub use ops::{collect, BoxedOp, Operator};
pub use parallel::{ParallelConfig, DEFAULT_MORSEL_ROWS};
pub use plan::{
    aggregate, alias_column, filter, join, join_full, project, sort, FkSide, Node, PlanBuilder,
};
pub use planner::{plan_query, QueryContext};
pub use pred::{ColPredicate, PredKind};
pub use profile::{OpProf, ProfiledOp, Profiler};
pub use run::{canonical_rows, explain_analyze, run_measured, run_plan, Analyzed, Measurement};
pub use scheme::{bdcc_scheme, pk_scheme, plain_scheme, Scheme, SchemeDb};
pub use serve::{QueryHandle, QueryOptions, QueryOutcome, ServeError, Server, ServerConfig};
